//! Deterministic-schedule Time Warp (the [`dvs_sim::timewarp::dst`]
//! executor) on a *fixed* workload + partition: every schedule policy must
//! reproduce the sequential simulator's final state, repeated seeds must
//! reproduce every counter exactly, and the adversarial schedules must
//! actually exercise the rollback machinery they were designed to provoke.

use dvs_core::multiway::{partition_multiway, MultiwayConfig};
use dvs_core::ToJson;
use dvs_integration_tests::elaborate;
use dvs_sim::cluster::ClusterPlan;
use dvs_sim::seq::{NullObserver, SeqSim, SimConfig};
use dvs_sim::stimulus::VectorStimulus;
use dvs_sim::timewarp::dst::first_cut_channel;
use dvs_sim::timewarp::{
    run_timewarp, FaultPlan, SchedulePolicy, StateSaving, TimeWarpConfig, Transport, TwRunResult,
};
use dvs_verilog::Netlist;
use dvs_workloads::viterbi::{generate_viterbi, ViterbiParams};

const CYCLES: u64 = 30;
const STIM_SEED: u64 = 7;
const K: u32 = 3;

/// The fixed workload: tiny Viterbi decoder, design-driven 3-way partition.
fn fixture() -> (Netlist, ClusterPlan, VectorStimulus) {
    let src = generate_viterbi(&ViterbiParams::tiny());
    let nl = elaborate(&src);
    let part = partition_multiway(&nl, &MultiwayConfig::new(K, 20.0));
    let plan = ClusterPlan::new(&nl, &part.gate_blocks, K as usize);
    let stim = VectorStimulus::from_netlist(&nl, 10, STIM_SEED);
    (nl, plan, stim)
}

fn dst_config(seed: u64, schedule: SchedulePolicy) -> TimeWarpConfig {
    TimeWarpConfig::builder()
        .transport(Transport::in_proc(seed, schedule))
        .window(8)
        .epochs_per_quantum(2)
        .gvt_interval(1)
        .state_saving(StateSaving::IncrementalUndo)
        .build()
        .expect("valid config")
}

fn run(
    nl: &Netlist,
    plan: &ClusterPlan,
    stim: &VectorStimulus,
    cfg: &TimeWarpConfig,
) -> TwRunResult {
    run_timewarp(nl, plan, stim, CYCLES, cfg).expect("deterministic run stalled")
}

/// Final driven-net state must equal the sequential simulator's.
fn assert_matches_sequential(nl: &Netlist, stim: &VectorStimulus, tw: &TwRunResult, label: &str) {
    let mut seq = SeqSim::new(
        nl,
        &SimConfig {
            cycles: CYCLES,
            init_zero: true,
        },
    );
    seq.run(stim, CYCLES, &mut NullObserver);
    for (ni, net) in nl.nets.iter().enumerate() {
        if net.driver.is_some() {
            assert_eq!(
                tw.values[ni],
                seq.value(dvs_verilog::NetId(ni as u32)),
                "net `{}` differs under {label}",
                net.name
            );
        }
    }
}

#[test]
fn every_schedule_policy_matches_sequential() {
    let (nl, plan, stim) = fixture();
    let delay = first_cut_channel(&plan).expect("k=3 partition must have a cut channel");
    let policies = [
        SchedulePolicy::RoundRobin,
        SchedulePolicy::SeededRandom,
        SchedulePolicy::StragglerHeavy,
        SchedulePolicy::DelayChannel {
            src: delay.0,
            dst: delay.1,
        },
    ];
    for policy in policies {
        let tw = run(&nl, &plan, &stim, &dst_config(1, policy));
        assert_matches_sequential(&nl, &stim, &tw, policy.name());
    }
}

#[test]
fn sixteen_random_seeds_match_sequential() {
    let (nl, plan, stim) = fixture();
    for seed in 0..16u64 {
        let tw = run(
            &nl,
            &plan,
            &stim,
            &dst_config(seed, SchedulePolicy::SeededRandom),
        );
        assert_matches_sequential(&nl, &stim, &tw, &format!("seeded_random seed {seed}"));
    }
}

#[test]
fn repeated_seed_reproduces_stats_exactly() {
    let (nl, plan, stim) = fixture();
    for policy in [
        SchedulePolicy::RoundRobin,
        SchedulePolicy::SeededRandom,
        SchedulePolicy::StragglerHeavy,
    ] {
        let cfg = dst_config(42, policy);
        let a = run(&nl, &plan, &stim, &cfg);
        let b = run(&nl, &plan, &stim, &cfg);
        assert_eq!(a.stats, b.stats, "merged stats differ ({})", policy.name());
        assert_eq!(
            a.cluster_stats,
            b.cluster_stats,
            "per-cluster stats differ ({})",
            policy.name()
        );
        assert_eq!(
            a.gvt_rounds,
            b.gvt_rounds,
            "gvt_rounds differ ({})",
            policy.name()
        );
    }
}

/// Acceptance criterion: two same-seed runs emit *byte-identical* canonical
/// artifacts, counters included (serialization lives in `dvs_core::artifact`).
#[test]
fn same_seed_runs_emit_byte_identical_artifacts() {
    let (nl, plan, stim) = fixture();
    let cfg = dst_config(0x5EED, SchedulePolicy::SeededRandom);
    let a = run(&nl, &plan, &stim, &cfg).to_json().emit().expect("emit");
    let b = run(&nl, &plan, &stim, &cfg).to_json().emit().expect("emit");
    assert_eq!(a, b, "same (seed, schedule) must serialize identically");
    assert!(a.contains("\"rollbacks\""), "artifact must carry counters");
}

/// Acceptance criterion for crash-fault tolerance: a crash injected at ANY
/// decision index recovers and produces a canonical artifact byte-identical
/// to the no-crash run's — recovery restores the exact pre-crash state, so
/// every counter (rollbacks, messages, fossil collection, GVT rounds)
/// continues unchanged.
#[test]
fn crash_at_any_decision_index_yields_byte_identical_canonical_artifact() {
    let (nl, plan, stim) = fixture();
    for policy in [SchedulePolicy::RoundRobin, SchedulePolicy::SeededRandom] {
        let clean_cfg = dst_config(11, policy);
        let clean = run(&nl, &plan, &stim, &clean_cfg);
        let clean_bytes = dvs_core::tw_run_canonical_json(&clean)
            .emit()
            .expect("emit");
        assert_eq!(clean.recovery.crashes, 0);

        // Early, mid-run and late crash points, on every cluster. Points
        // beyond the run's decision count simply never fire (the run is
        // then trivially identical); the `fired` tally below proves the
        // sweep exercised real crashes at several depths.
        let mut fired = 0u32;
        for (victim, at) in [(0u32, 0u64), (1, 7), (2, 100), (0, 400), (1, 900)] {
            let mut cfg = clean_cfg.clone();
            cfg.fault = FaultPlan::crash(victim, at);
            let tw = run(&nl, &plan, &stim, &cfg);
            let label = format!("{} crash=({victim},{at})", policy.name());
            assert_matches_sequential(&nl, &stim, &tw, &label);
            assert_eq!(
                tw.recovery.crashes, tw.recovery.restarts,
                "{label}: every fired crash must be recovered"
            );
            assert!(!tw.recovery.degraded, "{label}: unexpected degradation");
            fired += tw.recovery.crashes;
            let bytes = dvs_core::tw_run_canonical_json(&tw).emit().expect("emit");
            assert_eq!(
                bytes, clean_bytes,
                "{label}: canonical artifact differs from the no-crash run"
            );
        }
        assert!(
            fired >= 3,
            "{}: only {fired} crash points fired — sweep too shallow",
            policy.name()
        );
    }
}

/// Repeated crashes of the same cluster (fault re-arms after each recovery)
/// still converge to the no-crash artifact as long as the restart budget
/// holds.
#[test]
fn repeated_crashes_within_budget_still_converge() {
    let (nl, plan, stim) = fixture();
    let clean_cfg = dst_config(3, SchedulePolicy::StragglerHeavy);
    let clean = run(&nl, &plan, &stim, &clean_cfg);
    let clean_bytes = dvs_core::tw_run_canonical_json(&clean)
        .emit()
        .expect("emit");

    let mut cfg = clean_cfg;
    cfg.fault = FaultPlan {
        crash_at: Some((2, 40)),
        crashes: 3,
        max_restarts: 3,
        corrupt_restores: 0,
    };
    let tw = run(&nl, &plan, &stim, &cfg);
    assert_eq!(tw.recovery.crashes, 3);
    assert_eq!(tw.recovery.restarts, 3);
    assert!(!tw.recovery.degraded);
    assert!(tw.recovery.replayed_ops > 0, "recovery must replay the log");
    let bytes = dvs_core::tw_run_canonical_json(&tw).emit().expect("emit");
    assert_eq!(bytes, clean_bytes);
}

/// Exhausting the restart budget degrades gracefully to the sequential
/// simulator: the run still returns the correct final state, flagged with
/// `degraded = true` rather than an error.
#[test]
fn exhausted_restart_budget_degrades_to_sequential() {
    let (nl, plan, stim) = fixture();
    let mut cfg = dst_config(5, SchedulePolicy::RoundRobin);
    cfg.fault = FaultPlan {
        crash_at: Some((1, 10)),
        crashes: 3,
        max_restarts: 2,
        corrupt_restores: 0,
    };
    let tw = run(&nl, &plan, &stim, &cfg);
    assert!(tw.recovery.degraded, "restart budget was not exhausted");
    assert_eq!(tw.recovery.crashes, 3);
    assert_eq!(tw.recovery.restarts, 2);
    assert_matches_sequential(&nl, &stim, &tw, "degraded run");
}

/// The full (non-canonical) serialization carries the recovery provenance;
/// the canonical form excludes it so crashed and undisturbed runs compare
/// equal.
#[test]
fn recovery_provenance_is_serialized_but_not_canonical() {
    let (nl, plan, stim) = fixture();
    let mut cfg = dst_config(8, SchedulePolicy::RoundRobin);
    cfg.fault = FaultPlan::crash(0, 25);
    let tw = run(&nl, &plan, &stim, &cfg);
    let full = tw.to_json().emit().expect("emit");
    assert!(
        full.contains("\"recovery\""),
        "full artifact lacks recovery"
    );
    assert!(full.contains("\"restarts\":1"), "{full}");
    let canonical = dvs_core::tw_run_canonical_json(&tw).emit().expect("emit");
    assert!(!canonical.contains("\"recovery\""));
}

/// Acceptance criterion: at least one adversarial schedule provably triggers
/// rollbacks while still converging to the sequential final state.
#[test]
fn adversarial_schedule_triggers_rollbacks_and_still_converges() {
    let (nl, plan, stim) = fixture();
    let delay = first_cut_channel(&plan).expect("cut channel");
    let mut best = 0u64;
    for policy in [
        SchedulePolicy::StragglerHeavy,
        SchedulePolicy::DelayChannel {
            src: delay.0,
            dst: delay.1,
        },
    ] {
        let tw = run(&nl, &plan, &stim, &dst_config(9, policy));
        assert_matches_sequential(&nl, &stim, &tw, policy.name());
        best = best.max(tw.stats.rollbacks);
    }
    assert!(
        best > 0,
        "adversarial schedules produced no rollbacks at all"
    );
}
