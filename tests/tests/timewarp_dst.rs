//! Deterministic-schedule Time Warp (the [`dvs_sim::timewarp::dst`]
//! executor) on a *fixed* workload + partition: every schedule policy must
//! reproduce the sequential simulator's final state, repeated seeds must
//! reproduce every counter exactly, and the adversarial schedules must
//! actually exercise the rollback machinery they were designed to provoke.

use dvs_core::multiway::{partition_multiway, MultiwayConfig};
use dvs_core::ToJson;
use dvs_integration_tests::elaborate;
use dvs_sim::cluster::ClusterPlan;
use dvs_sim::seq::{NullObserver, SeqSim, SimConfig};
use dvs_sim::stimulus::VectorStimulus;
use dvs_sim::timewarp::dst::first_cut_channel;
use dvs_sim::timewarp::{
    run_timewarp, SchedulePolicy, StateSaving, TimeWarpConfig, TimeWarpMode, TwRunResult,
};
use dvs_verilog::Netlist;
use dvs_workloads::viterbi::{generate_viterbi, ViterbiParams};

const CYCLES: u64 = 30;
const STIM_SEED: u64 = 7;
const K: u32 = 3;

/// The fixed workload: tiny Viterbi decoder, design-driven 3-way partition.
fn fixture() -> (Netlist, ClusterPlan, VectorStimulus) {
    let src = generate_viterbi(&ViterbiParams::tiny());
    let nl = elaborate(&src);
    let part = partition_multiway(&nl, &MultiwayConfig::new(K, 20.0));
    let plan = ClusterPlan::new(&nl, &part.gate_blocks, K as usize);
    let stim = VectorStimulus::from_netlist(&nl, 10, STIM_SEED);
    (nl, plan, stim)
}

fn dst_config(seed: u64, schedule: SchedulePolicy) -> TimeWarpConfig {
    TimeWarpConfig {
        mode: TimeWarpMode::Deterministic { seed, schedule },
        window: 8,
        batch: 2,
        gvt_interval: 1,
        state_saving: StateSaving::IncrementalUndo,
    }
}

fn run(
    nl: &Netlist,
    plan: &ClusterPlan,
    stim: &VectorStimulus,
    cfg: &TimeWarpConfig,
) -> TwRunResult {
    run_timewarp(nl, plan, stim, CYCLES, cfg)
}

/// Final driven-net state must equal the sequential simulator's.
fn assert_matches_sequential(nl: &Netlist, stim: &VectorStimulus, tw: &TwRunResult, label: &str) {
    let mut seq = SeqSim::new(
        nl,
        &SimConfig {
            cycles: CYCLES,
            init_zero: true,
        },
    );
    seq.run(stim, CYCLES, &mut NullObserver);
    for (ni, net) in nl.nets.iter().enumerate() {
        if net.driver.is_some() {
            assert_eq!(
                tw.values[ni],
                seq.value(dvs_verilog::NetId(ni as u32)),
                "net `{}` differs under {label}",
                net.name
            );
        }
    }
}

#[test]
fn every_schedule_policy_matches_sequential() {
    let (nl, plan, stim) = fixture();
    let delay = first_cut_channel(&plan).expect("k=3 partition must have a cut channel");
    let policies = [
        SchedulePolicy::RoundRobin,
        SchedulePolicy::SeededRandom,
        SchedulePolicy::StragglerHeavy,
        SchedulePolicy::DelayChannel {
            src: delay.0,
            dst: delay.1,
        },
    ];
    for policy in policies {
        let tw = run(&nl, &plan, &stim, &dst_config(1, policy));
        assert_matches_sequential(&nl, &stim, &tw, policy.name());
    }
}

#[test]
fn sixteen_random_seeds_match_sequential() {
    let (nl, plan, stim) = fixture();
    for seed in 0..16u64 {
        let tw = run(
            &nl,
            &plan,
            &stim,
            &dst_config(seed, SchedulePolicy::SeededRandom),
        );
        assert_matches_sequential(&nl, &stim, &tw, &format!("seeded_random seed {seed}"));
    }
}

#[test]
fn repeated_seed_reproduces_stats_exactly() {
    let (nl, plan, stim) = fixture();
    for policy in [
        SchedulePolicy::RoundRobin,
        SchedulePolicy::SeededRandom,
        SchedulePolicy::StragglerHeavy,
    ] {
        let cfg = dst_config(42, policy);
        let a = run(&nl, &plan, &stim, &cfg);
        let b = run(&nl, &plan, &stim, &cfg);
        assert_eq!(a.stats, b.stats, "merged stats differ ({})", policy.name());
        assert_eq!(
            a.cluster_stats,
            b.cluster_stats,
            "per-cluster stats differ ({})",
            policy.name()
        );
        assert_eq!(
            a.gvt_rounds,
            b.gvt_rounds,
            "gvt_rounds differ ({})",
            policy.name()
        );
    }
}

/// Acceptance criterion: two same-seed runs emit *byte-identical* canonical
/// artifacts, counters included (serialization lives in `dvs_core::artifact`).
#[test]
fn same_seed_runs_emit_byte_identical_artifacts() {
    let (nl, plan, stim) = fixture();
    let cfg = dst_config(0x5EED, SchedulePolicy::SeededRandom);
    let a = run(&nl, &plan, &stim, &cfg).to_json().emit().expect("emit");
    let b = run(&nl, &plan, &stim, &cfg).to_json().emit().expect("emit");
    assert_eq!(a, b, "same (seed, schedule) must serialize identically");
    assert!(a.contains("\"rollbacks\""), "artifact must carry counters");
}

/// Acceptance criterion: at least one adversarial schedule provably triggers
/// rollbacks while still converging to the sequential final state.
#[test]
fn adversarial_schedule_triggers_rollbacks_and_still_converges() {
    let (nl, plan, stim) = fixture();
    let delay = first_cut_channel(&plan).expect("cut channel");
    let mut best = 0u64;
    for policy in [
        SchedulePolicy::StragglerHeavy,
        SchedulePolicy::DelayChannel {
            src: delay.0,
            dst: delay.1,
        },
    ] {
        let tw = run(&nl, &plan, &stim, &dst_config(9, policy));
        assert_matches_sequential(&nl, &stim, &tw, policy.name());
        best = best.max(tw.stats.rollbacks);
    }
    assert!(
        best > 0,
        "adversarial schedules produced no rollbacks at all"
    );
}
