//! Time Warp correctness on *real* workloads with *real* partitions:
//! the optimistic kernel must agree bit-for-bit with the sequential kernel
//! when driven by the design-driven partitioner's output — the combination
//! that the whole reproduction stands on.

use dvs_core::multiway::{partition_multiway, MultiwayConfig};
use dvs_integration_tests::elaborate;
use dvs_sim::cluster::ClusterPlan;
use dvs_sim::seq::{NullObserver, SeqSim, SimConfig};
use dvs_sim::stimulus::VectorStimulus;
use dvs_sim::timewarp::{run_timewarp, SchedulePolicy, StateSaving, TimeWarpConfig, Transport};
use dvs_workloads::random_hier::{generate_random_hier, RandomHierParams};
use dvs_workloads::seqcirc::generate_counter;
use dvs_workloads::viterbi::{generate_viterbi, ViterbiParams};

fn assert_bit_exact(src: &str, k: u32, b: f64, cycles: u64, seed: u64) {
    let nl = elaborate(src);
    let part = partition_multiway(&nl, &MultiwayConfig::new(k, b));
    let plan = ClusterPlan::new(&nl, &part.gate_blocks, k as usize);
    let stim = VectorStimulus::from_netlist(&nl, 10, seed);

    let mut seq = SeqSim::new(
        &nl,
        &SimConfig {
            cycles,
            init_zero: true,
        },
    );
    seq.run(&stim, cycles, &mut NullObserver);

    let tw = run_timewarp(&nl, &plan, &stim, cycles, &TimeWarpConfig::default())
        .expect("time warp run stalled");
    for (ni, net) in nl.nets.iter().enumerate() {
        if net.driver.is_some() {
            assert_eq!(
                tw.values[ni],
                seq.value(dvs_verilog::NetId(ni as u32)),
                "net `{}` differs (k={k}, seed={seed})",
                net.name
            );
        }
    }
}

#[test]
fn viterbi_tiny_on_partitioned_clusters() {
    let src = generate_viterbi(&ViterbiParams::tiny());
    for k in [2u32, 3] {
        assert_bit_exact(&src, k, 15.0, 40, 3);
    }
}

#[test]
fn viterbi_small_four_machines() {
    let p = ViterbiParams {
        constraint_len: 4,
        metric_width: 4,
        survivor_depth: 4,
        bank_size: 2,
        uneven_banks: true,
        lanes: 1,
    };
    let src = generate_viterbi(&p);
    assert_bit_exact(&src, 4, 20.0, 30, 9);
}

#[test]
fn counter_feedback_across_machines() {
    let src = generate_counter(12);
    assert_bit_exact(&src, 2, 25.0, 50, 5);
    assert_bit_exact(&src, 3, 30.0, 50, 6);
}

#[test]
fn random_hierarchies_bit_exact() {
    for seed in [1u64, 8] {
        let src = generate_random_hier(&RandomHierParams {
            seed,
            gates_per_module: 8,
            ..Default::default()
        });
        assert_bit_exact(&src, 2, 25.0, 35, seed);
    }
}

#[test]
fn deterministic_mode_matches_golden_counters() {
    // Under `Transport::InProc` the rollback machinery is exactly
    // reproducible, so we can pin the counters to golden values: any kernel
    // change that alters scheduling, annihilation, GVT sampling or fossil
    // collection shows up here as an exact diff, not a flaky tolerance.
    let src = generate_viterbi(&ViterbiParams::tiny());
    let nl = elaborate(&src);
    let part = partition_multiway(&nl, &MultiwayConfig::new(3, 20.0));
    let plan = ClusterPlan::new(&nl, &part.gate_blocks, 3);
    let stim = VectorStimulus::from_netlist(&nl, 10, 3);

    // (policy, events, rollbacks, anti_messages, messages, fossil, gvt_rounds)
    let golden = [
        (SchedulePolicy::RoundRobin, 15823, 114, 103, 835, 13413, 386),
        (
            SchedulePolicy::StragglerHeavy,
            89366,
            3042,
            2709,
            3441,
            13413,
            159,
        ),
    ];
    for (policy, events, rollbacks, anti, messages, fossil, gvt_rounds) in golden {
        let cfg = TimeWarpConfig::builder()
            .transport(Transport::in_proc(2008, policy))
            .window(8)
            .epochs_per_quantum(2)
            .gvt_interval(1)
            .state_saving(StateSaving::IncrementalUndo)
            .build()
            .expect("valid config");
        let tw = run_timewarp(&nl, &plan, &stim, 40, &cfg).expect("time warp run stalled");
        let got = (
            policy,
            tw.stats.events,
            tw.stats.rollbacks,
            tw.stats.anti_messages,
            tw.stats.messages,
            tw.stats.fossil_collected,
            tw.gvt_rounds,
        );
        assert_eq!(
            got,
            (policy, events, rollbacks, anti, messages, fossil, gvt_rounds),
            "golden counters drifted for {}",
            policy.name()
        );
    }
}

#[test]
fn timewarp_stats_scale_with_cut() {
    // A worse partition (round-robin) must generate at least as many
    // messages as the design-driven one over the same run.
    let src = generate_viterbi(&ViterbiParams::tiny());
    let nl = elaborate(&src);
    let stim = VectorStimulus::from_netlist(&nl, 10, 4);

    let good = partition_multiway(&nl, &MultiwayConfig::new(2, 15.0));
    let bad: Vec<u32> = (0..nl.gate_count()).map(|i| (i % 2) as u32).collect();
    let good_plan = ClusterPlan::new(&nl, &good.gate_blocks, 2);
    let bad_plan = ClusterPlan::new(&nl, &bad, 2);
    assert!(bad_plan.cut_nets() > good_plan.cut_nets());

    let cfg = TimeWarpConfig::default();
    let rg = run_timewarp(&nl, &good_plan, &stim, 30, &cfg).expect("time warp run stalled");
    let rb = run_timewarp(&nl, &bad_plan, &stim, 30, &cfg).expect("time warp run stalled");
    assert!(
        rb.stats.messages > rg.stats.messages,
        "bad {} <= good {}",
        rb.stats.messages,
        rg.stats.messages
    );
}
