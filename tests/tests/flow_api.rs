//! The redesigned `Flow` front door, exercised across crates: builder
//! validation, typed errors, and — the load-bearing property of the
//! multi-threaded search engine — bit-identical reports for every thread
//! count.

use dvs_core::{FlowBuilder, FlowError, FlowReport, Parallelism, Search};
use dvs_workloads::viterbi::{generate_viterbi, ViterbiParams};

fn small_viterbi() -> String {
    let params = ViterbiParams::tiny();
    generate_viterbi(&params)
}

fn run_with(src: &str, par: Parallelism) -> FlowReport {
    FlowBuilder::from_source(src)
        .search(Search::BruteForce {
            ks: vec![2, 3, 4],
            bs: vec![5.0, 10.0, 15.0],
        })
        .presim_vectors(60)
        .full_vectors(150)
        .parallelism(par)
        .build()
        .expect("valid flow")
        .run()
        .expect("flow runs")
}

/// The acceptance property of the parallel search engine: a 1-thread and a
/// 4-thread run of the same flow produce bit-identical reports (chosen
/// point, every presim point, modeled times, counters). Host wall times in
/// `metrics` are the only thing allowed to differ.
#[test]
fn serial_and_threaded_flows_are_bit_identical() {
    let src = small_viterbi();
    let serial = run_with(&src, Parallelism::Serial);
    let threaded = run_with(&src, Parallelism::Threads(4));

    // Identical chosen point.
    assert_eq!(serial.chosen.k, threaded.chosen.k);
    assert_eq!(serial.chosen.b.to_bits(), threaded.chosen.b.to_bits());
    assert_eq!(serial.chosen.gate_blocks, threaded.chosen.gate_blocks);
    assert_eq!(serial.chosen.cut, threaded.chosen.cut);

    // Identical presim points, position by position (the engine returns
    // grid order regardless of completion order).
    assert_eq!(serial.presim_points.len(), threaded.presim_points.len());
    for (s, t) in serial.presim_points.iter().zip(&threaded.presim_points) {
        assert_eq!((s.k, s.b.to_bits()), (t.k, t.b.to_bits()));
        assert_eq!(s.gate_blocks, t.gate_blocks);
        assert_eq!(s.cut, t.cut);
        assert_eq!(s.messages, t.messages);
        assert_eq!(s.rollbacks, t.rollbacks);
        assert_eq!(s.machine_messages, t.machine_messages);
        assert_eq!(s.machine_rollbacks, t.machine_rollbacks);
        assert_eq!(s.sim_seconds.to_bits(), t.sim_seconds.to_bits());
        assert_eq!(s.seq_seconds.to_bits(), t.seq_seconds.to_bits());
        assert_eq!(s.speedup.to_bits(), t.speedup.to_bits());
        assert_eq!(s.balanced, t.balanced);
        assert_eq!(s.timing.flattens, t.timing.flattens);
        assert_eq!(s.timing.fm_rounds, t.timing.fm_rounds);
    }

    // Identical full run (modeled, so bit-exact).
    assert_eq!(serial.presim_runs, threaded.presim_runs);
    assert_eq!(
        serial.full.wall_seconds.to_bits(),
        threaded.full.wall_seconds.to_bits()
    );
    assert_eq!(
        serial.full_speedup.to_bits(),
        threaded.full_speedup.to_bits()
    );
    assert_eq!(serial.full.stats.messages, threaded.full.stats.messages);
    assert_eq!(serial.full.stats.rollbacks, threaded.full.stats.rollbacks);

    // Deterministic counters agree too; only host wall times may differ.
    assert_eq!(
        serial.metrics.flatten_events,
        threaded.metrics.flatten_events
    );
    assert_eq!(serial.metrics.fm_passes, threaded.metrics.fm_passes);
    assert_eq!(serial.metrics.presim_runs, threaded.metrics.presim_runs);
}

/// The artifact-level form of the same contract, the one CI's bench gate
/// relies on: serializing both runs to the canonical JSON view produces
/// byte-identical text. (The full `to_json` view differs — it includes
/// host wall times and the worker count.)
#[test]
fn serial_and_threaded_canonical_artifacts_are_byte_identical() {
    let src = small_viterbi();
    let serial = run_with(&src, Parallelism::Serial);
    let threaded = run_with(&src, Parallelism::Threads(4));

    let serial_text = serial.canonical_json().emit().expect("emit serial");
    let threaded_text = threaded.canonical_json().emit().expect("emit threaded");
    assert_eq!(serial_text, threaded_text);

    // And the artifact actually carries the load-bearing content.
    for needle in [
        "\"kind\":\"flow_report\"",
        "\"schema_version\":1",
        "\"quality\":",
        "\"fossil_collected\":",
        "\"gate_blocks\":",
    ] {
        assert!(serial_text.contains(needle), "missing {needle} in artifact");
    }
    // No host measurement leaks into the canonical view.
    assert!(!serial_text.contains("search_workers"));
    assert!(!serial_text.contains("partition_seconds"));
}

#[test]
fn heuristic_search_is_thread_count_invariant_too() {
    let src = small_viterbi();
    let build = |par| {
        FlowBuilder::from_source(&src)
            .search(Search::Heuristic { max_k: 4 })
            .presim_vectors(60)
            .full_vectors(150)
            .parallelism(par)
            .build()
            .expect("valid flow")
            .run()
            .expect("flow runs")
    };
    let serial = build(Parallelism::Serial);
    let threaded = build(Parallelism::Threads(3));
    assert_eq!(serial.chosen.k, threaded.chosen.k);
    assert_eq!(serial.chosen.b.to_bits(), threaded.chosen.b.to_bits());
    assert_eq!(serial.presim_runs, threaded.presim_runs);
    for (s, t) in serial.presim_points.iter().zip(&threaded.presim_points) {
        assert_eq!((s.k, s.b.to_bits()), (t.k, t.b.to_bits()));
        assert_eq!(s.speedup.to_bits(), t.speedup.to_bits());
    }
}

#[test]
fn empty_search_space_is_an_error_not_a_panic() {
    let src = small_viterbi();
    let err = FlowBuilder::from_source(&src)
        .search(Search::BruteForce {
            ks: vec![],
            bs: vec![10.0],
        })
        .build()
        .unwrap_err();
    assert!(matches!(err, FlowError::EmptySearchSpace { .. }));

    let err = FlowBuilder::from_source(&src)
        .search(Search::Heuristic { max_k: 1 })
        .build()
        .unwrap_err();
    assert!(matches!(err, FlowError::EmptySearchSpace { .. }));
}

#[test]
fn parse_errors_surface_as_typed_verilog_errors() {
    let err = FlowBuilder::from_source("module broken(")
        .build()
        .unwrap_err();
    match err {
        FlowError::Verilog(_) => {}
        other => panic!("expected FlowError::Verilog, got {other:?}"),
    }
    // The error chains to the underlying parser error.
    let err = FlowBuilder::from_source("module broken(")
        .build()
        .unwrap_err();
    assert!(std::error::Error::source(&err).is_some());
}

#[test]
fn seed_overrides_change_the_outcome_deterministically() {
    let src = small_viterbi();
    let run_seeded = |stim: u64| {
        FlowBuilder::from_source(&src)
            .search(Search::BruteForce {
                ks: vec![2],
                bs: vec![10.0],
            })
            .presim_vectors(60)
            .full_vectors(150)
            .stim_seed(stim)
            .build()
            .expect("valid flow")
            .run()
            .expect("flow runs")
    };
    let a1 = run_seeded(1);
    let a2 = run_seeded(1);
    assert_eq!(a1.chosen.gate_blocks, a2.chosen.gate_blocks);
    assert_eq!(a1.chosen.messages, a2.chosen.messages);
}
