//! Cross-crate artifact round-trips: a real `FlowReport` (produced by a
//! real flow run) and Time Warp `SimStats` survive
//! serialize → parse → deserialize → serialize with byte-identical text,
//! and the emitter's string escaping holds up on hostile content.

use dvs_core::json::{FromJson, Json, ToJson};
use dvs_core::{FlowBuilder, FlowReport, Parallelism, Search};
use dvs_sim::stats::SimStats;
use dvs_workloads::pipeline_soc::{generate_pipeline_soc, PipelineParams};

fn small_report() -> FlowReport {
    let src = generate_pipeline_soc(&PipelineParams::tiny());
    FlowBuilder::from_source(&src)
        .search(Search::BruteForce {
            ks: vec![2, 3],
            bs: vec![7.5, 15.0],
        })
        .presim_vectors(60)
        .full_vectors(150)
        .stim_seed(7)
        .part_seed(11)
        .parallelism(Parallelism::Serial)
        .build()
        .expect("valid flow")
        .run()
        .expect("flow runs")
}

#[test]
fn flow_report_round_trips_byte_identically() {
    let report = small_report();
    let first = report.to_json().emit().expect("emit");
    let parsed = Json::parse(&first).expect("parse");
    let back = FlowReport::from_json(&parsed).expect("deserialize");
    let second = back.to_json().emit().expect("re-emit");
    assert_eq!(first, second);

    // Spot-check the reconstruction is semantic, not just textual.
    assert_eq!(back.chosen.k, report.chosen.k);
    assert_eq!(back.chosen.gate_blocks, report.chosen.gate_blocks);
    assert_eq!(back.chosen.quality, report.chosen.quality);
    assert_eq!(back.full.stats, report.full.stats);
    assert_eq!(back.design.gates, report.design.gates);
    assert_eq!(
        back.metrics.total_seconds.to_bits(),
        report.metrics.total_seconds.to_bits()
    );
}

#[test]
fn canonical_artifact_round_trips_through_from_json() {
    // The canonical view drops host times and the worker count but is
    // still a loadable flow report (missing pieces default to zero).
    let report = small_report();
    let text = report.canonical_json().emit().expect("emit");
    let back = FlowReport::from_json(&Json::parse(&text).expect("parse")).expect("load");
    assert_eq!(back.chosen.cut, report.chosen.cut);
    assert_eq!(back.full.stats, report.full.stats);
    assert_eq!(back.metrics.fm_passes, report.metrics.fm_passes);
    assert_eq!(back.metrics.search_workers, 0);
    assert_eq!(back.full.timing.profile_seconds, 0.0);
    // Re-emitting the canonical view of the reconstruction reproduces the
    // exact artifact.
    assert_eq!(back.canonical_json().emit().expect("re-emit"), text);
}

#[test]
fn sim_stats_round_trip_is_exact() {
    let stats = SimStats {
        events: u64::MAX,
        gate_evals: 12_345,
        net_toggles: 9,
        cycles: 1,
        end_time: 77,
        messages: 3,
        anti_messages: 2,
        rollbacks: 1,
        rolled_back_events: 4,
        gvt_rounds: 6,
        fossil_collected: 5,
    };
    let text = stats.to_json().emit().expect("emit");
    let back = SimStats::from_json(&Json::parse(&text).expect("parse")).expect("load");
    // Counters above i64::MAX ride as decimal strings (a bare JSON
    // literal that large would be read back as a lossy float), so even
    // u64::MAX round-trips exactly.
    assert_eq!(back, stats);
}

#[test]
fn string_escaping_round_trips_hostile_content() {
    for hostile in [
        "plain",
        "with \"quotes\" and \\backslashes\\",
        "newline\nand\ttab\rand\x08control\x0c",
        "módulo_ünïté_ΔΣ_模块_🚀",
        "\u{0000}\u{001f}",
        "lone slash / and </script>",
    ] {
        let v = Json::Object(vec![(hostile.to_string(), Json::Str(hostile.to_string()))]);
        let text = v.emit().expect("emit");
        let parsed = Json::parse(&text).expect("parse");
        let obj = parsed.as_object().expect("object");
        assert_eq!(obj[0].0, hostile);
        assert_eq!(obj[0].1.as_str().expect("str"), hostile);
        // And emit is stable under the round trip.
        assert_eq!(parsed.emit().expect("re-emit"), text);
    }
}

#[test]
fn pretty_and_compact_forms_parse_to_the_same_value() {
    let report = small_report();
    let v = report.to_json();
    let compact = Json::parse(&v.emit().expect("emit")).expect("parse compact");
    let pretty = Json::parse(&v.emit_pretty().expect("pretty")).expect("parse pretty");
    assert_eq!(compact.emit().expect("emit"), pretty.emit().expect("emit"));
}
