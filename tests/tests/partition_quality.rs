//! Partition-quality properties across the two partitioners and the
//! balance machinery, plus property-based tests over random hierarchies.

use dvs_core::multiway::{partition_multiway, partition_multiway_sweep, MultiwayConfig};
use dvs_core::pairing::PairingStrategy;
use dvs_hmetis::{partition_kway, HmetisConfig};
use dvs_hypergraph::builder::{cut_size_gates, design_level, gate_level};
use dvs_hypergraph::partition::BalanceConstraint;
use dvs_integration_tests::elaborate;
use dvs_verilog::flatten::Frontier;
use dvs_workloads::random_hier::{generate_random_hier, RandomHierParams};
use dvs_workloads::viterbi::{generate_viterbi, ViterbiParams};
use proptest::prelude::*;

#[test]
fn both_partitioners_respect_paper_balance() {
    let src = generate_viterbi(&ViterbiParams {
        constraint_len: 5,
        ..ViterbiParams::paper_class()
    });
    let nl = elaborate(&src);
    let gh = gate_level(&nl);
    for k in [2u32, 3, 4] {
        for b in [7.5f64, 15.0] {
            let c = BalanceConstraint::new(k, nl.gate_count() as u64, b);

            let dd = partition_multiway(&nl, &MultiwayConfig::new(k, b));
            assert!(
                c.satisfied(&dd.loads),
                "design-driven k={k} b={b}: {:?}",
                dd.loads
            );

            let hm = partition_kway(&gh.hg, k, &HmetisConfig::with_balance(b, 7));
            assert!(
                c.satisfied(hm.block_weights()),
                "hMetis k={k} b={b}: {:?}",
                hm.block_weights()
            );
        }
    }
}

#[test]
fn sweep_envelope_is_monotone_and_feasible() {
    let src = generate_viterbi(&ViterbiParams {
        constraint_len: 5,
        ..ViterbiParams::paper_class()
    });
    let nl = elaborate(&src);
    let bs = [2.5, 5.0, 7.5, 10.0, 12.5, 15.0];
    for k in [2u32, 4] {
        let base = MultiwayConfig::new(k, 0.0);
        let sweep = partition_multiway_sweep(&nl, k, &bs, &base);
        assert_eq!(sweep.len(), bs.len());
        for w in sweep.windows(2) {
            assert!(
                w[1].cut <= w[0].cut,
                "k={k}: cut must not increase with b ({} -> {})",
                w[0].cut,
                w[1].cut
            );
        }
        for (r, &b) in sweep.iter().zip(&bs) {
            if r.balanced {
                let c = BalanceConstraint::new(k, nl.gate_count() as u64, b);
                assert!(c.satisfied(&r.loads));
            }
        }
    }
}

#[test]
fn design_cut_equals_flat_cut() {
    // The design-level hyperedge cut and the flat net cut agree for any
    // super-gate-respecting assignment — the metric identity that makes
    // Tables 1 and 2 comparable.
    let src = generate_viterbi(&ViterbiParams::tiny());
    let nl = elaborate(&src);
    let dh = design_level(&nl, &Frontier::initial(&nl));
    for k in [2u32, 3] {
        let r = partition_multiway(&nl, &MultiwayConfig::new(k, 20.0));
        assert_eq!(r.cut, r.design_cut, "k={k}");
        assert_eq!(cut_size_gates(&nl, &r.gate_blocks), r.cut);
    }
    let _ = dh;
}

#[test]
fn pairing_strategies_reach_comparable_quality() {
    let src = generate_viterbi(&ViterbiParams {
        constraint_len: 5,
        ..ViterbiParams::paper_class()
    });
    let nl = elaborate(&src);
    let mut cuts = Vec::new();
    for strat in [
        PairingStrategy::Random,
        PairingStrategy::Exhaustive,
        PairingStrategy::CutBased,
        PairingStrategy::GainBased,
    ] {
        let cfg = MultiwayConfig {
            pairing: strat,
            ..MultiwayConfig::new(3, 10.0)
        };
        let r = partition_multiway(&nl, &cfg);
        assert!(r.balanced, "{} must balance", strat.name());
        cuts.push((strat.name(), r.cut));
    }
    // No strategy should be catastrophically worse than the best (the paper
    // frames them as quality/effort trade-offs, not correctness).
    let best = cuts.iter().map(|(_, c)| *c).min().unwrap();
    for (name, c) in &cuts {
        assert!(
            *c <= best * 3,
            "{name} cut {c} is >3x the best ({best}): {cuts:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any random hierarchical design partitions into a complete, load-exact
    /// assignment whose reported cut matches a direct recount.
    #[test]
    fn prop_partition_invariants(seed in 0u64..500, k in 2u32..5) {
        let src = generate_random_hier(&RandomHierParams {
            seed,
            ..Default::default()
        });
        let nl = elaborate(&src);
        let r = partition_multiway(&nl, &MultiwayConfig::new(k, 20.0));
        prop_assert_eq!(r.gate_blocks.len(), nl.gate_count());
        prop_assert!(r.gate_blocks.iter().all(|&blk| blk < k));
        prop_assert_eq!(r.loads.iter().sum::<u64>(), nl.gate_count() as u64);
        prop_assert_eq!(cut_size_gates(&nl, &r.gate_blocks), r.cut);
    }

    /// hMetis recursive bisection is feasible and complete on random
    /// hierarchies too.
    #[test]
    fn prop_hmetis_invariants(seed in 0u64..500, k in 2u32..5) {
        let src = generate_random_hier(&RandomHierParams {
            seed,
            ..Default::default()
        });
        let nl = elaborate(&src);
        let gh = gate_level(&nl);
        let part = partition_kway(&gh.hg, k, &HmetisConfig::with_balance(15.0, seed));
        let c = BalanceConstraint::new(k, gh.hg.total_vweight(), 15.0);
        prop_assert!(c.satisfied(part.block_weights()),
            "weights {:?} outside [{}, {}]", part.block_weights(), c.lower(), c.upper());
        prop_assert_eq!(part.assignment().len(), gh.hg.vertex_count());
    }
}
