//! Checkpoint integrity: the GVT-round [`Checkpoint`] images that crash
//! recovery stands on must (a) survive JSON serialization losslessly,
//! (b) restore to a process whose state image is identical to the
//! original's, and (c) make mid-run crash-restore invisible — identical
//! counters to an uninterrupted run — across every schedule policy and a
//! spread of seeds.

use dvs_core::multiway::{partition_multiway, MultiwayConfig};
use dvs_core::{FromJson, Json, ToJson};
use dvs_integration_tests::elaborate;
use dvs_sim::cluster::ClusterPlan;
use dvs_sim::stimulus::VectorStimulus;
use dvs_sim::timewarp::dst::first_cut_channel;
use dvs_sim::timewarp::proc::ClusterProcess;
use dvs_sim::timewarp::{
    run_timewarp, Checkpoint, CheckpointCadence, CheckpointDelta, DeltaError, FaultPlan,
    SchedulePolicy, StateSaving, TimeWarpConfig, Transport, TwMessage,
};
use dvs_verilog::Netlist;
use dvs_workloads::seqcirc::generate_counter;
use dvs_workloads::viterbi::{generate_viterbi, ViterbiParams};
use proptest::prelude::*;

/// Drive a two-cluster system by hand for `epochs` scheduling steps,
/// shuttling messages between the processes, and return the processes —
/// a realistic mid-run state with pending events, tombstones, rollback
/// history and outstanding output log entries.
fn pump_two_clusters<'a>(
    nl: &'a Netlist,
    plan: &'a ClusterPlan,
    stim_seed: u64,
    epochs: u32,
    state_saving: StateSaving,
) -> Vec<ClusterProcess<'a, 'a>> {
    let stim = VectorStimulus::from_netlist(nl, 10, stim_seed);
    let cycles = 30;
    let mut procs: Vec<ClusterProcess> = (0..2)
        .map(|c| ClusterProcess::new(nl, plan, c, stim.clone(), cycles, state_saving))
        .collect();
    let mut queues: Vec<Vec<TwMessage>> = vec![Vec::new(); 2];
    for step in 0..epochs {
        let c = (step % 2) as usize;
        // Deliver everything queued for `c` first, then advance one epoch.
        let inbox = std::mem::take(&mut queues[c]);
        let mut outbox: Vec<TwMessage> = Vec::new();
        let mut send = |m: TwMessage| outbox.push(m);
        for m in inbox {
            procs[c].handle_message(m, &mut send);
        }
        procs[c].process_next_epoch(u64::MAX, &mut send);
        for m in outbox {
            queues[m.dst as usize].push(m);
        }
    }
    procs
}

fn two_cluster_fixture() -> (Netlist, Vec<u32>) {
    let nl = elaborate(&generate_counter(6));
    let gb: Vec<u32> = (0..nl.gate_count()).map(|i| (i % 2) as u32).collect();
    (nl, gb)
}

/// Pump a two-cluster system and capture a per-cluster *sequence* of
/// evolving images, one every `stride` scheduling steps — the raw material
/// for base+delta chains with realistic edits (fossil drains, rollback
/// truncations, fresh appends) between consecutive rounds.
fn image_sequence<'a>(
    nl: &'a Netlist,
    plan: &'a ClusterPlan,
    stim_seed: u64,
    rounds: u32,
    stride: u32,
    state_saving: StateSaving,
) -> Vec<Vec<Checkpoint>> {
    let stim = VectorStimulus::from_netlist(nl, 10, stim_seed);
    let cycles = 30;
    let mut procs: Vec<ClusterProcess> = (0..2)
        .map(|c| ClusterProcess::new(nl, plan, c, stim.clone(), cycles, state_saving))
        .collect();
    let mut queues: Vec<Vec<TwMessage>> = vec![Vec::new(); 2];
    let mut images: Vec<Vec<Checkpoint>> = vec![Vec::new(); 2];
    let mut step = 0u32;
    for round in 0..rounds {
        for _ in 0..stride {
            let c = (step % 2) as usize;
            step += 1;
            let inbox = std::mem::take(&mut queues[c]);
            let mut outbox: Vec<TwMessage> = Vec::new();
            let mut send = |m: TwMessage| outbox.push(m);
            for m in inbox {
                procs[c].handle_message(m, &mut send);
            }
            procs[c].process_next_epoch(u64::MAX, &mut send);
            for m in outbox {
                queues[m.dst as usize].push(m);
            }
        }
        for (c, p) in procs.iter().enumerate() {
            images[c].push(p.checkpoint(round as u64));
        }
    }
    images
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `Checkpoint -> json -> Checkpoint` is lossless on realistic mid-run
    /// states, and capturing the same state twice yields byte-identical
    /// artifacts (unordered collections are sorted at capture).
    #[test]
    fn checkpoint_json_roundtrip_is_lossless(
        stim_seed in any::<u64>(),
        epochs in 1u32..40,
        gvt in 0u64..50,
        checkpoint_saving in any::<bool>(),
    ) {
        let (nl, gb) = two_cluster_fixture();
        let plan = ClusterPlan::new(&nl, &gb, 2);
        let saving = if checkpoint_saving {
            StateSaving::Checkpoint { interval: 4 }
        } else {
            StateSaving::IncrementalUndo
        };
        let procs = pump_two_clusters(&nl, &plan, stim_seed, epochs, saving);
        for p in &procs {
            let ck = p.checkpoint(gvt);
            let text = ck.to_json().emit().expect("emit");
            let back = Checkpoint::from_json(&Json::parse(&text).expect("parse"))
                .expect("checkpoint deserializes");
            prop_assert_eq!(&back, &ck, "round-trip lost information");
            // Determinism of capture and of serialization.
            let again = p.checkpoint(gvt);
            prop_assert_eq!(&again, &ck);
            prop_assert_eq!(again.to_json().emit().expect("emit"), text);
        }
    }

    /// Restoring a checkpoint yields a process whose own state image is
    /// identical to the one it was built from — capture/restore is a
    /// fixed point.
    #[test]
    fn restored_process_reproduces_its_image(
        stim_seed in any::<u64>(),
        epochs in 1u32..40,
    ) {
        let (nl, gb) = two_cluster_fixture();
        let plan = ClusterPlan::new(&nl, &gb, 2);
        let stim = VectorStimulus::from_netlist(&nl, 10, stim_seed);
        let procs = pump_two_clusters(&nl, &plan, stim_seed, epochs, StateSaving::IncrementalUndo);
        for p in &procs {
            let ck = p.checkpoint(7);
            let restored = ClusterProcess::from_checkpoint(
                &nl,
                &plan,
                stim.clone(),
                30,
                StateSaving::IncrementalUndo,
                &ck,
            );
            prop_assert_eq!(restored.checkpoint(7), ck);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `CheckpointDelta -> json -> CheckpointDelta` is lossless and
    /// byte-deterministic on realistic consecutive-round edits, and
    /// applying the decoded delta reproduces the next image exactly.
    #[test]
    fn delta_chain_roundtrip_is_bit_exact(
        stim_seed in any::<u64>(),
        stride in 1u32..8,
        checkpoint_saving in any::<bool>(),
    ) {
        let (nl, gb) = two_cluster_fixture();
        let plan = ClusterPlan::new(&nl, &gb, 2);
        let saving = if checkpoint_saving {
            StateSaving::Checkpoint { interval: 4 }
        } else {
            StateSaving::IncrementalUndo
        };
        let images = image_sequence(&nl, &plan, stim_seed, 6, stride, saving);
        for seq in &images {
            for pair in seq.windows(2) {
                let d = CheckpointDelta::between(&pair[0], &pair[1]);
                let text = d.to_json().emit().expect("emit");
                let back = CheckpointDelta::from_json(&Json::parse(&text).expect("parse"))
                    .expect("delta deserializes");
                prop_assert_eq!(&back, &d, "round-trip lost information");
                prop_assert_eq!(back.to_json().emit().expect("emit"), text);
                let next = pair[0].apply_delta(&back).expect("delta applies");
                prop_assert_eq!(&next, &pair[1], "decoded delta does not reproduce next image");
            }
        }
    }

    /// Restoring from base + replayed deltas equals restoring from the full
    /// image, at every round of the chain — through the actual process
    /// restore path, not just the image algebra.
    #[test]
    fn restore_from_chain_equals_restore_from_full_at_every_round(
        stim_seed in any::<u64>(),
        stride in 1u32..8,
    ) {
        let (nl, gb) = two_cluster_fixture();
        let plan = ClusterPlan::new(&nl, &gb, 2);
        let stim = VectorStimulus::from_netlist(&nl, 10, stim_seed);
        let images = image_sequence(&nl, &plan, stim_seed, 5, stride, StateSaving::IncrementalUndo);
        for seq in &images {
            let base = &seq[0];
            let deltas: Vec<CheckpointDelta> = seq
                .windows(2)
                .map(|pair| CheckpointDelta::between(&pair[0], &pair[1]))
                .collect();
            for (r, expected) in seq.iter().enumerate() {
                prop_assert_eq!(
                    &base.apply_chain(&deltas[..r]).expect("chain applies"),
                    expected,
                    "chain diverged at round {}", r
                );
                let (restored, image) = ClusterProcess::from_chain(
                    &nl,
                    &plan,
                    stim.clone(),
                    30,
                    StateSaving::IncrementalUndo,
                    base,
                    &deltas[..r],
                )
                .expect("process restores from chain");
                prop_assert_eq!(&image, expected);
                prop_assert_eq!(&restored.checkpoint(expected.gvt), expected);
            }
        }
    }
}

/// Broken chains fail with typed [`DeltaError`]s instead of panicking or
/// silently producing a wrong image: out-of-order and truncated chains are
/// chain mismatches, cross-cluster deltas are cluster mismatches, tampered
/// payloads are corruption, and a foreign schema is a schema mismatch.
#[test]
fn broken_delta_chains_fail_with_typed_errors() {
    let (nl, gb) = two_cluster_fixture();
    let plan = ClusterPlan::new(&nl, &gb, 2);
    let images = image_sequence(&nl, &plan, 5, 4, 3, StateSaving::IncrementalUndo);
    let seq = &images[0];
    let deltas: Vec<CheckpointDelta> = seq
        .windows(2)
        .map(|pair| CheckpointDelta::between(&pair[0], &pair[1]))
        .collect();

    // Out of order: the second delta applied straight to the base.
    let err = seq[0].apply_delta(&deltas[1]).unwrap_err();
    assert!(matches!(err, DeltaError::ChainMismatch { .. }), "{err}");

    // Truncated: a chain with the middle link missing.
    let gapped = [deltas[0].clone(), deltas[2].clone()];
    let err = seq[0].apply_chain(&gapped).unwrap_err();
    assert!(matches!(err, DeltaError::ChainMismatch { .. }), "{err}");

    // Cross-cluster: cluster 1's delta against cluster 0's base.
    let foreign = CheckpointDelta::between(&images[1][0], &images[1][1]);
    let err = seq[0].apply_delta(&foreign).unwrap_err();
    assert!(
        matches!(
            err,
            DeltaError::ClusterMismatch { .. } | DeltaError::ChainMismatch { .. }
        ),
        "{err}"
    );

    // Tampered payload: a log window that claims more history than exists.
    let mut corrupt = deltas[0].clone();
    corrupt.processed.drop_front = u32::MAX;
    let err = seq[0].apply_delta(&corrupt).unwrap_err();
    assert!(matches!(err, DeltaError::Corrupt(_)), "{err}");

    // Foreign schema version.
    let mut wrong_schema = deltas[0].clone();
    wrong_schema.schema = 999;
    let err = seq[0].apply_delta(&wrong_schema).unwrap_err();
    assert!(matches!(err, DeltaError::SchemaMismatch { .. }), "{err}");
}

/// Schema and kind are enforced on read: a tampered artifact is rejected
/// instead of silently misinterpreted.
#[test]
fn checkpoint_rejects_wrong_kind_and_schema() {
    let (nl, gb) = two_cluster_fixture();
    let plan = ClusterPlan::new(&nl, &gb, 2);
    let procs = pump_two_clusters(&nl, &plan, 1, 8, StateSaving::IncrementalUndo);
    let ck = procs[0].checkpoint(3);

    let mut wrong_kind = ck.to_json();
    if let Json::Object(members) = &mut wrong_kind {
        for (k, v) in members.iter_mut() {
            if k == "kind" {
                *v = Json::Str("flow_report".into());
            }
        }
    }
    assert!(Checkpoint::from_json(&wrong_kind).is_err());

    let mut wrong_schema = ck.to_json();
    if let Json::Object(members) = &mut wrong_schema {
        for (k, v) in members.iter_mut() {
            if k == "checkpoint_schema" {
                *v = Json::Int(999);
            }
        }
    }
    assert!(Checkpoint::from_json(&wrong_schema).is_err());
}

/// The satellite acceptance sweep: a crash-and-restore in the middle of a
/// deterministic run leaves every counter identical to the uninterrupted
/// run, for 16 seeds × all four schedule policies.
#[test]
fn mid_run_restore_is_invisible_for_sixteen_seeds_and_all_policies() {
    let src = generate_viterbi(&ViterbiParams::tiny());
    let nl = elaborate(&src);
    let part = partition_multiway(&nl, &MultiwayConfig::new(3, 20.0));
    let plan = ClusterPlan::new(&nl, &part.gate_blocks, 3);
    let stim = VectorStimulus::from_netlist(&nl, 10, 7);
    let delay = first_cut_channel(&plan).expect("cut channel");
    let policies = [
        SchedulePolicy::RoundRobin,
        SchedulePolicy::SeededRandom,
        SchedulePolicy::StragglerHeavy,
        SchedulePolicy::DelayChannel {
            src: delay.0,
            dst: delay.1,
        },
    ];
    for policy in policies {
        for seed in 0..16u64 {
            let base = TimeWarpConfig::builder()
                .transport(Transport::in_proc(seed, policy))
                .window(8)
                .epochs_per_quantum(2)
                .gvt_interval(1)
                .state_saving(StateSaving::IncrementalUndo)
                .build()
                .expect("valid config");
            let clean = run_timewarp(&nl, &plan, &stim, 20, &base).expect("clean run stalled");
            let cfg = TimeWarpConfig::builder()
                .transport(Transport::in_proc(seed, policy))
                .window(8)
                .epochs_per_quantum(2)
                .gvt_interval(1)
                .state_saving(StateSaving::IncrementalUndo)
                .fault(FaultPlan::crash((seed % 3) as u32, 20 + seed * 9))
                .build()
                .expect("valid config");
            let tw = run_timewarp(&nl, &plan, &stim, 20, &cfg).expect("crash run stalled");
            let label = format!("{} seed {seed}", policy.name());
            assert_eq!(tw.recovery.crashes, 1, "{label}: fault did not fire");
            assert_eq!(tw.stats, clean.stats, "{label}: stats diverged");
            assert_eq!(
                tw.cluster_stats, clean.cluster_stats,
                "{label}: cluster stats diverged"
            );
            assert_eq!(tw.values, clean.values, "{label}: values diverged");
            assert_eq!(tw.gvt_rounds, clean.gvt_rounds, "{label}: GVT diverged");
        }
    }
}

/// The delta-cadence leg of the sweep: with bases only every 4th GVT round
/// and deltas in between, a mid-window crash restores from base + replayed
/// deltas + input-log replay — and stays invisible across every policy.
/// Also pins that a cadence-4 run without faults equals a cadence-1 run:
/// the capture path is side-effect-free.
#[test]
fn mid_run_restore_with_delta_cadence_is_invisible() {
    let src = generate_viterbi(&ViterbiParams::tiny());
    let nl = elaborate(&src);
    let part = partition_multiway(&nl, &MultiwayConfig::new(3, 20.0));
    let plan = ClusterPlan::new(&nl, &part.gate_blocks, 3);
    let stim = VectorStimulus::from_netlist(&nl, 10, 7);
    let delay = first_cut_channel(&plan).expect("cut channel");
    let policies = [
        SchedulePolicy::RoundRobin,
        SchedulePolicy::SeededRandom,
        SchedulePolicy::StragglerHeavy,
        SchedulePolicy::DelayChannel {
            src: delay.0,
            dst: delay.1,
        },
    ];
    let build = |seed: u64, policy: SchedulePolicy, cadence: u32, fault: Option<FaultPlan>| {
        let mut b = TimeWarpConfig::builder()
            .transport(Transport::in_proc(seed, policy))
            .window(8)
            .epochs_per_quantum(2)
            .gvt_interval(1)
            .state_saving(StateSaving::IncrementalUndo)
            .checkpoint_cadence(CheckpointCadence::every_n_rounds(cadence));
        if let Some(fault) = fault {
            b = b.fault(fault);
        }
        b.build().expect("valid config")
    };
    for policy in policies {
        for seed in 0..8u64 {
            let plain = build(seed, policy, 1, None);
            let clean = run_timewarp(&nl, &plan, &stim, 20, &plain).expect("clean run stalled");
            let cadenced = build(seed, policy, 4, None);
            let quiet =
                run_timewarp(&nl, &plan, &stim, 20, &cadenced).expect("cadence run stalled");
            let label = format!("{} seed {seed}", policy.name());
            assert_eq!(quiet.stats, clean.stats, "{label}: cadence perturbed stats");
            assert_eq!(
                quiet.values, clean.values,
                "{label}: cadence perturbed values"
            );

            let faulty = build(
                seed,
                policy,
                4,
                Some(FaultPlan::crash((seed % 3) as u32, 20 + seed * 9)),
            );
            let tw = run_timewarp(&nl, &plan, &stim, 20, &faulty).expect("crash run stalled");
            assert_eq!(tw.recovery.crashes, 1, "{label}: fault did not fire");
            assert_eq!(tw.stats, clean.stats, "{label}: stats diverged");
            assert_eq!(
                tw.cluster_stats, clean.cluster_stats,
                "{label}: cluster stats diverged"
            );
            assert_eq!(tw.values, clean.values, "{label}: values diverged");
            assert_eq!(tw.gvt_rounds, clean.gvt_rounds, "{label}: GVT diverged");
            assert!(
                tw.recovery.checkpoint_bytes_delta > 0,
                "{label}: no delta bytes counted — cadence leg did not exercise deltas"
            );
        }
    }
}
