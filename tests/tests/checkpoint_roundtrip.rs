//! Checkpoint integrity: the GVT-round [`Checkpoint`] images that crash
//! recovery stands on must (a) survive JSON serialization losslessly,
//! (b) restore to a process whose state image is identical to the
//! original's, and (c) make mid-run crash-restore invisible — identical
//! counters to an uninterrupted run — across every schedule policy and a
//! spread of seeds.

use dvs_core::multiway::{partition_multiway, MultiwayConfig};
use dvs_core::{FromJson, Json, ToJson};
use dvs_integration_tests::elaborate;
use dvs_sim::cluster::ClusterPlan;
use dvs_sim::stimulus::VectorStimulus;
use dvs_sim::timewarp::dst::first_cut_channel;
use dvs_sim::timewarp::proc::ClusterProcess;
use dvs_sim::timewarp::{
    run_timewarp, Checkpoint, FaultPlan, SchedulePolicy, StateSaving, TimeWarpConfig, Transport,
    TwMessage,
};
use dvs_verilog::Netlist;
use dvs_workloads::seqcirc::generate_counter;
use dvs_workloads::viterbi::{generate_viterbi, ViterbiParams};
use proptest::prelude::*;

/// Drive a two-cluster system by hand for `epochs` scheduling steps,
/// shuttling messages between the processes, and return the processes —
/// a realistic mid-run state with pending events, tombstones, rollback
/// history and outstanding output log entries.
fn pump_two_clusters<'a>(
    nl: &'a Netlist,
    plan: &'a ClusterPlan,
    stim_seed: u64,
    epochs: u32,
    state_saving: StateSaving,
) -> Vec<ClusterProcess<'a, 'a>> {
    let stim = VectorStimulus::from_netlist(nl, 10, stim_seed);
    let cycles = 30;
    let mut procs: Vec<ClusterProcess> = (0..2)
        .map(|c| ClusterProcess::new(nl, plan, c, stim.clone(), cycles, state_saving))
        .collect();
    let mut queues: Vec<Vec<TwMessage>> = vec![Vec::new(); 2];
    for step in 0..epochs {
        let c = (step % 2) as usize;
        // Deliver everything queued for `c` first, then advance one epoch.
        let inbox = std::mem::take(&mut queues[c]);
        let mut outbox: Vec<TwMessage> = Vec::new();
        let mut send = |m: TwMessage| outbox.push(m);
        for m in inbox {
            procs[c].handle_message(m, &mut send);
        }
        procs[c].process_next_epoch(u64::MAX, &mut send);
        for m in outbox {
            queues[m.dst as usize].push(m);
        }
    }
    procs
}

fn two_cluster_fixture() -> (Netlist, Vec<u32>) {
    let nl = elaborate(&generate_counter(6));
    let gb: Vec<u32> = (0..nl.gate_count()).map(|i| (i % 2) as u32).collect();
    (nl, gb)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `Checkpoint -> json -> Checkpoint` is lossless on realistic mid-run
    /// states, and capturing the same state twice yields byte-identical
    /// artifacts (unordered collections are sorted at capture).
    #[test]
    fn checkpoint_json_roundtrip_is_lossless(
        stim_seed in any::<u64>(),
        epochs in 1u32..40,
        gvt in 0u64..50,
        checkpoint_saving in any::<bool>(),
    ) {
        let (nl, gb) = two_cluster_fixture();
        let plan = ClusterPlan::new(&nl, &gb, 2);
        let saving = if checkpoint_saving {
            StateSaving::Checkpoint { interval: 4 }
        } else {
            StateSaving::IncrementalUndo
        };
        let procs = pump_two_clusters(&nl, &plan, stim_seed, epochs, saving);
        for p in &procs {
            let ck = p.checkpoint(gvt);
            let text = ck.to_json().emit().expect("emit");
            let back = Checkpoint::from_json(&Json::parse(&text).expect("parse"))
                .expect("checkpoint deserializes");
            prop_assert_eq!(&back, &ck, "round-trip lost information");
            // Determinism of capture and of serialization.
            let again = p.checkpoint(gvt);
            prop_assert_eq!(&again, &ck);
            prop_assert_eq!(again.to_json().emit().expect("emit"), text);
        }
    }

    /// Restoring a checkpoint yields a process whose own state image is
    /// identical to the one it was built from — capture/restore is a
    /// fixed point.
    #[test]
    fn restored_process_reproduces_its_image(
        stim_seed in any::<u64>(),
        epochs in 1u32..40,
    ) {
        let (nl, gb) = two_cluster_fixture();
        let plan = ClusterPlan::new(&nl, &gb, 2);
        let stim = VectorStimulus::from_netlist(&nl, 10, stim_seed);
        let procs = pump_two_clusters(&nl, &plan, stim_seed, epochs, StateSaving::IncrementalUndo);
        for p in &procs {
            let ck = p.checkpoint(7);
            let restored = ClusterProcess::from_checkpoint(
                &nl,
                &plan,
                stim.clone(),
                30,
                StateSaving::IncrementalUndo,
                &ck,
            );
            prop_assert_eq!(restored.checkpoint(7), ck);
        }
    }
}

/// Schema and kind are enforced on read: a tampered artifact is rejected
/// instead of silently misinterpreted.
#[test]
fn checkpoint_rejects_wrong_kind_and_schema() {
    let (nl, gb) = two_cluster_fixture();
    let plan = ClusterPlan::new(&nl, &gb, 2);
    let procs = pump_two_clusters(&nl, &plan, 1, 8, StateSaving::IncrementalUndo);
    let ck = procs[0].checkpoint(3);

    let mut wrong_kind = ck.to_json();
    if let Json::Object(members) = &mut wrong_kind {
        for (k, v) in members.iter_mut() {
            if k == "kind" {
                *v = Json::Str("flow_report".into());
            }
        }
    }
    assert!(Checkpoint::from_json(&wrong_kind).is_err());

    let mut wrong_schema = ck.to_json();
    if let Json::Object(members) = &mut wrong_schema {
        for (k, v) in members.iter_mut() {
            if k == "checkpoint_schema" {
                *v = Json::Int(999);
            }
        }
    }
    assert!(Checkpoint::from_json(&wrong_schema).is_err());
}

/// The satellite acceptance sweep: a crash-and-restore in the middle of a
/// deterministic run leaves every counter identical to the uninterrupted
/// run, for 16 seeds × all four schedule policies.
#[test]
fn mid_run_restore_is_invisible_for_sixteen_seeds_and_all_policies() {
    let src = generate_viterbi(&ViterbiParams::tiny());
    let nl = elaborate(&src);
    let part = partition_multiway(&nl, &MultiwayConfig::new(3, 20.0));
    let plan = ClusterPlan::new(&nl, &part.gate_blocks, 3);
    let stim = VectorStimulus::from_netlist(&nl, 10, 7);
    let delay = first_cut_channel(&plan).expect("cut channel");
    let policies = [
        SchedulePolicy::RoundRobin,
        SchedulePolicy::SeededRandom,
        SchedulePolicy::StragglerHeavy,
        SchedulePolicy::DelayChannel {
            src: delay.0,
            dst: delay.1,
        },
    ];
    for policy in policies {
        for seed in 0..16u64 {
            let base = TimeWarpConfig::builder()
                .transport(Transport::in_proc(seed, policy))
                .window(8)
                .batch(2)
                .gvt_interval(1)
                .state_saving(StateSaving::IncrementalUndo)
                .build()
                .expect("valid config");
            let clean = run_timewarp(&nl, &plan, &stim, 20, &base).expect("clean run stalled");
            let cfg = TimeWarpConfig::builder()
                .transport(Transport::in_proc(seed, policy))
                .window(8)
                .batch(2)
                .gvt_interval(1)
                .state_saving(StateSaving::IncrementalUndo)
                .fault(FaultPlan::crash((seed % 3) as u32, 20 + seed * 9))
                .build()
                .expect("valid config");
            let tw = run_timewarp(&nl, &plan, &stim, 20, &cfg).expect("crash run stalled");
            let label = format!("{} seed {seed}", policy.name());
            assert_eq!(tw.recovery.crashes, 1, "{label}: fault did not fire");
            assert_eq!(tw.stats, clean.stats, "{label}: stats diverged");
            assert_eq!(
                tw.cluster_stats, clean.cluster_stats,
                "{label}: cluster stats diverged"
            );
            assert_eq!(tw.values, clean.values, "{label}: values diverged");
            assert_eq!(tw.gvt_rounds, clean.gvt_rounds, "{label}: GVT diverged");
        }
    }
}
