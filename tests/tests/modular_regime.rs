//! The modular-regime workload end to end: on the pipeline SoC, the
//! design-driven partitioner should match the flat baseline's cut at a
//! fraction of the cost, and the Time Warp kernel must stay bit-exact.

use dvs_core::multiway::{partition_multiway, MultiwayConfig};
use dvs_hmetis::{partition_kway, HmetisConfig};
use dvs_hypergraph::builder::{cut_size_gates, gate_level};
use dvs_integration_tests::elaborate;
use dvs_sim::cluster::ClusterPlan;
use dvs_sim::seq::{NullObserver, SeqSim, SimConfig};
use dvs_sim::stimulus::VectorStimulus;
use dvs_sim::timewarp::{run_timewarp, TimeWarpConfig};
use dvs_workloads::pipeline_soc::{generate_pipeline_soc, PipelineParams};

#[test]
fn design_driven_matches_flat_baseline_on_modular_interconnect() {
    let p = PipelineParams {
        stages: 8,
        width: 8,
        rounds: 2,
    };
    let src = generate_pipeline_soc(&p);
    let nl = elaborate(&src);
    let gh = gate_level(&nl);

    for k in [2u32, 4] {
        let dd = partition_multiway(&nl, &MultiwayConfig::new(k, 7.5));
        let hm = partition_kway(&gh.hg, k, &HmetisConfig::with_balance(7.5, 9));
        let hm_cut = cut_size_gates(&nl, &gh.gate_blocks(&hm));
        assert!(dd.balanced, "k={k}");
        // On modular interconnect the module-boundary cut is optimal: the
        // design-driven result must be within a small factor of (often
        // equal to) the flat baseline's.
        assert!(
            dd.cut <= hm_cut * 2,
            "k={k}: design-driven cut {} vs flat {}",
            dd.cut,
            hm_cut
        );
        // And both cuts must be on the order of the interface width, not
        // the stage internals.
        assert!(
            dd.cut <= ((k as u64) * (p.width as u64 + 4)) * 2,
            "k={k}: cut {} not interface-scale",
            dd.cut
        );
    }
}

#[test]
fn pipeline_timewarp_bit_exact_with_dffr() {
    // The pipeline uses `dffr` flops throughout; run it optimistically
    // across a real partition and compare with the sequential kernel.
    let src = generate_pipeline_soc(&PipelineParams::tiny());
    let nl = elaborate(&src);
    let part = partition_multiway(&nl, &MultiwayConfig::new(2, 15.0));
    let plan = ClusterPlan::new(&nl, &part.gate_blocks, 2);
    let stim = VectorStimulus::from_netlist(&nl, 12, 17);
    let cycles = 30;

    let mut seq = SeqSim::new(
        &nl,
        &SimConfig {
            cycles,
            init_zero: true,
        },
    );
    seq.run(&stim, cycles, &mut NullObserver);
    let tw = run_timewarp(&nl, &plan, &stim, cycles, &TimeWarpConfig::default())
        .expect("time warp run stalled");
    for (ni, net) in nl.nets.iter().enumerate() {
        if net.driver.is_some() {
            assert_eq!(
                tw.values[ni],
                seq.value(dvs_verilog::NetId(ni as u32)),
                "net `{}` differs",
                net.name
            );
        }
    }
}

#[test]
fn activity_metric_handles_pipeline() {
    // The pipeline's stages all churn equally; activity-weighted and
    // gate-count partitions should be comparably balanced, and the API must
    // hold its invariants on a multi-module design.
    use dvs_core::activity::{partition_multiway_activity, profile_gate_activity};
    let src = generate_pipeline_soc(&PipelineParams::tiny());
    let nl = elaborate(&src);
    let stim = VectorStimulus::from_netlist(&nl, 12, 1);
    let act = profile_gate_activity(&nl, &stim, 40);
    assert_eq!(act.len(), nl.gate_count());
    assert!(act.iter().all(|&a| a >= 1));
    let r = partition_multiway_activity(&nl, &MultiwayConfig::new(2, 20.0), &act);
    assert_eq!(r.gate_blocks.len(), nl.gate_count());
    assert!(r.balanced, "activity loads {:?}", r.loads);
    // Loads are in activity units and sum to the total activity.
    assert_eq!(r.loads.iter().sum::<u64>(), act.iter().sum::<u64>());
}
