//! End-to-end pipeline integration: generated workload → front end →
//! partitioner → cluster plan → simulators, across every generator.

use dvs_core::multiway::{partition_multiway, MultiwayConfig};
use dvs_hypergraph::builder::cut_size_gates;
use dvs_hypergraph::partition::BalanceConstraint;
use dvs_integration_tests::elaborate;
use dvs_sim::cluster::ClusterPlan;
use dvs_sim::cluster_model::{ClusterModel, ClusterModelConfig};
use dvs_sim::seq::{NullObserver, SeqSim, SimConfig};
use dvs_sim::stimulus::VectorStimulus;
use dvs_workloads::random_hier::{generate_random_hier, RandomHierParams};
use dvs_workloads::seqcirc::{generate_counter, generate_lfsr};
use dvs_workloads::viterbi::{generate_viterbi, ViterbiParams};

/// The whole flow on one source: parse, partition for (k, b), build the
/// cluster plan, run the modeled cluster, and check every invariant that
/// ties the layers together.
fn roundtrip(src: &str, k: u32, b: f64) {
    let nl = elaborate(src);
    nl.validate().expect("generated netlist is consistent");

    let result = partition_multiway(&nl, &MultiwayConfig::new(k, b));
    assert_eq!(result.gate_blocks.len(), nl.gate_count());

    // Load accounting agrees between partitioner and plan.
    let plan = ClusterPlan::new(&nl, &result.gate_blocks, k as usize);
    assert_eq!(plan.loads(), result.loads);
    assert_eq!(plan.loads().iter().sum::<u64>(), nl.gate_count() as u64);

    // Cut accounting: the partitioner's hyperedge cut matches a direct
    // recount; the plan's communication nets are the *driven* subset (a
    // primary input read from two blocks is a cut hyperedge but costs no
    // messages — stimulus is generated locally on every machine).
    assert_eq!(cut_size_gates(&nl, &result.gate_blocks), result.cut);
    assert!(plan.cut_nets() as u64 <= result.cut);

    if result.balanced {
        let c = BalanceConstraint::new(k, nl.gate_count() as u64, b);
        assert!(c.satisfied(&result.loads));
    }

    // The modeled cluster runs and reports sane numbers.
    let model = ClusterModel::new(&nl, plan, ClusterModelConfig::default());
    let stim = VectorStimulus::from_netlist(&nl, 10, 11);
    let run = model.run(&stim, 50);
    assert!(run.wall_seconds > 0.0);
    assert!(run.speedup > 0.0);
    assert_eq!(run.machine_events.iter().sum::<u64>(), run.stats.gate_evals);
    if k == 1 {
        assert_eq!(run.stats.messages, 0);
    }
}

#[test]
fn counter_roundtrip() {
    let src = generate_counter(16);
    roundtrip(&src, 2, 20.0);
    roundtrip(&src, 1, 10.0);
}

#[test]
fn lfsr_roundtrip() {
    let src = generate_lfsr(16, &[16, 14, 13, 11]);
    roundtrip(&src, 2, 25.0);
}

#[test]
fn viterbi_roundtrip_all_k() {
    let src = generate_viterbi(&ViterbiParams::tiny());
    for k in [1u32, 2, 3, 4] {
        roundtrip(&src, k, 15.0);
    }
}

#[test]
fn random_hierarchies_roundtrip() {
    for seed in [3u64, 17, 99] {
        let src = generate_random_hier(&RandomHierParams {
            seed,
            depth: 2,
            ..Default::default()
        });
        roundtrip(&src, 2, 20.0);
        roundtrip(&src, 3, 25.0);
    }
}

#[test]
fn writer_roundtrip_preserves_behaviour() {
    // Emitting the elaborated netlist as flat Verilog and re-elaborating
    // preserves structure up to constant-driver encoding (const gates are
    // emitted as `assign`, which re-elaborates to a buffer from a shared
    // constant — at most two extra gates), and behaves identically.
    let src = generate_viterbi(&ViterbiParams::tiny());
    let nl = elaborate(&src);
    let flat_src = dvs_verilog::writer::write_flat(&nl);
    let nl2 = elaborate(&flat_src);
    assert!(
        nl2.gate_count().abs_diff(nl.gate_count()) <= 2,
        "{} vs {}",
        nl.gate_count(),
        nl2.gate_count()
    );
    assert_eq!(nl2.primary_inputs.len(), nl.primary_inputs.len());
    assert_eq!(nl2.primary_outputs.len(), nl.primary_outputs.len());

    // Same stimulus (ports keep their net ids and order), same outputs.
    let run = |nl: &dvs_verilog::Netlist| -> Vec<dvs_sim::Logic> {
        let mut sim = SeqSim::new(nl, &SimConfig::default());
        let stim = VectorStimulus::from_netlist(nl, 10, 13);
        sim.run(&stim, 40, &mut NullObserver);
        nl.primary_outputs.iter().map(|&o| sim.value(o)).collect()
    };
    assert_eq!(run(&nl), run(&nl2));
}

#[test]
fn sequential_sim_agrees_across_generated_sources() {
    // The same circuit emitted twice (original and AST-writer round trip)
    // simulates to identical primary-output values.
    let p = RandomHierParams {
        seed: 5,
        dff_percent: 25,
        ..Default::default()
    };
    let src = generate_random_hier(&p);
    let unit = dvs_verilog::parse(&src).unwrap();
    let emitted = dvs_verilog::writer::write_source_unit(&unit);
    let nl1 = elaborate(&src);
    let nl2 = elaborate(&emitted);

    let run = |nl: &dvs_verilog::Netlist| -> Vec<dvs_sim::Logic> {
        let mut sim = SeqSim::new(nl, &SimConfig::default());
        let stim = VectorStimulus::from_netlist(nl, 10, 21);
        sim.run(&stim, 60, &mut NullObserver);
        nl.primary_outputs.iter().map(|&o| sim.value(o)).collect()
    };
    assert_eq!(run(&nl1), run(&nl2));
}
