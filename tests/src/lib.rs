//! Cross-crate integration tests for the DVS multiway-partitioning
//! reproduction. The tests live in `tests/tests/`; this library only hosts
//! shared helpers.

use dvs_verilog::Netlist;

/// Parse + elaborate, panicking with the error message on failure.
pub fn elaborate(src: &str) -> Netlist {
    dvs_verilog::parse_and_elaborate(src)
        .unwrap_or_else(|e| panic!("elaboration failed: {e}"))
        .into_netlist()
}
