//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository resolves dependencies without
//! network access, so the workspace vendors the small API subset it actually
//! uses: [`Rng::gen_range`] / [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] and [`seq::SliceRandom::shuffle`]. The generator behind
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — deterministic,
//! portable, and statistically solid for the partitioning heuristics and
//! property tests in this tree (it is not the upstream ChaCha12, so streams
//! differ from crates.io `rand`, which no test here relies on).

/// The raw generator interface: a source of uniformly random bits.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_incl: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_incl: Self) -> Self {
                let span = (high_incl as u64).wrapping_sub(low as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_incl: Self) -> Self {
                let span = (high_incl as $u).wrapping_sub(low as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);
impl_sample_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_incl: Self) -> Self {
        low + (high_incl - low) * unit_f64(rng)
    }
}

/// Unbiased uniform draw from `[0, n)` by rejection (`n >= 1`).
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n >= 1);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX % n) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

/// Uniform in `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + Bounded> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_range(rng, self.start, T::prev(self.end))
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_range(rng, lo, hi)
    }
}

/// Helper for the exclusive-range endpoint.
pub trait Bounded: Sized {
    fn prev(v: Self) -> Self;
}

macro_rules! impl_bounded {
    ($($t:ty),*) => {$(
        impl Bounded for $t {
            #[inline]
            fn prev(v: Self) -> Self { v - 1 }
        }
    )*};
}

impl_bounded!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Bounded for f64 {
    #[inline]
    fn prev(v: Self) -> Self {
        v // excl./incl. endpoint is indistinguishable for continuous draws
    }
}

/// The user-facing convenience methods, as in rand 0.8.
pub trait Rng: RngCore {
    #[inline]
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        unit_f64(self) < p
    }

    /// `gen::<bool>()`-style draws for the few call sites that want one.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Distribution of `gen()` — only the types this workspace draws.
pub trait Standard: Sized {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    #[inline]
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    #[inline]
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

/// Seedable construction, as in rand 0.8 (only `seed_from_u64` is used here).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic standard generator: xoshiro256++ (Blackman & Vigna),
    /// seeded through SplitMix64 as its authors recommend.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates), as in `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-8i64..=8);
            assert!((-8..=8).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
