//! Offline stand-in for the `crossbeam` crate.
//!
//! This workspace only uses `crossbeam::channel::{unbounded, Sender,
//! Receiver}` with `send` / `try_recv` / `recv`, which std's mpsc channel
//! covers one-for-one (each receiver here is owned by a single worker
//! thread, so mpsc's single-consumer restriction is never observable).

pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half of an unbounded channel. Clonable and `Send`.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        #[inline]
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg)
        }
    }

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        #[inline]
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        #[inline]
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }
    }

    /// An unbounded FIFO channel (per-sender FIFO order, as the Time Warp
    /// anti-message protocol requires).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_per_sender() {
            let (tx, rx) = unbounded::<u32>();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.try_recv().unwrap(), i);
            }
            assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
        }

        #[test]
        fn cross_thread() {
            let (tx, rx) = unbounded::<u32>();
            let t = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            t.join().unwrap();
            let mut got = Vec::new();
            while let Ok(v) = rx.try_recv() {
                got.push(v);
            }
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
