//! Offline stand-in for the `proptest` crate.
//!
//! Implements the API subset this workspace's property tests use: the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`,
//! integer-range, tuple, [`strategy::Just`], `any::<bool>()`, regex-string
//! and [`collection::vec`] strategies, weighted [`prop_oneof!`], and the
//! `prop_assert*` macros.
//!
//! Differences from upstream: cases are generated from a fixed per-test
//! seed (deterministic across runs and platforms), and failing inputs are
//! *not* shrunk — the panic message reports the case number instead so a
//! failure is still reproducible by rerunning the test.

pub mod config {
    /// Runner configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod test_runner {
    pub use crate::config::ProptestConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The per-case RNG handed to strategies.
    pub type TestRng = StdRng;

    /// Deterministic per-(test, case) RNG: FNV-1a over the test name mixed
    /// with the case index.
    pub fn case_rng(test_name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A generator of values for property tests. No shrinking.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Object-safe boxed form, used by `prop_oneof!` to mix strategy types.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

    /// A `&str` is a regex-flavoured string strategy, as in upstream
    /// proptest. The supported subset: literal characters, `\n` / `\t` /
    /// `\\` escapes, character classes with ranges (`[a-z0-9_]`, `[ -~]`),
    /// and `{m,n}` / `{n}` / `?` / `*` / `+` quantifiers.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    #[derive(Debug, Clone)]
    struct Atom {
        /// Inclusive char ranges this atom draws from.
        choices: Vec<(char, char)>,
        min: u32,
        max: u32,
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            '0' => '\0',
            other => other, // \\, \-, \], \[ …
        }
    }

    fn parse_pattern(pat: &str) -> Vec<Atom> {
        let mut atoms = Vec::new();
        let mut chars = pat.chars().peekable();
        while let Some(c) = chars.next() {
            let choices: Vec<(char, char)> = match c {
                '[' => {
                    let mut set = Vec::new();
                    let mut pending: Option<char> = None;
                    loop {
                        let Some(d) = chars.next() else {
                            panic!("unterminated character class in pattern {pat:?}");
                        };
                        match d {
                            ']' => {
                                if let Some(p) = pending {
                                    set.push((p, p));
                                }
                                break;
                            }
                            '-' if pending.is_some() && chars.peek() != Some(&']') => {
                                let lo = pending.take().expect("checked");
                                let mut hi = chars.next().expect("range end");
                                if hi == '\\' {
                                    hi = unescape(chars.next().expect("escape"));
                                }
                                assert!(lo <= hi, "inverted range in pattern {pat:?}");
                                set.push((lo, hi));
                            }
                            '\\' => {
                                if let Some(p) =
                                    pending.replace(unescape(chars.next().expect("escape")))
                                {
                                    set.push((p, p));
                                }
                            }
                            other => {
                                if let Some(p) = pending.replace(other) {
                                    set.push((p, p));
                                }
                            }
                        }
                    }
                    set
                }
                '\\' => {
                    let e = unescape(chars.next().expect("escape at end of pattern"));
                    vec![(e, e)]
                }
                other => vec![(other, other)],
            };
            // Optional quantifier.
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut body = String::new();
                    for d in chars.by_ref() {
                        if d == '}' {
                            break;
                        }
                        body.push(d);
                    }
                    match body.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse().expect("quantifier min"),
                            n.trim().parse().expect("quantifier max"),
                        ),
                        None => {
                            let n: u32 = body.trim().parse().expect("quantifier count");
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                _ => (1, 1),
            };
            atoms.push(Atom { choices, min, max });
        }
        atoms
    }

    fn generate_from_pattern(pat: &str, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(pat);
        let mut out = String::new();
        for atom in &atoms {
            let n = rng.gen_range(atom.min..=atom.max);
            let total: u32 = atom
                .choices
                .iter()
                .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
                .sum();
            for _ in 0..n {
                let mut idx = rng.gen_range(0..total);
                for &(lo, hi) in &atom.choices {
                    let span = hi as u32 - lo as u32 + 1;
                    if idx < span {
                        out.push(char::from_u32(lo as u32 + idx).expect("valid char"));
                        break;
                    }
                    idx -= span;
                }
            }
        }
        out
    }

    /// Weighted choice between boxed strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u32,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|&(w, _)| w).sum();
            assert!(total > 0, "prop_oneof! weights must not all be zero");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.gen_range(0..self.total);
            for (w, strat) in &self.arms {
                if pick < *w {
                    return strat.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights sum to total")
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, i8, i16, i32, i64);

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `vec(element, len_range)` — a vector whose length is drawn from
    /// `len_range` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "collection::vec: empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` namespace (`prop::collection::vec(..)`).
    pub mod prop {
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

/// Skip the current case when an assumption fails. Without shrinking there
/// is nothing smarter to do than move on to the next case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((
                ($weight) as u32,
                Box::new($strat) as $crate::strategy::BoxedStrategy<_>,
            )),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((
                1u32,
                Box::new($strat) as $crate::strategy::BoxedStrategy<_>,
            )),+
        ])
    };
}

/// The property-test entry point. Each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::config::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::config::ProptestConfig = $cfg;
            $(let $arg = &($strat);)+
            for __case in 0..config.cases {
                let mut __rng =
                    $crate::test_runner::case_rng(stringify!($name), __case);
                $(let $arg = $crate::strategy::Strategy::generate($arg, &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Pick {
        Small(u32),
        Tag,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(a in 3u32..17, b in -5i64..=5) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-5..=5).contains(&b));
        }

        #[test]
        fn tuples_and_maps(v in (0u64..10, 1u32..4).prop_map(|(x, y)| x + y as u64)) {
            prop_assert!(v < 13);
        }

        #[test]
        fn vec_lengths(items in prop::collection::vec(0u8..4, 2..9)) {
            prop_assert!((2..9).contains(&items.len()));
            prop_assert!(items.iter().all(|&i| i < 4));
        }

        #[test]
        fn oneof_weighted(p in prop_oneof![
            3 => (0u32..5).prop_map(Pick::Small),
            1 => Just(Pick::Tag),
        ]) {
            match p {
                Pick::Small(n) => prop_assert!(n < 5),
                Pick::Tag => {}
            }
        }

        #[test]
        fn regex_identifier(s in "[a-z][a-z0-9_]{0,6}") {
            prop_assert!(!s.is_empty() && s.len() <= 7);
            let mut cs = s.chars();
            prop_assert!(cs.next().expect("non-empty").is_ascii_lowercase());
            prop_assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }

        #[test]
        fn regex_printable(s in "[ -~\\n\\t]{0,40}") {
            prop_assert!(s.len() <= 40);
            prop_assert!(s.chars().all(|c| (' '..='~').contains(&c) || c == '\n' || c == '\t'));
        }

        #[test]
        fn any_bool_varies(x in any::<bool>(), y in any::<bool>()) {
            // Nothing to assert beyond type-checking; both branches occur
            // across cases but a single case can't observe that.
            let _ = (x, y);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let strat = (0u64..1000, 0u64..1000);
        let mut rng1 = crate::test_runner::case_rng("t", 7);
        let mut rng2 = crate::test_runner::case_rng("t", 7);
        use crate::strategy::Strategy;
        assert_eq!(strat.generate(&mut rng1), strat.generate(&mut rng2));
    }
}
