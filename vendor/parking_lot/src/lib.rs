//! Offline stand-in for `parking_lot`: the poison-free `Mutex` API subset
//! this workspace uses (`new`, `lock`, `try_lock`), layered on std's mutex.
//! Poisoning is erased by recovering the inner guard, matching parking_lot's
//! semantics of not propagating panics through locks.

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard, TryLockError};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::WouldBlock) => None,
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_try_lock() {
        let m = Mutex::new(5u32);
        {
            let g = m.lock();
            assert_eq!(*g, 5);
            assert!(m.try_lock().is_none(), "held lock blocks try_lock");
        }
        assert_eq!(*m.try_lock().expect("free lock"), 5);
    }

    #[test]
    fn into_inner() {
        let m = Mutex::new(String::from("x"));
        assert_eq!(m.into_inner(), "x");
    }
}
