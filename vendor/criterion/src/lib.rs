//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro/type surface this workspace's benches use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion::benchmark_group`],
//! `bench_function` / `bench_with_input`, [`BenchmarkId`], `Bencher::iter` —
//! with a simple time-budgeted mean-of-samples measurement instead of
//! criterion's statistical machinery. Output is one line per benchmark:
//! `group/id  time: <mean>  (<samples> samples)`.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs closures and accumulates timing samples.
pub struct Bencher {
    samples: Vec<Duration>,
    max_samples: usize,
    budget: Duration,
}

impl Bencher {
    /// Time `f` repeatedly: one warm-up call, then samples until the sample
    /// cap or the time budget is reached (always at least one sample).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        let start = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            if self.samples.len() >= self.max_samples || start.elapsed() >= self.budget {
                break;
            }
        }
    }

    fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.iter().sum::<Duration>() / self.samples.len() as u32
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    budget: Duration,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.budget = d;
        self
    }

    fn run_one(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::new(),
            max_samples: self.sample_size,
            budget: self.budget,
        };
        f(&mut b);
        println!(
            "{}/{}  time: {}  ({} samples)",
            self.name,
            id,
            human(b.mean()),
            b.samples.len()
        );
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id.id.clone(), |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run_one(&id.id.clone(), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            budget: Duration::from_millis(500),
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let name = id.id.clone();
        self.benchmark_group(name).bench_function(id, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags like `--bench`; nothing to parse
            // for this simple runner.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.finish();
        // warm-up + at least one timed sample
        assert!(runs >= 2);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::from_parameter(64).id, "64");
        assert_eq!(BenchmarkId::new("f", 2).id, "f/2");
    }
}
