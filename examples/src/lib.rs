//! Runnable example applications for the DVS multiway-partitioning library.
//!
//! Each binary exercises the public API on a realistic scenario:
//!
//! * `quickstart` — parse a small Verilog netlist, partition it, print the
//!   cut and loads;
//! * `viterbi_flow` — the paper's full methodology on a generated Viterbi
//!   decoder: pre-simulation sweep, (k, b) selection, full simulation;
//! * `presim_tuning` — brute force vs the Fig. 3 heuristic for choosing
//!   (k, b);
//! * `partition_compare` — design-driven vs hMetis vs pairing-strategy
//!   ablation on one circuit;
//! * `timewarp_demo` — the threaded Time Warp kernel racing the sequential
//!   simulator and validating bit-exact agreement.
//!
//! Run with `cargo run --release -p dvs-examples --bin <name>`.
