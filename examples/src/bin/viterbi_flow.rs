//! The paper's full methodology, end to end, on a generated Viterbi
//! decoder: generate the netlist → pre-simulate the (k, b) grid with the
//! multi-threaded search engine → pick the best partition → run the
//! full-length simulation on the modeled cluster.
//!
//! ```text
//! cargo run --release -p dvs-examples --bin viterbi_flow [k_max] [presim_vectors] [full_vectors] [jobs]
//! ```
//!
//! `jobs` sets the search thread count (0 = auto). The report is
//! bit-identical for every value; only the host wall times change.

use dvs_core::report::metrics_table;
use dvs_core::{FlowBuilder, Parallelism, Search};
use dvs_workloads::viterbi::{generate_viterbi, ViterbiParams};

fn main() {
    let mut args = std::env::args().skip(1);
    let k_max: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let presim_vectors: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(500);
    let full_vectors: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(5_000);
    let jobs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(0);
    let parallelism = match jobs {
        0 => Parallelism::Auto,
        1 => Parallelism::Serial,
        n => Parallelism::Threads(n),
    };

    println!("generating Viterbi decoder (paper-class scale)...");
    let params = ViterbiParams::paper_class();
    let src = generate_viterbi(&params);
    println!(
        "  {} states, {} banks, {} bytes of Verilog",
        params.states(),
        params.banks(),
        src.len()
    );

    println!(
        "pre-simulating {} (k, b) combinations with {presim_vectors} vectors each...",
        (k_max - 1) as usize * 6
    );
    let report = FlowBuilder::from_source(&src)
        .search(Search::BruteForce {
            ks: (2..=k_max).collect(),
            bs: vec![2.5, 5.0, 7.5, 10.0, 12.5, 15.0],
        })
        .presim_vectors(presim_vectors)
        .full_vectors(full_vectors)
        .parallelism(parallelism)
        .build()
        .and_then(|flow| flow.run())
        .unwrap_or_else(|err| {
            eprintln!("error: {err} (k_max must be at least 2)");
            std::process::exit(2);
        });

    println!("\npre-simulation grid (paper Table 3):");
    println!(
        "{:>3} {:>6} {:>9} {:>10} {:>8}",
        "k", "b", "cut", "time (s)", "speedup"
    );
    for p in &report.presim_points {
        println!(
            "{:>3} {:>6} {:>9} {:>10.2} {:>8.2}",
            p.k, p.b, p.cut, p.sim_seconds, p.speedup
        );
    }

    let c = &report.chosen;
    println!("\nchosen partition (paper Table 4): k={} b={}", c.k, c.b);
    println!("  cut            : {}", c.cut);
    println!("  presim speedup : {:.2}", c.speedup);
    println!("  messages       : {}", c.messages);
    println!("  rollbacks      : {}", c.rollbacks);

    println!("\nfull simulation ({full_vectors} vectors, modeled cluster):");
    println!("  sequential : {:.2} s", report.full.seq_seconds);
    println!("  parallel   : {:.2} s", report.full.wall_seconds);
    println!(
        "  speedup    : {:.2}  (paper: 1.91 at k=4)",
        report.full_speedup
    );

    println!(
        "\nhost-side flow metrics ({} search workers):",
        report.metrics.search_workers
    );
    print!("{}", metrics_table(&report.metrics).render());
}
