//! Choosing (k, b): brute force vs the paper's Fig. 3 heuristic.
//!
//! The paper notes that "it is not practical to try all combinations of k
//! and b in a realistic environment" and proposes a greedy search. This
//! example runs both on the same circuit and reports how many
//! pre-simulation runs the heuristic saves and how close its pick is.
//!
//! ```text
//! cargo run --release -p dvs-examples --bin presim_tuning
//! ```

use dvs_core::presim::{best_point, brute_force_presim, heuristic_presim, PresimConfig};
use dvs_workloads::viterbi::{generate_viterbi, ViterbiParams};
use std::time::Instant;

fn main() {
    let params = ViterbiParams {
        constraint_len: 6, // 32 states keeps this example snappy
        ..ViterbiParams::paper_class()
    };
    let src = generate_viterbi(&params);
    let nl = dvs_verilog::parse_and_elaborate(&src)
        .expect("decoder elaborates")
        .into_netlist();
    println!(
        "workload: {} gates, {} module instances",
        nl.gate_count(),
        nl.instance_count()
    );

    let mut cfg = PresimConfig::paper_defaults(nl.gate_count());
    cfg.vectors = 300;

    // Brute force: the full Table 3 sweep.
    let ks = [2u32, 3, 4];
    let bs = [7.5, 10.0, 12.5];
    let t0 = Instant::now();
    let grid = brute_force_presim(&nl, &ks, &bs, &cfg);
    let brute_time = t0.elapsed();
    let best = best_point(&grid).expect("non-empty grid");
    println!(
        "\nbrute force: {} runs in {:.2?} -> best k={} b={} speedup={:.2}",
        grid.len(),
        brute_time,
        best.k,
        best.b,
        best.speedup
    );

    // Heuristic: paper Fig. 3.
    let t0 = Instant::now();
    let (hbest, runs) = heuristic_presim(&nl, 4, &cfg);
    let heur_time = t0.elapsed();
    println!(
        "heuristic  : {} runs in {:.2?} -> best k={} b={} speedup={:.2}",
        runs, heur_time, hbest.k, hbest.b, hbest.speedup
    );

    let quality = hbest.speedup / best.speedup;
    println!(
        "\nheuristic found {:.0}% of the brute-force speedup using {} of {} runs",
        quality * 100.0,
        runs,
        grid.len()
    );
    if quality < 1.0 {
        println!("(the paper notes the heuristic \"could be trapped in the local minimum\")");
    }
}
