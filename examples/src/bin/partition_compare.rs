//! Partitioner comparison: design-driven (all four pairing strategies) vs
//! the hMetis-style multilevel baseline, on one circuit.
//!
//! ```text
//! cargo run --release -p dvs-examples --bin partition_compare [k] [b]
//! ```

use dvs_core::multiway::{partition_multiway, MultiwayConfig};
use dvs_core::pairing::PairingStrategy;
use dvs_hmetis::{partition_kway, HmetisConfig};
use dvs_hypergraph::builder::{cut_size_gates, gate_level};
use dvs_workloads::viterbi::{generate_viterbi, ViterbiParams};
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let k: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let b: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(7.5);

    let src = generate_viterbi(&ViterbiParams::paper_class());
    let nl = dvs_verilog::parse_and_elaborate(&src)
        .expect("decoder elaborates")
        .into_netlist();
    println!(
        "workload: {} gates, {} instances; partitioning k={k} b={b}%\n",
        nl.gate_count(),
        nl.instance_count()
    );
    println!(
        "{:<28} {:>8} {:>10} {:>12} {:>10}",
        "algorithm", "cut", "balanced", "time", "flattens"
    );

    for strategy in [
        PairingStrategy::Random,
        PairingStrategy::Exhaustive,
        PairingStrategy::CutBased,
        PairingStrategy::GainBased,
    ] {
        let cfg = MultiwayConfig {
            pairing: strategy,
            ..MultiwayConfig::new(k, b)
        };
        let t0 = Instant::now();
        let r = partition_multiway(&nl, &cfg);
        let dt = t0.elapsed();
        println!(
            "{:<28} {:>8} {:>10} {:>12.2?} {:>10}",
            format!("design-driven ({})", strategy.name()),
            r.cut,
            r.balanced,
            dt,
            r.flattens
        );
    }

    let gh = gate_level(&nl);
    let t0 = Instant::now();
    let hm = partition_kway(&gh.hg, k, &HmetisConfig::with_balance(b, 42));
    let dt = t0.elapsed();
    let cut = cut_size_gates(&nl, &gh.gate_blocks(&hm));
    println!(
        "{:<28} {:>8} {:>10} {:>12.2?} {:>10}",
        "hMetis-style (flat netlist)", cut, "yes", dt, "-"
    );

    println!(
        "\nNote: on this shuffle-structured trellis the flat multilevel baseline finds\n\
         smaller cuts by splitting module internals, while the design-driven algorithm\n\
         is orders of magnitude faster by partitioning {} super-gates instead of {} gates.\n\
         See EXPERIMENTS.md for the relation to the paper's Table 1/2 claims.",
        nl.instances[0].children.len(),
        nl.gate_count()
    );
}
