//! Quickstart: parse a gate-level Verilog netlist, partition it with the
//! design-driven multiway algorithm, and inspect the result.
//!
//! ```text
//! cargo run --release -p dvs-examples --bin quickstart
//! ```

use dvs_core::multiway::{partition_multiway, MultiwayConfig};
use dvs_verilog::stats::stats;

/// A small hierarchical design: a 4-stage pipeline of full adders.
const SRC: &str = r#"
module top(clk, a, b, y);
  input clk;
  input [3:0] a, b;
  output [3:0] y;
  wire [4:0] c;
  supply0 gnd;
  buf cb (c[0], gnd);
  stage s0 (clk, a[0], b[0], c[0], y[0], c[1]);
  stage s1 (clk, a[1], b[1], c[1], y[1], c[2]);
  stage s2 (clk, a[2], b[2], c[2], y[2], c[3]);
  stage s3 (clk, a[3], b[3], c[3], y[3], c[4]);
endmodule

module stage(clk, a, b, cin, sum, cout);
  input clk, a, b, cin;
  output sum, cout;
  wire s1, c1, c2, sraw;
  xor x1 (s1, a, b);
  xor x2 (sraw, s1, cin);
  and a1 (c1, a, b);
  and a2 (c2, s1, cin);
  or  o1 (cout, c1, c2);
  dff f  (sum, clk, sraw);
endmodule
"#;

fn main() {
    // 1. Parse and elaborate.
    let design = dvs_verilog::parse_and_elaborate(SRC).expect("valid Verilog");
    let nl = design.netlist();
    println!("design `{}`:\n{}", design.top(), stats(nl));

    // 2. Partition into 2 blocks with the paper's balance factor b = 10%.
    let cfg = MultiwayConfig::new(2, 10.0);
    let result = partition_multiway(nl, &cfg);

    println!("k = 2, b = 10%:");
    println!("  hyperedge cut : {}", result.cut);
    println!("  block loads   : {:?} gates", result.loads);
    println!("  balanced      : {}", result.balanced);
    println!("  flattenings   : {}", result.flattens);
    println!("  FM rounds     : {}", result.fm_rounds);

    // 3. Show which block each module instance landed in (majority vote of
    //    its gates).
    for inst_id in nl.subtree(dvs_verilog::netlist::InstId::ROOT) {
        if inst_id == dvs_verilog::netlist::InstId::ROOT {
            continue;
        }
        let votes: Vec<u32> = nl
            .gates
            .iter()
            .enumerate()
            .filter(|(_, g)| nl.is_ancestor(inst_id, g.owner))
            .map(|(gi, _)| result.gate_blocks[gi])
            .collect();
        if votes.is_empty() {
            continue;
        }
        let block0 = votes.iter().filter(|&&b| b == 0).count();
        println!(
            "  {:<12} -> block {} ({} of {} gates)",
            nl.instance_path(inst_id),
            if block0 * 2 >= votes.len() { 0 } else { 1 },
            block0.max(votes.len() - block0),
            votes.len()
        );
    }
}
