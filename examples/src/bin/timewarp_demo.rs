//! Clustered Time Warp demo: partition a circuit, run it optimistically,
//! validate bit-exact agreement with the sequential simulator, and report
//! protocol statistics.
//!
//! ```text
//! cargo run --release -p dvs-examples --bin timewarp_demo -- \
//!     [machines] [vectors] [--transport threads|inproc|process|tcp]
//! ```
//!
//! `--transport threads` (the default) runs one OS thread per cluster.
//! `--transport inproc` runs the deterministic single-threaded executor.
//! `--transport process` spawns one `tw_worker` OS process per cluster;
//! build it first (`cargo build --release -p dvs-bench --bin tw_worker`) so
//! the binary sits next to this demo, or point `DVS_TW_WORKER` at it.
//! `--transport tcp` binds a localhost listener and has each spawned
//! `tw_worker` dial back in over TCP (`tw_worker --connect`), exercising
//! the remote-worker wire path end to end on one machine.

use dvs_core::multiway::{partition_multiway, MultiwayConfig};
use dvs_sim::cluster::ClusterPlan;
use dvs_sim::seq::{NullObserver, SeqSim, SimConfig};
use dvs_sim::stimulus::VectorStimulus;
use dvs_sim::timewarp::{run_timewarp, SchedulePolicy, TimeWarpConfig, Transport};
use dvs_workloads::viterbi::{generate_viterbi, ViterbiParams};
use std::time::Instant;

/// Demo seed for the deterministic transports, so repeated runs are
/// byte-for-byte reproducible.
const SCHED_SEED: u64 = 2008;

fn parse_transport(name: &str) -> Transport {
    match name {
        "threads" => Transport::Threads,
        "inproc" => Transport::in_proc(SCHED_SEED, SchedulePolicy::RoundRobin),
        "process" => Transport::process(SCHED_SEED, SchedulePolicy::RoundRobin),
        "tcp" => Transport::tcp(SCHED_SEED, SchedulePolicy::RoundRobin),
        other => {
            eprintln!("unknown transport `{other}` (expected threads|inproc|process|tcp)");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut machines: usize = 4;
    let mut vectors: u64 = 300;
    let mut transport = Transport::Threads;
    let mut positional = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--transport" {
            let Some(name) = args.next() else {
                eprintln!("--transport needs a value (threads|inproc|process|tcp)");
                std::process::exit(2);
            };
            transport = parse_transport(&name);
        } else {
            match positional {
                0 => machines = arg.parse().unwrap_or(machines),
                _ => vectors = arg.parse().unwrap_or(vectors),
            }
            positional += 1;
        }
    }

    let params = ViterbiParams {
        constraint_len: 6,
        ..ViterbiParams::paper_class()
    };
    let src = generate_viterbi(&params);
    let nl = dvs_verilog::parse_and_elaborate(&src)
        .expect("decoder elaborates")
        .into_netlist();
    println!(
        "workload: {} gates; {machines} Time Warp clusters; {vectors} vectors",
        nl.gate_count()
    );

    // Partition with the paper's algorithm.
    let part = partition_multiway(&nl, &MultiwayConfig::new(machines as u32, 10.0));
    let plan = ClusterPlan::new(&nl, &part.gate_blocks, machines);
    println!(
        "partition: cut = {} nets, loads = {:?}",
        part.cut,
        plan.loads()
    );

    let stim = VectorStimulus::from_netlist(&nl, 10, 7);

    // Sequential reference.
    let t0 = Instant::now();
    let mut seq = SeqSim::new(
        &nl,
        &SimConfig {
            cycles: vectors,
            init_zero: true,
        },
    );
    seq.run(&stim, vectors, &mut NullObserver);
    let seq_time = t0.elapsed();
    println!(
        "\nsequential : {:.2?} ({} events, {} gate evals)",
        seq_time,
        seq.stats().events,
        seq.stats().gate_evals
    );

    // Optimistic parallel run over the selected transport.
    let mut twcfg = TimeWarpConfig::default();
    twcfg.transport = transport;
    let t0 = Instant::now();
    let tw = run_timewarp(&nl, &plan, &stim, vectors, &twcfg).unwrap_or_else(|e| {
        eprintln!("time warp run failed: {e}");
        std::process::exit(1);
    });
    let tw_time = t0.elapsed();
    println!(
        "time warp  : {:.2?} over `{}` transport ({} events incl. re-execution)",
        tw_time,
        twcfg.transport.name(),
        tw.stats.events
    );
    println!("  messages      : {}", tw.stats.messages);
    println!("  anti-messages : {}", tw.stats.anti_messages);
    println!("  rollbacks     : {}", tw.stats.rollbacks);
    println!("  rolled-back ev: {}", tw.stats.rolled_back_events);
    println!("  GVT rounds    : {}", tw.gvt_rounds);

    // Validate: every driven net must agree with the sequential result.
    let mut mismatches = 0usize;
    for (ni, net) in nl.nets.iter().enumerate() {
        if net.driver.is_some() && tw.values[ni] != seq.value(dvs_verilog::NetId(ni as u32)) {
            mismatches += 1;
        }
    }
    if mismatches == 0 {
        println!(
            "\nvalidation: PASS — all {} driven nets bit-exact",
            nl.net_count()
        );
    } else {
        println!("\nvalidation: FAIL — {mismatches} nets differ");
        std::process::exit(1);
    }

    let ratio = seq_time.as_secs_f64() / tw_time.as_secs_f64();
    println!(
        "wall-clock ratio sequential/TW: {ratio:.2} (small circuits are \
         communication-bound; see the cluster model for paper-scale projections)"
    );
}
