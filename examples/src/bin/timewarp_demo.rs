//! Threaded Clustered Time Warp demo: partition a circuit, run it
//! optimistically on worker threads, validate bit-exact agreement with the
//! sequential simulator, and report protocol statistics.
//!
//! ```text
//! cargo run --release -p dvs-examples --bin timewarp_demo [machines] [vectors]
//! ```

use dvs_core::multiway::{partition_multiway, MultiwayConfig};
use dvs_sim::cluster::ClusterPlan;
use dvs_sim::seq::{NullObserver, SeqSim, SimConfig};
use dvs_sim::stimulus::VectorStimulus;
use dvs_sim::timewarp::{run_timewarp, TimeWarpConfig};
use dvs_workloads::viterbi::{generate_viterbi, ViterbiParams};
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let machines: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let vectors: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(300);

    let params = ViterbiParams {
        constraint_len: 6,
        ..ViterbiParams::paper_class()
    };
    let src = generate_viterbi(&params);
    let nl = dvs_verilog::parse_and_elaborate(&src)
        .expect("decoder elaborates")
        .into_netlist();
    println!(
        "workload: {} gates; {machines} Time Warp clusters; {vectors} vectors",
        nl.gate_count()
    );

    // Partition with the paper's algorithm.
    let part = partition_multiway(&nl, &MultiwayConfig::new(machines as u32, 10.0));
    let plan = ClusterPlan::new(&nl, &part.gate_blocks, machines);
    println!(
        "partition: cut = {} nets, loads = {:?}",
        part.cut,
        plan.loads()
    );

    let stim = VectorStimulus::from_netlist(&nl, 10, 7);

    // Sequential reference.
    let t0 = Instant::now();
    let mut seq = SeqSim::new(
        &nl,
        &SimConfig {
            cycles: vectors,
            init_zero: true,
        },
    );
    seq.run(&stim, vectors, &mut NullObserver);
    let seq_time = t0.elapsed();
    println!(
        "\nsequential : {:.2?} ({} events, {} gate evals)",
        seq_time,
        seq.stats().events,
        seq.stats().gate_evals
    );

    // Optimistic parallel run.
    let t0 = Instant::now();
    let tw = run_timewarp(&nl, &plan, &stim, vectors, &TimeWarpConfig::default())
        .expect("time warp run stalled");
    let tw_time = t0.elapsed();
    println!(
        "time warp  : {:.2?} ({} events incl. re-execution)",
        tw_time, tw.stats.events
    );
    println!("  messages      : {}", tw.stats.messages);
    println!("  anti-messages : {}", tw.stats.anti_messages);
    println!("  rollbacks     : {}", tw.stats.rollbacks);
    println!("  rolled-back ev: {}", tw.stats.rolled_back_events);
    println!("  GVT rounds    : {}", tw.gvt_rounds);

    // Validate: every driven net must agree with the sequential result.
    let mut mismatches = 0usize;
    for (ni, net) in nl.nets.iter().enumerate() {
        if net.driver.is_some() && tw.values[ni] != seq.value(dvs_verilog::NetId(ni as u32)) {
            mismatches += 1;
        }
    }
    if mismatches == 0 {
        println!(
            "\nvalidation: PASS — all {} driven nets bit-exact",
            nl.net_count()
        );
    } else {
        println!("\nvalidation: FAIL — {mismatches} nets differ");
        std::process::exit(1);
    }

    let ratio = seq_time.as_secs_f64() / tw_time.as_secs_f64();
    println!(
        "wall-clock ratio sequential/TW: {ratio:.2} (small circuits are \
         communication-bound; see the cluster model for paper-scale projections)"
    );
}
