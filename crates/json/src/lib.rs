//! A dependency-free JSON value, emitter and parser.
//!
//! Run artifacts (`BENCH_*.json`, the `repro`/`fullscale_probe` outputs,
//! the perf-gate baseline) must be producible and consumable without any
//! external crate, and their bytes must be **deterministic**: the same
//! report serializes to the same string on every host and thread count, so
//! artifacts can be compared with `==` and gated in CI. To that end:
//!
//! * objects preserve **insertion order** (no hash-map reordering);
//! * integers and floats are distinct variants — counters round-trip
//!   exactly, and floats use Rust's shortest round-trip formatting
//!   (`{:?}`), which is bit-faithful through parse → emit;
//! * non-finite floats are rejected at emit time instead of producing
//!   invalid JSON;
//! * strings escape `"`, `\\` and control characters; non-ASCII text
//!   (e.g. module names) passes through as UTF-8, and the parser also
//!   accepts `\uXXXX` escapes including surrogate pairs.

use std::fmt;

/// Schema version stamped into every artifact this workspace emits.
/// Bump when a field is renamed, removed, or changes meaning; consumers
/// (the perf gate, plotting scripts) refuse mismatched versions.
pub const SCHEMA_VERSION: i64 = 1;

/// A JSON document. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// A number without fractional part or exponent in the source.
    Int(i64),
    /// A number with fractional part or exponent.
    Float(f64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

/// Why a document failed to parse or a value failed to convert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description, with byte offset for parse errors.
    pub msg: String,
}

impl JsonError {
    pub fn new(msg: impl Into<String>) -> Self {
        JsonError { msg: msg.into() }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Serialize a Rust value into a [`Json`] tree.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

/// Reconstruct a Rust value from a [`Json`] tree.
pub trait FromJson: Sized {
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

impl Json {
    /// Member lookup on an object; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Member lookup that reports the missing key as an error.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::new(format!("missing field `{key}`")))
    }

    pub fn as_i64(&self) -> Result<i64, JsonError> {
        match self {
            Json::Int(n) => Ok(*n),
            other => Err(JsonError::new(format!("expected integer, got {other:?}"))),
        }
    }

    pub fn as_u64(&self) -> Result<u64, JsonError> {
        // Values above `i64::MAX` are emitted as decimal strings (see
        // [`ObjBuilder::uint`]): a bare JSON literal that large would be
        // parsed as a lossy float by most readers, including this one.
        if let Json::Str(s) = self {
            if !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit()) {
                return s
                    .parse::<u64>()
                    .map_err(|_| JsonError::new(format!("unsigned integer {s:?} overflows u64")));
            }
        }
        let n = self.as_i64()?;
        u64::try_from(n).map_err(|_| JsonError::new(format!("expected unsigned integer, got {n}")))
    }

    pub fn as_usize(&self) -> Result<usize, JsonError> {
        let n = self.as_u64()?;
        usize::try_from(n).map_err(|_| JsonError::new(format!("integer {n} overflows usize")))
    }

    /// Accepts both numeric variants (an integer-valued float field may
    /// have been written without a fractional part by another producer).
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Float(x) => Ok(*x),
            Json::Int(n) => Ok(*n as f64),
            other => Err(JsonError::new(format!("expected number, got {other:?}"))),
        }
    }

    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::new(format!("expected bool, got {other:?}"))),
        }
    }

    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(JsonError::new(format!("expected string, got {other:?}"))),
        }
    }

    pub fn as_array(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Array(items) => Ok(items),
            other => Err(JsonError::new(format!("expected array, got {other:?}"))),
        }
    }

    pub fn as_object(&self) -> Result<&[(String, Json)], JsonError> {
        match self {
            Json::Object(members) => Ok(members),
            other => Err(JsonError::new(format!("expected object, got {other:?}"))),
        }
    }

    /// Compact single-line serialization. Deterministic: two equal values
    /// produce identical bytes. Errors on non-finite floats.
    pub fn emit(&self) -> Result<String, JsonError> {
        let mut out = String::new();
        self.write(&mut out, None, 0)?;
        Ok(out)
    }

    /// Pretty serialization with 2-space indentation and a trailing
    /// newline — the format of checked-in artifacts like the perf-gate
    /// baseline, where reviewable diffs matter.
    pub fn emit_pretty(&self) -> Result<String, JsonError> {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0)?;
        out.push('\n');
        Ok(out)
    }

    fn write(
        &self,
        out: &mut String,
        indent: Option<usize>,
        depth: usize,
    ) -> Result<(), JsonError> {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(x) => {
                if !x.is_finite() {
                    return Err(JsonError::new(format!("non-finite float {x} in document")));
                }
                // `{:?}` is Rust's shortest representation that parses back
                // to the same bits; it always includes `.0` or an exponent,
                // so the parser re-reads it as a float, never an int.
                out.push_str(&format!("{x:?}"));
            }
            Json::Str(s) => write_string(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1)?;
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Json::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1)?;
                }
                if !members.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
        Ok(())
    }

    /// Parse a JSON document. Rejects trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Nesting cap: artifacts are shallow; this only guards the recursive
/// parser against stack exhaustion on adversarial input.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("document nests too deeply"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected `[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected `{`")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected `:` after object key")?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected `\"`")?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of unescaped bytes in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            s.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.err("control character in string")),
            }
        }
    }

    /// Called with `pos` on the first hex digit of `\uXXXX` (the `\u` is
    /// consumed). Handles UTF-16 surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: a low surrogate escape must follow.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if !(0xDC00..0xE000).contains(&lo) {
                    return Err(self.err("invalid low surrogate"));
                }
                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                return char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"));
            }
            return Err(self.err("lone high surrogate"));
        }
        if (0xDC00..0xE000).contains(&hi) {
            return Err(self.err("lone low surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        if is_float {
            let x: f64 = text
                .parse()
                .map_err(|_| self.err("invalid float literal"))?;
            if !x.is_finite() {
                return Err(self.err("float literal overflows f64"));
            }
            Ok(Json::Float(x))
        } else {
            match text.parse::<i64>() {
                Ok(n) => Ok(Json::Int(n)),
                // Integers beyond i64 degrade to the nearest float, like
                // every mainstream JSON reader.
                Err(_) => {
                    let x: f64 = text
                        .parse()
                        .map_err(|_| self.err("invalid number literal"))?;
                    Ok(Json::Float(x))
                }
            }
        }
    }
}

/// Builder for deterministic objects: keys appear in call order.
#[derive(Debug, Clone, Default)]
pub struct ObjBuilder {
    members: Vec<(String, Json)>,
}

impl ObjBuilder {
    pub fn new() -> Self {
        ObjBuilder::default()
    }

    pub fn field(mut self, key: &str, value: Json) -> Self {
        self.members.push((key.to_string(), value));
        self
    }

    pub fn int(self, key: &str, value: impl Into<i64>) -> Self {
        self.field(key, Json::Int(value.into()))
    }

    /// Unsigned counter. Values that fit `i64` emit as plain JSON
    /// integers — the overwhelmingly common case, and the encoding every
    /// existing artifact uses, so canonical bytes are unchanged. Larger
    /// values (uniform-random `u64` seeds shipped to remote workers, for
    /// instance) fall back to a decimal string so the round-trip through
    /// [`Json::as_u64`] is lossless instead of silently saturating — a
    /// saturated seed made process workers simulate a *different stimulus*
    /// than their supervisor.
    pub fn uint(self, key: &str, value: u64) -> Self {
        self.field(key, uint_json(value))
    }

    pub fn float(self, key: &str, value: f64) -> Self {
        self.field(key, Json::Float(value))
    }

    pub fn str(self, key: &str, value: &str) -> Self {
        self.field(key, Json::Str(value.to_string()))
    }

    pub fn bool(self, key: &str, value: bool) -> Self {
        self.field(key, Json::Bool(value))
    }

    pub fn array(self, key: &str, items: Vec<Json>) -> Self {
        self.field(key, Json::Array(items))
    }

    pub fn build(self) -> Json {
        Json::Object(self.members)
    }
}

/// Lossless unsigned encoding: integer when it fits `i64`, decimal string
/// beyond (see [`ObjBuilder::uint`] for why).
pub fn uint_json(value: u64) -> Json {
    match i64::try_from(value) {
        Ok(i) => Json::Int(i),
        Err(_) => Json::Str(value.to_string()),
    }
}

/// Serialize a slice of unsigned counters.
pub fn uint_array(values: &[u64]) -> Json {
    Json::Array(values.iter().map(|&v| uint_json(v)).collect())
}

/// Deserialize a slice of unsigned counters.
pub fn uint_vec(v: &Json) -> Result<Vec<u64>, JsonError> {
    v.as_array()?.iter().map(|x| x.as_u64()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for (text, value) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("42", Json::Int(42)),
            ("-7", Json::Int(-7)),
            ("1.5", Json::Float(1.5)),
            ("-2.25e3", Json::Float(-2250.0)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            assert_eq!(Json::parse(text).unwrap(), value, "parse {text}");
            assert_eq!(
                Json::parse(&value.emit().unwrap()).unwrap(),
                value,
                "round-trip {text}"
            );
        }
    }

    #[test]
    fn int_and_float_are_distinct() {
        assert_eq!(Json::parse("3").unwrap(), Json::Int(3));
        assert_eq!(Json::parse("3.0").unwrap(), Json::Float(3.0));
        // Emitting keeps them distinct, so counters stay exact.
        assert_eq!(Json::Int(3).emit().unwrap(), "3");
        assert_eq!(Json::Float(3.0).emit().unwrap(), "3.0");
    }

    #[test]
    fn float_bits_survive_round_trip() {
        for x in [
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            38.9321,
            1e-300,
            123_456_789.123_456_78,
            -0.0,
        ] {
            let text = Json::Float(x).emit().unwrap();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {text}");
        }
    }

    #[test]
    fn non_finite_floats_are_rejected_at_emit() {
        for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(Json::Float(x).emit().is_err());
        }
    }

    #[test]
    fn string_escaping_round_trips() {
        for s in [
            "plain",
            "with \"quotes\" and \\backslash\\",
            "newline\nand\ttab",
            "módulo_ünïté_ΔΣ_模块",
            "control\u{1}char",
            "",
        ] {
            let v = Json::Str(s.to_string());
            let text = v.emit().unwrap();
            assert_eq!(Json::parse(&text).unwrap(), v, "via {text}");
        }
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(Json::parse(r#""éA""#).unwrap(), Json::Str("éA".into()));
        // Surrogate pair for U+1D11E (musical G clef).
        assert_eq!(
            Json::parse(r#""𝄞""#).unwrap(),
            Json::Str("\u{1D11E}".into())
        );
        assert!(Json::parse(r#""\ud834""#).is_err(), "lone high surrogate");
        assert!(Json::parse(r#""\udd1e""#).is_err(), "lone low surrogate");
    }

    #[test]
    fn object_preserves_insertion_order() {
        let v = ObjBuilder::new()
            .int("z", 1)
            .int("a", 2)
            .str("m", "x")
            .build();
        assert_eq!(v.emit().unwrap(), r#"{"z":1,"a":2,"m":"x"}"#);
        let back = Json::parse(&v.emit().unwrap()).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.emit().unwrap(), v.emit().unwrap());
    }

    #[test]
    fn nested_document_round_trips() {
        let text = r#"{"a":[1,2.5,{"b":null,"c":[true,false,"x"]}],"d":{}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.emit().unwrap(), text);
    }

    #[test]
    fn pretty_output_reparses_identically() {
        let v = ObjBuilder::new()
            .int("n", 3)
            .array("xs", vec![Json::Int(1), Json::Float(0.5)])
            .field("o", ObjBuilder::new().str("k", "v").build())
            .build();
        let pretty = v.emit_pretty().unwrap();
        assert!(pretty.contains("\n  "));
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn parse_errors_are_reported() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"unterminated",
            "{\"a\" 1}",
            "nul",
            "1 2",
            "{\"a\":1,}",
            "\u{1}",
        ] {
            assert!(Json::parse(bad).is_err(), "must reject {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_a_stack_overflow() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn big_integers_degrade_to_float() {
        let v = Json::parse("184467440737095516150").unwrap();
        assert!(matches!(v, Json::Float(_)));
    }

    #[test]
    fn accessors_check_types() {
        let v = Json::parse(r#"{"n":1,"s":"x","b":true,"a":[],"f":2.0}"#).unwrap();
        assert_eq!(v.field("n").unwrap().as_u64().unwrap(), 1);
        assert_eq!(v.field("s").unwrap().as_str().unwrap(), "x");
        assert!(v.field("b").unwrap().as_bool().unwrap());
        assert!(v.field("a").unwrap().as_array().unwrap().is_empty());
        assert_eq!(v.field("f").unwrap().as_f64().unwrap(), 2.0);
        assert!(v.field("missing").is_err());
        assert!(v.field("s").unwrap().as_u64().is_err());
        assert!(Json::Int(-1).as_u64().is_err());
    }

    #[test]
    fn uint_array_round_trips() {
        let xs = vec![0u64, 1, 99999];
        assert_eq!(uint_vec(&uint_array(&xs)).unwrap(), xs);
    }

    /// The full `u64` range must survive the codec — stimulus seeds are
    /// uniform random, so half of them exceed `i64::MAX`, and a saturated
    /// seed desynchronises remote workers from their supervisor.
    #[test]
    fn uint_round_trips_above_i64_max() {
        for v in [
            0u64,
            i64::MAX as u64,
            i64::MAX as u64 + 1,
            11601856998475820192,
            u64::MAX,
        ] {
            let j = ObjBuilder::new().uint("v", v).build();
            assert_eq!(j.field("v").unwrap().as_u64().unwrap(), v, "field {v}");
            if v <= i64::MAX as u64 {
                assert!(
                    matches!(j.field("v").unwrap(), Json::Int(_)),
                    "small values keep the integer encoding (artifact bytes)"
                );
            }
            assert_eq!(uint_vec(&uint_array(&[v])).unwrap(), vec![v], "array {v}");
        }
        // Emit/parse round trip: the string fallback survives real bytes.
        let j = ObjBuilder::new().uint("seed", u64::MAX).build();
        let back = Json::parse(&j.emit().unwrap()).unwrap();
        assert_eq!(back.field("seed").unwrap().as_u64().unwrap(), u64::MAX);
    }
}
