//! Property tests: the two event-queue implementations are observationally
//! equivalent, which is what lets the sequential kernel use the timing
//! wheel while Time Warp uses heaps.

use dvs_sim::wheel::{HeapQueue, NetEvent, TimingWheel};
use dvs_sim::Logic;
use dvs_verilog::NetId;
use proptest::prelude::*;

/// A randomized interleaving of pushes and epoch-pops. Pushed times are
/// kept ≥ the wheel's current epoch (the simulator invariant both queues
/// rely on).
#[derive(Debug, Clone)]
enum Op {
    /// Push an event `offset` ticks after the current epoch time.
    Push { offset: u64, net: u32 },
    /// Pop one epoch.
    PopEpoch,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u64..40, 0u32..16).prop_map(|(offset, net)| Op::Push { offset, net }),
        1 => Just(Op::PopEpoch),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn wheel_and_heap_pop_identical_epochs(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut wheel = TimingWheel::new(16);
        let mut heap = HeapQueue::new();
        // The heap has no notion of "now"; mirror the wheel's clock.
        let mut now = 0u64;
        let mut wheel_out: Vec<(u64, Vec<u32>)> = Vec::new();
        let mut heap_out: Vec<(u64, Vec<u32>)> = Vec::new();

        for op in &ops {
            match *op {
                Op::Push { offset, net } => {
                    let ev = NetEvent {
                        time: now + offset,
                        net: NetId(net),
                        value: Logic::One,
                    };
                    wheel.push(ev);
                    heap.push(ev);
                }
                Op::PopEpoch => {
                    let mut wbuf = Vec::new();
                    let wt = wheel.pop_epoch(&mut wbuf);
                    let mut hbuf = Vec::new();
                    let ht = heap.pop_epoch(&mut hbuf);
                    prop_assert_eq!(wt, ht, "epoch times diverge");
                    if let Some(t) = wt {
                        now = now.max(t + 1);
                        // Same multiset of nets per epoch (ordering within an
                        // epoch is implementation-defined).
                        let mut wn: Vec<u32> = wbuf.iter().map(|e| e.net.0).collect();
                        let mut hn: Vec<u32> = hbuf.iter().map(|e| e.net.0).collect();
                        wn.sort_unstable();
                        hn.sort_unstable();
                        wheel_out.push((t, wn));
                        heap_out.push((t, hn));
                    }
                }
            }
        }
        // Drain both to the end.
        loop {
            let mut wbuf = Vec::new();
            let wt = wheel.pop_epoch(&mut wbuf);
            let mut hbuf = Vec::new();
            let ht = heap.pop_epoch(&mut hbuf);
            prop_assert_eq!(wt, ht);
            match wt {
                None => break,
                Some(t) => {
                    let mut wn: Vec<u32> = wbuf.iter().map(|e| e.net.0).collect();
                    let mut hn: Vec<u32> = hbuf.iter().map(|e| e.net.0).collect();
                    wn.sort_unstable();
                    hn.sort_unstable();
                    wheel_out.push((t, wn));
                    heap_out.push((t, hn));
                }
            }
        }
        prop_assert_eq!(wheel_out, heap_out);
        prop_assert!(wheel.is_empty() && heap.is_empty());
    }

    /// Epoch times from either queue are strictly increasing.
    #[test]
    fn epochs_strictly_increase(times in prop::collection::vec(0u64..500, 1..80)) {
        let mut heap = HeapQueue::new();
        for &t in &times {
            heap.push(NetEvent { time: t, net: NetId(0), value: Logic::Zero });
        }
        let mut prev: Option<u64> = None;
        let mut buf = Vec::new();
        while let Some(t) = heap.pop_epoch(&mut buf) {
            if let Some(p) = prev {
                prop_assert!(t > p);
            }
            prev = Some(t);
            buf.clear();
        }
    }
}
