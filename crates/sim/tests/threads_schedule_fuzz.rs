//! Scheduler-noise fuzz suite for the real-thread Time Warp transport.
//!
//! The deterministic executor (`dst_schedule_fuzz`) proves the protocol
//! correct under *chosen* adversarial schedules; this suite attacks the
//! same property from the other side, with *real* OS-thread interleavings
//! perturbed by seeded jitter ([`TimeWarpConfig::thread_jitter`]): each
//! worker rolls a per-quantum chance to sleep tens of microseconds or
//! yield its timeslice, so quantum boundaries land in places the OS
//! scheduler would rarely pick on an idle machine — stragglers, bursty
//! channels, mid-window preemption. Whatever the interleaving, the final
//! state must match the sequential simulator on every driven net and
//! primary input.
//!
//! On failure the offending case (circuit, partition, jitter seed, kernel
//! knobs) is written to `target/tmp/threads_fuzz_failure_<test>_<hash>.txt`
//! — same dump convention as the DST fuzzers, and CI uploads the set.

use dvs_sim::cluster::ClusterPlan;
use dvs_sim::seq::{NullObserver, SeqSim, SimConfig};
use dvs_sim::stimulus::VectorStimulus;
use dvs_sim::timewarp::{run_timewarp, BatchPolicy, StateSaving, TimeWarpConfig, Transport};
use dvs_verilog::netlist::Netlist;
use dvs_verilog::parse_and_elaborate;
use dvs_workloads::seqcirc::{generate_counter, generate_lfsr};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Everything needed to replay one fuzz case.
#[derive(Debug, Clone)]
struct FuzzCase {
    counter_not_lfsr: bool,
    bits: u32,
    k: usize,
    part_seed: u64,
    stim_seed: u64,
    jitter_seed: u64,
    window: u64,
    batch: usize,
    checkpoint: bool,
    batching: bool,
    cycles: u64,
}

fn case_strategy() -> impl Strategy<Value = FuzzCase> {
    let circuit = (any::<bool>(), 2u32..6, 2usize..4, any::<u64>());
    let seeds = (any::<u64>(), any::<u64>());
    let kernel = (
        prop_oneof![Just(4u64), Just(16u64), Just(64u64)],
        prop_oneof![Just(1usize), Just(2usize), Just(16usize)],
        (any::<bool>(), any::<bool>()),
        10u64..30,
    );
    (circuit, seeds, kernel).prop_map(
        |(
            (counter_not_lfsr, bits, k, part_seed),
            (stim_seed, jitter_seed),
            (window, batch, (checkpoint, batching), cycles),
        )| FuzzCase {
            counter_not_lfsr,
            bits,
            k,
            part_seed,
            stim_seed,
            jitter_seed,
            window,
            batch,
            checkpoint,
            batching,
            cycles,
        },
    )
}

fn elaborate_case(case: &FuzzCase) -> Netlist {
    let src = if case.counter_not_lfsr {
        generate_counter(case.bits)
    } else {
        generate_lfsr(case.bits.max(2), &[case.bits.max(2), 1])
    };
    parse_and_elaborate(&src)
        .expect("generated circuit parses")
        .into_netlist()
}

/// A seeded random gate→cluster assignment with every cluster non-empty.
fn random_partition(nl: &Netlist, k: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = nl.gate_count();
    let mut gb: Vec<u32> = (0..n).map(|_| rng.gen_range(0..k as u32)).collect();
    for (i, slot) in gb.iter_mut().enumerate().take(k.min(n)) {
        *slot = i as u32; // guarantee non-empty clusters
    }
    gb
}

fn run_case(case: &FuzzCase) {
    let nl = elaborate_case(case);
    let gb = random_partition(&nl, case.k, case.part_seed);
    let plan = ClusterPlan::new(&nl, &gb, case.k);
    let stim = VectorStimulus::from_netlist(&nl, 10, case.stim_seed);

    let cfg = TimeWarpConfig::builder()
        .transport(Transport::Threads)
        .window(case.window)
        .epochs_per_quantum(case.batch)
        .message_batching(if case.batching {
            BatchPolicy::per_quantum()
        } else {
            BatchPolicy::Off
        })
        .thread_jitter(case.jitter_seed)
        .state_saving(if case.checkpoint {
            StateSaving::Checkpoint { interval: 4 }
        } else {
            StateSaving::IncrementalUndo
        })
        .build()
        .expect("valid config");

    let tw = run_timewarp(&nl, &plan, &stim, case.cycles, &cfg).expect("threads run failed");

    // Conservation: every message the clusters emitted was either shipped
    // into a channel or annihilated against its anti inside an unsent
    // buffer — batching may only change *how* messages travel, never lose
    // or duplicate one.
    let emitted = tw.stats.messages + tw.stats.anti_messages;
    assert_eq!(
        emitted,
        tw.recovery.messages_sent + tw.recovery.messages_folded,
        "emitted messages must equal shipped + folded (batching={})",
        case.batching
    );
    assert!(
        tw.recovery.frames_sent <= tw.recovery.messages_sent,
        "a frame carries at least one message"
    );
    if !case.batching {
        assert_eq!(tw.recovery.messages_folded, 0, "folding requires batching");
        assert_eq!(
            tw.recovery.frames_sent, tw.recovery.messages_sent,
            "unbatched sends ship one message per push"
        );
    }

    // Sequential equivalence on every driven net and primary input — the
    // jitter may change *when* rollbacks happen, never *what* converges.
    let scfg = SimConfig {
        cycles: case.cycles,
        init_zero: true,
    };
    let mut seq = SeqSim::new(&nl, &scfg);
    seq.run(&stim, case.cycles, &mut NullObserver);
    for (ni, net) in nl.nets.iter().enumerate() {
        let id = dvs_verilog::NetId(ni as u32);
        if net.driver.is_some() || nl.primary_inputs.contains(&id) {
            assert_eq!(
                tw.values[ni],
                seq.value(id),
                "net `{}` diverged from sequential under jitter seed {}",
                net.name,
                case.jitter_seed
            );
        }
    }
}

/// Run a case, dumping it on panic to a file whose name encodes the test
/// and a hash of the case — same convention as the DST fuzzers, so CI can
/// upload every repro without collisions.
fn run_case_with_dump(case: &FuzzCase, test: &str) {
    use std::hash::{Hash, Hasher};
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_case(case)));
    if let Err(payload) = result {
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("<non-string panic>");
        let dump = format!("failing threads fuzz case ({test}):\n{case:#?}\n\npanic: {msg}\n");
        let mut h = std::collections::hash_map::DefaultHasher::new();
        format!("{case:?}").hash(&mut h);
        let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
        let _ = std::fs::create_dir_all(dir);
        let name = format!("threads_fuzz_failure_{test}_{:016x}.txt", h.finish());
        let _ = std::fs::write(dir.join(name), &dump);
        eprintln!("{dump}");
        std::panic::resume_unwind(payload);
    }
}

proptest! {
    // Real threads are slower than the deterministic executor, so the case
    // count is deliberately modest; the DST sweep covers schedule *space*,
    // this one covers physical interleavings.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn jittered_threads_match_sequential(case in case_strategy()) {
        run_case_with_dump(&case, "jittered_threads");
    }
}

/// A fixed case across several jitter seeds — a deterministic, always-run
/// complement to the random sweep (and a regression anchor if the jitter
/// knob's seeding scheme changes).
#[test]
fn fixed_case_across_jitter_seeds() {
    for jitter_seed in [1u64, 0x00FF_00FF, u64::MAX] {
        for batching in [false, true] {
            let case = FuzzCase {
                counter_not_lfsr: true,
                bits: 4,
                k: 3,
                part_seed: 11,
                stim_seed: 22,
                jitter_seed,
                window: 8,
                batch: 2,
                checkpoint: false,
                batching,
                cycles: 25,
            };
            run_case_with_dump(&case, "fixed_case_across_jitter_seeds");
        }
    }
}
