//! The decisive Time Warp correctness property: for any partition of any
//! circuit, the optimistic parallel kernel must finish in exactly the state
//! the sequential kernel reaches — rollbacks, anti-messages and all.

use dvs_sim::cluster::ClusterPlan;
use dvs_sim::seq::{NullObserver, SeqSim, SimConfig};
use dvs_sim::stimulus::VectorStimulus;
use dvs_sim::timewarp::{run_timewarp, FaultPlan, StateSaving, TimeWarpConfig};
use dvs_verilog::netlist::Netlist;
use dvs_verilog::parse_and_elaborate;

/// Run both kernels and compare every driven net's final value.
fn assert_tw_matches_seq(nl: &Netlist, gate_blocks: &[u32], k: usize, cycles: u64, seed: u64) {
    let stim = VectorStimulus::from_netlist(nl, 10, seed);

    let cfg = SimConfig {
        cycles,
        init_zero: true,
    };
    let mut seq = SeqSim::new(nl, &cfg);
    seq.run(&stim, cycles, &mut NullObserver);

    let plan = ClusterPlan::new(nl, gate_blocks, k);
    let tw =
        run_timewarp(nl, &plan, &stim, cycles, &TimeWarpConfig::default()).expect("run stalled");

    for (ni, net) in nl.nets.iter().enumerate() {
        if net.driver.is_some() || nl.primary_inputs.contains(&dvs_verilog::NetId(ni as u32)) {
            assert_eq!(
                tw.values[ni],
                seq.value(dvs_verilog::NetId(ni as u32)),
                "net `{}` differs (k={k}, seed={seed})",
                net.name
            );
        }
    }
    // Sanity on bookkeeping.
    assert!(
        tw.stats.events >= seq.stats().events,
        "TW reprocesses, never skips"
    );
}

/// A sequential circuit with cross-partition feedback: a 4-bit ripple
/// counter plus decode logic.
const COUNTER: &str = r#"
    module top(clk, y);
      input clk; output y;
      wire q0, q1, q2, q3, n0, n1, n2, n3;
      wire t1, t2, c1, c2;
      not i0 (n0, q0);
      dff f0 (q0, clk, n0);
      xor x1 (t1, q1, q0);
      dff f1 (q1, clk, t1);
      and a1 (c1, q1, q0);
      xor x2 (t2, q2, c1);
      dff f2 (q2, clk, t2);
      and a2 (c2, q2, c1);
      wire t3;
      xor x3 (t3, q3, c2);
      dff f3 (q3, clk, t3);
      and yd (y, q3, q1);
    endmodule
"#;

/// Combinational network with reconvergent fanout.
const RECONVERGE: &str = r#"
    module top(a, b, c, d, y, z);
      input a, b, c, d; output y, z;
      wire w1, w2, w3, w4, w5;
      and g1 (w1, a, b);
      or  g2 (w2, c, d);
      xor g3 (w3, w1, w2);
      nand g4 (w4, w1, w3);
      nor g5 (w5, w2, w3);
      xnor g6 (y, w4, w5);
      not g7 (z, w3);
    endmodule
"#;

fn round_robin(nl: &Netlist, k: usize) -> Vec<u32> {
    (0..nl.gate_count()).map(|i| (i % k) as u32).collect()
}

fn contiguous(nl: &Netlist, k: usize) -> Vec<u32> {
    let n = nl.gate_count();
    (0..n).map(|i| ((i * k) / n) as u32).collect()
}

#[test]
fn counter_two_clusters_contiguous() {
    let nl = parse_and_elaborate(COUNTER).unwrap().into_netlist();
    let gb = contiguous(&nl, 2);
    assert_tw_matches_seq(&nl, &gb, 2, 60, 1);
}

#[test]
fn counter_two_clusters_round_robin() {
    // Round-robin maximizes the cut: heavy messaging and rollback pressure.
    let nl = parse_and_elaborate(COUNTER).unwrap().into_netlist();
    let gb = round_robin(&nl, 2);
    assert_tw_matches_seq(&nl, &gb, 2, 60, 2);
}

#[test]
fn counter_four_clusters() {
    let nl = parse_and_elaborate(COUNTER).unwrap().into_netlist();
    let gb = round_robin(&nl, 4);
    assert_tw_matches_seq(&nl, &gb, 4, 50, 3);
}

#[test]
fn combinational_three_clusters() {
    let nl = parse_and_elaborate(RECONVERGE).unwrap().into_netlist();
    let gb = round_robin(&nl, 3);
    assert_tw_matches_seq(&nl, &gb, 3, 80, 4);
}

#[test]
fn single_cluster_trivially_matches() {
    let nl = parse_and_elaborate(COUNTER).unwrap().into_netlist();
    let gb = vec![0u32; nl.gate_count()];
    assert_tw_matches_seq(&nl, &gb, 1, 40, 5);
}

#[test]
fn many_seeds_and_splits() {
    let nl = parse_and_elaborate(COUNTER).unwrap().into_netlist();
    for seed in 10..16 {
        for k in [2usize, 3] {
            let gb = if seed % 2 == 0 {
                contiguous(&nl, k)
            } else {
                round_robin(&nl, k)
            };
            assert_tw_matches_seq(&nl, &gb, k, 30, seed);
        }
    }
}

#[test]
fn tight_window_still_correct() {
    // A tiny optimism window forces lock-step progress; correctness must be
    // unaffected.
    let nl = parse_and_elaborate(COUNTER).unwrap().into_netlist();
    let gb = round_robin(&nl, 2);
    let stim = VectorStimulus::from_netlist(&nl, 10, 6);
    let cycles = 40;

    let mut seq = SeqSim::new(
        &nl,
        &SimConfig {
            cycles,
            init_zero: true,
        },
    );
    seq.run(&stim, cycles, &mut NullObserver);

    let plan = ClusterPlan::new(&nl, &gb, 2);
    let cfg = TimeWarpConfig::builder()
        .window(8)
        .epochs_per_quantum(2)
        .gvt_interval(1)
        .state_saving(StateSaving::IncrementalUndo)
        .build()
        .expect("valid config");
    let tw = run_timewarp(&nl, &plan, &stim, cycles, &cfg).expect("run stalled");
    for (ni, net) in nl.nets.iter().enumerate() {
        if net.driver.is_some() {
            assert_eq!(
                tw.values[ni],
                seq.value(dvs_verilog::NetId(ni as u32)),
                "net `{}` differs under tight window",
                net.name
            );
        }
    }
    assert!(tw.gvt_rounds > 0, "GVT must advance");
}

/// A resettable counter whose reset pulse is derived from the count itself
/// (self-clearing), with the reset logic and the counter split across
/// clusters — asynchronous resets must survive rollback too.
const RESET_COUNTER: &str = r#"
    module top(clk, en, y);
      input clk, en; output y;
      wire q0, q1, q2, n0, t1, c1, rst;
      not i0 (n0, q0);
      dffr f0 (q0, clk, rst, n0);
      xor x1 (t1, q1, q0);
      dffr f1 (q1, clk, rst, t1);
      and a1 (c1, q1, q0);
      wire t2;
      xor x2 (t2, q2, c1);
      dffr f2 (q2, clk, rst, t2);
      and rg (rst, q2, en);
      and yg (y, q1, q0);
    endmodule
"#;

#[test]
fn async_reset_across_clusters() {
    let nl = parse_and_elaborate(RESET_COUNTER).unwrap().into_netlist();
    for (k, seed) in [(2usize, 11u64), (3, 12), (2, 13)] {
        let gb = round_robin(&nl, k);
        assert_tw_matches_seq(&nl, &gb, k, 60, seed);
    }
}

#[test]
fn checkpoint_state_saving_matches_incremental() {
    // Both state-saving strategies must converge to the sequential result,
    // across checkpoint intervals that force frequent and rare coast-
    // forwards.
    let nl = parse_and_elaborate(COUNTER).unwrap().into_netlist();
    let gb = round_robin(&nl, 2);
    let plan = ClusterPlan::new(&nl, &gb, 2);
    let stim = VectorStimulus::from_netlist(&nl, 10, 21);
    let cycles = 50;

    let mut seq = SeqSim::new(
        &nl,
        &SimConfig {
            cycles,
            init_zero: true,
        },
    );
    seq.run(&stim, cycles, &mut NullObserver);

    for interval in [1u32, 4, 32, 1000] {
        let cfg = TimeWarpConfig::builder()
            .state_saving(StateSaving::Checkpoint { interval })
            .build()
            .expect("valid config");
        let tw = run_timewarp(&nl, &plan, &stim, cycles, &cfg).expect("run stalled");
        for (ni, net) in nl.nets.iter().enumerate() {
            if net.driver.is_some() {
                assert_eq!(
                    tw.values[ni],
                    seq.value(dvs_verilog::NetId(ni as u32)),
                    "net `{}` differs (checkpoint interval {interval})",
                    net.name
                );
            }
        }
    }
}

#[test]
fn checkpoint_mode_with_reset_circuit() {
    let nl = parse_and_elaborate(RESET_COUNTER).unwrap().into_netlist();
    let gb = round_robin(&nl, 3);
    let plan = ClusterPlan::new(&nl, &gb, 3);
    let stim = VectorStimulus::from_netlist(&nl, 10, 31);
    let cycles = 40;
    let mut seq = SeqSim::new(
        &nl,
        &SimConfig {
            cycles,
            init_zero: true,
        },
    );
    seq.run(&stim, cycles, &mut NullObserver);
    let cfg = TimeWarpConfig::builder()
        .state_saving(StateSaving::Checkpoint { interval: 8 })
        .build()
        .expect("valid config");
    let tw = run_timewarp(&nl, &plan, &stim, cycles, &cfg).expect("run stalled");
    for (ni, net) in nl.nets.iter().enumerate() {
        if net.driver.is_some() {
            assert_eq!(
                tw.values[ni],
                seq.value(dvs_verilog::NetId(ni as u32)),
                "net `{}` differs",
                net.name
            );
        }
    }
}

/// Acceptance criterion for crash-fault tolerance in Threads mode: a worker
/// panicked by the injector is restarted by the supervisor and the run
/// still converges to the sequential final state, with the recovery
/// provenance reporting the crash.
#[test]
fn threads_mode_recovers_from_injected_panic() {
    let nl = parse_and_elaborate(COUNTER).unwrap().into_netlist();
    let gb = round_robin(&nl, 2);
    let plan = ClusterPlan::new(&nl, &gb, 2);
    let stim = VectorStimulus::from_netlist(&nl, 10, 41);
    let cycles = 50;

    let mut seq = SeqSim::new(
        &nl,
        &SimConfig {
            cycles,
            init_zero: true,
        },
    );
    seq.run(&stim, cycles, &mut NullObserver);

    for (victim, quantum) in [(0u32, 1u64), (1, 3), (0, 20)] {
        let cfg = TimeWarpConfig::builder()
            .fault(FaultPlan::crash(victim, quantum))
            .build()
            .expect("valid config");
        let tw = run_timewarp(&nl, &plan, &stim, cycles, &cfg).expect("run stalled");
        assert_eq!(tw.recovery.crashes, 1, "injected panic did not fire");
        assert_eq!(tw.recovery.restarts, 1, "supervisor did not restart");
        assert!(!tw.recovery.degraded);
        for (ni, net) in nl.nets.iter().enumerate() {
            if net.driver.is_some() {
                assert_eq!(
                    tw.values[ni],
                    seq.value(dvs_verilog::NetId(ni as u32)),
                    "net `{}` differs after panic recovery ({victim}@{quantum})",
                    net.name
                );
            }
        }
    }
}

/// Exhausting the threaded supervisor's restart budget falls back to the
/// sequential simulator: correct result, `degraded = true`, no error.
#[test]
fn threads_mode_degrades_after_budget_exhaustion() {
    let nl = parse_and_elaborate(COUNTER).unwrap().into_netlist();
    let gb = round_robin(&nl, 2);
    let plan = ClusterPlan::new(&nl, &gb, 2);
    let stim = VectorStimulus::from_netlist(&nl, 10, 43);
    let cycles = 40;

    let mut seq = SeqSim::new(
        &nl,
        &SimConfig {
            cycles,
            init_zero: true,
        },
    );
    seq.run(&stim, cycles, &mut NullObserver);

    // The worker dies at quantum 1 on every incarnation: with a budget of
    // `max_restarts` crashes already spent, one more exhausts it.
    let cfg = TimeWarpConfig::builder()
        .fault(FaultPlan {
            crash_at: Some((1, 1)),
            crashes: 3,
            max_restarts: 2,
            corrupt_restores: 0,
        })
        .build()
        .expect("valid config");
    let tw = run_timewarp(&nl, &plan, &stim, cycles, &cfg).expect("run stalled");
    assert!(tw.recovery.degraded, "budget exhaustion must degrade");
    assert_eq!(tw.recovery.crashes, 3);
    assert_eq!(tw.recovery.restarts, 2);
    for (ni, net) in nl.nets.iter().enumerate() {
        if net.driver.is_some() {
            assert_eq!(
                tw.values[ni],
                seq.value(dvs_verilog::NetId(ni as u32)),
                "net `{}` differs in degraded run",
                net.name
            );
        }
    }
}

#[test]
fn stats_are_plausible() {
    let nl = parse_and_elaborate(COUNTER).unwrap().into_netlist();
    let gb = round_robin(&nl, 2);
    let stim = VectorStimulus::from_netlist(&nl, 10, 7);
    let plan = ClusterPlan::new(&nl, &gb, 2);
    let tw = run_timewarp(&nl, &plan, &stim, 50, &TimeWarpConfig::default()).expect("run stalled");
    assert!(tw.stats.messages > 0, "cut circuit must communicate");
    assert_eq!(tw.cluster_stats.len(), 2);
    // Anti-messages only exist if rollbacks happened.
    if tw.stats.anti_messages > 0 {
        assert!(tw.stats.rollbacks > 0);
    }
    assert!(tw.stats.gate_evals > 0);
}
