//! Schedule-fuzz suite for the deterministic Time Warp executor.
//!
//! Random seeded schedules over random small `seqcirc` circuits and random
//! partitions must (a) finish in exactly the sequential simulator's state,
//! (b) replay to identical statistics for the same seed, and (c) never
//! violate the optimistic protocol's invariants, which the executor asserts
//! at every decision when checking is enabled:
//!
//! * no event below GVT is processed and no message below GVT is delivered;
//! * annihilation leaves no orphan tombstones at quiescence;
//! * fossil collection never reclaims history at or above GVT.
//!
//! On failure the offending case (circuit, partition, schedule, seeds) is
//! written to `target/tmp/dst_fuzz_failure_<test>_<case-hash>.txt` — one
//! file per test and case, so concurrently failing tests (or several
//! shrunk cases from one proptest run) never clobber each other's repro —
//! and CI uploads the whole set.

use dvs_sim::cluster::ClusterPlan;
use dvs_sim::seq::{NullObserver, SeqSim, SimConfig};
use dvs_sim::stimulus::VectorStimulus;
use dvs_sim::timewarp::dst::{first_cut_channel, run_deterministic};
use dvs_sim::timewarp::{BatchPolicy, SchedulePolicy, StateSaving, TimeWarpConfig};
use dvs_verilog::netlist::Netlist;
use dvs_verilog::parse_and_elaborate;
use dvs_workloads::seqcirc::{generate_counter, generate_lfsr};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Everything needed to replay one fuzz case.
#[derive(Debug, Clone)]
struct FuzzCase {
    counter_not_lfsr: bool,
    bits: u32,
    k: usize,
    part_seed: u64,
    stim_seed: u64,
    sched_seed: u64,
    policy_sel: u8,
    window: u64,
    batch: usize,
    checkpoint: bool,
    batching: bool,
    cycles: u64,
}

fn case_strategy() -> impl Strategy<Value = FuzzCase> {
    let circuit = (any::<bool>(), 2u32..6, 2usize..4, any::<u64>());
    let seeds = (any::<u64>(), any::<u64>(), 0u8..5);
    let kernel = (
        prop_oneof![Just(4u64), Just(16u64), Just(64u64)],
        prop_oneof![Just(1usize), Just(2usize), Just(16usize)],
        (any::<bool>(), any::<bool>()),
        10u64..40,
    );
    (circuit, seeds, kernel).prop_map(
        |(
            (counter_not_lfsr, bits, k, part_seed),
            (stim_seed, sched_seed, policy_sel),
            (window, batch, (checkpoint, batching), cycles),
        )| FuzzCase {
            counter_not_lfsr,
            bits,
            k,
            part_seed,
            stim_seed,
            sched_seed,
            policy_sel,
            window,
            batch,
            checkpoint,
            batching,
            cycles,
        },
    )
}

fn elaborate_case(case: &FuzzCase) -> Netlist {
    let src = if case.counter_not_lfsr {
        generate_counter(case.bits)
    } else {
        generate_lfsr(case.bits.max(2), &[case.bits.max(2), 1])
    };
    parse_and_elaborate(&src)
        .expect("generated circuit parses")
        .into_netlist()
}

/// A seeded random gate→cluster assignment with every cluster non-empty.
fn random_partition(nl: &Netlist, k: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = nl.gate_count();
    let mut gb: Vec<u32> = (0..n).map(|_| rng.gen_range(0..k as u32)).collect();
    for (i, slot) in gb.iter_mut().enumerate().take(k.min(n)) {
        *slot = i as u32; // guarantee non-empty clusters
    }
    gb
}

fn policy_for(case: &FuzzCase, plan: &ClusterPlan) -> SchedulePolicy {
    match case.policy_sel {
        0 => SchedulePolicy::RoundRobin,
        1 => SchedulePolicy::SeededRandom,
        2 => SchedulePolicy::StragglerHeavy,
        3 => match first_cut_channel(plan) {
            Some((src, dst)) => SchedulePolicy::DelayChannel { src, dst },
            None => SchedulePolicy::SeededRandom,
        },
        _ => SchedulePolicy::Bursty,
    }
}

fn run_case(case: &FuzzCase) {
    let nl = elaborate_case(case);
    let gb = random_partition(&nl, case.k, case.part_seed);
    let plan = ClusterPlan::new(&nl, &gb, case.k);
    let policy = policy_for(case, &plan);
    let stim = VectorStimulus::from_netlist(&nl, 10, case.stim_seed);

    let cfg = TimeWarpConfig::builder()
        .window(case.window)
        .epochs_per_quantum(case.batch)
        .message_batching(if case.batching {
            BatchPolicy::per_quantum()
        } else {
            BatchPolicy::Off
        })
        .state_saving(if case.checkpoint {
            StateSaving::Checkpoint { interval: 4 }
        } else {
            StateSaving::IncrementalUndo
        })
        .build()
        .expect("valid config");

    // Invariant checks forced on regardless of build profile.
    let tw = run_deterministic(
        &nl,
        &plan,
        &stim,
        case.cycles,
        &cfg,
        case.sched_seed,
        &policy,
        true,
    )
    .expect("deterministic run stalled");

    // (a) Sequential equivalence on every driven net and primary input.
    let scfg = SimConfig {
        cycles: case.cycles,
        init_zero: true,
    };
    let mut seq = SeqSim::new(&nl, &scfg);
    seq.run(&stim, case.cycles, &mut NullObserver);
    for (ni, net) in nl.nets.iter().enumerate() {
        let id = dvs_verilog::NetId(ni as u32);
        if net.driver.is_some() || nl.primary_inputs.contains(&id) {
            assert_eq!(
                tw.values[ni],
                seq.value(id),
                "net `{}` diverged from sequential under {policy:?}",
                net.name
            );
        }
    }

    // (b) Same seed ⇒ identical execution, counter for counter.
    let replay = run_deterministic(
        &nl,
        &plan,
        &stim,
        case.cycles,
        &cfg,
        case.sched_seed,
        &policy,
        true,
    )
    .expect("deterministic replay stalled");
    assert_eq!(tw.stats, replay.stats, "replay diverged under {policy:?}");
    assert_eq!(tw.cluster_stats, replay.cluster_stats);
    assert_eq!(tw.values, replay.values);
}

/// Run a case, dumping it on panic to a file whose name encodes the test
/// and a hash of the case, so parallel test binaries and repeated proptest
/// shrink iterations each keep their own repro instead of overwriting a
/// single shared `dst_fuzz_failure.txt`.
fn run_case_with_dump(case: &FuzzCase, test: &str) {
    use std::hash::{Hash, Hasher};
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_case(case)));
    if let Err(payload) = result {
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("<non-string panic>");
        let dump = format!("failing DST fuzz case ({test}):\n{case:#?}\n\npanic: {msg}\n");
        let mut h = std::collections::hash_map::DefaultHasher::new();
        format!("{case:?}").hash(&mut h);
        let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
        let _ = std::fs::create_dir_all(dir);
        let name = format!("dst_fuzz_failure_{test}_{:016x}.txt", h.finish());
        let _ = std::fs::write(dir.join(name), &dump);
        eprintln!("{dump}");
        std::panic::resume_unwind(payload);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_schedules_match_sequential_and_replay(case in case_strategy()) {
        run_case_with_dump(&case, "random_schedules");
    }
}

/// The named adversarial policies on a fixed circuit, still invariant-clean
/// and sequential-equivalent (complements the random sweep above with a
/// deterministic, always-run case for each policy).
#[test]
fn named_policies_on_fixed_case() {
    for policy_sel in 0..5u8 {
        for batching in [false, true] {
            let case = FuzzCase {
                counter_not_lfsr: true,
                bits: 4,
                k: 3,
                part_seed: 11,
                stim_seed: 22,
                sched_seed: 33,
                policy_sel,
                window: 8,
                batch: 2,
                checkpoint: false,
                batching,
                cycles: 30,
            };
            run_case_with_dump(&case, "named_policies");
        }
    }
}
