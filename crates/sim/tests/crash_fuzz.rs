//! Crash-fault fuzz suite for the deterministic Time Warp executor.
//!
//! Random small circuits, random partitions, random schedules — and now a
//! random crash: one cluster is killed at a property-drawn decision index,
//! losing its in-memory state and every in-flight message addressed to it.
//! The recovery supervisor must rebuild it from its last GVT-consistent
//! checkpoint, replay its input log, and refill its channels — and the
//! recovered run must be *indistinguishable* from the undisturbed one:
//! identical merged stats, identical per-cluster stats, identical final
//! values, identical GVT round count. Determinism is the oracle — any
//! recovery bug shows up as an exact counter diff, not a flaky tolerance.
//!
//! A second property exercises graceful degradation: when the fault fires
//! more times than the restart budget allows, the run must fall back to the
//! sequential simulator and still return the correct final state, flagged
//! with `degraded = true` rather than an error.
//!
//! On failure the offending case is written to
//! `target/tmp/crash_fuzz_failure_<test>_<case-hash>.txt` for CI upload,
//! one file per test and case.

use dvs_sim::cluster::ClusterPlan;
use dvs_sim::seq::{NullObserver, SeqSim, SimConfig};
use dvs_sim::stimulus::VectorStimulus;
use dvs_sim::timewarp::dst::run_deterministic;
use dvs_sim::timewarp::{
    CheckpointCadence, FaultPlan, SchedulePolicy, StateSaving, TimeWarpConfig, TwRunResult,
};
use dvs_verilog::netlist::Netlist;
use dvs_verilog::parse_and_elaborate;
use dvs_workloads::seqcirc::{generate_counter, generate_lfsr};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Everything needed to replay one crash-fuzz case.
#[derive(Debug, Clone)]
struct CrashCase {
    counter_not_lfsr: bool,
    bits: u32,
    k: usize,
    part_seed: u64,
    stim_seed: u64,
    sched_seed: u64,
    policy_sel: u8,
    checkpoint: bool,
    cycles: u64,
    victim: u32,
    crash_at: u64,
    crashes: u32,
    cadence: u32,
}

fn case_strategy() -> impl Strategy<Value = CrashCase> {
    let circuit = (any::<bool>(), 2u32..6, 2usize..4, any::<u64>());
    let seeds = (any::<u64>(), any::<u64>(), 0u8..3, any::<bool>());
    // Crash points span immediate (0) through mid-run; points past the end
    // of the run simply never fire, which is itself a valid case. Cadences
    // above 1 interleave delta checkpoints between bases, so crashes land
    // at every chain depth.
    let fault = ((10u64..30, 0u32..4), (0u64..600, 1u32..3, 1u32..5));
    (circuit, seeds, fault).prop_map(
        |(
            (counter_not_lfsr, bits, k, part_seed),
            (stim_seed, sched_seed, policy_sel, checkpoint),
            ((cycles, victim), (crash_at, crashes, cadence)),
        )| CrashCase {
            counter_not_lfsr,
            bits,
            k,
            part_seed,
            stim_seed,
            sched_seed,
            policy_sel,
            checkpoint,
            cycles,
            victim: victim % k as u32,
            crash_at,
            crashes,
            cadence,
        },
    )
}

fn elaborate_case(case: &CrashCase) -> Netlist {
    let src = if case.counter_not_lfsr {
        generate_counter(case.bits)
    } else {
        generate_lfsr(case.bits.max(2), &[case.bits.max(2), 1])
    };
    parse_and_elaborate(&src)
        .expect("generated circuit parses")
        .into_netlist()
}

/// A seeded random gate→cluster assignment with every cluster non-empty.
fn random_partition(nl: &Netlist, k: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = nl.gate_count();
    let mut gb: Vec<u32> = (0..n).map(|_| rng.gen_range(0..k as u32)).collect();
    for (i, slot) in gb.iter_mut().enumerate().take(k.min(n)) {
        *slot = i as u32;
    }
    gb
}

fn policy_for(case: &CrashCase) -> SchedulePolicy {
    match case.policy_sel {
        0 => SchedulePolicy::RoundRobin,
        1 => SchedulePolicy::SeededRandom,
        _ => SchedulePolicy::StragglerHeavy,
    }
}

/// Run the deterministic executor with the given fault plan (invariant
/// checks forced on, which also cross-checks the rebuilt channels against
/// the dropped ones during recovery).
fn run_with_fault(case: &CrashCase, fault: FaultPlan) -> TwRunResult {
    let nl = elaborate_case(case);
    let gb = random_partition(&nl, case.k, case.part_seed);
    let plan = ClusterPlan::new(&nl, &gb, case.k);
    let stim = VectorStimulus::from_netlist(&nl, 10, case.stim_seed);
    let cfg = TimeWarpConfig::builder()
        .window(8)
        .epochs_per_quantum(2)
        .checkpoint_cadence(CheckpointCadence::every_n_rounds(case.cadence))
        .state_saving(if case.checkpoint {
            StateSaving::Checkpoint { interval: 4 }
        } else {
            StateSaving::IncrementalUndo
        })
        .fault(fault)
        .build()
        .expect("valid config");
    run_deterministic(
        &nl,
        &plan,
        &stim,
        case.cycles,
        &cfg,
        case.sched_seed,
        &policy_for(case),
        true,
    )
    .expect("deterministic run stalled")
}

/// The core property: crash + recover ≡ never crashed, field for field.
fn assert_crash_is_invisible(case: &CrashCase) {
    let clean = run_with_fault(case, FaultPlan::default());
    let fault = FaultPlan {
        crash_at: Some((case.victim, case.crash_at)),
        crashes: case.crashes,
        max_restarts: case.crashes,
        corrupt_restores: 0,
    };
    let crashed = run_with_fault(case, fault);
    assert!(
        !crashed.recovery.degraded,
        "budget should cover all crashes"
    );
    assert_eq!(
        crashed.recovery.crashes, crashed.recovery.restarts,
        "every fired crash must be recovered"
    );
    assert_eq!(crashed.stats, clean.stats, "merged stats diverged");
    assert_eq!(
        crashed.cluster_stats, clean.cluster_stats,
        "per-cluster stats diverged"
    );
    assert_eq!(crashed.values, clean.values, "final values diverged");
    assert_eq!(crashed.gvt_rounds, clean.gvt_rounds, "GVT rounds diverged");
}

/// Degradation property: a budget one short of the crash count falls back
/// to the sequential simulator and still matches its final state.
fn assert_degradation_is_correct(case: &CrashCase) {
    let fault = FaultPlan {
        crash_at: Some((case.victim, case.crash_at)),
        crashes: case.crashes + 1,
        max_restarts: case.crashes,
        corrupt_restores: 0,
    };
    let tw = run_with_fault(case, fault);
    if tw.recovery.crashes <= case.crashes {
        // The crash point was beyond the run's decision count (or the run
        // ended before the budget was spent); no degradation expected.
        assert!(!tw.recovery.degraded);
        return;
    }
    assert!(tw.recovery.degraded, "exhausted budget must degrade");
    let nl = elaborate_case(case);
    let stim = VectorStimulus::from_netlist(&nl, 10, case.stim_seed);
    let scfg = SimConfig {
        cycles: case.cycles,
        init_zero: true,
    };
    let mut seq = SeqSim::new(&nl, &scfg);
    seq.run(&stim, case.cycles, &mut NullObserver);
    for (ni, net) in nl.nets.iter().enumerate() {
        let id = dvs_verilog::NetId(ni as u32);
        if net.driver.is_some() || nl.primary_inputs.contains(&id) {
            assert_eq!(
                tw.values[ni],
                seq.value(id),
                "net `{}` wrong in degraded run",
                net.name
            );
        }
    }
}

/// Run a property, dumping the case to a uniquely named file on panic so
/// the CI job can upload the repro without collisions.
fn with_dump(case: &CrashCase, test: &str, f: impl Fn(&CrashCase)) {
    use std::hash::{Hash, Hasher};
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(case)));
    if let Err(payload) = result {
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("<non-string panic>");
        let dump = format!("failing crash fuzz case ({test}):\n{case:#?}\n\npanic: {msg}\n");
        let mut h = std::collections::hash_map::DefaultHasher::new();
        format!("{case:?}").hash(&mut h);
        let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
        let _ = std::fs::create_dir_all(dir);
        let name = format!("crash_fuzz_failure_{test}_{:016x}.txt", h.finish());
        let _ = std::fs::write(dir.join(name), &dump);
        eprintln!("{dump}");
        std::panic::resume_unwind(payload);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn recovered_runs_are_indistinguishable(case in case_strategy()) {
        with_dump(&case, "indistinguishable", assert_crash_is_invisible);
    }

    #[test]
    fn exhausted_budgets_degrade_correctly(case in case_strategy()) {
        with_dump(&case, "degradation", assert_degradation_is_correct);
    }
}

/// A deterministic always-run case per policy, so a plain `cargo test`
/// exercises recovery even when the proptest sweep is filtered out.
#[test]
fn fixed_cases_per_policy() {
    for policy_sel in 0..3u8 {
        let case = CrashCase {
            counter_not_lfsr: true,
            bits: 4,
            k: 3,
            part_seed: 11,
            stim_seed: 22,
            sched_seed: 33,
            policy_sel,
            checkpoint: false,
            cycles: 25,
            victim: 1,
            crash_at: 9,
            crashes: 2,
            cadence: 1,
        };
        with_dump(&case, "fixed", assert_crash_is_invisible);
        with_dump(&case, "fixed_degradation", assert_degradation_is_correct);
    }
}

/// Regression pin for the single-round retention assumption this PR
/// removed: with bases only every 3rd GVT round, crashes at several chain
/// depths must recover invisibly — which requires the sender-side retention
/// window and fossil collection (invariant checks forced on) to both honor
/// the N-round cadence rather than the old one-round ack window.
#[test]
fn fixed_cadence_three_retention_is_safe() {
    for (crash_at, crashes) in [(0u64, 1u32), (9, 2), (40, 2), (120, 1)] {
        let case = CrashCase {
            counter_not_lfsr: true,
            bits: 4,
            k: 3,
            part_seed: 11,
            stim_seed: 22,
            sched_seed: 33,
            policy_sel: 1,
            checkpoint: false,
            cycles: 25,
            victim: 1,
            crash_at,
            crashes,
            cadence: 3,
        };
        with_dump(&case, "fixed_cadence_three", assert_crash_is_invisible);
    }
}
