//! Four-valued logic and primitive gate evaluation.
//!
//! Values follow IEEE 1364 semantics for the gate primitives we support:
//! `0`, `1`, `X` (unknown) and `Z` (high impedance; treated as `X` at gate
//! inputs, as Verilog gates do).

use dvs_verilog::netlist::GateKind;

/// A four-valued logic level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum Logic {
    Zero = 0,
    One = 1,
    #[default]
    X = 2,
    Z = 3,
}

impl Logic {
    /// Parse from a bit.
    #[inline]
    pub fn from_bool(b: bool) -> Logic {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    /// `Z` reads as `X` at a gate input.
    #[inline]
    pub fn input(self) -> Logic {
        if self == Logic::Z {
            Logic::X
        } else {
            self
        }
    }

    #[inline]
    pub fn is_known(self) -> bool {
        matches!(self, Logic::Zero | Logic::One)
    }

    /// Kleene NOT. (Deliberately an inherent method, not `std::ops::Not`:
    /// four-valued negation is a domain operation, and `!x` syntax would
    /// suggest boolean semantics.)
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn not(self) -> Logic {
        match self.input() {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            _ => Logic::X,
        }
    }

    /// Kleene AND: 0 dominates.
    #[inline]
    pub fn and(self, rhs: Logic) -> Logic {
        match (self.input(), rhs.input()) {
            (Logic::Zero, _) | (_, Logic::Zero) => Logic::Zero,
            (Logic::One, Logic::One) => Logic::One,
            _ => Logic::X,
        }
    }

    /// Kleene OR: 1 dominates.
    #[inline]
    pub fn or(self, rhs: Logic) -> Logic {
        match (self.input(), rhs.input()) {
            (Logic::One, _) | (_, Logic::One) => Logic::One,
            (Logic::Zero, Logic::Zero) => Logic::Zero,
            _ => Logic::X,
        }
    }

    /// Kleene XOR: any X poisons.
    #[inline]
    pub fn xor(self, rhs: Logic) -> Logic {
        match (self.input(), rhs.input()) {
            (Logic::Zero, Logic::Zero) | (Logic::One, Logic::One) => Logic::Zero,
            (Logic::Zero, Logic::One) | (Logic::One, Logic::Zero) => Logic::One,
            _ => Logic::X,
        }
    }

    pub fn display_char(self) -> char {
        match self {
            Logic::Zero => '0',
            Logic::One => '1',
            Logic::X => 'x',
            Logic::Z => 'z',
        }
    }

    /// Inverse of [`Logic::display_char`] — used when deserializing value
    /// vectors from artifacts. Case-insensitive for `x`/`z`.
    pub fn from_display_char(c: char) -> Option<Logic> {
        match c {
            '0' => Some(Logic::Zero),
            '1' => Some(Logic::One),
            'x' | 'X' => Some(Logic::X),
            'z' | 'Z' => Some(Logic::Z),
            _ => None,
        }
    }
}

impl std::fmt::Display for Logic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.display_char())
    }
}

/// Evaluate a *combinational* gate over its input values. `Dff`/`Latch` are
/// sequential and handled by the simulator kernels (they need edge and
/// enable context); calling this on them is a logic error.
pub fn eval_combinational(kind: GateKind, inputs: &[Logic]) -> Logic {
    match kind {
        GateKind::And => inputs.iter().copied().fold(Logic::One, Logic::and),
        GateKind::Nand => inputs.iter().copied().fold(Logic::One, Logic::and).not(),
        GateKind::Or => inputs.iter().copied().fold(Logic::Zero, Logic::or),
        GateKind::Nor => inputs.iter().copied().fold(Logic::Zero, Logic::or).not(),
        GateKind::Xor => inputs.iter().copied().fold(Logic::Zero, Logic::xor),
        GateKind::Xnor => inputs.iter().copied().fold(Logic::Zero, Logic::xor).not(),
        GateKind::Buf => inputs[0].input(),
        GateKind::Not => inputs[0].not(),
        GateKind::Const0 => Logic::Zero,
        GateKind::Const1 => Logic::One,
        GateKind::Dff | GateKind::Dffr | GateKind::Latch => {
            unreachable!("sequential primitives are evaluated by the kernel")
        }
    }
}

/// Is `old -> new` a positive clock edge? Verilog's posedge includes
/// `0→1`, `0→X`, `X→1`; we use the common gate-level simplification that an
/// edge is only recognized when the new value is a solid `1` and the old was
/// not.
#[inline]
pub fn is_posedge(old: Logic, new: Logic) -> bool {
    new == Logic::One && old != Logic::One
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Logic; 4] = [Logic::Zero, Logic::One, Logic::X, Logic::Z];

    #[test]
    fn not_truth_table() {
        assert_eq!(Logic::Zero.not(), Logic::One);
        assert_eq!(Logic::One.not(), Logic::Zero);
        assert_eq!(Logic::X.not(), Logic::X);
        assert_eq!(Logic::Z.not(), Logic::X);
    }

    #[test]
    fn and_dominance() {
        for v in ALL {
            assert_eq!(Logic::Zero.and(v), Logic::Zero);
            assert_eq!(v.and(Logic::Zero), Logic::Zero);
        }
        assert_eq!(Logic::One.and(Logic::One), Logic::One);
        assert_eq!(Logic::One.and(Logic::X), Logic::X);
        assert_eq!(Logic::Z.and(Logic::One), Logic::X);
    }

    #[test]
    fn or_dominance() {
        for v in ALL {
            assert_eq!(Logic::One.or(v), Logic::One);
            assert_eq!(v.or(Logic::One), Logic::One);
        }
        assert_eq!(Logic::Zero.or(Logic::Zero), Logic::Zero);
        assert_eq!(Logic::Zero.or(Logic::X), Logic::X);
    }

    #[test]
    fn xor_poisoning() {
        assert_eq!(Logic::One.xor(Logic::Zero), Logic::One);
        assert_eq!(Logic::One.xor(Logic::One), Logic::Zero);
        assert_eq!(Logic::One.xor(Logic::X), Logic::X);
        assert_eq!(Logic::Z.xor(Logic::Zero), Logic::X);
    }

    #[test]
    fn gate_eval_matches_two_valued_semantics() {
        use GateKind::*;
        let t = Logic::One;
        let f = Logic::Zero;
        assert_eq!(eval_combinational(And, &[t, t, t]), t);
        assert_eq!(eval_combinational(And, &[t, f, t]), f);
        assert_eq!(eval_combinational(Nand, &[t, t]), f);
        assert_eq!(eval_combinational(Or, &[f, f]), f);
        assert_eq!(eval_combinational(Or, &[f, t]), t);
        assert_eq!(eval_combinational(Nor, &[f, f]), t);
        assert_eq!(eval_combinational(Xor, &[t, t, t]), t);
        assert_eq!(eval_combinational(Xor, &[t, t]), f);
        assert_eq!(eval_combinational(Xnor, &[t, f]), f);
        assert_eq!(eval_combinational(Buf, &[f]), f);
        assert_eq!(eval_combinational(Not, &[f]), t);
        assert_eq!(eval_combinational(Const0, &[]), f);
        assert_eq!(eval_combinational(Const1, &[]), t);
    }

    #[test]
    fn demorgan_holds_for_all_values() {
        // not(a and b) == not(a) or not(b) across the whole lattice.
        for a in ALL {
            for b in ALL {
                assert_eq!(a.and(b).not(), a.not().or(b.not()));
                assert_eq!(a.or(b).not(), a.not().and(b.not()));
            }
        }
    }

    #[test]
    fn posedge_detection() {
        assert!(is_posedge(Logic::Zero, Logic::One));
        assert!(is_posedge(Logic::X, Logic::One));
        assert!(!is_posedge(Logic::One, Logic::One));
        assert!(!is_posedge(Logic::One, Logic::Zero));
        assert!(!is_posedge(Logic::Zero, Logic::X));
    }

    #[test]
    fn display() {
        assert_eq!(Logic::Zero.to_string(), "0");
        assert_eq!(Logic::X.to_string(), "x");
    }
}
