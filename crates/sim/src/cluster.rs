//! Mapping a gate partition onto simulation clusters.
//!
//! A [`ClusterPlan`] is the static routing information both parallel kernels
//! need: which gates each machine simulates, which primary inputs it
//! generates stimulus for, which of its nets are *exported* (read by remote
//! clusters — every toggle becomes one message per remote reader), and which
//! are *imported* (driven remotely). This mirrors the paper's treatment of
//! Verilog instances as LPs: only port state crossing the cut is
//! communicated; everything inside a cluster stays local.

use dvs_verilog::netlist::{GateId, NetId, Netlist};

/// One machine's share of the circuit.
#[derive(Debug, Clone, Default)]
pub struct Cluster {
    /// Gates simulated by this cluster.
    pub gates: Vec<GateId>,
    /// Primary inputs feeding this cluster's gates (stimulus is generated
    /// locally for these).
    pub stimulus_nets: Vec<NetId>,
    /// Locally driven nets with remote readers: `(net, remote clusters)`.
    pub exports: Vec<(NetId, Vec<u32>)>,
    /// Remotely driven nets read by this cluster's gates.
    pub imports: Vec<NetId>,
    /// Total gates (the paper's load metric).
    pub load: u64,
}

/// The full placement of a netlist onto `k` clusters.
#[derive(Debug, Clone)]
pub struct ClusterPlan {
    pub k: usize,
    /// Per-gate cluster assignment.
    pub gate_block: Vec<u32>,
    pub clusters: Vec<Cluster>,
}

impl ClusterPlan {
    /// Build the plan from a per-gate block assignment.
    pub fn new(nl: &Netlist, gate_block: &[u32], k: usize) -> Self {
        assert_eq!(gate_block.len(), nl.gate_count());
        assert!(k >= 1);
        debug_assert!(gate_block.iter().all(|&b| (b as usize) < k));
        let fanout = nl.build_fanout();
        let mut clusters: Vec<Cluster> = vec![Cluster::default(); k];

        for (gi, &blk) in gate_block.iter().enumerate() {
            let c = &mut clusters[blk as usize];
            c.gates.push(GateId(gi as u32));
            c.load += 1;
        }

        // Primary inputs: a PI is stimulus for every cluster reading it.
        // (Replicating the vector source costs nothing — the paper's nodes
        // all read the same vector file.)
        let mut scratch: Vec<bool> = vec![false; k];
        for &pi in &nl.primary_inputs {
            scratch.iter_mut().for_each(|s| *s = false);
            for &g in fanout.readers(pi) {
                scratch[gate_block[g.idx()] as usize] = true;
            }
            for (b, &wants) in scratch.iter().enumerate() {
                if wants {
                    clusters[b].stimulus_nets.push(pi);
                }
            }
        }

        // Exports and imports along cut nets.
        for ni in 0..nl.net_count() {
            let net = NetId(ni as u32);
            let Some(driver) = nl.nets[ni].driver else {
                continue;
            };
            let src = gate_block[driver.idx()];
            scratch.iter_mut().for_each(|s| *s = false);
            for &g in fanout.readers(net) {
                let dst = gate_block[g.idx()];
                if dst != src {
                    scratch[dst as usize] = true;
                }
            }
            let dests: Vec<u32> = (0..k as u32).filter(|&b| scratch[b as usize]).collect();
            if !dests.is_empty() {
                for &d in &dests {
                    clusters[d as usize].imports.push(net);
                }
                clusters[src as usize].exports.push((net, dests));
            }
        }

        ClusterPlan {
            k,
            gate_block: gate_block.to_vec(),
            clusters,
        }
    }

    /// Number of *communication* nets: driven nets with remote readers.
    /// This is at most the hyperedge cut — primary-input nets read from
    /// several clusters are cut hyperedges but carry no messages, because
    /// every machine generates the vector stimulus locally.
    pub fn cut_nets(&self) -> usize {
        self.clusters.iter().map(|c| c.exports.len()).sum()
    }

    /// Total (net, destination) pairs — the per-toggle message multiplier.
    pub fn channel_count(&self) -> usize {
        self.clusters
            .iter()
            .flat_map(|c| c.exports.iter())
            .map(|(_, d)| d.len())
            .sum()
    }

    /// Per-cluster loads (gate counts).
    pub fn loads(&self) -> Vec<u64> {
        self.clusters.iter().map(|c| c.load).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_verilog::parse_and_elaborate;

    const SRC: &str = r#"
        module top(clk, a, b, y);
          input clk, a, b; output y;
          wire w1, w2, w3;
          and g0 (w1, a, b);
          not g1 (w2, w1);
          dff g2 (w3, clk, w2);
          buf g3 (y, w3);
        endmodule
    "#;

    fn netlist() -> Netlist {
        parse_and_elaborate(SRC).unwrap().into_netlist()
    }

    #[test]
    fn split_plan_routes_cut_nets() {
        let nl = netlist();
        // g0, g1 on cluster 0; g2, g3 on cluster 1. Cut nets: w2 (g1→g2).
        let plan = ClusterPlan::new(&nl, &[0, 0, 1, 1], 2);
        assert_eq!(plan.cut_nets(), 1);
        assert_eq!(plan.channel_count(), 1);
        assert_eq!(plan.loads(), vec![2, 2]);
        let c0 = &plan.clusters[0];
        let c1 = &plan.clusters[1];
        assert_eq!(c0.exports.len(), 1);
        assert_eq!(c0.exports[0].1, vec![1]);
        assert_eq!(c1.imports.len(), 1);
        assert_eq!(c0.exports[0].0, c1.imports[0]);
    }

    #[test]
    fn stimulus_assigned_to_reading_clusters() {
        let nl = netlist();
        let plan = ClusterPlan::new(&nl, &[0, 0, 1, 1], 2);
        // a, b read by cluster 0 (g0); clk read by cluster 1 (g2).
        let names = |c: &Cluster| -> Vec<String> {
            c.stimulus_nets
                .iter()
                .map(|n| nl.nets[n.idx()].name.clone())
                .collect()
        };
        let s0 = names(&plan.clusters[0]);
        let s1 = names(&plan.clusters[1]);
        assert!(s0.iter().any(|n| n.ends_with(".a")));
        assert!(s0.iter().any(|n| n.ends_with(".b")));
        assert!(!s0.iter().any(|n| n.ends_with(".clk")));
        assert!(s1.iter().any(|n| n.ends_with(".clk")));
    }

    #[test]
    fn single_cluster_has_no_channels() {
        let nl = netlist();
        let plan = ClusterPlan::new(&nl, &[0, 0, 0, 0], 1);
        assert_eq!(plan.cut_nets(), 0);
        assert_eq!(plan.channel_count(), 0);
        assert_eq!(plan.clusters[0].load, 4);
        assert!(plan.clusters[0].imports.is_empty());
    }

    #[test]
    fn multicast_net_counts_per_destination() {
        // One driver read by gates on two other clusters: 1 cut net, 2
        // channels.
        let src = r#"
            module top(a, b, y, z);
              input a, b; output y, z;
              wire w;
              and g0 (w, a, b);
              not g1 (y, w);
              buf g2 (z, w);
            endmodule
        "#;
        let nl = parse_and_elaborate(src).unwrap().into_netlist();
        let plan = ClusterPlan::new(&nl, &[0, 1, 2], 3);
        assert_eq!(plan.cut_nets(), 1);
        assert_eq!(plan.channel_count(), 2);
        let dests = &plan.clusters[0].exports[0].1;
        assert_eq!(dests.as_slice(), &[1, 2]);
    }

    #[test]
    fn shared_pi_is_stimulus_for_both() {
        let src = r#"
            module top(a, y, z);
              input a; output y, z;
              not g0 (y, a);
              buf g1 (z, a);
            endmodule
        "#;
        let nl = parse_and_elaborate(src).unwrap().into_netlist();
        let plan = ClusterPlan::new(&nl, &[0, 1], 2);
        assert_eq!(plan.clusters[0].stimulus_nets.len(), 1);
        assert_eq!(plan.clusters[1].stimulus_nets.len(), 1);
        // A PI is not a cut net even when read everywhere.
        assert_eq!(plan.cut_nets(), 0);
    }
}
