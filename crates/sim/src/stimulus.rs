//! Random vector stimulus.
//!
//! The paper drives its Viterbi decoder with 1 M random vectors (10 k during
//! pre-simulation). [`VectorStimulus`] reproduces that: every data primary
//! input receives a pseudo-random bit each cycle, and an optional clock
//! input gets a rising edge mid-period and a falling edge at period end.
//!
//! The bit for (input, cycle) is a *pure function* of (seed, net id, cycle)
//! — a splitmix64 hash — rather than a stream from a stateful RNG. This
//! matters for the distributed kernels: each cluster can generate exactly
//! the stimulus for its own inputs locally, in any order, with no
//! coordination, just as each node of the paper's cluster reads the same
//! vector file.

use crate::logic::Logic;
use crate::wheel::{NetEvent, VTime};
use dvs_verilog::netlist::{NetId, Netlist};

/// Deterministic random vector source.
#[derive(Debug, Clone)]
pub struct VectorStimulus {
    /// Data inputs (every primary input except the clock).
    pub data_inputs: Vec<NetId>,
    /// Clock input, if the design has one.
    pub clock: Option<NetId>,
    /// Ticks per vector (one vector per period).
    pub period: VTime,
    pub seed: u64,
}

impl VectorStimulus {
    /// Build from a netlist, auto-detecting the clock as the primary input
    /// whose name ends in `clk` or `clock` (as the generated workloads use).
    pub fn from_netlist(nl: &Netlist, period: VTime, seed: u64) -> Self {
        assert!(period >= 2, "period must fit a clock edge");
        let mut clock = None;
        let mut data_inputs = Vec::new();
        for &pi in &nl.primary_inputs {
            let name = &nl.nets[pi.idx()].name;
            let base = name.rsplit('.').next().unwrap_or(name);
            if clock.is_none() && (base.ends_with("clk") || base.ends_with("clock")) {
                clock = Some(pi);
            } else {
                data_inputs.push(pi);
            }
        }
        VectorStimulus {
            data_inputs,
            clock,
            period,
            seed,
        }
    }

    /// The pseudo-random bit for `net` at `cycle`.
    #[inline]
    pub fn bit(&self, net: NetId, cycle: u64) -> Logic {
        let h = splitmix64(
            self.seed
                ^ splitmix64(net.0 as u64 ^ 0xA076_1D64_78BD_642F)
                ^ splitmix64(cycle ^ 0xE703_7ED1_A0B4_28DB),
        );
        Logic::from_bool(h & 1 == 1)
    }

    /// Emit the events of `cycle` into `out`, filtered to nets accepted by
    /// `want` (pass `|_| true` for the sequential simulator; clusters pass
    /// membership in their local input set).
    pub fn events_for_cycle(
        &self,
        cycle: u64,
        mut want: impl FnMut(NetId) -> bool,
        out: &mut Vec<NetEvent>,
    ) {
        let t0 = cycle * self.period;
        for &pi in &self.data_inputs {
            if want(pi) {
                out.push(NetEvent {
                    time: t0,
                    net: pi,
                    value: self.bit(pi, cycle),
                });
            }
        }
        if let Some(clk) = self.clock {
            if want(clk) {
                // Rising edge mid-period (after combinational inputs have had
                // time to propagate), falling edge before the next vector.
                out.push(NetEvent {
                    time: t0 + self.period / 2,
                    net: clk,
                    value: Logic::One,
                });
                out.push(NetEvent {
                    time: t0 + self.period - 1,
                    net: clk,
                    value: Logic::Zero,
                });
            }
        }
    }

    /// End of simulated time for `cycles` vectors.
    pub fn end_time(&self, cycles: u64) -> VTime {
        cycles * self.period
    }
}

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_verilog::parse_and_elaborate;

    fn netlist() -> Netlist {
        parse_and_elaborate(
            "module top(clk, a, b, q); input clk, a, b; output q;\n\
             wire d; and g (d, a, b); dff f (q, clk, d); endmodule",
        )
        .unwrap()
        .into_netlist()
    }

    #[test]
    fn clock_is_detected_by_name() {
        let nl = netlist();
        let s = VectorStimulus::from_netlist(&nl, 10, 1);
        assert!(s.clock.is_some());
        assert_eq!(s.data_inputs.len(), 2);
        let clk = s.clock.unwrap();
        assert!(nl.nets[clk.idx()].name.ends_with("clk"));
    }

    #[test]
    fn bits_are_deterministic_and_vary() {
        let nl = netlist();
        let s = VectorStimulus::from_netlist(&nl, 10, 42);
        let a = s.data_inputs[0];
        let bits: Vec<Logic> = (0..64).map(|c| s.bit(a, c)).collect();
        let again: Vec<Logic> = (0..64).map(|c| s.bit(a, c)).collect();
        assert_eq!(bits, again);
        // Not constant.
        assert!(bits.contains(&Logic::Zero));
        assert!(bits.contains(&Logic::One));
        // Different seed → different stream.
        let s2 = VectorStimulus::from_netlist(&nl, 10, 43);
        let bits2: Vec<Logic> = (0..64).map(|c| s2.bit(a, c)).collect();
        assert_ne!(bits, bits2);
    }

    #[test]
    fn bits_are_roughly_balanced() {
        let nl = netlist();
        let s = VectorStimulus::from_netlist(&nl, 10, 7);
        let a = s.data_inputs[0];
        let ones = (0..10_000).filter(|&c| s.bit(a, c) == Logic::One).count();
        assert!((4000..6000).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn cycle_events_include_clock_edges() {
        let nl = netlist();
        let s = VectorStimulus::from_netlist(&nl, 10, 1);
        let mut out = Vec::new();
        s.events_for_cycle(3, |_| true, &mut out);
        // 2 data inputs + clock rise + clock fall.
        assert_eq!(out.len(), 4);
        let clk = s.clock.unwrap();
        let rise = out.iter().find(|e| e.net == clk && e.value == Logic::One);
        let fall = out.iter().find(|e| e.net == clk && e.value == Logic::Zero);
        assert_eq!(rise.unwrap().time, 35);
        assert_eq!(fall.unwrap().time, 39);
        assert!(out.iter().all(|e| e.time >= 30 && e.time < 40));
    }

    #[test]
    fn filter_restricts_events() {
        let nl = netlist();
        let s = VectorStimulus::from_netlist(&nl, 10, 1);
        let only = s.data_inputs[1];
        let mut out = Vec::new();
        s.events_for_cycle(0, |n| n == only, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].net, only);
    }

    #[test]
    fn filtered_events_match_unfiltered_subset() {
        // Cluster-local generation must agree with global generation.
        let nl = netlist();
        let s = VectorStimulus::from_netlist(&nl, 10, 9);
        let mut all = Vec::new();
        s.events_for_cycle(5, |_| true, &mut all);
        let pick = s.data_inputs[0];
        let mut some = Vec::new();
        s.events_for_cycle(5, |n| n == pick, &mut some);
        let from_all: Vec<_> = all.iter().filter(|e| e.net == pick).collect();
        assert_eq!(from_all.len(), some.len());
        assert_eq!(*from_all[0], some[0]);
    }
}
