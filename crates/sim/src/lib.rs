//! # dvs-sim
//!
//! Gate-level event-driven Verilog simulation — the substrate the paper's
//! partitioner is evaluated on. Reproduces the relevant architecture of DVS
//! (Li, Huang & Tropper, PADS 2003) in Rust:
//!
//! * [`logic`] — four-valued logic (`0/1/X/Z`) and primitive evaluation;
//! * [`wheel`] — event queues: a binary-heap queue and a calendar-style
//!   timing wheel specialized for unit gate delays;
//! * [`stimulus`] — seeded random vector streams (the paper drives its
//!   Viterbi decoder with 1 M random vectors, 10 k during pre-simulation);
//! * [`seq`] — the sequential reference simulator (speedup baseline), with
//!   an observer interface for per-partition event accounting;
//! * [`cluster`] — mapping of a per-gate partition onto simulation clusters:
//!   local gate sets, cut-net channels, per-cluster stimulus;
//! * [`timewarp`] — a Clustered Time Warp kernel: optimistic execution
//!   with incremental state saving, rollback, anti-messages, GVT and fossil
//!   collection (OOCTW's role in the paper), runnable threaded or under the
//!   deterministic-schedule executor ([`timewarp::dst`]) with seedable and
//!   adversarial schedules;
//! * [`cluster_model`] — a deterministic meta-simulation of the k-machine
//!   cluster (2001-era Athlon + 1 Gb Ethernet constants) that reports wall
//!   time, message and rollback counts reproducibly — used by the
//!   table/figure harness;
//! * [`vcd`] — IEEE 1364 Value Change Dump waveform output;
//! * [`stats`] — simulation statistics shared by all kernels;
//! * [`artifact`] — JSON serialization of the above (stats, run results,
//!   checkpoints — the checkpoint serialization is also the wire format of
//!   the process transport).

// Hot paths must not abort the process on recoverable conditions; the few
// justified `unwrap`s are allow-listed at the call site with a proof sketch.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod artifact;
pub mod cluster;
pub mod cluster_model;
pub mod logic;
pub mod seq;
pub mod stats;
pub mod stimulus;
pub mod timewarp;
pub mod vcd;
pub mod wheel;

pub use artifact::tw_run_canonical_json;
pub use cluster::ClusterPlan;
pub use cluster_model::{ClusterModel, ClusterModelConfig, ClusterRun};
pub use logic::Logic;
pub use seq::{SeqSim, SimConfig};
pub use stats::SimStats;
pub use stimulus::VectorStimulus;
pub use timewarp::{
    BatchPolicy, Checkpoint, FaultPlan, RecoveryOutcome, SchedulePolicy, TimeWarpBuilder,
    TimeWarpConfig, TimeWarpError, Transport,
};
