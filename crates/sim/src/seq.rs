//! Sequential event-driven gate simulator.
//!
//! Unit gate delay, zero wire delay — the paper's timing model. This kernel
//! is the speedup baseline ("the simulation time for 1 machine") and, via
//! [`SimObserver`], the workload profiler for the deterministic cluster
//! model: every gate evaluation and net toggle can be attributed to a
//! partition and a vector cycle.
//!
//! Execution model per epoch (one virtual-time tick):
//!
//! 1. pop all events at time `t` and apply the net-value changes;
//! 2. collect the reader gates affected by changed nets (each at most once);
//!    a DFF is only affected by a rising edge on its clock pin;
//! 3. evaluate affected gates; outputs that differ from the current net
//!    value are scheduled at `t + 1`.

use crate::logic::{eval_combinational, is_posedge, Logic};
use crate::stats::SimStats;
use crate::stimulus::VectorStimulus;
use crate::wheel::{NetEvent, TimingWheel, VTime};
use dvs_verilog::netlist::{Fanout, GateId, GateKind, NetId, Netlist};

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Vectors to apply.
    pub cycles: u64,
    /// Initialize every net to `0` instead of `X`. `X` initialization is the
    /// strict Verilog semantic; `0` avoids X-lock in feedback circuits
    /// without reset logic and is the default for benchmarking.
    pub init_zero: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cycles: 100,
            init_zero: true,
        }
    }
}

/// Observer hooks for workload profiling and tracing. All methods default
/// to no-ops. `net_change` fires after the new value is applied and
/// receives it, so observers (e.g. the VCD recorder) need no access to the
/// simulator's state.
pub trait SimObserver {
    #[inline]
    fn gate_eval(&mut self, _gate: GateId, _time: VTime) {}
    #[inline]
    fn net_change(&mut self, _net: NetId, _time: VTime, _value: Logic) {}
}

/// The do-nothing observer.
pub struct NullObserver;
impl SimObserver for NullObserver {}

/// Sequential simulator state.
pub struct SeqSim<'a> {
    nl: &'a Netlist,
    fanout: Fanout,
    values: Vec<Logic>,
    stats: SimStats,
    init_zero: bool,
}

impl<'a> SeqSim<'a> {
    pub fn new(nl: &'a Netlist, cfg: &SimConfig) -> Self {
        let fanout = nl.build_fanout();
        let init = if cfg.init_zero { Logic::Zero } else { Logic::X };
        let mut values = vec![init; nl.net_count()];
        if let Some(c0) = nl.const0_net {
            values[c0.idx()] = Logic::Zero;
        }
        if let Some(c1) = nl.const1_net {
            values[c1.idx()] = Logic::One;
        }
        SeqSim {
            nl,
            fanout,
            values,
            stats: SimStats::default(),
            init_zero: cfg.init_zero,
        }
    }

    /// Current value of a net.
    pub fn value(&self, net: NetId) -> Logic {
        self.values[net.idx()]
    }

    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Run `cfg.cycles` vectors from `stim`, reporting to `obs`.
    pub fn run(&mut self, stim: &VectorStimulus, cycles: u64, obs: &mut impl SimObserver) {
        let period = stim.period;
        let horizon = (2 * period + 4) as usize;
        let mut wheel = TimingWheel::new(horizon);

        // Settle the initial state: evaluate every combinational gate once
        // and schedule the disagreements.
        for (gi, g) in self.nl.gates.iter().enumerate() {
            if g.kind.is_sequential() {
                continue;
            }
            let out = self.eval_comb(gi);
            if out != self.values[g.output.idx()] {
                wheel.push(NetEvent {
                    time: 1,
                    net: g.output,
                    value: out,
                });
            }
        }

        let mut epoch: Vec<NetEvent> = Vec::with_capacity(64);
        let mut changed: Vec<(NetId, Logic, Logic)> = Vec::with_capacity(64);
        // Per-epoch dedup stamps for affected gates and DFF fire flags.
        let mut seen = vec![0u32; self.nl.gate_count()];
        let mut fire = vec![0u32; self.nl.gate_count()];
        let mut stamp = 0u32;
        let mut affected: Vec<u32> = Vec::with_capacity(64);
        let mut stim_buf: Vec<NetEvent> = Vec::with_capacity(16);

        for cycle in 0..cycles {
            stim_buf.clear();
            stim.events_for_cycle(cycle, |_| true, &mut stim_buf);
            for &ev in &stim_buf {
                wheel.push(ev);
            }
            self.stats.cycles += 1;
            let limit = (cycle + 1) * period;
            let is_last_cycle = cycle + 1 == cycles;
            // Process epochs up to the next vector boundary; after the
            // final vector, drain to quiescence.
            while let Some(t_next) = wheel.next_time() {
                if t_next >= limit && !is_last_cycle {
                    break;
                }
                stamp += 1;
                epoch.clear();
                let t = wheel.pop_epoch(&mut epoch).expect("next_time was Some");
                self.stats.end_time = t;

                // Phase 1: apply value changes.
                changed.clear();
                for ev in &epoch {
                    self.stats.events += 1;
                    let old = self.values[ev.net.idx()];
                    if old != ev.value {
                        self.values[ev.net.idx()] = ev.value;
                        self.stats.net_toggles += 1;
                        obs.net_change(ev.net, t, ev.value);
                        changed.push((ev.net, old, ev.value));
                    }
                }

                // Phase 2: collect affected gates.
                affected.clear();
                for &(net, old, new) in &changed {
                    for &g in self.fanout.readers(net) {
                        let gate = &self.nl.gates[g.idx()];
                        match gate.kind {
                            GateKind::Dff => {
                                // Only a rising clock edge triggers a DFF.
                                if gate.inputs[0] == net && is_posedge(old, new) {
                                    if seen[g.idx()] != stamp {
                                        seen[g.idx()] = stamp;
                                        affected.push(g.0);
                                    }
                                    fire[g.idx()] = stamp;
                                }
                            }
                            GateKind::Dffr => {
                                // Rising clock edge, or any change of the
                                // asynchronous reset.
                                let is_clk_edge = gate.inputs[0] == net && is_posedge(old, new);
                                let is_rst_change = gate.inputs[1] == net;
                                if is_clk_edge || is_rst_change {
                                    if seen[g.idx()] != stamp {
                                        seen[g.idx()] = stamp;
                                        affected.push(g.0);
                                    }
                                    if is_clk_edge {
                                        fire[g.idx()] = stamp;
                                    }
                                }
                            }
                            _ => {
                                if seen[g.idx()] != stamp {
                                    seen[g.idx()] = stamp;
                                    affected.push(g.0);
                                }
                            }
                        }
                    }
                }

                // Phase 3: evaluate and schedule.
                for &gi in &affected {
                    let gate = &self.nl.gates[gi as usize];
                    self.stats.gate_evals += 1;
                    obs.gate_eval(GateId(gi), t);
                    let new_out = match gate.kind {
                        GateKind::Dff => {
                            debug_assert_eq!(fire[gi as usize], stamp);
                            self.values[gate.inputs[1].idx()].input()
                        }
                        GateKind::Dffr => {
                            // Asynchronous active-high reset dominates.
                            if self.values[gate.inputs[1].idx()] == Logic::One {
                                Logic::Zero
                            } else if fire[gi as usize] == stamp {
                                self.values[gate.inputs[2].idx()].input()
                            } else {
                                continue; // reset released without an edge
                            }
                        }
                        GateKind::Latch => {
                            if self.values[gate.inputs[0].idx()] == Logic::One {
                                self.values[gate.inputs[1].idx()].input()
                            } else {
                                continue; // opaque: holds value
                            }
                        }
                        _ => self.eval_comb(gi as usize),
                    };
                    if new_out != self.values[gate.output.idx()] {
                        wheel.push(NetEvent {
                            time: t + 1,
                            net: gate.output,
                            value: new_out,
                        });
                    }
                }
            }
        }
        let _ = self.init_zero;
    }

    #[inline]
    fn eval_comb(&self, gi: usize) -> Logic {
        let g = &self.nl.gates[gi];
        match g.kind {
            GateKind::Buf => self.values[g.inputs[0].idx()].input(),
            GateKind::Not => self.values[g.inputs[0].idx()].not(),
            GateKind::Const0 => Logic::Zero,
            GateKind::Const1 => Logic::One,
            _ => {
                // Variadic gates: evaluate over the input slice without
                // allocating.
                let it = g.inputs.iter().map(|n| self.values[n.idx()]);
                match g.kind {
                    GateKind::And => it.fold(Logic::One, Logic::and),
                    GateKind::Nand => it.fold(Logic::One, Logic::and).not(),
                    GateKind::Or => it.fold(Logic::Zero, Logic::or),
                    GateKind::Nor => it.fold(Logic::Zero, Logic::or).not(),
                    GateKind::Xor => it.fold(Logic::Zero, Logic::xor),
                    GateKind::Xnor => it.fold(Logic::Zero, Logic::xor).not(),
                    _ => {
                        let inputs: Vec<Logic> = it.collect();
                        eval_combinational(g.kind, &inputs)
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_verilog::parse_and_elaborate;

    fn sim_outputs(src: &str, cycles: u64, seed: u64) -> (Vec<(String, Logic)>, SimStats) {
        let d = parse_and_elaborate(src).unwrap();
        let nl = d.into_netlist();
        let cfg = SimConfig {
            cycles,
            init_zero: true,
        };
        let mut sim = SeqSim::new(&nl, &cfg);
        let stim = VectorStimulus::from_netlist(&nl, 10, seed);
        sim.run(&stim, cycles, &mut NullObserver);
        let outs = nl
            .primary_outputs
            .iter()
            .map(|&o| (nl.nets[o.idx()].name.clone(), sim.value(o)))
            .collect();
        (outs, sim.stats().clone())
    }

    #[test]
    fn inverter_follows_input() {
        let d = parse_and_elaborate("module top(a, y); input a; output y; not n (y, a); endmodule")
            .unwrap();
        let nl = d.into_netlist();
        let mut sim = SeqSim::new(&nl, &SimConfig::default());
        let stim = VectorStimulus::from_netlist(&nl, 10, 3);
        sim.run(&stim, 50, &mut NullObserver);
        let a = nl.primary_inputs[0];
        let y = nl.primary_outputs[0];
        assert_eq!(sim.value(y), sim.value(a).not());
        assert!(sim.stats().gate_evals > 0);
    }

    #[test]
    fn full_adder_truth() {
        // Drive a full adder through all 8 input combinations explicitly by
        // checking the final state is consistent: sum = a^b^cin.
        let src = r#"
            module top(a, b, cin, sum, cout);
              input a, b, cin; output sum, cout;
              wire s1, c1, c2;
              xor x1 (s1, a, b);
              xor x2 (sum, s1, cin);
              and a1 (c1, a, b);
              and a2 (c2, s1, cin);
              or  o1 (cout, c1, c2);
            endmodule
        "#;
        let d = parse_and_elaborate(src).unwrap();
        let nl = d.into_netlist();
        for seed in 0..8 {
            let mut sim = SeqSim::new(&nl, &SimConfig::default());
            let stim = VectorStimulus::from_netlist(&nl, 16, seed);
            sim.run(&stim, 20, &mut NullObserver);
            let v = |i: usize| sim.value(nl.primary_inputs[i]);
            let (a, b, cin) = (v(0), v(1), v(2));
            let sum = sim.value(nl.primary_outputs[0]);
            let cout = sim.value(nl.primary_outputs[1]);
            assert_eq!(sum, a.xor(b).xor(cin), "seed {seed}");
            assert_eq!(cout, a.and(b).or(a.xor(b).and(cin)), "seed {seed}");
        }
    }

    #[test]
    fn dff_captures_on_rising_edge_only() {
        let src = r#"
            module top(clk, d, q);
              input clk, d; output q;
              dff f (q, clk, d);
            endmodule
        "#;
        let d = parse_and_elaborate(src).unwrap();
        let nl = d.into_netlist();
        let mut sim = SeqSim::new(&nl, &SimConfig::default());
        let stim = VectorStimulus::from_netlist(&nl, 10, 5);
        sim.run(&stim, 40, &mut NullObserver);
        // After the last full cycle, q equals the d bit of the last cycle
        // (captured at the rising edge mid-period; d is stable across it).
        let q = sim.value(nl.primary_outputs[0]);
        let d_net = stim.data_inputs[0];
        assert_eq!(q, stim.bit(d_net, 39));
    }

    #[test]
    fn toggle_counter_divides_clock() {
        // q toggles every rising clock edge: q' = not q.
        let src = r#"
            module top(clk, q);
              input clk; output q;
              wire nq;
              not n (nq, q);
              dff f (q, clk, nq);
            endmodule
        "#;
        let d = parse_and_elaborate(src).unwrap();
        let nl = d.into_netlist();
        let mut sim = SeqSim::new(&nl, &SimConfig::default());
        let stim = VectorStimulus::from_netlist(&nl, 10, 1);
        // After an even number of edges q returns to 0.
        sim.run(&stim, 8, &mut NullObserver);
        assert_eq!(sim.value(nl.primary_outputs[0]), Logic::Zero);
        let mut sim2 = SeqSim::new(&nl, &SimConfig::default());
        sim2.run(&stim, 7, &mut NullObserver);
        assert_eq!(sim2.value(nl.primary_outputs[0]), Logic::One);
    }

    #[test]
    fn dffr_reset_dominates_and_is_async() {
        // q follows d on clock edges while rst=0; rst=1 clears q without a
        // clock edge. Drive rst from a data input so random vectors exercise
        // both phases; then pin rst high via a harness to check the clear.
        let src = r#"
            module top(clk, q);
              input clk; output q;
              wire nq;
              supply0 rst;
              not n (nq, q);
              dffr f (q, clk, rst, nq);
            endmodule
        "#;
        // With rst tied low this is exactly the toggle flop: q = parity of
        // clock edges.
        let d = parse_and_elaborate(src).unwrap();
        let nl = d.into_netlist();
        let stim = VectorStimulus::from_netlist(&nl, 10, 1);
        let mut sim = SeqSim::new(&nl, &SimConfig::default());
        sim.run(&stim, 8, &mut NullObserver);
        assert_eq!(sim.value(nl.primary_outputs[0]), Logic::Zero);
        let mut sim2 = SeqSim::new(&nl, &SimConfig::default());
        sim2.run(&stim, 7, &mut NullObserver);
        assert_eq!(sim2.value(nl.primary_outputs[0]), Logic::One);

        // Reset tied high: q stays 0 no matter how many edges.
        let src_rst = r#"
            module top(clk, q);
              input clk; output q;
              wire nq;
              supply1 rst;
              not n (nq, q);
              dffr f (q, clk, rst, nq);
            endmodule
        "#;
        let d = parse_and_elaborate(src_rst).unwrap();
        let nl = d.into_netlist();
        let stim = VectorStimulus::from_netlist(&nl, 10, 1);
        let mut sim = SeqSim::new(&nl, &SimConfig::default());
        sim.run(&stim, 9, &mut NullObserver);
        assert_eq!(sim.value(nl.primary_outputs[0]), Logic::Zero);
    }

    #[test]
    fn dffr_async_clear_without_edge() {
        // rst is a data input; whenever the vector sets rst=1 the flop
        // clears immediately (no clock needed): feed d from constant 1 and
        // check q == not(rst) relationship settles per cycle... precisely:
        // after a cycle with rst=1, q is 0 even though d=1 was captured on
        // earlier edges.
        let src = r#"
            module top(clk, rst, q);
              input clk, rst; output q;
              supply1 one;
              dffr f (q, clk, rst, one);
            endmodule
        "#;
        let d = parse_and_elaborate(src).unwrap();
        let nl = d.into_netlist();
        let stim = VectorStimulus::from_netlist(&nl, 10, 3);
        // Find the rst input (non-clock PI).
        let rst = stim.data_inputs[0];
        // Simulate increasing cycle counts; whenever the last vector had
        // rst=1, q must be 0; when rst=0, the clock edge captured 1.
        for cycles in 3..12u64 {
            let mut sim = SeqSim::new(&nl, &SimConfig::default());
            sim.run(&stim, cycles, &mut NullObserver);
            let last_rst = stim.bit(rst, cycles - 1);
            let q = sim.value(nl.primary_outputs[0]);
            if last_rst == Logic::One {
                assert_eq!(q, Logic::Zero, "cycles={cycles}");
            } else {
                assert_eq!(q, Logic::One, "cycles={cycles}");
            }
        }
    }

    #[test]
    fn latch_is_transparent_when_enabled() {
        let src = r#"
            module top(en, d, q);
              input en, d; output q;
              latch l (q, en, d);
            endmodule
        "#;
        let d = parse_and_elaborate(src).unwrap();
        let nl = d.into_netlist();
        let mut sim = SeqSim::new(&nl, &SimConfig::default());
        // No clock: both inputs are data; just check q tracks d while en=1
        // on some seed where the last vector has en=1.
        let stim = VectorStimulus::from_netlist(&nl, 10, 2);
        sim.run(&stim, 30, &mut NullObserver);
        let en = sim.value(nl.primary_inputs[0]);
        if en == Logic::One {
            assert_eq!(
                sim.value(nl.primary_outputs[0]),
                sim.value(nl.primary_inputs[1])
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let src = r#"
            module top(clk, a, b, q);
              input clk, a, b; output q;
              wire w1, w2;
              xor x (w1, a, b);
              dff f (w2, clk, w1);
              and g (q, w2, a);
            endmodule
        "#;
        let (o1, s1) = sim_outputs(src, 100, 11);
        let (o2, s2) = sim_outputs(src, 100, 11);
        assert_eq!(o1, o2);
        assert_eq!(s1, s2);
        let (o3, _) = sim_outputs(src, 100, 12);
        // Different seeds will usually end in a different state; at minimum
        // the run must complete.
        let _ = o3;
    }

    #[test]
    fn stats_count_activity() {
        let (_, stats) = sim_outputs(
            "module top(a, y); input a; output y; not n (y, a); endmodule",
            50,
            1,
        );
        assert_eq!(stats.cycles, 50);
        assert!(stats.events >= 50, "events {}", stats.events);
        assert!(stats.gate_evals <= stats.events * 2);
        assert!(stats.net_toggles <= stats.events);
    }

    #[test]
    fn x_initialization_propagates() {
        let src = "module top(a, y); input a; output y; buf b (y, a); endmodule";
        let d = parse_and_elaborate(src).unwrap();
        let nl = d.into_netlist();
        let cfg = SimConfig {
            cycles: 0,
            init_zero: false,
        };
        let sim = SeqSim::new(&nl, &cfg);
        assert_eq!(sim.value(nl.primary_outputs[0]), Logic::X);
    }

    #[test]
    fn constants_settle() {
        let src = r#"
            module top(y);
              output y;
              supply1 vdd;
              supply0 gnd;
              or o (y, gnd, vdd);
            endmodule
        "#;
        let d = parse_and_elaborate(src).unwrap();
        let nl = d.into_netlist();
        let mut sim = SeqSim::new(&nl, &SimConfig::default());
        let stim = VectorStimulus::from_netlist(&nl, 10, 1);
        sim.run(&stim, 2, &mut NullObserver);
        assert_eq!(sim.value(nl.primary_outputs[0]), Logic::One);
    }
}
