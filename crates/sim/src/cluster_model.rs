//! Deterministic model of the paper's 4-node simulation cluster.
//!
//! The paper measures wall-clock time, message counts and rollback counts on
//! a cluster of AMD Athlon (1 GHz) machines connected by gigabit Ethernet,
//! running Clustered Time Warp over MPICH. We do not have that cluster; we
//! have something better for reproducibility: a **meta-simulation**. The
//! real workload is profiled exactly — the sequential kernel attributes
//! every gate evaluation and every cut-net toggle to a (machine, cycle)
//! bucket — and a discrete model of the machines' wall-clock progression
//! replays that workload with per-event CPU cost, per-message CPU overhead,
//! network latency and an optimism/rollback penalty.
//!
//! What the model preserves (and what the tables/figures need):
//!
//! * **message counts are exact**: one message per remote reader per cut-net
//!   toggle, exactly as DVS would send them;
//! * **load is exact**: per-machine event counts come from the real
//!   simulation of the real partition;
//! * **rollback counts and times are modeled**: a machine that finishes its
//!   share of a cycle early runs ahead optimistically; a message arriving
//!   after its local finish forces a rollback whose cost is proportional to
//!   how far ahead it got. This reproduces the paper's qualitative behaviour
//!   (more machines ⇒ more messages ⇒ more rollbacks; larger `b` ⇒ smaller
//!   cut ⇒ fewer messages and rollbacks; communication eventually overwhelms
//!   added parallelism).
//!
//! Everything is deterministic given the stimulus seed.

use crate::cluster::ClusterPlan;
use crate::seq::{SeqSim, SimConfig, SimObserver};
use crate::stats::SimStats;
use crate::stimulus::VectorStimulus;
use crate::wheel::VTime;
use dvs_verilog::netlist::{GateId, NetId, Netlist};
use std::time::Instant;

/// Cost model constants. Defaults approximate the paper's testbed: a 1 GHz
/// Athlon evaluating roughly one gate event per microsecond, MPICH-over-TCP
/// per-message CPU cost in the tens of microseconds, and gigabit-Ethernet
/// one-way latency around 60 µs for small messages.
#[derive(Debug, Clone)]
pub struct ClusterModelConfig {
    /// CPU nanoseconds per gate event.
    pub event_cost_ns: f64,
    /// CPU nanoseconds per message sent or received (MPICH stack overhead).
    pub msg_cpu_ns: f64,
    /// One-way network latency in nanoseconds.
    pub latency_ns: f64,
    /// Wasted-work multiplier applied to the wall-clock gap by which a
    /// machine had run ahead when a straggler arrived.
    pub rollback_penalty: f64,
    /// Cycle-bucket cap: long runs are folded into at most this many
    /// buckets to bound memory (counts stay exact; timing granularity
    /// coarsens).
    pub max_buckets: usize,
    /// When set, `event_cost_ns` is re-derived after profiling so the
    /// modeled *sequential* time per vector equals this many nanoseconds —
    /// anchoring the compute/communication balance to a measured testbed
    /// figure regardless of circuit scale or activity. The paper reports
    /// 38.93 s for 10 000 vectors sequentially, i.e. 3.893 ms/vector.
    pub calibrate_seq_ns_per_cycle: Option<f64>,
}

impl Default for ClusterModelConfig {
    fn default() -> Self {
        ClusterModelConfig {
            event_cost_ns: 1_000.0,
            msg_cpu_ns: 25_000.0,
            latency_ns: 60_000.0,
            rollback_penalty: 0.5,
            max_buckets: 16_384,
            calibrate_seq_ns_per_cycle: None,
        }
    }
}

impl ClusterModelConfig {
    /// The calibrated paper-testbed model: per-event cost is anchored so
    /// that the sequential simulation of one vector costs what the paper
    /// measured on the 1 GHz Athlon (38.93 s / 10 000 vectors), keeping the
    /// compute/communication balance that determines speedup at paper scale
    /// even on scaled-down circuit instances. Message CPU cost is fitted so
    /// the per-cycle communication budget at the paper's best configuration
    /// (k=4, b=7.5) reproduces its measured parallel inefficiency; see
    /// EXPERIMENTS.md for the derivation.
    pub fn athlon_cluster(_actual_gates: usize) -> Self {
        ClusterModelConfig {
            calibrate_seq_ns_per_cycle: Some(3.893e6),
            msg_cpu_ns: 5_000.0,
            ..Default::default()
        }
    }
}

/// Host wall-clock cost of one modeled cluster run, split by stage. These
/// are *measurement* times on the machine running the reproduction, not
/// modeled cluster times — they vary run to run and must never enter any
/// determinism comparison.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunTiming {
    /// Seconds spent profiling the workload with the sequential kernel.
    pub profile_seconds: f64,
    /// Seconds spent meta-simulating the machines' wall clocks.
    pub model_seconds: f64,
}

/// Result of a modeled cluster run.
#[derive(Debug, Clone)]
pub struct ClusterRun {
    /// Aggregate statistics. `messages` and `events` are exact; `rollbacks`
    /// and `rolled_back_events` are modeled.
    pub stats: SimStats,
    /// Modeled parallel wall-clock seconds.
    pub wall_seconds: f64,
    /// Modeled one-machine wall-clock seconds for the same workload.
    pub seq_seconds: f64,
    /// `seq_seconds / wall_seconds`.
    pub speedup: f64,
    /// Exact per-machine gate-event counts.
    pub machine_events: Vec<u64>,
    /// Modeled per-machine rollback counts.
    pub machine_rollbacks: Vec<u64>,
    /// Exact per-machine sent-message counts.
    pub machine_messages: Vec<u64>,
    /// Host wall-clock cost of producing this run (profiling + modeling).
    pub timing: RunTiming,
}

/// Profiling observer: attributes gate events and cut-net toggles to
/// (machine, cycle-bucket).
struct Profiler<'p> {
    k: usize,
    period: VTime,
    cycles_per_bucket: u64,
    buckets: usize,
    gate_block: &'p [u32],
    /// For cut nets: (source machine, destinations); dense by net id.
    route: Vec<Option<(u32, Vec<u32>)>>,
    /// ev[bucket * k + machine] = gate events.
    ev: Vec<u64>,
    /// sent[bucket * k + machine] / recv likewise.
    sent: Vec<u64>,
    recv: Vec<u64>,
    /// msg[(bucket * k + src) * k + dst] = messages.
    msg: Vec<u64>,
}

impl<'p> Profiler<'p> {
    #[inline]
    fn bucket(&self, t: VTime) -> usize {
        (((t / self.period) / self.cycles_per_bucket) as usize).min(self.buckets - 1)
    }
}

impl<'p> SimObserver for Profiler<'p> {
    #[inline]
    fn gate_eval(&mut self, gate: GateId, time: VTime) {
        let b = self.bucket(time);
        let m = self.gate_block[gate.idx()] as usize;
        self.ev[b * self.k + m] += 1;
    }

    #[inline]
    fn net_change(&mut self, net: NetId, time: VTime, _value: crate::logic::Logic) {
        if let Some((src, dests)) = &self.route[net.idx()] {
            let b = self.bucket(time);
            let s = *src as usize;
            self.sent[b * self.k + s] += dests.len() as u64;
            for &d in dests {
                self.recv[b * self.k + d as usize] += 1;
                self.msg[(b * self.k + s) * self.k + d as usize] += 1;
            }
        }
    }
}

/// The deterministic cluster meta-simulation.
pub struct ClusterModel<'a> {
    nl: &'a Netlist,
    plan: ClusterPlan,
    cfg: ClusterModelConfig,
}

impl<'a> ClusterModel<'a> {
    pub fn new(nl: &'a Netlist, plan: ClusterPlan, cfg: ClusterModelConfig) -> Self {
        ClusterModel { nl, plan, cfg }
    }

    pub fn plan(&self) -> &ClusterPlan {
        &self.plan
    }

    /// Profile `cycles` vectors of `stim` and model the cluster's execution.
    pub fn run(&self, stim: &VectorStimulus, cycles: u64) -> ClusterRun {
        let k = self.plan.k;
        let cycles_per_bucket = (cycles.div_ceil(self.cfg.max_buckets as u64)).max(1);
        let buckets = (cycles.div_ceil(cycles_per_bucket) as usize).max(1);

        // Build the cut-net routing table.
        let mut route: Vec<Option<(u32, Vec<u32>)>> = vec![None; self.nl.net_count()];
        for (ci, cl) in self.plan.clusters.iter().enumerate() {
            for (net, dests) in &cl.exports {
                route[net.idx()] = Some((ci as u32, dests.clone()));
            }
        }

        let mut prof = Profiler {
            k,
            period: stim.period,
            cycles_per_bucket,
            buckets,
            gate_block: &self.plan.gate_block,
            route,
            ev: vec![0; buckets * k],
            sent: vec![0; buckets * k],
            recv: vec![0; buckets * k],
            msg: vec![0; buckets * k * k],
        };

        // Exact workload profile from the sequential kernel.
        let t_profile = Instant::now();
        let sim_cfg = SimConfig {
            cycles,
            init_zero: true,
        };
        let mut sim = SeqSim::new(self.nl, &sim_cfg);
        sim.run(stim, cycles, &mut prof);
        let base = sim.stats().clone();
        let profile_seconds = t_profile.elapsed().as_secs_f64();

        // Meta-simulate the machines' wall clocks.
        let t_model = Instant::now();
        let ev_ns = match self.cfg.calibrate_seq_ns_per_cycle {
            Some(per_cycle) if base.gate_evals > 0 && cycles > 0 => {
                per_cycle * cycles as f64 / base.gate_evals as f64
            }
            _ => self.cfg.event_cost_ns,
        };
        let msg_ns = self.cfg.msg_cpu_ns;
        let lat_ns = self.cfg.latency_ns;

        let mut finish = vec![0.0f64; k]; // committed wall time per machine
        let mut start = vec![0.0f64; k]; // bucket start per machine
        let mut local = vec![0.0f64; k];
        let mut rollbacks = vec![0u64; k];
        let mut rolled_back_events = 0u64;
        let mut anti_messages = 0u64;
        let mut machine_events = vec![0u64; k];
        let mut machine_messages = vec![0u64; k];

        for b in 0..buckets {
            // Local finish: prior commit + compute + message CPU.
            for p in 0..k {
                let e = prof.ev[b * k + p];
                machine_events[p] += e;
                machine_messages[p] += prof.sent[b * k + p];
                start[p] = finish[p];
                local[p] = finish[p]
                    + e as f64 * ev_ns
                    + (prof.sent[b * k + p] + prof.recv[b * k + p]) as f64 * msg_ns;
            }
            // Arrivals and rollbacks. A sender's messages are spread
            // uniformly over its compute span; the fraction arriving after
            // the receiver's local finish had a chance of straggling, and
            // the probability that at least one message of the batch was
            // late gives a smooth expected rollback count (saturating at
            // one rollback per sender per bucket, matching CTW behaviour
            // where a straggler batch triggers a single rollback).
            for p in 0..k {
                let mut latest_arrival = 0.0f64;
                let mut expected_rollbacks = 0.0f64;
                for q in 0..k {
                    let mcount = prof.msg[(b * k + q) * k + p];
                    if q == p || mcount == 0 {
                        continue;
                    }
                    let a_first = start[q] + lat_ns;
                    let a_last = local[q] + lat_ns;
                    latest_arrival = latest_arrival.max(a_last);
                    let spread = (a_last - a_first).max(1.0);
                    let late_frac = ((a_last - local[p]) / spread).clamp(0.0, 1.0);
                    if late_frac > 0.0 {
                        // P(at least one of mcount messages is late).
                        let p_roll = 1.0 - (1.0 - late_frac).powi(mcount.min(1_000) as i32);
                        expected_rollbacks += p_roll;
                    }
                }
                rollbacks[p] += expected_rollbacks.round() as u64;
                if latest_arrival > local[p] {
                    // The machine ran ahead by `gap` while waiting, then
                    // redoes invalidated optimistic work. It cannot have
                    // executed (and so cannot redo) more than its own
                    // compute span worth of look-ahead, which bounds the
                    // penalty and keeps the recurrence stable.
                    let gap = latest_arrival - local[p];
                    let span = (local[p] - start[p]).max(0.0);
                    let undone = gap.min(span);
                    let redo = undone * self.cfg.rollback_penalty;
                    rolled_back_events += (undone / ev_ns) as u64;
                    // Sends made during the undone optimistic span are
                    // cancelled with anti-messages, pro rata over the span.
                    if span > 0.0 {
                        anti_messages +=
                            ((undone / span) * prof.sent[b * k + p] as f64).round() as u64;
                    }
                    finish[p] = latest_arrival + redo;
                } else {
                    finish[p] = local[p];
                }
            }
        }

        let wall_ns: f64 = finish.iter().copied().fold(0.0, f64::max);
        let seq_ns = base.gate_evals as f64 * ev_ns;

        let mut stats = base;
        stats.messages = machine_messages.iter().sum();
        stats.rollbacks = rollbacks.iter().sum();
        stats.rolled_back_events = rolled_back_events;
        if k > 1 {
            // The modeled Time Warp bookkeeping: each cycle bucket ends in
            // one GVT advance that commits and reclaims the bucket's
            // history, so every committed event is eventually fossil
            // collected. A single machine runs no Time Warp machinery.
            stats.anti_messages = anti_messages;
            stats.gvt_rounds = buckets as u64;
            stats.fossil_collected = stats.events;
        }

        ClusterRun {
            wall_seconds: wall_ns / 1e9,
            seq_seconds: seq_ns / 1e9,
            speedup: if wall_ns > 0.0 { seq_ns / wall_ns } else { 1.0 },
            stats,
            machine_events,
            machine_rollbacks: rollbacks,
            machine_messages,
            timing: RunTiming {
                profile_seconds,
                model_seconds: t_model.elapsed().as_secs_f64(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_verilog::parse_and_elaborate;

    /// A chain of inverters with a few DFF stages — enough activity to
    /// profile.
    fn pipeline_netlist() -> Netlist {
        let mut src = String::from("module top(clk, a, y);\n input clk, a; output y;\n");
        let stages = 12;
        for i in 0..=stages {
            src.push_str(&format!(" wire w{i};\n"));
        }
        src.push_str(" buf b_in (w0, a);\n");
        for i in 0..stages {
            if i % 4 == 3 {
                src.push_str(&format!(" dff d{i} (w{}, clk, w{i});\n", i + 1));
            } else {
                src.push_str(&format!(" not n{i} (w{}, w{i});\n", i + 1));
            }
        }
        src.push_str(&format!(" buf b_out (y, w{stages});\n"));
        src.push_str("endmodule\n");
        parse_and_elaborate(&src).unwrap().into_netlist()
    }

    fn block_split(nl: &Netlist, k: usize) -> Vec<u32> {
        // Contiguous split by gate index.
        let n = nl.gate_count();
        (0..n).map(|i| ((i * k) / n) as u32).collect()
    }

    #[test]
    fn single_machine_has_no_overhead() {
        let nl = pipeline_netlist();
        let plan = ClusterPlan::new(&nl, &vec![0; nl.gate_count()], 1);
        let model = ClusterModel::new(&nl, plan, ClusterModelConfig::default());
        let stim = VectorStimulus::from_netlist(&nl, 10, 1);
        let run = model.run(&stim, 200);
        assert_eq!(run.stats.messages, 0);
        assert_eq!(run.stats.rollbacks, 0);
        assert!((run.speedup - 1.0).abs() < 1e-9);
        assert!(run.wall_seconds > 0.0);
        assert!(run.timing.profile_seconds > 0.0);
        assert!(run.timing.model_seconds >= 0.0);
    }

    #[test]
    fn messages_are_exact_and_deterministic() {
        let nl = pipeline_netlist();
        let gb = block_split(&nl, 2);
        let plan = ClusterPlan::new(&nl, &gb, 2);
        let model = ClusterModel::new(&nl, plan, ClusterModelConfig::default());
        let stim = VectorStimulus::from_netlist(&nl, 10, 7);
        let r1 = model.run(&stim, 100);
        let r2 = model.run(&stim, 100);
        assert_eq!(r1.stats.messages, r2.stats.messages);
        assert_eq!(r1.stats.rollbacks, r2.stats.rollbacks);
        assert!(r1.stats.messages > 0, "split pipeline must communicate");
        assert_eq!(r1.machine_events.iter().sum::<u64>(), r1.stats.gate_evals);
    }

    #[test]
    fn more_cut_means_more_messages() {
        let nl = pipeline_netlist();
        let stim = VectorStimulus::from_netlist(&nl, 10, 3);
        // Contiguous split: cuts the chain once or twice.
        let good = ClusterPlan::new(&nl, &block_split(&nl, 2), 2);
        // Pathological split: alternate gates.
        let bad_gb: Vec<u32> = (0..nl.gate_count()).map(|i| (i % 2) as u32).collect();
        let bad = ClusterPlan::new(&nl, &bad_gb, 2);
        assert!(bad.cut_nets() > good.cut_nets());
        let cfg = ClusterModelConfig::default();
        let rg = ClusterModel::new(&nl, good, cfg.clone()).run(&stim, 100);
        let rb = ClusterModel::new(&nl, bad, cfg).run(&stim, 100);
        assert!(
            rb.stats.messages > rg.stats.messages,
            "bad {} vs good {}",
            rb.stats.messages,
            rg.stats.messages
        );
        assert!(rb.wall_seconds > rg.wall_seconds);
    }

    #[test]
    fn bucket_folding_preserves_counts() {
        let nl = pipeline_netlist();
        let gb = block_split(&nl, 2);
        let stim = VectorStimulus::from_netlist(&nl, 10, 5);
        let small = ClusterModelConfig {
            max_buckets: 4,
            ..Default::default()
        };
        let r_small = ClusterModel::new(&nl, ClusterPlan::new(&nl, &gb, 2), small).run(&stim, 100);
        let r_big = ClusterModel::new(
            &nl,
            ClusterPlan::new(&nl, &gb, 2),
            ClusterModelConfig::default(),
        )
        .run(&stim, 100);
        assert_eq!(r_small.stats.messages, r_big.stats.messages);
        assert_eq!(r_small.stats.gate_evals, r_big.stats.gate_evals);
    }

    #[test]
    fn athlon_config_calibrates() {
        let c = ClusterModelConfig::athlon_cluster(12_000);
        assert_eq!(c.calibrate_seq_ns_per_cycle, Some(3.893e6));
        assert!(c.msg_cpu_ns > 0.0 && c.latency_ns > 0.0);
    }

    #[test]
    fn calibration_pins_seq_time_per_cycle() {
        let nl = pipeline_netlist();
        let plan = ClusterPlan::new(&nl, &vec![0; nl.gate_count()], 1);
        let cfg = ClusterModelConfig {
            calibrate_seq_ns_per_cycle: Some(2.0e6), // 2 ms per vector
            ..Default::default()
        };
        let model = ClusterModel::new(&nl, plan, cfg);
        let stim = VectorStimulus::from_netlist(&nl, 10, 1);
        let run = model.run(&stim, 100);
        let per_cycle = run.seq_seconds / 100.0;
        assert!((per_cycle - 2.0e-3).abs() < 1e-9, "per-cycle {per_cycle}");
    }
}
