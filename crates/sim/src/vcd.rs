//! VCD (Value Change Dump, IEEE 1364 §18) waveform output.
//!
//! A [`VcdRecorder`] is a [`SimObserver`]: attach it to a sequential
//! simulation run and it captures the value changes of a chosen set of
//! nets, then serializes them as a standard VCD file readable by GTKWave
//! and friends.
//!
//! ```
//! use dvs_sim::seq::{SeqSim, SimConfig};
//! use dvs_sim::stimulus::VectorStimulus;
//! use dvs_sim::vcd::VcdRecorder;
//! use dvs_sim::Logic;
//!
//! let src = "module top(a, y); input a; output y; not n (y, a); endmodule";
//! let nl = dvs_verilog::parse_and_elaborate(src).unwrap().into_netlist();
//! let mut rec = VcdRecorder::ports_only(&nl, Logic::Zero);
//! let mut sim = SeqSim::new(&nl, &SimConfig::default());
//! let stim = VectorStimulus::from_netlist(&nl, 10, 1);
//! sim.run(&stim, 20, &mut rec);
//! let vcd = rec.to_vcd("top", 1);
//! assert!(vcd.contains("$enddefinitions"));
//! ```

use crate::logic::Logic;
use crate::seq::SimObserver;
use crate::wheel::VTime;
use dvs_verilog::netlist::{NetId, Netlist};
use std::fmt::Write as _;

/// Records value changes for a chosen set of nets.
pub struct VcdRecorder {
    /// Dense map net → index into `tracked` (`u32::MAX` = untracked).
    slot_of: Vec<u32>,
    tracked: Vec<TrackedNet>,
    /// (time, slot, value) in observation order.
    changes: Vec<(VTime, u32, Logic)>,
}

struct TrackedNet {
    name: String,
    id_code: String,
    initial: Logic,
}

/// The compact VCD identifier code for index `i` (printable ASCII
/// 33..=126, bijective base-94).
fn id_code(mut i: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((33 + (i % 94)) as u8 as char);
        i /= 94;
        if i == 0 {
            return s;
        }
        i -= 1;
    }
}

impl VcdRecorder {
    /// Track the nets selected by `want`. `initial` supplies the value at
    /// time 0 (`Logic::Zero` for the default `init_zero` configuration,
    /// `Logic::X` otherwise).
    pub fn new(nl: &Netlist, initial: Logic, mut want: impl FnMut(NetId, &str) -> bool) -> Self {
        let mut slot_of = vec![u32::MAX; nl.net_count()];
        let mut tracked = Vec::new();
        for (ni, net) in nl.nets.iter().enumerate() {
            if want(NetId(ni as u32), &net.name) {
                slot_of[ni] = tracked.len() as u32;
                tracked.push(TrackedNet {
                    name: net.name.clone(),
                    id_code: id_code(tracked.len()),
                    initial,
                });
            }
        }
        VcdRecorder {
            slot_of,
            tracked,
            changes: Vec::new(),
        }
    }

    /// Track every primary input and output.
    pub fn ports_only(nl: &Netlist, initial: Logic) -> Self {
        let mut is_port = vec![false; nl.net_count()];
        for &p in nl.primary_inputs.iter().chain(&nl.primary_outputs) {
            is_port[p.idx()] = true;
        }
        Self::new(nl, initial, |n, _| is_port[n.idx()])
    }

    /// Track all nets (small designs only — every toggle is recorded).
    pub fn all_nets(nl: &Netlist, initial: Logic) -> Self {
        Self::new(nl, initial, |_, _| true)
    }

    pub fn tracked_count(&self) -> usize {
        self.tracked.len()
    }

    pub fn change_count(&self) -> usize {
        self.changes.len()
    }

    /// Record a change directly (used by the observer hook; public for
    /// kernels that do not implement [`SimObserver`]).
    pub fn record(&mut self, net: NetId, time: VTime, value: Logic) {
        let slot = self.slot_of[net.idx()];
        if slot != u32::MAX {
            self.changes.push((time, slot, value));
        }
    }

    /// Serialize to VCD text. `timescale_ns` is the real-time length of one
    /// gate delay for the `$timescale` header.
    // `core::fmt::Write` into a `String` is infallible (OOM aborts); the
    // `unwrap`s below can never fire.
    #[allow(clippy::unwrap_used)]
    pub fn to_vcd(&self, design_name: &str, timescale_ns: u32) -> String {
        let mut out = String::new();
        writeln!(out, "$date\n  (dvs-sim)\n$end").unwrap();
        writeln!(out, "$version\n  dvs-sim VCD dump\n$end").unwrap();
        writeln!(out, "$timescale {timescale_ns}ns $end").unwrap();
        writeln!(out, "$scope module {design_name} $end").unwrap();
        for t in &self.tracked {
            // VCD reference names may not contain brackets or dots the way
            // elaboration writes them; normalize for display.
            let disp = t.name.replace(['.', '['], "_").replace(']', "");
            writeln!(out, "$var wire 1 {} {} $end", t.id_code, disp).unwrap();
        }
        writeln!(out, "$upscope $end").unwrap();
        writeln!(out, "$enddefinitions $end").unwrap();

        writeln!(out, "#0").unwrap();
        writeln!(out, "$dumpvars").unwrap();
        for t in &self.tracked {
            writeln!(out, "{}{}", t.initial.display_char(), t.id_code).unwrap();
        }
        writeln!(out, "$end").unwrap();

        // The sequential kernel reports changes in nondecreasing time
        // order; a stable sort guards recorders fed manually.
        let mut changes = self.changes.clone();
        changes.sort_by_key(|&(t, _, _)| t);
        let mut cur_time = 0;
        for (t, slot, v) in changes {
            if t != cur_time {
                writeln!(out, "#{t}").unwrap();
                cur_time = t;
            }
            writeln!(
                out,
                "{}{}",
                v.display_char(),
                self.tracked[slot as usize].id_code
            )
            .unwrap();
        }
        out
    }
}

impl SimObserver for VcdRecorder {
    #[inline]
    fn net_change(&mut self, net: NetId, time: VTime, value: Logic) {
        self.record(net, time, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{SeqSim, SimConfig};
    use crate::stimulus::VectorStimulus;
    use dvs_verilog::parse_and_elaborate;

    fn toggle_netlist() -> Netlist {
        parse_and_elaborate(
            "module top(clk, q); input clk; output q;\n\
             wire nq; not n (nq, q); dff f (q, clk, nq); endmodule",
        )
        .unwrap()
        .into_netlist()
    }

    fn run_recorded(rec: &mut VcdRecorder, cycles: u64) {
        let nl = toggle_netlist();
        let mut sim = SeqSim::new(&nl, &SimConfig::default());
        let stim = VectorStimulus::from_netlist(&nl, 10, 1);
        sim.run(&stim, cycles, rec);
    }

    #[test]
    fn id_codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            let c = id_code(i);
            assert!(c.bytes().all(|b| (33..=126).contains(&b)));
            assert!(seen.insert(c));
        }
        assert_eq!(id_code(0), "!");
        assert_eq!(id_code(93), "~");
        assert_eq!(id_code(94), "!!");
    }

    #[test]
    fn header_lists_tracked_nets() {
        let nl = toggle_netlist();
        let rec = VcdRecorder::ports_only(&nl, Logic::Zero);
        assert_eq!(rec.tracked_count(), 2); // clk, q
        let vcd = rec.to_vcd("top", 1);
        assert!(vcd.contains("$timescale 1ns $end"));
        assert!(vcd.contains("$var wire 1 ! top_clk $end"));
        assert!(vcd.contains("$enddefinitions $end"));
        assert!(vcd.contains("$dumpvars"));
    }

    #[test]
    fn records_toggles_in_time_order() {
        let nl = toggle_netlist();
        let mut rec = VcdRecorder::all_nets(&nl, Logic::Zero);
        let mut sim = SeqSim::new(&nl, &SimConfig::default());
        let stim = VectorStimulus::from_netlist(&nl, 10, 1);
        sim.run(&stim, 10, &mut rec);
        // The toggle flip-flop produces changes every cycle.
        assert!(rec.change_count() >= 10, "{} changes", rec.change_count());
        let vcd = rec.to_vcd("top", 1);
        // Timestamps strictly increase in the dump.
        let times: Vec<u64> = vcd
            .lines()
            .filter(|l| l.starts_with('#'))
            .map(|l| l[1..].parse().unwrap())
            .collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]), "{times:?}");
        // Change lines reference declared id codes only.
        assert!(vcd.contains("1!") || vcd.contains("0!"));
    }

    #[test]
    fn filter_limits_recording() {
        let nl = toggle_netlist();
        let mut rec = VcdRecorder::new(&nl, Logic::Zero, |_, name| name.ends_with(".q"));
        assert_eq!(rec.tracked_count(), 1);
        run_recorded(&mut rec, 8);
        // q toggles once per cycle.
        assert!(
            (7..=9).contains(&rec.change_count()),
            "{}",
            rec.change_count()
        );
    }

    #[test]
    fn untracked_changes_are_dropped() {
        let nl = toggle_netlist();
        let mut rec = VcdRecorder::new(&nl, Logic::Zero, |_, _| false);
        run_recorded(&mut rec, 8);
        assert_eq!(rec.change_count(), 0);
        let vcd = rec.to_vcd("top", 1);
        assert!(vcd.contains("$enddefinitions"));
    }
}
