//! JSON serialization of simulation-level run artifacts.
//!
//! Each crate owns the artifact serialization of its own types (the orphan
//! rule requires it once the JSON traits live in the shared `dvs-json`
//! crate): this module covers simulation statistics, Time Warp run
//! results, recovery provenance, and the schema-versioned [`Checkpoint`]
//! image. The checkpoint serialization doubles as the **wire format** of
//! the process transport ([`crate::timewarp::Transport::Process`]) — a
//! respawned worker is restored from exactly these bytes, which is why the
//! round-trip must be lossless and the capture deterministic.
//!
//! Flow-level artifact assembly (reports, presim points) stays in
//! `dvs_core::artifact`; netlist statistics serialize in
//! `dvs_verilog::artifact`.

use crate::cluster_model::{ClusterRun, RunTiming};
use crate::stats::SimStats;
use crate::timewarp::{
    Checkpoint, CheckpointDelta, CkptEvent, CkptSource, LogDelta, RecoveryOutcome, TwMessage,
    TwRunResult, ValuesDelta, CHECKPOINT_SCHEMA,
};
use crate::wheel::NetEvent;
use crate::wheel::VTime;
use crate::Logic;
use dvs_json::{
    uint_array, uint_vec, FromJson, Json, JsonError, ObjBuilder, ToJson, SCHEMA_VERSION,
};
use dvs_verilog::netlist::NetId;

/// A logic-value vector as a compact display-char string (`"01xz…"`).
pub(crate) fn logic_str(values: &[Logic]) -> String {
    values.iter().map(|v| v.display_char()).collect()
}

pub(crate) fn logic_vec(v: &Json) -> Result<Vec<Logic>, JsonError> {
    v.as_str()?
        .chars()
        .map(|c| {
            Logic::from_display_char(c)
                .ok_or_else(|| JsonError::new(format!("invalid logic value character `{c}`")))
        })
        .collect()
}

pub(crate) fn logic_from_json(v: &Json) -> Result<Logic, JsonError> {
    let s = v.as_str()?;
    let mut chars = s.chars();
    match (
        chars.next().and_then(Logic::from_display_char),
        chars.next(),
    ) {
        (Some(l), None) => Ok(l),
        _ => Err(JsonError::new(format!("invalid logic value `{s}`"))),
    }
}

impl ToJson for SimStats {
    fn to_json(&self) -> Json {
        ObjBuilder::new()
            .uint("events", self.events)
            .uint("gate_evals", self.gate_evals)
            .uint("net_toggles", self.net_toggles)
            .uint("cycles", self.cycles)
            .uint("end_time", self.end_time)
            .uint("messages", self.messages)
            .uint("anti_messages", self.anti_messages)
            .uint("rollbacks", self.rollbacks)
            .uint("rolled_back_events", self.rolled_back_events)
            .uint("gvt_rounds", self.gvt_rounds)
            .uint("fossil_collected", self.fossil_collected)
            .build()
    }
}

impl FromJson for SimStats {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(SimStats {
            events: v.field("events")?.as_u64()?,
            gate_evals: v.field("gate_evals")?.as_u64()?,
            net_toggles: v.field("net_toggles")?.as_u64()?,
            cycles: v.field("cycles")?.as_u64()?,
            end_time: v.field("end_time")?.as_u64()?,
            messages: v.field("messages")?.as_u64()?,
            anti_messages: v.field("anti_messages")?.as_u64()?,
            rollbacks: v.field("rollbacks")?.as_u64()?,
            rolled_back_events: v.field("rolled_back_events")?.as_u64()?,
            gvt_rounds: v.field("gvt_rounds")?.as_u64()?,
            fossil_collected: v.field("fossil_collected")?.as_u64()?,
        })
    }
}

impl ToJson for RunTiming {
    fn to_json(&self) -> Json {
        ObjBuilder::new()
            .float("profile_seconds", self.profile_seconds)
            .float("model_seconds", self.model_seconds)
            .build()
    }
}

impl FromJson for RunTiming {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(RunTiming {
            profile_seconds: v.field("profile_seconds")?.as_f64()?,
            model_seconds: v.field("model_seconds")?.as_f64()?,
        })
    }
}

/// The deterministic portion of a [`ClusterRun`] (everything except the
/// host-side [`RunTiming`]). Public so `dvs_core::artifact` can assemble
/// the canonical flow report from it.
pub fn cluster_run_core(run: &ClusterRun) -> ObjBuilder {
    ObjBuilder::new()
        .field("stats", run.stats.to_json())
        .float("wall_seconds", run.wall_seconds)
        .float("seq_seconds", run.seq_seconds)
        .float("speedup", run.speedup)
        .field("machine_events", uint_array(&run.machine_events))
        .field("machine_rollbacks", uint_array(&run.machine_rollbacks))
        .field("machine_messages", uint_array(&run.machine_messages))
}

impl ToJson for ClusterRun {
    fn to_json(&self) -> Json {
        cluster_run_core(self)
            .field("timing", self.timing.to_json())
            .build()
    }
}

impl FromJson for ClusterRun {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(ClusterRun {
            stats: SimStats::from_json(v.field("stats")?)?,
            wall_seconds: v.field("wall_seconds")?.as_f64()?,
            seq_seconds: v.field("seq_seconds")?.as_f64()?,
            speedup: v.field("speedup")?.as_f64()?,
            machine_events: uint_vec(v.field("machine_events")?)?,
            machine_rollbacks: uint_vec(v.field("machine_rollbacks")?)?,
            machine_messages: uint_vec(v.field("machine_messages")?)?,
            // Host timings default to zero when an artifact omits them
            // (canonical artifacts carry no host measurements).
            timing: match v.get("timing") {
                Some(t) => RunTiming::from_json(t)?,
                None => RunTiming::default(),
            },
        })
    }
}

impl ToJson for RecoveryOutcome {
    fn to_json(&self) -> Json {
        ObjBuilder::new()
            .uint("crashes", self.crashes as u64)
            .uint("restarts", self.restarts as u64)
            .uint("replayed_ops", self.replayed_ops)
            .field(
                "victims",
                uint_array(&self.victims.iter().map(|&c| c as u64).collect::<Vec<_>>()),
            )
            .uint("checkpoint_bytes_full", self.checkpoint_bytes_full)
            .uint("checkpoint_bytes_delta", self.checkpoint_bytes_delta)
            .uint("corrupt_frames", self.corrupt_frames)
            .uint("heartbeats_missed", self.heartbeats_missed)
            .uint("chaos_faults_injected", self.chaos_faults_injected)
            .uint("messages_sent", self.messages_sent)
            .uint("frames_sent", self.frames_sent)
            .uint("messages_folded", self.messages_folded)
            .bool("degraded", self.degraded)
            .build()
    }
}

impl FromJson for RecoveryOutcome {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        // Byte counters (and the victim list) are absent in artifacts
        // written before they existed; they read back as zero/empty.
        let opt_uint =
            |key: &str| -> Result<u64, JsonError> { v.get(key).map_or(Ok(0), |f| f.as_u64()) };
        Ok(RecoveryOutcome {
            crashes: v.field("crashes")?.as_u64()? as u32,
            restarts: v.field("restarts")?.as_u64()? as u32,
            replayed_ops: v.field("replayed_ops")?.as_u64()?,
            victims: match v.get("victims") {
                Some(a) => uint_vec(a)?.into_iter().map(|c| c as u32).collect(),
                None => Vec::new(),
            },
            checkpoint_bytes_full: opt_uint("checkpoint_bytes_full")?,
            checkpoint_bytes_delta: opt_uint("checkpoint_bytes_delta")?,
            corrupt_frames: opt_uint("corrupt_frames")?,
            heartbeats_missed: opt_uint("heartbeats_missed")?,
            chaos_faults_injected: opt_uint("chaos_faults_injected")?,
            messages_sent: opt_uint("messages_sent")?,
            frames_sent: opt_uint("frames_sent")?,
            messages_folded: opt_uint("messages_folded")?,
            degraded: v.field("degraded")?.as_bool()?,
        })
    }
}

/// The simulation content of a Time Warp run — everything except the
/// recovery provenance.
fn tw_run_core(r: &TwRunResult) -> ObjBuilder {
    ObjBuilder::new()
        .field("stats", r.stats.to_json())
        .array(
            "cluster_stats",
            r.cluster_stats.iter().map(|s| s.to_json()).collect(),
        )
        .uint("gvt_rounds", r.gvt_rounds)
        .str("values", &logic_str(&r.values))
}

/// The **canonical** serialization of a Time Warp run: simulation content
/// only, recovery provenance excluded. Under the deterministic transports
/// ([`crate::timewarp::Transport::InProc`] and
/// [`crate::timewarp::Transport::Process`]) every included field is an
/// exact counter, and recovery restores the pre-crash state bit-for-bit —
/// so a run that crashed and recovered emits a canonical artifact
/// byte-identical to the undisturbed run's, *on either transport*. The
/// crash-recovery DST tests and the process kill harness assert exactly
/// that.
pub fn tw_run_canonical_json(r: &TwRunResult) -> Json {
    tw_run_core(r).build()
}

impl ToJson for TwRunResult {
    /// The full serialization: the canonical simulation content plus the
    /// `recovery` provenance block (crashes injected, restarts performed,
    /// operations replayed, victim clusters, degradation flag). Use
    /// [`tw_run_canonical_json`] for crash-invariant comparisons.
    fn to_json(&self) -> Json {
        tw_run_core(self)
            .field("recovery", self.recovery.to_json())
            .build()
    }
}

fn ckpt_source_json(s: &CkptSource) -> Json {
    match *s {
        CkptSource::Stimulus => ObjBuilder::new().str("kind", "stimulus").build(),
        CkptSource::Local { created_at, lseq } => ObjBuilder::new()
            .str("kind", "local")
            .uint("created_at", created_at)
            .uint("lseq", lseq)
            .build(),
        CkptSource::Remote { src, seq } => ObjBuilder::new()
            .str("kind", "remote")
            .uint("src", src as u64)
            .uint("seq", seq)
            .build(),
    }
}

fn ckpt_source_from_json(v: &Json) -> Result<CkptSource, JsonError> {
    match v.field("kind")?.as_str()? {
        "stimulus" => Ok(CkptSource::Stimulus),
        "local" => Ok(CkptSource::Local {
            created_at: v.field("created_at")?.as_u64()?,
            lseq: v.field("lseq")?.as_u64()?,
        }),
        "remote" => Ok(CkptSource::Remote {
            src: v.field("src")?.as_u64()? as u32,
            seq: v.field("seq")?.as_u64()?,
        }),
        k => Err(JsonError::new(format!("unknown event source kind `{k}`"))),
    }
}

impl ToJson for CkptEvent {
    fn to_json(&self) -> Json {
        ObjBuilder::new()
            .uint("time", self.time)
            .uint("net", self.net as u64)
            .str("value", &self.value.display_char().to_string())
            .field("source", ckpt_source_json(&self.source))
            .uint("order", self.order)
            .build()
    }
}

impl FromJson for CkptEvent {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(CkptEvent {
            time: v.field("time")?.as_u64()?,
            net: v.field("net")?.as_u64()? as u32,
            value: logic_from_json(v.field("value")?)?,
            source: ckpt_source_from_json(v.field("source")?)?,
            order: v.field("order")?.as_u64()?,
        })
    }
}

impl ToJson for TwMessage {
    fn to_json(&self) -> Json {
        ObjBuilder::new()
            .uint("src", self.src as u64)
            .uint("dst", self.dst as u64)
            .uint("seq", self.seq)
            .uint("time", self.ev.time)
            .uint("net", self.ev.net.0 as u64)
            .str("value", &self.ev.value.display_char().to_string())
            .bool("anti", self.anti)
            .build()
    }
}

impl FromJson for TwMessage {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(TwMessage {
            src: v.field("src")?.as_u64()? as u32,
            dst: v.field("dst")?.as_u64()? as u32,
            seq: v.field("seq")?.as_u64()?,
            ev: NetEvent {
                time: v.field("time")?.as_u64()?,
                net: NetId(v.field("net")?.as_u64()? as u32),
                value: logic_from_json(v.field("value")?)?,
            },
            anti: v.field("anti")?.as_bool()?,
        })
    }
}

impl ToJson for Checkpoint {
    /// Schema-versioned checkpoint artifact (`kind: "tw_checkpoint"`). The
    /// capture is deterministic (nondeterministic collections are sorted
    /// when the image is taken), so equal cluster states serialize to
    /// byte-identical artifacts and the round-trip through [`FromJson`] is
    /// lossless — the `checkpoint_roundtrip` suite asserts both. These are
    /// the exact bytes the process transport ships in `Restore` frames.
    fn to_json(&self) -> Json {
        ObjBuilder::new()
            .int("schema_version", SCHEMA_VERSION)
            .str("kind", "tw_checkpoint")
            .uint("checkpoint_schema", self.schema as u64)
            .uint("cluster", self.cluster as u64)
            .uint("gvt", self.gvt)
            .str("values", &logic_str(&self.values))
            .array(
                "pending",
                self.pending.iter().map(|e| e.to_json()).collect(),
            )
            .array(
                "tomb_remote",
                self.tomb_remote
                    .iter()
                    .map(|&(src, seq)| uint_array(&[src as u64, seq]))
                    .collect(),
            )
            .field("tomb_local", uint_array(&self.tomb_local))
            .array(
                "processed",
                self.processed.iter().map(|e| e.to_json()).collect(),
            )
            .array(
                "undo",
                self.undo
                    .iter()
                    .map(|&(t, net, val)| {
                        Json::Array(vec![
                            Json::Int(t as i64),
                            Json::Int(net as i64),
                            Json::Str(val.display_char().to_string()),
                        ])
                    })
                    .collect(),
            )
            .array(
                "snapshots",
                self.snapshots
                    .iter()
                    .map(|(t, vals)| {
                        Json::Array(vec![Json::Int(*t as i64), Json::Str(logic_str(vals))])
                    })
                    .collect(),
            )
            .uint("epochs_since_snapshot", self.epochs_since_snapshot as u64)
            .array(
                "outlog",
                self.outlog
                    .iter()
                    .map(|(t, m)| Json::Array(vec![Json::Int(*t as i64), m.to_json()]))
                    .collect(),
            )
            .array(
                "sched_log",
                self.sched_log
                    .iter()
                    .map(|&(t, lseq)| uint_array(&[t, lseq]))
                    .collect(),
            )
            .uint("stim_cycle", self.stim_cycle)
            .uint("last_time", self.last_time)
            .bool("settled", self.settled)
            .uint("order", self.order)
            .uint("lseq", self.lseq)
            .uint("mseq", self.mseq)
            .field("stats", self.stats.to_json())
            .build()
    }
}

pub(crate) fn uint_pair(v: &Json) -> Result<(u64, u64), JsonError> {
    let pair = uint_vec(v)?;
    match pair.as_slice() {
        &[a, b] => Ok((a, b)),
        other => Err(JsonError::new(format!(
            "expected a 2-element array, got {} elements",
            other.len()
        ))),
    }
}

impl FromJson for Checkpoint {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let version = v.field("schema_version")?.as_i64()?;
        if version != SCHEMA_VERSION {
            return Err(JsonError::new(format!(
                "unsupported schema_version {version} (expected {SCHEMA_VERSION})"
            )));
        }
        let kind = v.field("kind")?.as_str()?;
        if kind != "tw_checkpoint" {
            return Err(JsonError::new(format!(
                "expected kind `tw_checkpoint`, got `{kind}`"
            )));
        }
        let schema = v.field("checkpoint_schema")?.as_u64()? as u32;
        if schema != CHECKPOINT_SCHEMA {
            return Err(JsonError::new(format!(
                "unsupported checkpoint_schema {schema} (expected {CHECKPOINT_SCHEMA})"
            )));
        }
        let events = |key: &str| -> Result<Vec<CkptEvent>, JsonError> {
            v.field(key)?
                .as_array()?
                .iter()
                .map(CkptEvent::from_json)
                .collect()
        };
        Ok(Checkpoint {
            schema,
            cluster: v.field("cluster")?.as_u64()? as u32,
            gvt: v.field("gvt")?.as_u64()?,
            values: logic_vec(v.field("values")?)?,
            pending: events("pending")?,
            tomb_remote: v
                .field("tomb_remote")?
                .as_array()?
                .iter()
                .map(|p| uint_pair(p).map(|(src, seq)| (src as u32, seq)))
                .collect::<Result<_, _>>()?,
            tomb_local: uint_vec(v.field("tomb_local")?)?,
            processed: events("processed")?,
            undo: v
                .field("undo")?
                .as_array()?
                .iter()
                .map(|u| {
                    let parts = u.as_array()?;
                    match parts {
                        [t, net, val] => {
                            Ok((t.as_u64()?, net.as_u64()? as u32, logic_from_json(val)?))
                        }
                        _ => Err(JsonError::new("undo entry must be [time, net, value]")),
                    }
                })
                .collect::<Result<_, _>>()?,
            snapshots: v
                .field("snapshots")?
                .as_array()?
                .iter()
                .map(|s| {
                    let parts = s.as_array()?;
                    match parts {
                        [t, vals] => Ok((t.as_u64()?, logic_vec(vals)?)),
                        _ => Err(JsonError::new("snapshot entry must be [time, values]")),
                    }
                })
                .collect::<Result<_, _>>()?,
            epochs_since_snapshot: v.field("epochs_since_snapshot")?.as_u64()? as u32,
            outlog: v
                .field("outlog")?
                .as_array()?
                .iter()
                .map(|o| {
                    let parts = o.as_array()?;
                    match parts {
                        [t, m] => Ok((t.as_u64()?, TwMessage::from_json(m)?)),
                        _ => Err(JsonError::new("outlog entry must be [time, message]")),
                    }
                })
                .collect::<Result<_, _>>()?,
            sched_log: v
                .field("sched_log")?
                .as_array()?
                .iter()
                .map(uint_pair)
                .collect::<Result<_, _>>()?,
            stim_cycle: v.field("stim_cycle")?.as_u64()?,
            last_time: v.field("last_time")?.as_u64()?,
            settled: v.field("settled")?.as_bool()?,
            order: v.field("order")?.as_u64()?,
            lseq: v.field("lseq")?.as_u64()?,
            mseq: v.field("mseq")?.as_u64()?,
            stats: SimStats::from_json(v.field("stats")?)?,
        })
    }
}

// --- delta checkpoint codec -------------------------------------------------

fn undo_entry_json(&(t, net, val): &(VTime, u32, Logic)) -> Json {
    Json::Array(vec![
        Json::Int(t as i64),
        Json::Int(net as i64),
        Json::Str(val.display_char().to_string()),
    ])
}

fn undo_entry_from(u: &Json) -> Result<(VTime, u32, Logic), JsonError> {
    match u.as_array()? {
        [t, net, val] => Ok((t.as_u64()?, net.as_u64()? as u32, logic_from_json(val)?)),
        _ => Err(JsonError::new("undo entry must be [time, net, value]")),
    }
}

fn snapshot_entry_json((t, vals): &(VTime, Vec<Logic>)) -> Json {
    Json::Array(vec![Json::Int(*t as i64), Json::Str(logic_str(vals))])
}

fn snapshot_entry_from(s: &Json) -> Result<(VTime, Vec<Logic>), JsonError> {
    match s.as_array()? {
        [t, vals] => Ok((t.as_u64()?, logic_vec(vals)?)),
        _ => Err(JsonError::new("snapshot entry must be [time, values]")),
    }
}

/// Compact array form of a [`CkptEvent`] used only inside delta artifacts,
/// where events are the bulk of the payload: `[time, net, "v", order]` for
/// stimulus events, plus a `"l", created_at, lseq` or `"r", src, seq` tail
/// for local and remote ones. The full-image codec keeps the verbose
/// object form — images are shipped rarely, deltas every round.
fn ckpt_event_compact_json(e: &CkptEvent) -> Json {
    let mut a = vec![
        Json::Int(e.time as i64),
        Json::Int(e.net as i64),
        Json::Str(e.value.display_char().to_string()),
        Json::Int(e.order as i64),
    ];
    match e.source {
        CkptSource::Stimulus => {}
        CkptSource::Local { created_at, lseq } => {
            a.push(Json::Str("l".into()));
            a.push(Json::Int(created_at as i64));
            a.push(Json::Int(lseq as i64));
        }
        CkptSource::Remote { src, seq } => {
            a.push(Json::Str("r".into()));
            a.push(Json::Int(src as i64));
            a.push(Json::Int(seq as i64));
        }
    }
    Json::Array(a)
}

fn ckpt_event_compact_from(v: &Json) -> Result<CkptEvent, JsonError> {
    let a = v.as_array()?;
    let source = match a {
        [_, _, _, _] => CkptSource::Stimulus,
        [_, _, _, _, tag, x, y] => match tag.as_str()? {
            "l" => CkptSource::Local {
                created_at: x.as_u64()?,
                lseq: y.as_u64()?,
            },
            "r" => CkptSource::Remote {
                src: x.as_u64()? as u32,
                seq: y.as_u64()?,
            },
            t => return Err(JsonError::new(format!("unknown event source tag `{t}`"))),
        },
        _ => {
            return Err(JsonError::new(
                "compact event must be [time, net, value, order, source...]",
            ))
        }
    };
    Ok(CkptEvent {
        time: a[0].as_u64()?,
        net: a[1].as_u64()? as u32,
        value: logic_from_json(&a[2])?,
        source,
        order: a[3].as_u64()?,
    })
}

/// Compact output-log entry for delta artifacts:
/// `[log_time, src, dst, seq, ev_time, net, "v", anti]`.
fn outlog_compact_json((t, m): &(VTime, TwMessage)) -> Json {
    Json::Array(vec![
        Json::Int(*t as i64),
        Json::Int(m.src as i64),
        Json::Int(m.dst as i64),
        Json::Int(m.seq as i64),
        Json::Int(m.ev.time as i64),
        Json::Int(m.ev.net.0 as i64),
        Json::Str(m.ev.value.display_char().to_string()),
        Json::Bool(m.anti),
    ])
}

fn outlog_compact_from(v: &Json) -> Result<(VTime, TwMessage), JsonError> {
    match v.as_array()? {
        [t, src, dst, seq, time, net, value, anti] => Ok((
            t.as_u64()?,
            TwMessage {
                src: src.as_u64()? as u32,
                dst: dst.as_u64()? as u32,
                seq: seq.as_u64()?,
                ev: NetEvent {
                    time: time.as_u64()?,
                    net: NetId(net.as_u64()? as u32),
                    value: logic_from_json(value)?,
                },
                anti: anti.as_bool()?,
            },
        )),
        _ => Err(JsonError::new(
            "compact outlog entry must be [t, src, dst, seq, time, net, value, anti]",
        )),
    }
}

fn log_delta_json<T>(d: &LogDelta<T>, enc: impl Fn(&T) -> Json) -> Json {
    ObjBuilder::new()
        .uint("drop", d.drop_front as u64)
        .uint("keep", d.keep as u64)
        .array("append", d.append.iter().map(enc).collect())
        .build()
}

fn log_delta_from<T>(
    v: &Json,
    dec: impl Fn(&Json) -> Result<T, JsonError>,
) -> Result<LogDelta<T>, JsonError> {
    Ok(LogDelta {
        drop_front: v.field("drop")?.as_u64()? as u32,
        keep: v.field("keep")?.as_u64()? as u32,
        append: v
            .field("append")?
            .as_array()?
            .iter()
            .map(dec)
            .collect::<Result<_, _>>()?,
    })
}

fn values_delta_json(d: &ValuesDelta) -> Json {
    match d {
        ValuesDelta::Full(vals) => ObjBuilder::new().str("full", &logic_str(vals)).build(),
        ValuesDelta::Runs(runs) => ObjBuilder::new()
            .array(
                "runs",
                runs.iter()
                    .map(|(start, vals)| {
                        Json::Array(vec![Json::Int(*start as i64), Json::Str(logic_str(vals))])
                    })
                    .collect(),
            )
            .build(),
    }
}

fn values_delta_from(v: &Json) -> Result<ValuesDelta, JsonError> {
    if let Some(full) = v.get("full") {
        return Ok(ValuesDelta::Full(logic_vec(full)?));
    }
    let runs = v
        .field("runs")?
        .as_array()?
        .iter()
        .map(|r| match r.as_array()? {
            [start, vals] => Ok((start.as_u64()? as u32, logic_vec(vals)?)),
            _ => Err(JsonError::new("values run must be [start, values]")),
        })
        .collect::<Result<_, _>>()?;
    Ok(ValuesDelta::Runs(runs))
}

impl ToJson for CheckpointDelta {
    /// Schema-versioned delta artifact (`kind: "tw_checkpoint_delta"`) —
    /// the edits against the previous round's image. Like the full image,
    /// the encoding is deterministic and lossless, and it doubles as the
    /// wire format: the process transport ships delta chains in `restore`
    /// frames and individual deltas in `ckpt_delta` replies.
    fn to_json(&self) -> Json {
        // No-change fields are omitted entirely — a delta's cost should
        // track what actually changed, not the number of fields in the
        // image. Absent set edits mean empty, an absent `values` field
        // means no net changed, and an absent log field is the `KEEP_ALL`
        // identity edit. The emission is still a deterministic function of
        // the delta, so byte-identity comparisons stay valid.
        let mut b = ObjBuilder::new()
            .int("schema_version", SCHEMA_VERSION)
            .str("kind", "tw_checkpoint_delta")
            .uint("checkpoint_schema", self.schema as u64)
            .uint("cluster", self.cluster as u64)
            .uint("base_gvt", self.base_gvt)
            .uint("gvt", self.gvt);
        let identity_values = matches!(&self.values, ValuesDelta::Runs(runs) if runs.is_empty());
        if !identity_values {
            b = b.field("values", values_delta_json(&self.values));
        }
        if !self.pending_removed.is_empty() {
            b = b.array(
                "pending_removed",
                self.pending_removed
                    .iter()
                    .map(|&(t, order)| uint_array(&[t, order]))
                    .collect(),
            );
        }
        if !self.pending_added.is_empty() {
            b = b.array(
                "pending_added",
                self.pending_added
                    .iter()
                    .map(ckpt_event_compact_json)
                    .collect(),
            );
        }
        if !self.tomb_remote_removed.is_empty() {
            b = b.array(
                "tomb_remote_removed",
                self.tomb_remote_removed
                    .iter()
                    .map(|&(src, seq)| uint_array(&[src as u64, seq]))
                    .collect(),
            );
        }
        if !self.tomb_remote_added.is_empty() {
            b = b.array(
                "tomb_remote_added",
                self.tomb_remote_added
                    .iter()
                    .map(|&(src, seq)| uint_array(&[src as u64, seq]))
                    .collect(),
            );
        }
        if !self.tomb_local_removed.is_empty() {
            b = b.field("tomb_local_removed", uint_array(&self.tomb_local_removed));
        }
        if !self.tomb_local_added.is_empty() {
            b = b.field("tomb_local_added", uint_array(&self.tomb_local_added));
        }
        if !self.processed.is_keep_all() {
            b = b.field(
                "processed",
                log_delta_json(&self.processed, ckpt_event_compact_json),
            );
        }
        if !self.undo.is_keep_all() {
            b = b.field("undo", log_delta_json(&self.undo, undo_entry_json));
        }
        if !self.snapshots.is_keep_all() {
            b = b.field(
                "snapshots",
                log_delta_json(&self.snapshots, snapshot_entry_json),
            );
        }
        if !self.outlog.is_keep_all() {
            b = b.field("outlog", log_delta_json(&self.outlog, outlog_compact_json));
        }
        if !self.sched_log.is_keep_all() {
            b = b.field(
                "sched_log",
                log_delta_json(&self.sched_log, |&(t, lseq)| uint_array(&[t, lseq])),
            );
        }
        b.uint("epochs_since_snapshot", self.epochs_since_snapshot as u64)
            .uint("stim_cycle", self.stim_cycle)
            .uint("last_time", self.last_time)
            .bool("settled", self.settled)
            .uint("order", self.order)
            .uint("lseq", self.lseq)
            .uint("mseq", self.mseq)
            .field("stats", self.stats.to_json())
            .build()
    }
}

impl FromJson for CheckpointDelta {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let version = v.field("schema_version")?.as_i64()?;
        if version != SCHEMA_VERSION {
            return Err(JsonError::new(format!(
                "unsupported schema_version {version} (expected {SCHEMA_VERSION})"
            )));
        }
        let kind = v.field("kind")?.as_str()?;
        if kind != "tw_checkpoint_delta" {
            return Err(JsonError::new(format!(
                "expected kind `tw_checkpoint_delta`, got `{kind}`"
            )));
        }
        let schema = v.field("checkpoint_schema")?.as_u64()? as u32;
        if schema != CHECKPOINT_SCHEMA {
            return Err(JsonError::new(format!(
                "unsupported checkpoint_schema {schema} (expected {CHECKPOINT_SCHEMA})"
            )));
        }
        // Absent fields are the no-change defaults the serializer elided:
        // empty set edits, the empty-runs values edit, `KEEP_ALL` log edits.
        let tomb_remote = |key: &str| -> Result<Vec<(u32, u64)>, JsonError> {
            match v.get(key) {
                None => Ok(Vec::new()),
                Some(a) => a
                    .as_array()?
                    .iter()
                    .map(|p| uint_pair(p).map(|(src, seq)| (src as u32, seq)))
                    .collect(),
            }
        };
        let tomb_local = |key: &str| -> Result<Vec<u64>, JsonError> {
            match v.get(key) {
                None => Ok(Vec::new()),
                Some(a) => uint_vec(a),
            }
        };
        fn log_opt<T>(
            v: &Json,
            key: &str,
            dec: impl Fn(&Json) -> Result<T, JsonError>,
        ) -> Result<LogDelta<T>, JsonError> {
            match v.get(key) {
                None => Ok(LogDelta::keep_all()),
                Some(d) => log_delta_from(d, dec),
            }
        }
        Ok(CheckpointDelta {
            schema,
            cluster: v.field("cluster")?.as_u64()? as u32,
            base_gvt: v.field("base_gvt")?.as_u64()?,
            gvt: v.field("gvt")?.as_u64()?,
            values: match v.get("values") {
                None => ValuesDelta::Runs(Vec::new()),
                Some(d) => values_delta_from(d)?,
            },
            pending_removed: match v.get("pending_removed") {
                None => Vec::new(),
                Some(a) => a
                    .as_array()?
                    .iter()
                    .map(uint_pair)
                    .collect::<Result<_, _>>()?,
            },
            pending_added: match v.get("pending_added") {
                None => Vec::new(),
                Some(a) => a
                    .as_array()?
                    .iter()
                    .map(ckpt_event_compact_from)
                    .collect::<Result<_, _>>()?,
            },
            tomb_remote_removed: tomb_remote("tomb_remote_removed")?,
            tomb_remote_added: tomb_remote("tomb_remote_added")?,
            tomb_local_removed: tomb_local("tomb_local_removed")?,
            tomb_local_added: tomb_local("tomb_local_added")?,
            processed: log_opt(v, "processed", ckpt_event_compact_from)?,
            undo: log_opt(v, "undo", undo_entry_from)?,
            snapshots: log_opt(v, "snapshots", snapshot_entry_from)?,
            epochs_since_snapshot: v.field("epochs_since_snapshot")?.as_u64()? as u32,
            outlog: log_opt(v, "outlog", outlog_compact_from)?,
            sched_log: log_opt(v, "sched_log", uint_pair)?,
            stim_cycle: v.field("stim_cycle")?.as_u64()?,
            last_time: v.field("last_time")?.as_u64()?,
            settled: v.field("settled")?.as_bool()?,
            order: v.field("order")?.as_u64()?,
            lseq: v.field("lseq")?.as_u64()?,
            mseq: v.field("mseq")?.as_u64()?,
            stats: SimStats::from_json(v.field("stats")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats() -> SimStats {
        SimStats {
            events: 101,
            gate_evals: 99,
            net_toggles: 55,
            cycles: 40,
            end_time: 400,
            messages: 12,
            anti_messages: 3,
            rollbacks: 2,
            rolled_back_events: 7,
            gvt_rounds: 9,
            fossil_collected: 88,
        }
    }

    #[test]
    fn sim_stats_round_trip_is_exact() {
        let s = sample_stats();
        let text = s.to_json().emit().unwrap();
        let back = SimStats::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn sim_stats_missing_field_is_an_error() {
        let mut v = sample_stats().to_json();
        if let Json::Object(members) = &mut v {
            members.retain(|(k, _)| k != "rollbacks");
        }
        let err = SimStats::from_json(&v).unwrap_err();
        assert!(err.msg.contains("rollbacks"), "{err}");
    }

    #[test]
    fn recovery_outcome_round_trips_and_tolerates_missing_victims() {
        let r = RecoveryOutcome {
            crashes: 3,
            restarts: 2,
            replayed_ops: 17,
            victims: vec![1, 1, 0],
            checkpoint_bytes_full: 4096,
            checkpoint_bytes_delta: 512,
            corrupt_frames: 2,
            heartbeats_missed: 30,
            chaos_faults_injected: 1,
            messages_sent: 4111,
            frames_sent: 207,
            messages_folded: 18,
            degraded: false,
        };
        let text = r.to_json().emit().unwrap();
        let back = RecoveryOutcome::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);

        // Artifacts written before the victim list existed have no
        // `victims` key; they read back with an empty list. Likewise the
        // batching counters read back as zero when absent.
        let mut v = r.to_json();
        if let Json::Object(members) = &mut v {
            members.retain(|(k, _)| k != "victims" && k != "frames_sent");
        }
        let back = RecoveryOutcome::from_json(&v).unwrap();
        assert!(back.victims.is_empty());
        assert_eq!(back.frames_sent, 0);
        assert_eq!(back.messages_sent, 4111);
        assert_eq!(back.crashes, 3);
    }

    fn sample_delta() -> CheckpointDelta {
        CheckpointDelta {
            schema: CHECKPOINT_SCHEMA,
            cluster: 2,
            base_gvt: 120,
            gvt: 140,
            values: ValuesDelta::Runs(vec![
                (3, vec![Logic::One, Logic::Zero]),
                (9, vec![Logic::Z]),
            ]),
            pending_removed: vec![(121, 11)],
            pending_added: vec![CkptEvent {
                time: 144,
                net: 6,
                value: Logic::One,
                source: CkptSource::Remote { src: 1, seq: 9 },
                order: 31,
            }],
            tomb_remote_removed: vec![(0, 5)],
            tomb_remote_added: vec![(1, 8), (1, 9)],
            tomb_local_removed: vec![2],
            tomb_local_added: vec![7, 9],
            processed: LogDelta {
                drop_front: 2,
                keep: 1,
                append: vec![CkptEvent {
                    time: 133,
                    net: 2,
                    value: Logic::Zero,
                    source: CkptSource::Local {
                        created_at: 130,
                        lseq: 4,
                    },
                    order: 19,
                }],
            },
            undo: LogDelta {
                drop_front: 0,
                keep: 0,
                append: vec![(131, 5, Logic::One)],
            },
            snapshots: LogDelta {
                drop_front: 1,
                keep: 2,
                append: vec![(140, vec![Logic::Zero, Logic::X])],
            },
            epochs_since_snapshot: 3,
            outlog: LogDelta {
                drop_front: 4,
                keep: 0,
                append: vec![(
                    139,
                    TwMessage {
                        src: 2,
                        dst: 0,
                        seq: 77,
                        ev: NetEvent {
                            time: 141,
                            net: NetId(12),
                            value: Logic::One,
                        },
                        anti: false,
                    },
                )],
            },
            sched_log: LogDelta {
                drop_front: 0,
                keep: 3,
                append: vec![(138, 21)],
            },
            stim_cycle: 14,
            last_time: 151,
            settled: true,
            order: 64,
            lseq: 22,
            mseq: 78,
            stats: sample_stats(),
        }
    }

    #[test]
    fn checkpoint_delta_round_trip_is_exact() {
        let d = sample_delta();
        let text = d.to_json().emit().unwrap();
        let back = CheckpointDelta::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, d);

        // A dense edit serialises as a full-vector replacement and must
        // round-trip through the `full` arm too.
        let mut dense = d;
        dense.values = ValuesDelta::Full(vec![Logic::One, Logic::Z, Logic::X]);
        let text = dense.to_json().emit().unwrap();
        let back = CheckpointDelta::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, dense);
    }

    #[test]
    fn checkpoint_delta_elides_no_change_fields() {
        // A quiet round — nothing changed except the scalar cursors. The
        // emission must omit every set, values, and log field, and read
        // back as the same identity edits.
        let mut d = sample_delta();
        d.values = ValuesDelta::Runs(Vec::new());
        d.pending_removed.clear();
        d.pending_added.clear();
        d.tomb_remote_removed.clear();
        d.tomb_remote_added.clear();
        d.tomb_local_removed.clear();
        d.tomb_local_added.clear();
        d.processed = LogDelta::keep_all();
        d.undo = LogDelta::keep_all();
        d.snapshots = LogDelta::keep_all();
        d.outlog = LogDelta::keep_all();
        d.sched_log = LogDelta::keep_all();
        let v = d.to_json();
        for elided in [
            "values",
            "pending_removed",
            "pending_added",
            "tomb_remote_removed",
            "tomb_remote_added",
            "tomb_local_removed",
            "tomb_local_added",
            "processed",
            "undo",
            "snapshots",
            "outlog",
            "sched_log",
        ] {
            assert!(v.get(elided).is_none(), "`{elided}` should be elided");
        }
        let text = v.emit().unwrap();
        let back = CheckpointDelta::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn checkpoint_delta_rejects_wrong_kind_and_schema() {
        let d = sample_delta();

        let mut v = d.to_json();
        if let Json::Object(members) = &mut v {
            for (k, val) in members.iter_mut() {
                if k == "kind" {
                    *val = Json::Str("tw_checkpoint".into());
                }
            }
        }
        let err = CheckpointDelta::from_json(&v).unwrap_err();
        assert!(err.msg.contains("tw_checkpoint_delta"), "{err}");

        let mut v = d.to_json();
        if let Json::Object(members) = &mut v {
            for (k, val) in members.iter_mut() {
                if k == "checkpoint_schema" {
                    *val = Json::Int(999);
                }
            }
        }
        let err = CheckpointDelta::from_json(&v).unwrap_err();
        assert!(err.msg.contains("checkpoint_schema"), "{err}");
    }
}
