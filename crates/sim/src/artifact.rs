//! JSON serialization of simulation-level run artifacts.
//!
//! Each crate owns the artifact serialization of its own types (the orphan
//! rule requires it once the JSON traits live in the shared `dvs-json`
//! crate): this module covers simulation statistics, Time Warp run
//! results, recovery provenance, and the schema-versioned [`Checkpoint`]
//! image. The checkpoint serialization doubles as the **wire format** of
//! the process transport ([`crate::timewarp::Transport::Process`]) — a
//! respawned worker is restored from exactly these bytes, which is why the
//! round-trip must be lossless and the capture deterministic.
//!
//! Flow-level artifact assembly (reports, presim points) stays in
//! `dvs_core::artifact`; netlist statistics serialize in
//! `dvs_verilog::artifact`.

use crate::cluster_model::{ClusterRun, RunTiming};
use crate::stats::SimStats;
use crate::timewarp::{
    Checkpoint, CkptEvent, CkptSource, RecoveryOutcome, TwMessage, TwRunResult, CHECKPOINT_SCHEMA,
};
use crate::wheel::NetEvent;
use crate::Logic;
use dvs_json::{
    uint_array, uint_vec, FromJson, Json, JsonError, ObjBuilder, ToJson, SCHEMA_VERSION,
};
use dvs_verilog::netlist::NetId;

/// A logic-value vector as a compact display-char string (`"01xz…"`).
pub(crate) fn logic_str(values: &[Logic]) -> String {
    values.iter().map(|v| v.display_char()).collect()
}

pub(crate) fn logic_vec(v: &Json) -> Result<Vec<Logic>, JsonError> {
    v.as_str()?
        .chars()
        .map(|c| {
            Logic::from_display_char(c)
                .ok_or_else(|| JsonError::new(format!("invalid logic value character `{c}`")))
        })
        .collect()
}

pub(crate) fn logic_from_json(v: &Json) -> Result<Logic, JsonError> {
    let s = v.as_str()?;
    let mut chars = s.chars();
    match (
        chars.next().and_then(Logic::from_display_char),
        chars.next(),
    ) {
        (Some(l), None) => Ok(l),
        _ => Err(JsonError::new(format!("invalid logic value `{s}`"))),
    }
}

impl ToJson for SimStats {
    fn to_json(&self) -> Json {
        ObjBuilder::new()
            .uint("events", self.events)
            .uint("gate_evals", self.gate_evals)
            .uint("net_toggles", self.net_toggles)
            .uint("cycles", self.cycles)
            .uint("end_time", self.end_time)
            .uint("messages", self.messages)
            .uint("anti_messages", self.anti_messages)
            .uint("rollbacks", self.rollbacks)
            .uint("rolled_back_events", self.rolled_back_events)
            .uint("gvt_rounds", self.gvt_rounds)
            .uint("fossil_collected", self.fossil_collected)
            .build()
    }
}

impl FromJson for SimStats {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(SimStats {
            events: v.field("events")?.as_u64()?,
            gate_evals: v.field("gate_evals")?.as_u64()?,
            net_toggles: v.field("net_toggles")?.as_u64()?,
            cycles: v.field("cycles")?.as_u64()?,
            end_time: v.field("end_time")?.as_u64()?,
            messages: v.field("messages")?.as_u64()?,
            anti_messages: v.field("anti_messages")?.as_u64()?,
            rollbacks: v.field("rollbacks")?.as_u64()?,
            rolled_back_events: v.field("rolled_back_events")?.as_u64()?,
            gvt_rounds: v.field("gvt_rounds")?.as_u64()?,
            fossil_collected: v.field("fossil_collected")?.as_u64()?,
        })
    }
}

impl ToJson for RunTiming {
    fn to_json(&self) -> Json {
        ObjBuilder::new()
            .float("profile_seconds", self.profile_seconds)
            .float("model_seconds", self.model_seconds)
            .build()
    }
}

impl FromJson for RunTiming {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(RunTiming {
            profile_seconds: v.field("profile_seconds")?.as_f64()?,
            model_seconds: v.field("model_seconds")?.as_f64()?,
        })
    }
}

/// The deterministic portion of a [`ClusterRun`] (everything except the
/// host-side [`RunTiming`]). Public so `dvs_core::artifact` can assemble
/// the canonical flow report from it.
pub fn cluster_run_core(run: &ClusterRun) -> ObjBuilder {
    ObjBuilder::new()
        .field("stats", run.stats.to_json())
        .float("wall_seconds", run.wall_seconds)
        .float("seq_seconds", run.seq_seconds)
        .float("speedup", run.speedup)
        .field("machine_events", uint_array(&run.machine_events))
        .field("machine_rollbacks", uint_array(&run.machine_rollbacks))
        .field("machine_messages", uint_array(&run.machine_messages))
}

impl ToJson for ClusterRun {
    fn to_json(&self) -> Json {
        cluster_run_core(self)
            .field("timing", self.timing.to_json())
            .build()
    }
}

impl FromJson for ClusterRun {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(ClusterRun {
            stats: SimStats::from_json(v.field("stats")?)?,
            wall_seconds: v.field("wall_seconds")?.as_f64()?,
            seq_seconds: v.field("seq_seconds")?.as_f64()?,
            speedup: v.field("speedup")?.as_f64()?,
            machine_events: uint_vec(v.field("machine_events")?)?,
            machine_rollbacks: uint_vec(v.field("machine_rollbacks")?)?,
            machine_messages: uint_vec(v.field("machine_messages")?)?,
            // Host timings default to zero when an artifact omits them
            // (canonical artifacts carry no host measurements).
            timing: match v.get("timing") {
                Some(t) => RunTiming::from_json(t)?,
                None => RunTiming::default(),
            },
        })
    }
}

impl ToJson for RecoveryOutcome {
    fn to_json(&self) -> Json {
        ObjBuilder::new()
            .uint("crashes", self.crashes as u64)
            .uint("restarts", self.restarts as u64)
            .uint("replayed_ops", self.replayed_ops)
            .field(
                "victims",
                uint_array(&self.victims.iter().map(|&c| c as u64).collect::<Vec<_>>()),
            )
            .bool("degraded", self.degraded)
            .build()
    }
}

impl FromJson for RecoveryOutcome {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(RecoveryOutcome {
            crashes: v.field("crashes")?.as_u64()? as u32,
            restarts: v.field("restarts")?.as_u64()? as u32,
            replayed_ops: v.field("replayed_ops")?.as_u64()?,
            // Absent in artifacts written before the victim list existed.
            victims: match v.get("victims") {
                Some(a) => uint_vec(a)?.into_iter().map(|c| c as u32).collect(),
                None => Vec::new(),
            },
            degraded: v.field("degraded")?.as_bool()?,
        })
    }
}

/// The simulation content of a Time Warp run — everything except the
/// recovery provenance.
fn tw_run_core(r: &TwRunResult) -> ObjBuilder {
    ObjBuilder::new()
        .field("stats", r.stats.to_json())
        .array(
            "cluster_stats",
            r.cluster_stats.iter().map(|s| s.to_json()).collect(),
        )
        .uint("gvt_rounds", r.gvt_rounds)
        .str("values", &logic_str(&r.values))
}

/// The **canonical** serialization of a Time Warp run: simulation content
/// only, recovery provenance excluded. Under the deterministic transports
/// ([`crate::timewarp::Transport::InProc`] and
/// [`crate::timewarp::Transport::Process`]) every included field is an
/// exact counter, and recovery restores the pre-crash state bit-for-bit —
/// so a run that crashed and recovered emits a canonical artifact
/// byte-identical to the undisturbed run's, *on either transport*. The
/// crash-recovery DST tests and the process kill harness assert exactly
/// that.
pub fn tw_run_canonical_json(r: &TwRunResult) -> Json {
    tw_run_core(r).build()
}

impl ToJson for TwRunResult {
    /// The full serialization: the canonical simulation content plus the
    /// `recovery` provenance block (crashes injected, restarts performed,
    /// operations replayed, victim clusters, degradation flag). Use
    /// [`tw_run_canonical_json`] for crash-invariant comparisons.
    fn to_json(&self) -> Json {
        tw_run_core(self)
            .field("recovery", self.recovery.to_json())
            .build()
    }
}

fn ckpt_source_json(s: &CkptSource) -> Json {
    match *s {
        CkptSource::Stimulus => ObjBuilder::new().str("kind", "stimulus").build(),
        CkptSource::Local { created_at, lseq } => ObjBuilder::new()
            .str("kind", "local")
            .uint("created_at", created_at)
            .uint("lseq", lseq)
            .build(),
        CkptSource::Remote { src, seq } => ObjBuilder::new()
            .str("kind", "remote")
            .uint("src", src as u64)
            .uint("seq", seq)
            .build(),
    }
}

fn ckpt_source_from_json(v: &Json) -> Result<CkptSource, JsonError> {
    match v.field("kind")?.as_str()? {
        "stimulus" => Ok(CkptSource::Stimulus),
        "local" => Ok(CkptSource::Local {
            created_at: v.field("created_at")?.as_u64()?,
            lseq: v.field("lseq")?.as_u64()?,
        }),
        "remote" => Ok(CkptSource::Remote {
            src: v.field("src")?.as_u64()? as u32,
            seq: v.field("seq")?.as_u64()?,
        }),
        k => Err(JsonError::new(format!("unknown event source kind `{k}`"))),
    }
}

impl ToJson for CkptEvent {
    fn to_json(&self) -> Json {
        ObjBuilder::new()
            .uint("time", self.time)
            .uint("net", self.net as u64)
            .str("value", &self.value.display_char().to_string())
            .field("source", ckpt_source_json(&self.source))
            .uint("order", self.order)
            .build()
    }
}

impl FromJson for CkptEvent {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(CkptEvent {
            time: v.field("time")?.as_u64()?,
            net: v.field("net")?.as_u64()? as u32,
            value: logic_from_json(v.field("value")?)?,
            source: ckpt_source_from_json(v.field("source")?)?,
            order: v.field("order")?.as_u64()?,
        })
    }
}

impl ToJson for TwMessage {
    fn to_json(&self) -> Json {
        ObjBuilder::new()
            .uint("src", self.src as u64)
            .uint("dst", self.dst as u64)
            .uint("seq", self.seq)
            .uint("time", self.ev.time)
            .uint("net", self.ev.net.0 as u64)
            .str("value", &self.ev.value.display_char().to_string())
            .bool("anti", self.anti)
            .build()
    }
}

impl FromJson for TwMessage {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(TwMessage {
            src: v.field("src")?.as_u64()? as u32,
            dst: v.field("dst")?.as_u64()? as u32,
            seq: v.field("seq")?.as_u64()?,
            ev: NetEvent {
                time: v.field("time")?.as_u64()?,
                net: NetId(v.field("net")?.as_u64()? as u32),
                value: logic_from_json(v.field("value")?)?,
            },
            anti: v.field("anti")?.as_bool()?,
        })
    }
}

impl ToJson for Checkpoint {
    /// Schema-versioned checkpoint artifact (`kind: "tw_checkpoint"`). The
    /// capture is deterministic (nondeterministic collections are sorted
    /// when the image is taken), so equal cluster states serialize to
    /// byte-identical artifacts and the round-trip through [`FromJson`] is
    /// lossless — the `checkpoint_roundtrip` suite asserts both. These are
    /// the exact bytes the process transport ships in `Restore` frames.
    fn to_json(&self) -> Json {
        ObjBuilder::new()
            .int("schema_version", SCHEMA_VERSION)
            .str("kind", "tw_checkpoint")
            .uint("checkpoint_schema", self.schema as u64)
            .uint("cluster", self.cluster as u64)
            .uint("gvt", self.gvt)
            .str("values", &logic_str(&self.values))
            .array(
                "pending",
                self.pending.iter().map(|e| e.to_json()).collect(),
            )
            .array(
                "tomb_remote",
                self.tomb_remote
                    .iter()
                    .map(|&(src, seq)| uint_array(&[src as u64, seq]))
                    .collect(),
            )
            .field("tomb_local", uint_array(&self.tomb_local))
            .array(
                "processed",
                self.processed.iter().map(|e| e.to_json()).collect(),
            )
            .array(
                "undo",
                self.undo
                    .iter()
                    .map(|&(t, net, val)| {
                        Json::Array(vec![
                            Json::Int(t as i64),
                            Json::Int(net as i64),
                            Json::Str(val.display_char().to_string()),
                        ])
                    })
                    .collect(),
            )
            .array(
                "snapshots",
                self.snapshots
                    .iter()
                    .map(|(t, vals)| {
                        Json::Array(vec![Json::Int(*t as i64), Json::Str(logic_str(vals))])
                    })
                    .collect(),
            )
            .uint("epochs_since_snapshot", self.epochs_since_snapshot as u64)
            .array(
                "outlog",
                self.outlog
                    .iter()
                    .map(|(t, m)| Json::Array(vec![Json::Int(*t as i64), m.to_json()]))
                    .collect(),
            )
            .array(
                "sched_log",
                self.sched_log
                    .iter()
                    .map(|&(t, lseq)| uint_array(&[t, lseq]))
                    .collect(),
            )
            .uint("stim_cycle", self.stim_cycle)
            .uint("last_time", self.last_time)
            .bool("settled", self.settled)
            .uint("order", self.order)
            .uint("lseq", self.lseq)
            .uint("mseq", self.mseq)
            .field("stats", self.stats.to_json())
            .build()
    }
}

pub(crate) fn uint_pair(v: &Json) -> Result<(u64, u64), JsonError> {
    let pair = uint_vec(v)?;
    match pair.as_slice() {
        &[a, b] => Ok((a, b)),
        other => Err(JsonError::new(format!(
            "expected a 2-element array, got {} elements",
            other.len()
        ))),
    }
}

impl FromJson for Checkpoint {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let version = v.field("schema_version")?.as_i64()?;
        if version != SCHEMA_VERSION {
            return Err(JsonError::new(format!(
                "unsupported schema_version {version} (expected {SCHEMA_VERSION})"
            )));
        }
        let kind = v.field("kind")?.as_str()?;
        if kind != "tw_checkpoint" {
            return Err(JsonError::new(format!(
                "expected kind `tw_checkpoint`, got `{kind}`"
            )));
        }
        let schema = v.field("checkpoint_schema")?.as_u64()? as u32;
        if schema != CHECKPOINT_SCHEMA {
            return Err(JsonError::new(format!(
                "unsupported checkpoint_schema {schema} (expected {CHECKPOINT_SCHEMA})"
            )));
        }
        let events = |key: &str| -> Result<Vec<CkptEvent>, JsonError> {
            v.field(key)?
                .as_array()?
                .iter()
                .map(CkptEvent::from_json)
                .collect()
        };
        Ok(Checkpoint {
            schema,
            cluster: v.field("cluster")?.as_u64()? as u32,
            gvt: v.field("gvt")?.as_u64()?,
            values: logic_vec(v.field("values")?)?,
            pending: events("pending")?,
            tomb_remote: v
                .field("tomb_remote")?
                .as_array()?
                .iter()
                .map(|p| uint_pair(p).map(|(src, seq)| (src as u32, seq)))
                .collect::<Result<_, _>>()?,
            tomb_local: uint_vec(v.field("tomb_local")?)?,
            processed: events("processed")?,
            undo: v
                .field("undo")?
                .as_array()?
                .iter()
                .map(|u| {
                    let parts = u.as_array()?;
                    match parts {
                        [t, net, val] => {
                            Ok((t.as_u64()?, net.as_u64()? as u32, logic_from_json(val)?))
                        }
                        _ => Err(JsonError::new("undo entry must be [time, net, value]")),
                    }
                })
                .collect::<Result<_, _>>()?,
            snapshots: v
                .field("snapshots")?
                .as_array()?
                .iter()
                .map(|s| {
                    let parts = s.as_array()?;
                    match parts {
                        [t, vals] => Ok((t.as_u64()?, logic_vec(vals)?)),
                        _ => Err(JsonError::new("snapshot entry must be [time, values]")),
                    }
                })
                .collect::<Result<_, _>>()?,
            epochs_since_snapshot: v.field("epochs_since_snapshot")?.as_u64()? as u32,
            outlog: v
                .field("outlog")?
                .as_array()?
                .iter()
                .map(|o| {
                    let parts = o.as_array()?;
                    match parts {
                        [t, m] => Ok((t.as_u64()?, TwMessage::from_json(m)?)),
                        _ => Err(JsonError::new("outlog entry must be [time, message]")),
                    }
                })
                .collect::<Result<_, _>>()?,
            sched_log: v
                .field("sched_log")?
                .as_array()?
                .iter()
                .map(uint_pair)
                .collect::<Result<_, _>>()?,
            stim_cycle: v.field("stim_cycle")?.as_u64()?,
            last_time: v.field("last_time")?.as_u64()?,
            settled: v.field("settled")?.as_bool()?,
            order: v.field("order")?.as_u64()?,
            lseq: v.field("lseq")?.as_u64()?,
            mseq: v.field("mseq")?.as_u64()?,
            stats: SimStats::from_json(v.field("stats")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats() -> SimStats {
        SimStats {
            events: 101,
            gate_evals: 99,
            net_toggles: 55,
            cycles: 40,
            end_time: 400,
            messages: 12,
            anti_messages: 3,
            rollbacks: 2,
            rolled_back_events: 7,
            gvt_rounds: 9,
            fossil_collected: 88,
        }
    }

    #[test]
    fn sim_stats_round_trip_is_exact() {
        let s = sample_stats();
        let text = s.to_json().emit().unwrap();
        let back = SimStats::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn sim_stats_missing_field_is_an_error() {
        let mut v = sample_stats().to_json();
        if let Json::Object(members) = &mut v {
            members.retain(|(k, _)| k != "rollbacks");
        }
        let err = SimStats::from_json(&v).unwrap_err();
        assert!(err.msg.contains("rollbacks"), "{err}");
    }

    #[test]
    fn recovery_outcome_round_trips_and_tolerates_missing_victims() {
        let r = RecoveryOutcome {
            crashes: 3,
            restarts: 2,
            replayed_ops: 17,
            victims: vec![1, 1, 0],
            degraded: false,
        };
        let text = r.to_json().emit().unwrap();
        let back = RecoveryOutcome::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);

        // Artifacts written before the victim list existed have no
        // `victims` key; they read back with an empty list.
        let mut v = r.to_json();
        if let Json::Object(members) = &mut v {
            members.retain(|(k, _)| k != "victims");
        }
        let back = RecoveryOutcome::from_json(&v).unwrap();
        assert!(back.victims.is_empty());
        assert_eq!(back.crashes, 3);
    }
}
