//! Transport-generic byte stream and framing for the Time Warp wire
//! protocol.
//!
//! The process and TCP transports speak the same protocol. Since wire
//! version 3 every command frame carries a 12-byte header — payload
//! length, a per-direction sequence number, and a CRC32 over the sequence
//! number and payload — so a flipped bit anywhere in a frame surfaces as a
//! typed `WireError::Corrupt` instead of a silent misparse, and a
//! replayed (duplicated) frame is skipped by its stale sequence number
//! rather than double-applied. The conversation is still opened by a
//! `hello` exchange that negotiates [`WIRE_VERSION`] and the checkpoint
//! schema and — over TCP — authenticates the peer with a per-run token and
//! identifies which cluster a dialing worker serves. Hello frames keep the
//! legacy version-2 framing (a bare `u32`-LE length prefix): the first
//! frame in each direction must be parseable by *any* protocol version so
//! that an old peer is rejected by version negotiation
//! ([`super::transport`] maps it to a typed `VersionMismatch`) rather than
//! by a framing error it cannot diagnose. `WireStream` is the small
//! abstraction that lets one supervisor/worker implementation run over
//! either a Unix-domain socket (same-host, per-cluster socket paths) or a
//! TCP connection (any host, one shared listener the workers dial).
//!
//! Nothing here depends on *what* the frames say — the command vocabulary
//! lives in [`super::transport`]; this module owns how bytes move and how
//! a conversation is opened.

use super::checkpoint::CHECKPOINT_SCHEMA;
use dvs_json::{Json, ObjBuilder};
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Version of the framing and command vocabulary. Negotiated in the
/// `hello` exchange together with [`CHECKPOINT_SCHEMA`] (the restore
/// payload is a serialized base checkpoint plus, under checkpoint schema
/// 2, an optional delta chain to fold onto it, so both must match — a
/// schema-1 peer is rejected at the handshake rather than failing when a
/// `ckpt_delta` command or a chained `restore` frame arrives). Version 2
/// added the per-run `token` and the worker `cluster` identity to the
/// hello frame for the TCP transport. Version 3 added the checksummed,
/// sequence-numbered command-frame header and the `ping`/`pong` heartbeat
/// exchange; only the hello keeps the version-2 framing.
pub const WIRE_VERSION: u32 = 3;

/// Upper bound on a frame payload (64 MiB). A length prefix above this is
/// a protocol error, not an allocation request.
pub const MAX_FRAME: usize = 64 << 20;

/// Size of a version-3 command-frame header: payload length (`u32`-LE),
/// per-direction sequence number (`u32`-LE), CRC32 of sequence number and
/// payload (`u32`-LE).
pub(crate) const FRAME_HEADER: usize = 12;

/// Payload reads are buffered in chunks of at most this size so a corrupt
/// length prefix below [`MAX_FRAME`] still cannot force a single huge
/// up-front allocation for bytes that may never arrive.
const READ_CHUNK: usize = 64 << 10;

/// A typed wire-level failure. The transport layer routes the
/// corruption-shaped variants ([`WireError::is_corrupt`]) and truncation
/// into the same respawn/reconnect + checkpoint-restore path a killed
/// worker takes — a flipped bit is a crash-stop event for the connection,
/// never a panic or a silent misparse.
#[derive(Debug)]
pub(crate) enum WireError {
    /// Frame bytes failed the CRC32 check, or a sequence number jumped
    /// ahead of the expected one (bytes were lost without the length
    /// prefix noticing).
    Corrupt(String),
    /// The stream ended inside a frame — the signature of a killed peer or
    /// a reset connection.
    Truncated(String),
    /// A length prefix above [`MAX_FRAME`]: rejected before any
    /// allocation.
    Oversize(usize),
    /// A zero-length command frame. Every command and response is a
    /// non-empty JSON object; an empty payload is corruption or a hostile
    /// peer, not a message.
    ZeroLength,
    /// The underlying stream failed (including read timeouts, which the
    /// supervisor's heartbeat logic inspects via [`WireError::timed_out`]).
    Io(io::Error),
}

impl WireError {
    /// Corruption-shaped errors: the bytes were readable but wrong. These
    /// feed the supervisor's `corrupt_frames` counter; truncation and I/O
    /// errors are connection-death-shaped instead.
    pub fn is_corrupt(&self) -> bool {
        matches!(
            self,
            WireError::Corrupt(_) | WireError::Oversize(_) | WireError::ZeroLength
        )
    }

    /// Did the underlying stream hit its read timeout (no bytes at all
    /// arrived within the timeout window)?
    pub fn timed_out(&self) -> bool {
        matches!(
            self,
            WireError::Io(e) if e.kind() == io::ErrorKind::WouldBlock
                || e.kind() == io::ErrorKind::TimedOut
        )
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Corrupt(d) => write!(f, "corrupt frame: {d}"),
            WireError::Truncated(d) => write!(f, "truncated frame: {d}"),
            WireError::Oversize(len) => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME}-byte limit")
            }
            WireError::ZeroLength => write!(f, "zero-length command frame"),
            WireError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> WireError {
        WireError::Io(e)
    }
}

/// IEEE CRC32 (the zlib/Ethernet polynomial, reflected form), table-driven
/// and hand-rolled — the workspace vendors no checksum crate and the wire
/// needs nothing stronger: this is integrity against link/memory
/// corruption, not an authenticator.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 over the concatenation of `parts` (no copying).
pub(crate) fn crc32(parts: &[&[u8]]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for part in parts {
        for &b in *part {
            c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
    }
    !c
}

/// The checksum a version-3 frame header carries: CRC32 over the
/// sequence-number bytes followed by the payload, so a flip in *either* is
/// caught (the length prefix is implicitly covered — a wrong length
/// misaligns the CRC input and fails the check).
fn frame_crc(seq: u32, payload: &[u8]) -> u32 {
    crc32(&[&seq.to_le_bytes(), payload])
}

/// Encode one version-3 command frame: 12-byte header + payload in a
/// single buffer, so each frame costs one write syscall and a live peer
/// never observes a torn header.
pub(crate) fn encode_frame(seq: u32, payload: &[u8]) -> Result<Vec<u8>, WireError> {
    if payload.is_empty() {
        return Err(WireError::ZeroLength);
    }
    if payload.len() > MAX_FRAME {
        return Err(WireError::Oversize(payload.len()));
    }
    let mut buf = Vec::with_capacity(FRAME_HEADER + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&frame_crc(seq, payload).to_le_bytes());
    buf.extend_from_slice(payload);
    Ok(buf)
}

/// The sending half of a version-3 conversation: owns the per-direction
/// sequence counter. Sequence numbers start at 0 on each (re)connection
/// and increment per frame; the receiver uses them to skip duplicated
/// frames and to detect silently dropped ones.
#[derive(Debug)]
pub(crate) struct FrameSink<W: Write> {
    w: W,
    seq: u32,
}

impl<W: Write> FrameSink<W> {
    pub fn new(w: W) -> FrameSink<W> {
        FrameSink { w, seq: 0 }
    }

    /// Encode the next frame (consuming a sequence number) without writing
    /// it — the chaos shim uses this to tamper with the encoded bytes
    /// before they hit the stream.
    pub fn encode_next(&mut self, payload: &[u8]) -> Result<Vec<u8>, WireError> {
        let buf = encode_frame(self.seq, payload)?;
        self.seq = self.seq.wrapping_add(1);
        Ok(buf)
    }

    /// Write pre-encoded frame bytes (from [`FrameSink::encode_next`]).
    pub fn send_encoded(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        self.w.write_all(bytes)?;
        self.w.flush()?;
        Ok(())
    }

    pub fn send(&mut self, payload: &[u8]) -> Result<(), WireError> {
        let buf = self.encode_next(payload)?;
        self.send_encoded(&buf)
    }

    pub fn send_json(&mut self, j: &Json) -> Result<(), WireError> {
        let text = j
            .emit()
            .map_err(|e| WireError::Io(io::Error::new(io::ErrorKind::InvalidData, e.msg)))?;
        self.send(text.as_bytes())
    }

    pub fn get_ref(&self) -> &W {
        &self.w
    }
}

/// The receiving half of a version-3 conversation. Resumable: a read
/// timeout in the middle of a frame preserves the partially received bytes,
/// so the supervisor can wake up, count a missed heartbeat, probe the
/// peer, and call [`FrameSource::recv`] again without losing its place.
#[derive(Debug)]
pub(crate) struct FrameSource<R: Read> {
    r: R,
    /// Next sequence number we expect to accept.
    expect: u32,
    /// Duplicated frames skipped by their stale sequence number.
    pub dups_skipped: u64,
    header: [u8; FRAME_HEADER],
    header_got: usize,
    body: Vec<u8>,
    /// Declared payload length once the header is complete.
    body_len: Option<usize>,
}

impl<R: Read> FrameSource<R> {
    pub fn new(r: R) -> FrameSource<R> {
        FrameSource {
            r,
            expect: 0,
            dups_skipped: 0,
            header: [0u8; FRAME_HEADER],
            header_got: 0,
            body: Vec::new(),
            body_len: None,
        }
    }

    /// Read one verified command frame. `Ok(None)` is a clean EOF *at a
    /// frame boundary* (the peer closed deliberately); EOF inside a frame
    /// is [`WireError::Truncated`] — the signature of a killed worker or a
    /// reset connection. Frames whose CRC32 does not match are
    /// [`WireError::Corrupt`]; duplicated frames (stale sequence number)
    /// are skipped silently and counted in
    /// [`FrameSource::dups_skipped`]; a sequence number from the future is
    /// [`WireError::Corrupt`] — bytes were lost en route.
    pub fn recv(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        loop {
            // Complete the 12-byte header first. The oversize check runs
            // on the declared length *before* any payload allocation.
            while self.body_len.is_none() {
                match self.r.read(&mut self.header[self.header_got..]) {
                    Ok(0) => {
                        if self.header_got == 0 {
                            return Ok(None);
                        }
                        return Err(WireError::Truncated(format!(
                            "connection closed {} bytes into a frame header",
                            self.header_got
                        )));
                    }
                    Ok(n) => self.header_got += n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(WireError::Io(e)),
                }
                if self.header_got == FRAME_HEADER {
                    let len =
                        u32::from_le_bytes(self.header[0..4].try_into().expect("4 bytes")) as usize;
                    if len > MAX_FRAME {
                        return Err(WireError::Oversize(len));
                    }
                    if len == 0 {
                        return Err(WireError::ZeroLength);
                    }
                    self.body.clear();
                    self.body.reserve(len.min(READ_CHUNK));
                    self.body_len = Some(len);
                }
            }
            let len = self.body_len.unwrap_or(0);
            while self.body.len() < len {
                let want = (len - self.body.len()).min(READ_CHUNK);
                let start = self.body.len();
                self.body.resize(start + want, 0);
                match self.r.read(&mut self.body[start..]) {
                    Ok(0) => {
                        self.body.truncate(start);
                        return Err(WireError::Truncated(format!(
                            "connection closed {} bytes into a {len}-byte payload",
                            start
                        )));
                    }
                    Ok(n) => self.body.truncate(start + n),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                        self.body.truncate(start);
                    }
                    Err(e) => {
                        self.body.truncate(start);
                        return Err(WireError::Io(e));
                    }
                }
            }
            // Frame complete: reset the state machine, then verify.
            let seq = u32::from_le_bytes(self.header[4..8].try_into().expect("4 bytes"));
            let crc = u32::from_le_bytes(self.header[8..12].try_into().expect("4 bytes"));
            let payload = std::mem::take(&mut self.body);
            self.header_got = 0;
            self.body_len = None;
            if frame_crc(seq, &payload) != crc {
                return Err(WireError::Corrupt(format!(
                    "CRC32 mismatch on frame seq {seq} ({} bytes)",
                    payload.len()
                )));
            }
            if seq < self.expect {
                // A duplicated frame (replayed by a fault or a confused
                // middlebox): already applied, skip it.
                self.dups_skipped += 1;
                continue;
            }
            if seq > self.expect {
                return Err(WireError::Corrupt(format!(
                    "sequence gap: expected frame {} but received frame {seq}",
                    self.expect
                )));
            }
            self.expect = self.expect.wrapping_add(1);
            return Ok(Some(payload));
        }
    }

    pub fn get_ref(&self) -> &R {
        &self.r
    }
}

/// A duplex byte stream the wire protocol can run over. Both variants are
/// used identically: blocking reads under a read timeout, whole-frame
/// buffered writes. TCP additionally disables Nagle's algorithm — every
/// frame is a full command or response, so coalescing only adds latency
/// to the supervisor's round-trips.
#[derive(Debug)]
pub(crate) enum WireStream {
    /// Same-host stream: one Unix-domain socket per cluster.
    Unix(UnixStream),
    /// Cross-host stream: a connection accepted from (or dialed to) the
    /// supervisor's shared TCP listener.
    Tcp(TcpStream),
}

impl WireStream {
    pub fn try_clone(&self) -> io::Result<WireStream> {
        match self {
            WireStream::Unix(s) => s.try_clone().map(WireStream::Unix),
            WireStream::Tcp(s) => s.try_clone().map(WireStream::Tcp),
        }
    }

    pub fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            WireStream::Unix(s) => s.set_read_timeout(d),
            WireStream::Tcp(s) => s.set_read_timeout(d),
        }
    }

    /// Abruptly tear the connection down in both directions. Used when the
    /// supervisor declares a silent or reset peer dead: any bytes still in
    /// flight are discarded and the peer observes EOF/EPIPE — the same
    /// crash-stop signal a killed process produces.
    pub fn shutdown_both(&self) {
        match self {
            WireStream::Unix(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
            WireStream::Tcp(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
    }
}

impl Read for WireStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            WireStream::Unix(s) => s.read(buf),
            WireStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for WireStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            WireStream::Unix(s) => s.write(buf),
            WireStream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            WireStream::Unix(s) => s.flush(),
            WireStream::Tcp(s) => s.flush(),
        }
    }
}

/// Write one legacy `u32`-LE length-prefixed frame — the version-2 framing,
/// kept **only** for the `hello` exchange. The first frame in each
/// direction must be readable by any protocol version so that version
/// negotiation (not a framing error) rejects an old peer; everything after
/// the hello uses the checksummed [`FrameSink`]/[`FrameSource`] framing.
pub(crate) fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "frame of {} bytes exceeds the {MAX_FRAME}-byte limit",
                payload.len()
            ),
        ));
    }
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    w.flush()
}

/// Read one legacy (hello) frame. `Ok(None)` is a clean EOF *at a frame
/// boundary* (the peer closed deliberately); EOF inside a header or
/// payload is an `UnexpectedEof` error — the signature of a killed worker
/// or a reset connection. The oversize check runs on the length prefix
/// before any allocation.
pub(crate) fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut header[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(None);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed inside a frame header",
                ));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Serialize and send one JSON frame in the legacy (hello) framing.
pub(crate) fn send_json<W: Write>(w: &mut W, j: &Json) -> io::Result<()> {
    let text = j
        .emit()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.msg))?;
    write_frame(w, text.as_bytes())
}

pub(crate) fn parse_json(bytes: &[u8]) -> Result<Json, String> {
    let text = std::str::from_utf8(bytes).map_err(|e| format!("frame is not UTF-8: {e}"))?;
    Json::parse(text).map_err(|e| format!("frame is not JSON: {}", e.msg))
}

pub(crate) fn json_kind(j: &Json) -> Result<&str, String> {
    j.field("kind").and_then(Json::as_str).map_err(|e| e.msg)
}

/// The decoded contents of a `hello` frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Hello {
    /// Peer's wire-protocol version.
    pub wire: u32,
    /// Peer's checkpoint schema version.
    pub checkpoint_schema: u32,
    /// Per-run token. The supervisor mints one per TCP run and hands it to
    /// the workers it spawns (or the operator exports it to remote ones);
    /// a dial-in whose hello carries a different token is a stray from
    /// another run — or another program entirely — and is dropped without
    /// disturbing the run. Empty on the Unix transport, where the
    /// per-cluster socket path already scopes the conversation.
    pub token: String,
    /// The cluster this worker serves. Carried by worker hellos over TCP
    /// so the shared listener can match a (re)connecting worker back to
    /// its cluster; `None` in supervisor hellos and on the Unix transport,
    /// where the socket path identifies the cluster.
    pub cluster: Option<u32>,
    /// Whether the peer understands the `msg_batch`/`deliver_next`
    /// commands. Optional on the wire and absent from older v3 peers'
    /// hellos, so negotiation degrades gracefully: the supervisor batches
    /// toward a worker only when the worker's hello advertised the
    /// capability, and sends plain `deliver` frames otherwise.
    pub batch: bool,
}

impl Hello {
    pub fn versions(&self) -> (u32, u32) {
        (self.wire, self.checkpoint_schema)
    }
}

/// Build a `hello` frame carrying our versions, the run token, and — from
/// a TCP worker — its cluster identity. `batch` advertises the
/// `msg_batch` capability; when false the field is omitted entirely,
/// which is also what a pre-batching v3 peer's hello looks like.
pub(crate) fn hello_json(token: &str, cluster: Option<u32>, batch: bool) -> Json {
    let mut b = ObjBuilder::new()
        .str("kind", "hello")
        .uint("wire", WIRE_VERSION as u64)
        .uint("checkpoint_schema", CHECKPOINT_SCHEMA as u64)
        .str("token", token);
    if let Some(c) = cluster {
        b = b.uint("cluster", c as u64);
    }
    if batch {
        b = b.bool("batch", true);
    }
    b.build()
}

/// Parse a `hello` frame. The `token` and `cluster` fields are optional on
/// the wire (a version-1 peer sends neither), defaulting to empty/absent —
/// version negotiation, not parsing, is what rejects such a peer.
pub(crate) fn hello_parse(j: &Json) -> Result<Hello, String> {
    if json_kind(j)? != "hello" {
        return Err(format!("expected a hello frame, got {j:?}"));
    }
    let err = |e: dvs_json::JsonError| e.msg;
    let wire = j.field("wire").and_then(Json::as_u64).map_err(err)? as u32;
    let checkpoint_schema = j
        .field("checkpoint_schema")
        .and_then(Json::as_u64)
        .map_err(err)? as u32;
    let token = match j.field("token") {
        Ok(v) => v.as_str().map_err(err)?.to_string(),
        Err(_) => String::new(),
    };
    let cluster = match j.field("cluster") {
        Ok(v) => Some(v.as_u64().map_err(err)? as u32),
        Err(_) => None,
    };
    let batch = match j.field("batch") {
        Ok(v) => v.as_bool().map_err(err)?,
        Err(_) => false,
    };
    Ok(Hello {
        wire,
        checkpoint_schema,
        token,
        cluster,
        batch,
    })
}

/// Mint a fresh per-run token: unique across concurrent runs on one
/// machine and unguessable enough to keep strays from other runs out of
/// this one's listener. Not a cryptographic credential — the TCP transport
/// is meant for trusted cluster networks (see EXPERIMENTS.md).
pub(crate) fn run_token() -> String {
    static SERIAL: AtomicU64 = AtomicU64::new(0);
    let serial = SERIAL.fetch_add(1, Ordering::Relaxed);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    format!("{:08x}-{:x}-{:x}", std::process::id(), nanos, serial)
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Deterministic decorrelated jitter for the worker dial-in backoff,
/// seeded from the run token and the worker's cluster id. After a
/// partition heals, every worker of a run retries on its *own* schedule —
/// same worker, same token: same schedule (replayable); different
/// clusters: decorrelated schedules (no reconnect stampede on the
/// broker).
#[derive(Debug)]
pub(crate) struct DialJitter {
    state: u64,
}

impl DialJitter {
    pub fn new(token: &str, cluster: u32) -> DialJitter {
        let mut h = FNV_OFFSET;
        for b in token.bytes() {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        h ^= (cluster as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        // xorshift64* needs a non-zero state.
        DialJitter {
            state: if h == 0 { FNV_OFFSET } else { h },
        }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64* — tiny, seedable, and plenty for spreading retries.
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// The decorrelated-jitter step: `min(cap, base + rand(prev * 3))`.
    /// Grows like the doubling backoff it replaces on average, but two
    /// workers never share a retry cadence.
    pub fn next_delay(&mut self, prev: Duration, base: Duration, cap: Duration) -> Duration {
        let span = (prev.as_millis() as u64).saturating_mul(3).max(1);
        let jittered = base + Duration::from_millis(self.next_u64() % span);
        jittered.min(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A reader that yields at most one byte per `read` call — models a
    /// socket delivering frames in arbitrarily small pieces.
    struct Trickle<R>(R);

    impl<R: io::Read> io::Read for Trickle<R> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let n = buf.len().min(1);
            self.0.read(&mut buf[..n])
        }
    }

    #[test]
    fn crc32_matches_the_reference_vector() {
        // The canonical IEEE CRC32 check value.
        assert_eq!(crc32(&[b"123456789"]), 0xCBF4_3926);
        // Split input hashes identically to contiguous input.
        assert_eq!(crc32(&[b"1234", b"56789"]), 0xCBF4_3926);
        assert_eq!(crc32(&[b""]), 0);
    }

    #[test]
    fn v3_frames_round_trip_with_sequence_numbers() {
        let mut buf = Vec::new();
        let mut sink = FrameSink::new(&mut buf);
        sink.send(b"first frame").expect("send");
        sink.send(b"second frame").expect("send");
        let mut src = FrameSource::new(io::Cursor::new(buf));
        assert_eq!(
            src.recv().expect("read").as_deref(),
            Some(&b"first frame"[..])
        );
        assert_eq!(
            src.recv().expect("read").as_deref(),
            Some(&b"second frame"[..])
        );
        assert_eq!(src.recv().expect("eof"), None);
        assert_eq!(src.dups_skipped, 0);
    }

    #[test]
    fn v3_frames_survive_split_reads() {
        let mut buf = Vec::new();
        let payload = vec![0xAB_u8; 1000];
        FrameSink::new(&mut buf).send(&payload).expect("send");
        let mut src = FrameSource::new(Trickle(io::Cursor::new(buf)));
        assert_eq!(src.recv().expect("read"), Some(payload));
        assert_eq!(src.recv().expect("eof"), None);
    }

    #[test]
    fn zero_length_command_frames_are_rejected_both_ways() {
        let mut sink = FrameSink::new(Vec::new());
        assert!(matches!(sink.send(b""), Err(WireError::ZeroLength)));
        // A crafted zero-length header is rejected on read too.
        let mut evil = 0u32.to_le_bytes().to_vec();
        evil.extend_from_slice(&0u32.to_le_bytes());
        evil.extend_from_slice(&frame_crc(0, b"").to_le_bytes());
        let mut src = FrameSource::new(io::Cursor::new(evil));
        assert!(matches!(src.recv(), Err(WireError::ZeroLength)));
    }

    #[test]
    fn oversized_v3_frame_is_rejected_before_allocation() {
        let mut evil = u32::MAX.to_le_bytes().to_vec();
        evil.extend_from_slice(&0u32.to_le_bytes());
        evil.extend_from_slice(&0u32.to_le_bytes());
        evil.extend_from_slice(b"junk");
        let mut src = FrameSource::new(io::Cursor::new(evil));
        assert!(matches!(src.recv(), Err(WireError::Oversize(_))));

        let too_big = vec![0u8; MAX_FRAME + 1];
        assert!(matches!(
            FrameSink::new(Vec::new()).send(&too_big),
            Err(WireError::Oversize(_))
        ));
    }

    #[test]
    fn truncation_inside_header_and_payload_is_typed() {
        let mut buf = Vec::new();
        FrameSink::new(&mut buf)
            .send(b"full payload")
            .expect("send");
        // Cut inside the 12-byte header.
        let mut src = FrameSource::new(io::Cursor::new(buf[..7].to_vec()));
        assert!(matches!(src.recv(), Err(WireError::Truncated(_))));
        // Cut inside the payload.
        let mut src = FrameSource::new(io::Cursor::new(buf[..buf.len() - 3].to_vec()));
        assert!(matches!(src.recv(), Err(WireError::Truncated(_))));
    }

    /// A bit flip at *every* byte offset of a frame — header and payload —
    /// is rejected with a typed error, never parsed and never a panic. A
    /// flip can land in the length prefix (the frame reads short or long:
    /// `Corrupt`, `Truncated`, `ZeroLength`, or `Oversize`), the sequence
    /// number or CRC or payload (CRC mismatch: `Corrupt`) — but no flipped
    /// frame is ever accepted.
    #[test]
    fn bit_flips_at_every_offset_are_rejected() {
        let payload = b"{\"kind\":\"step\",\"limit\":7}";
        let clean = encode_frame(0, payload).expect("encode");
        for offset in 0..clean.len() {
            for bit in [0x01u8, 0x80u8] {
                let mut bytes = clean.clone();
                bytes[offset] ^= bit;
                let mut src = FrameSource::new(io::Cursor::new(bytes));
                let got = src.recv();
                assert!(
                    got.is_err(),
                    "flip of bit {bit:#04x} at byte {offset} was accepted: {got:?}"
                );
            }
        }
        // The unflipped frame, for contrast, parses fine.
        let mut src = FrameSource::new(io::Cursor::new(clean));
        assert_eq!(src.recv().expect("clean").as_deref(), Some(&payload[..]));
    }

    #[test]
    fn duplicated_frames_are_skipped_by_sequence_number() {
        let mut sink = FrameSink::new(Vec::new());
        let first = sink.encode_next(b"frame zero").expect("encode");
        let second = sink.encode_next(b"frame one").expect("encode");
        let mut buf = Vec::new();
        buf.extend_from_slice(&first);
        buf.extend_from_slice(&first); // duplicated in flight
        buf.extend_from_slice(&second);
        let mut src = FrameSource::new(io::Cursor::new(buf));
        assert_eq!(
            src.recv().expect("read").as_deref(),
            Some(&b"frame zero"[..])
        );
        assert_eq!(
            src.recv().expect("read").as_deref(),
            Some(&b"frame one"[..])
        );
        assert_eq!(src.recv().expect("eof"), None);
        assert_eq!(src.dups_skipped, 1);
    }

    #[test]
    fn sequence_gaps_are_corrupt() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&encode_frame(0, b"frame zero").expect("encode"));
        // Frame 1 was lost; frame 2 arrives with a valid CRC.
        buf.extend_from_slice(&encode_frame(2, b"frame two").expect("encode"));
        let mut src = FrameSource::new(io::Cursor::new(buf));
        assert_eq!(
            src.recv().expect("read").as_deref(),
            Some(&b"frame zero"[..])
        );
        assert!(matches!(src.recv(), Err(WireError::Corrupt(_))));
    }

    #[test]
    fn a_read_timeout_mid_frame_is_resumable() {
        // A reader that delivers the first `cut` bytes, then times out
        // once, then delivers the rest.
        struct TimeoutOnce {
            bytes: Vec<u8>,
            pos: usize,
            cut: usize,
            fired: bool,
        }
        impl io::Read for TimeoutOnce {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.pos == self.cut && !self.fired {
                    self.fired = true;
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "timed out"));
                }
                let end = if self.fired {
                    self.bytes.len()
                } else {
                    self.cut
                };
                let n = buf.len().min(end - self.pos);
                buf[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
                self.pos += n;
                Ok(n)
            }
        }
        let frame = encode_frame(0, b"resumable payload").expect("encode");
        for cut in [3, FRAME_HEADER, FRAME_HEADER + 5] {
            let mut src = FrameSource::new(TimeoutOnce {
                bytes: frame.clone(),
                pos: 0,
                cut,
                fired: false,
            });
            let err = src.recv().expect_err("first recv times out");
            assert!(err.timed_out(), "cut at {cut}: {err:?}");
            assert_eq!(
                src.recv().expect("resumed").as_deref(),
                Some(&b"resumable payload"[..]),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn legacy_hello_framing_round_trips() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello frames").expect("write");
        let mut r = Trickle(io::Cursor::new(buf));
        assert_eq!(
            read_frame(&mut r).expect("read").as_deref(),
            Some(&b"hello frames"[..])
        );
        assert_eq!(read_frame(&mut r).expect("eof"), None);
    }

    #[test]
    fn legacy_eof_inside_header_or_payload_is_an_error() {
        let mut r = io::Cursor::new(vec![7u8, 0]);
        let err = read_frame(&mut r).expect_err("partial header must error");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        let mut buf = Vec::new();
        write_frame(&mut buf, b"full payload").expect("write");
        buf.truncate(buf.len() - 3);
        let mut r = io::Cursor::new(buf);
        let err = read_frame(&mut r).expect_err("partial payload must error");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn legacy_oversized_frame_is_rejected_before_allocation() {
        let mut buf = (u32::MAX).to_le_bytes().to_vec();
        buf.extend_from_slice(b"junk");
        let mut r = io::Cursor::new(buf);
        let err = read_frame(&mut r).expect_err("oversized header must error");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        let too_big = vec![0u8; MAX_FRAME + 1];
        let err = write_frame(&mut Vec::new(), &too_big).expect_err("oversized write");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    /// An oversized length prefix arriving over a real TCP connection is
    /// rejected as a protocol error before any allocation — a malicious or
    /// corrupted remote peer cannot make the supervisor allocate 4 GiB.
    #[test]
    fn oversized_frame_over_tcp_is_a_protocol_error() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let sender = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            let mut evil = ((MAX_FRAME as u32) + 1).to_le_bytes().to_vec();
            evil.extend_from_slice(&0u32.to_le_bytes());
            evil.extend_from_slice(&0u32.to_le_bytes());
            evil.extend_from_slice(b"payload never arrives");
            s.write_all(&evil).expect("write");
        });
        let (conn, _) = listener.accept().expect("accept");
        let mut src = FrameSource::new(io::BufReader::new(WireStream::Tcp(conn)));
        assert!(matches!(src.recv(), Err(WireError::Oversize(_))));
        sender.join().expect("sender");
    }

    /// Checksummed frames round-trip over a `WireStream::Tcp` pair exactly
    /// as over the in-memory cursor used by the tests above; the legacy
    /// hello framing shares the stream.
    #[test]
    fn frames_cross_a_real_tcp_stream() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let sender = std::thread::spawn(move || {
            let mut s = WireStream::Tcp(TcpStream::connect(addr).expect("connect"));
            send_json(&mut s, &hello_json("tok-1", Some(3), true)).expect("send hello");
            let mut sink = FrameSink::new(s);
            sink.send(b"{\"kind\":\"step\"}").expect("send command");
        });
        let (conn, _) = listener.accept().expect("accept");
        let mut r = io::BufReader::new(WireStream::Tcp(conn));
        let bytes = read_frame(&mut r).expect("read").expect("one frame");
        let hello = hello_parse(&parse_json(&bytes).expect("parse")).expect("hello");
        assert_eq!(hello.versions(), (WIRE_VERSION, CHECKPOINT_SCHEMA));
        assert_eq!(hello.token, "tok-1");
        assert_eq!(hello.cluster, Some(3));
        assert!(hello.batch);
        let mut src = FrameSource::new(r);
        assert_eq!(
            src.recv().expect("command").as_deref(),
            Some(&b"{\"kind\":\"step\"}"[..])
        );
        sender.join().expect("sender");
    }

    #[test]
    fn hello_round_trips_with_and_without_identity() {
        for (token, cluster, batch) in [
            ("", None, false),
            ("run-abc", Some(0), true),
            ("t", Some(7), false),
        ] {
            let j = hello_json(token, cluster, batch);
            let h = hello_parse(&j).expect("parse");
            assert_eq!(h.versions(), (WIRE_VERSION, CHECKPOINT_SCHEMA));
            assert_eq!(h.token, token);
            assert_eq!(h.cluster, cluster);
            assert_eq!(h.batch, batch);
        }
        // A version-2 hello (token but no command-frame checksums) still
        // parses; version negotiation is what rejects it.
        let v2 = ObjBuilder::new()
            .str("kind", "hello")
            .uint("wire", 2)
            .uint("checkpoint_schema", CHECKPOINT_SCHEMA as u64)
            .str("token", "old-run")
            .build();
        let h = hello_parse(&v2).expect("v2 parses");
        assert_eq!(h.wire, 2);
        assert_eq!(h.token, "old-run");
        assert_eq!(h.cluster, None);
        // No `batch` field — the capability negotiates off, exactly how a
        // pre-batching v3 peer is handled.
        assert!(!h.batch);
    }

    #[test]
    fn run_tokens_are_unique() {
        let a = run_token();
        let b = run_token();
        assert_ne!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn dial_jitter_is_deterministic_and_decorrelated() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(500);
        let sample = |token: &str, cluster: u32| {
            let mut j = DialJitter::new(token, cluster);
            let mut prev = base;
            let mut out = Vec::new();
            for _ in 0..6 {
                prev = j.next_delay(prev, base, cap);
                assert!(prev >= base && prev <= cap);
                out.push(prev);
            }
            out
        };
        // Same identity: same schedule (replayable).
        assert_eq!(sample("run-1", 0), sample("run-1", 0));
        // Different cluster or run: decorrelated schedules.
        assert_ne!(sample("run-1", 0), sample("run-1", 1));
        assert_ne!(sample("run-1", 0), sample("run-2", 0));
    }
}
