//! Transport-generic byte stream and framing for the Time Warp wire
//! protocol.
//!
//! The process and TCP transports speak the same protocol: `u32`-LE
//! length-prefixed compact-JSON frames, capped at [`MAX_FRAME`], opened by
//! a `hello` exchange that negotiates [`WIRE_VERSION`] and the checkpoint
//! schema and — over TCP — authenticates the peer with a per-run token and
//! identifies which cluster a dialing worker serves. `WireStream` is the
//! small abstraction that lets one supervisor/worker implementation run
//! over either a Unix-domain socket (same-host, per-cluster socket paths)
//! or a TCP connection (any host, one shared listener the workers dial).
//!
//! Nothing here depends on *what* the frames say — the command vocabulary
//! lives in [`super::transport`]; this module owns how bytes move and how
//! a conversation is opened.

use super::checkpoint::CHECKPOINT_SCHEMA;
use dvs_json::{Json, ObjBuilder};
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Version of the framing and command vocabulary. Negotiated in the
/// `hello` exchange together with [`CHECKPOINT_SCHEMA`] (the restore
/// payload is a serialized base checkpoint plus, under checkpoint schema
/// 2, an optional delta chain to fold onto it, so both must match — a
/// schema-1 peer is rejected at the handshake rather than failing when a
/// `ckpt_delta` command or a chained `restore` frame arrives). Version 2
/// added the per-run `token` and the worker `cluster` identity to the
/// hello frame for the TCP transport.
pub const WIRE_VERSION: u32 = 2;

/// Upper bound on a frame payload (64 MiB). A length prefix above this is
/// a protocol error, not an allocation request.
pub const MAX_FRAME: usize = 64 << 20;

/// A duplex byte stream the wire protocol can run over. Both variants are
/// used identically: blocking reads under a read timeout, whole-frame
/// buffered writes. TCP additionally disables Nagle's algorithm — every
/// frame is a full command or response, so coalescing only adds latency
/// to the supervisor's round-trips.
#[derive(Debug)]
pub(crate) enum WireStream {
    /// Same-host stream: one Unix-domain socket per cluster.
    Unix(UnixStream),
    /// Cross-host stream: a connection accepted from (or dialed to) the
    /// supervisor's shared TCP listener.
    Tcp(TcpStream),
}

impl WireStream {
    pub fn try_clone(&self) -> io::Result<WireStream> {
        match self {
            WireStream::Unix(s) => s.try_clone().map(WireStream::Unix),
            WireStream::Tcp(s) => s.try_clone().map(WireStream::Tcp),
        }
    }

    pub fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            WireStream::Unix(s) => s.set_read_timeout(d),
            WireStream::Tcp(s) => s.set_read_timeout(d),
        }
    }

    /// Abruptly tear the connection down in both directions. Used when the
    /// supervisor declares a silent or reset peer dead: any bytes still in
    /// flight are discarded and the peer observes EOF/EPIPE — the same
    /// crash-stop signal a killed process produces.
    pub fn shutdown_both(&self) {
        match self {
            WireStream::Unix(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
            WireStream::Tcp(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
    }
}

impl Read for WireStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            WireStream::Unix(s) => s.read(buf),
            WireStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for WireStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            WireStream::Unix(s) => s.write(buf),
            WireStream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            WireStream::Unix(s) => s.flush(),
            WireStream::Tcp(s) => s.flush(),
        }
    }
}

/// Write one `u32`-LE length-prefixed frame. Header and payload are
/// assembled into a single buffer first, so each frame costs one write
/// syscall and a reader never observes a torn header from a live peer.
pub(crate) fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "frame of {} bytes exceeds the {MAX_FRAME}-byte limit",
                payload.len()
            ),
        ));
    }
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    w.flush()
}

/// Read one frame. `Ok(None)` is a clean EOF *at a frame boundary* (the
/// peer closed deliberately); EOF inside a header or payload is an
/// `UnexpectedEof` error — the signature of a killed worker or a reset
/// connection.
pub(crate) fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut header[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(None);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed inside a frame header",
                ));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Serialize and send one JSON frame.
pub(crate) fn send_json<W: Write>(w: &mut W, j: &Json) -> io::Result<()> {
    let text = j
        .emit()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.msg))?;
    write_frame(w, text.as_bytes())
}

pub(crate) fn parse_json(bytes: &[u8]) -> Result<Json, String> {
    let text = std::str::from_utf8(bytes).map_err(|e| format!("frame is not UTF-8: {e}"))?;
    Json::parse(text).map_err(|e| format!("frame is not JSON: {}", e.msg))
}

pub(crate) fn json_kind(j: &Json) -> Result<&str, String> {
    j.field("kind").and_then(Json::as_str).map_err(|e| e.msg)
}

/// The decoded contents of a `hello` frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Hello {
    /// Peer's wire-protocol version.
    pub wire: u32,
    /// Peer's checkpoint schema version.
    pub checkpoint_schema: u32,
    /// Per-run token. The supervisor mints one per TCP run and hands it to
    /// the workers it spawns (or the operator exports it to remote ones);
    /// a dial-in whose hello carries a different token is a stray from
    /// another run — or another program entirely — and is dropped without
    /// disturbing the run. Empty on the Unix transport, where the
    /// per-cluster socket path already scopes the conversation.
    pub token: String,
    /// The cluster this worker serves. Carried by worker hellos over TCP
    /// so the shared listener can match a (re)connecting worker back to
    /// its cluster; `None` in supervisor hellos and on the Unix transport,
    /// where the socket path identifies the cluster.
    pub cluster: Option<u32>,
}

impl Hello {
    pub fn versions(&self) -> (u32, u32) {
        (self.wire, self.checkpoint_schema)
    }
}

/// Build a `hello` frame carrying our versions, the run token, and — from
/// a TCP worker — its cluster identity.
pub(crate) fn hello_json(token: &str, cluster: Option<u32>) -> Json {
    let mut b = ObjBuilder::new()
        .str("kind", "hello")
        .uint("wire", WIRE_VERSION as u64)
        .uint("checkpoint_schema", CHECKPOINT_SCHEMA as u64)
        .str("token", token);
    if let Some(c) = cluster {
        b = b.uint("cluster", c as u64);
    }
    b.build()
}

/// Parse a `hello` frame. The `token` and `cluster` fields are optional on
/// the wire (a version-1 peer sends neither), defaulting to empty/absent —
/// version negotiation, not parsing, is what rejects such a peer.
pub(crate) fn hello_parse(j: &Json) -> Result<Hello, String> {
    if json_kind(j)? != "hello" {
        return Err(format!("expected a hello frame, got {j:?}"));
    }
    let err = |e: dvs_json::JsonError| e.msg;
    let wire = j.field("wire").and_then(Json::as_u64).map_err(err)? as u32;
    let checkpoint_schema = j
        .field("checkpoint_schema")
        .and_then(Json::as_u64)
        .map_err(err)? as u32;
    let token = match j.field("token") {
        Ok(v) => v.as_str().map_err(err)?.to_string(),
        Err(_) => String::new(),
    };
    let cluster = match j.field("cluster") {
        Ok(v) => Some(v.as_u64().map_err(err)? as u32),
        Err(_) => None,
    };
    Ok(Hello {
        wire,
        checkpoint_schema,
        token,
        cluster,
    })
}

/// Mint a fresh per-run token: unique across concurrent runs on one
/// machine and unguessable enough to keep strays from other runs out of
/// this one's listener. Not a cryptographic credential — the TCP transport
/// is meant for trusted cluster networks (see EXPERIMENTS.md).
pub(crate) fn run_token() -> String {
    static SERIAL: AtomicU64 = AtomicU64::new(0);
    let serial = SERIAL.fetch_add(1, Ordering::Relaxed);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    format!("{:08x}-{:x}-{:x}", std::process::id(), nanos, serial)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A reader that yields at most one byte per `read` call — models a
    /// socket delivering frames in arbitrarily small pieces.
    struct Trickle<R>(R);

    impl<R: io::Read> io::Read for Trickle<R> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let n = buf.len().min(1);
            self.0.read(&mut buf[..n])
        }
    }

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello frames").expect("write");
        write_frame(&mut buf, b"").expect("write empty");
        let mut r = io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r).expect("read").as_deref(),
            Some(&b"hello frames"[..])
        );
        assert_eq!(read_frame(&mut r).expect("read").as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).expect("eof"), None);
    }

    #[test]
    fn frame_survives_split_reads() {
        let mut buf = Vec::new();
        let payload = vec![0xAB_u8; 1000];
        write_frame(&mut buf, &payload).expect("write");
        let mut r = Trickle(io::Cursor::new(buf));
        assert_eq!(read_frame(&mut r).expect("read"), Some(payload));
        assert_eq!(read_frame(&mut r).expect("eof"), None);
    }

    #[test]
    fn eof_inside_header_is_an_error() {
        // Two bytes of a four-byte header, then EOF.
        let mut r = io::Cursor::new(vec![7u8, 0]);
        let err = read_frame(&mut r).expect_err("partial header must error");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn eof_inside_payload_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"full payload").expect("write");
        buf.truncate(buf.len() - 3);
        let mut r = io::Cursor::new(buf);
        let err = read_frame(&mut r).expect_err("partial payload must error");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_frame_is_rejected_before_allocation() {
        let mut buf = (u32::MAX).to_le_bytes().to_vec();
        buf.extend_from_slice(b"junk");
        let mut r = io::Cursor::new(buf);
        let err = read_frame(&mut r).expect_err("oversized header must error");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        let too_big = vec![0u8; MAX_FRAME + 1];
        let err = write_frame(&mut Vec::new(), &too_big).expect_err("oversized write");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    /// An oversized length prefix arriving over a real TCP connection is
    /// rejected as a protocol error before any allocation — a malicious or
    /// corrupted remote peer cannot make the supervisor allocate 4 GiB.
    #[test]
    fn oversized_frame_over_tcp_is_a_protocol_error() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let sender = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            let mut evil = ((MAX_FRAME as u32) + 1).to_le_bytes().to_vec();
            evil.extend_from_slice(b"payload never arrives");
            s.write_all(&evil).expect("write");
        });
        let (conn, _) = listener.accept().expect("accept");
        let mut r = io::BufReader::new(WireStream::Tcp(conn));
        let err = read_frame(&mut r).expect_err("oversized TCP frame must error");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        sender.join().expect("sender");
    }

    /// Frames round-trip over a `WireStream::Tcp` pair exactly as over the
    /// in-memory cursor used by the tests above.
    #[test]
    fn frames_cross_a_real_tcp_stream() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let sender = std::thread::spawn(move || {
            let mut s = WireStream::Tcp(TcpStream::connect(addr).expect("connect"));
            send_json(&mut s, &hello_json("tok-1", Some(3))).expect("send");
        });
        let (conn, _) = listener.accept().expect("accept");
        let mut r = io::BufReader::new(WireStream::Tcp(conn));
        let bytes = read_frame(&mut r).expect("read").expect("one frame");
        let hello = hello_parse(&parse_json(&bytes).expect("parse")).expect("hello");
        assert_eq!(hello.versions(), (WIRE_VERSION, CHECKPOINT_SCHEMA));
        assert_eq!(hello.token, "tok-1");
        assert_eq!(hello.cluster, Some(3));
        sender.join().expect("sender");
    }

    #[test]
    fn hello_round_trips_with_and_without_identity() {
        for (token, cluster) in [("", None), ("run-abc", Some(0)), ("t", Some(7))] {
            let j = hello_json(token, cluster);
            let h = hello_parse(&j).expect("parse");
            assert_eq!(h.versions(), (WIRE_VERSION, CHECKPOINT_SCHEMA));
            assert_eq!(h.token, token);
            assert_eq!(h.cluster, cluster);
        }
        // A version-1 hello (no token, no cluster) still parses; version
        // negotiation is what rejects it.
        let v1 = ObjBuilder::new()
            .str("kind", "hello")
            .uint("wire", 1)
            .uint("checkpoint_schema", CHECKPOINT_SCHEMA as u64)
            .build();
        let h = hello_parse(&v1).expect("v1 parses");
        assert_eq!(h.wire, 1);
        assert_eq!(h.token, "");
        assert_eq!(h.cluster, None);
    }

    #[test]
    fn run_tokens_are_unique() {
        let a = run_token();
        let b = run_token();
        assert_ne!(a, b);
        assert!(!a.is_empty());
    }
}
