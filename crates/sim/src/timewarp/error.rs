//! Typed errors for the Time Warp kernel.

use crate::wheel::VTime;

/// A Time Warp run failed in a way the kernel can diagnose. Crash faults do
/// **not** surface here — the recovery supervisor either restores the dead
/// cluster or degrades to the sequential simulator (see
/// [`super::recovery::FaultPlan`]); errors are reserved for conditions no
/// retry can fix.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TimeWarpError {
    /// The livelock watchdog tripped: GVT made no progress for `idle`
    /// scheduling decisions (deterministic executor) or idle scheduling
    /// quanta (threaded executor). A healthy run always advances GVT —
    /// the optimism window throttles every cluster to `GVT + window`, so
    /// unbounded work without GVT progress means the protocol is wedged
    /// (or [`super::TimeWarpConfig::stall_limit`] is set far too low).
    Stalled {
        /// GVT value the run was stuck at.
        gvt: VTime,
        /// Decisions/quanta executed since GVT last advanced.
        idle: u64,
    },
    /// [`super::TimeWarpBuilder::build`] rejected the configuration.
    InvalidConfig {
        /// What was wrong with it.
        reason: String,
    },
    /// A worker panicked. Under [`super::Transport::Process`] the panic is
    /// caught worker-side and shipped back as a typed frame rather than an
    /// opaque exit code. Panics are deterministic — replaying the same
    /// operation would panic again — so they are fatal, not recoverable.
    WorkerPanic {
        /// The cluster whose worker panicked.
        cluster: u32,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The process or TCP transport failed at the protocol level: a
    /// malformed or oversized frame, an unexpected response kind, or a
    /// worker that could not be spawned or connected.
    Transport {
        /// The cluster whose link failed.
        cluster: u32,
        /// Human-readable description of the failure.
        detail: String,
    },
    /// A worker stopped responding: no frame arrived within the read
    /// timeout (the `io_timeout` builder knob, env fallback
    /// `DVS_TW_TIMEOUT_MS`). On the Unix transport a wedged local worker
    /// is not crash-stop (its state may still mutate), so the run fails
    /// instead of attempting recovery — this is the process-transport arm
    /// of the stall watchdog. Over TCP this error is reserved for the
    /// spawn/handshake phase (before the first checkpoint exists); once a
    /// run is underway, post-handshake silence is heartbeat-probed
    /// (`heartbeat_interval` / `heartbeat_budget`) and an exhausted
    /// miss budget drops the connection and *recovers* it like a crash
    /// instead of failing.
    WorkerTimeout {
        /// The cluster whose worker went silent.
        cluster: u32,
        /// The read timeout that elapsed, in milliseconds.
        after_ms: u64,
    },
    /// Version negotiation with a worker failed: its wire or checkpoint
    /// schema version differs from ours. Mixed-version deployments must be
    /// rejected up front — a checkpoint restored under a different schema
    /// would silently diverge.
    VersionMismatch {
        /// The cluster whose worker offered the other version.
        cluster: u32,
        /// Our combined version (wire, checkpoint schema).
        ours: (u32, u32),
        /// The worker's combined version.
        theirs: (u32, u32),
    },
}

impl std::fmt::Display for TimeWarpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimeWarpError::Stalled { gvt, idle } => write!(
                f,
                "time warp stalled: GVT stuck at {gvt} for {idle} scheduling decisions"
            ),
            TimeWarpError::InvalidConfig { reason } => {
                write!(f, "invalid time warp configuration: {reason}")
            }
            TimeWarpError::WorkerPanic { cluster, message } => {
                write!(f, "worker for cluster {cluster} panicked: {message}")
            }
            TimeWarpError::Transport { cluster, detail } => {
                write!(f, "transport failure on cluster {cluster}: {detail}")
            }
            TimeWarpError::WorkerTimeout { cluster, after_ms } => write!(
                f,
                "worker for cluster {cluster} sent no frame for {after_ms} ms"
            ),
            TimeWarpError::VersionMismatch {
                cluster,
                ours,
                theirs,
            } => write!(
                f,
                "version mismatch with worker for cluster {cluster}: \
                 ours wire={} checkpoint={}, theirs wire={} checkpoint={}",
                ours.0, ours.1, theirs.0, theirs.1
            ),
        }
    }
}

impl std::error::Error for TimeWarpError {}
