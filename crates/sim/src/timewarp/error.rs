//! Typed errors for the Time Warp kernel.

use crate::wheel::VTime;

/// A Time Warp run failed in a way the kernel can diagnose. Crash faults do
/// **not** surface here — the recovery supervisor either restores the dead
/// cluster or degrades to the sequential simulator (see
/// [`super::recovery::FaultPlan`]); errors are reserved for conditions no
/// retry can fix.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TimeWarpError {
    /// The livelock watchdog tripped: GVT made no progress for `idle`
    /// scheduling decisions (deterministic executor) or idle scheduling
    /// quanta (threaded executor). A healthy run always advances GVT —
    /// the optimism window throttles every cluster to `GVT + window`, so
    /// unbounded work without GVT progress means the protocol is wedged
    /// (or [`super::TimeWarpConfig::stall_limit`] is set far too low).
    Stalled {
        /// GVT value the run was stuck at.
        gvt: VTime,
        /// Decisions/quanta executed since GVT last advanced.
        idle: u64,
    },
}

impl std::fmt::Display for TimeWarpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimeWarpError::Stalled { gvt, idle } => write!(
                f,
                "time warp stalled: GVT stuck at {gvt} for {idle} scheduling decisions"
            ),
        }
    }
}

impl std::error::Error for TimeWarpError {}
