//! Clustered Time Warp — the optimistic parallel simulation kernel.
//!
//! This reproduces the role of OOCTW (the object-oriented Clustered Time
//! Warp kernel underneath the paper's DVS) with threads standing in for MPI
//! ranks: one worker thread per "machine", each owning one cluster of the
//! partitioned circuit, exchanging timestamped net-change messages over
//! channels.
//!
//! Protocol features implemented:
//!
//! * **optimistic execution** — each cluster processes its earliest pending
//!   epoch without waiting for neighbours, bounded by an optional optimism
//!   window above GVT;
//! * **state saving** ([`StateSaving`]) — either an incremental undo log of
//!   (time, net, old-value) records, or periodic full-state checkpoints with
//!   coast-forward replay on rollback. Both are cluster-level: gates inside
//!   a cluster save nothing individually, and a rollback of the cluster
//!   rolls back all of its children together, exactly as the paper
//!   describes for Verilog-instance LPs (§4.3);
//! * **rollback** — a straggler or anti-message with a timestamp at or below
//!   the cluster's local clock restores net values from the undo log,
//!   requeues processed events that remain valid, discards locally scheduled
//!   events created by undone epochs, and emits anti-messages for undone
//!   sends;
//! * **anti-messages with annihilation** — positive messages always precede
//!   their anti-message in channel order (FIFO per sender), so annihilation
//!   uses tombstones consumed at pop time;
//! * **GVT** — a coordinator-free sampling scheme: each worker publishes its
//!   local virtual time; a sample is valid when no message is in transit and
//!   no send intervened (checked with a send-epoch counter), making the
//!   minimum published LVT a correct lower bound;
//! * **fossil collection** — undo-log, processed-event and output-log
//!   entries strictly below GVT are reclaimed.
//!
//! Determinism: the final circuit state equals the sequential simulator's
//! (asserted in tests) under every transport. Under [`Transport::Threads`]
//! the message/rollback *counts* depend on thread timing; under
//! [`Transport::InProc`], [`Transport::Process`] and [`Transport::Tcp`]
//! the same cluster state machines are driven by the single-threaded
//! deterministic supervisor (see [`dst`] and [`transport`]) and every
//! counter is an exact, seed-reproducible value — byte-identical between
//! them, whether the workers are in-process state machines, `SIGKILL`-able
//! OS processes on Unix sockets, or processes dialing in over TCP.
//! ([`crate::cluster_model`] remains as the fast *modeled* estimate of
//! those counts for pre-simulation sweeps.)

pub mod chaos;
pub mod checkpoint;
pub mod dst;
pub mod error;
pub mod gvt;
pub mod proc;
pub mod recovery;
pub mod transport;
pub mod wire;

pub use chaos::{NetDir, NetFault, NetFaultKind, NetPlan};
pub use checkpoint::{
    Checkpoint, CheckpointCadence, CheckpointDelta, CkptEvent, CkptSource, DeltaError, LogDelta,
    ValuesDelta, CHECKPOINT_SCHEMA,
};
pub use dst::{DstAction, DstView, Schedule, SchedulePolicy};
pub use error::TimeWarpError;
pub use recovery::{FaultPlan, RecoveryOutcome};
pub use transport::{serve_worker, serve_worker_tcp, TcpWorkers, Transport};

use crate::cluster::ClusterPlan;
use crate::logic::Logic;
use crate::stats::SimStats;
use crate::stimulus::VectorStimulus;
use crate::wheel::{NetEvent, VTime};
use dvs_verilog::netlist::Netlist;
use gvt::GvtState;
use proc::ClusterProcess;
use recovery::PanicInjector;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A timestamped inter-cluster message. `(src, seq)` identifies the
/// positive message its anti-message annihilates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwMessage {
    pub src: u32,
    pub dst: u32,
    pub seq: u64,
    pub ev: NetEvent,
    pub anti: bool,
}

/// Upper bound on messages carried by one `msg_batch` wire frame. The
/// worker side rejects a batch whose *declared* length exceeds this before
/// materializing any of its messages, and
/// [`TimeWarpBuilder::message_batching`] rejects policies above it at
/// build time.
pub const MAX_BATCH_MSGS: usize = 4096;

/// Per-channel message batching policy, threaded through every transport.
///
/// Under [`Transport::Threads`] batching buffers outgoing messages per
/// destination and flushes them in groups — folding positive/anti pairs
/// that cancel while still unsent — so the channel (and, on a real
/// deployment, the wire) sees fewer, larger pushes. Under the
/// deterministic wire transports ([`Transport::Process`] /
/// [`Transport::Tcp`]) batching pre-ships the committed FIFO tail of a
/// channel in a single `msg_batch` frame the first time that channel is
/// delivered; subsequent delivers of the staged messages are payload-free
/// `deliver_next` commands, amortizing the 12-byte header + CRC pass per
/// message. In both cases the *semantics* are unchanged: every transport
/// produces artifacts byte-identical to its unbatched run (the
/// `batch_equivalence` suite sweeps exactly this).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum BatchPolicy {
    /// No batching: one message per channel push / wire frame. The
    /// default.
    #[default]
    Off,
    /// Batch per scheduling quantum.
    PerQuantum {
        /// Maximum messages per batch; a buffer reaching this size
        /// flushes immediately. Must be in `1..=`[`MAX_BATCH_MSGS`].
        max_size: usize,
        /// Maximum quanta a threaded worker may hold an unsent buffer
        /// before a quantum boundary flushes it. `1` flushes at every
        /// boundary; larger values trade latency (and potentially more
        /// rollbacks at the receiver) for bigger batches. Measured in
        /// quanta, never wall-clock, so runs stay deterministic. Ignored
        /// by the supervisor-driven transports, which ship batches
        /// eagerly at delivery decisions.
        max_delay: u64,
    },
}

impl BatchPolicy {
    /// The default `PerQuantum` policy: batches of up to 32 messages,
    /// flushed at every quantum boundary.
    pub fn per_quantum() -> Self {
        BatchPolicy::PerQuantum {
            max_size: 32,
            max_delay: 1,
        }
    }

    /// Whether any batching is enabled.
    pub fn is_on(&self) -> bool {
        !matches!(self, BatchPolicy::Off)
    }

    /// Effective batch size cap (`1` when off).
    pub(crate) fn max_size(&self) -> usize {
        match self {
            BatchPolicy::Off => 1,
            BatchPolicy::PerQuantum { max_size, .. } => *max_size,
        }
    }
}

/// Kernel tuning parameters. Construct via [`TimeWarpConfig::builder`]
/// (see [`TimeWarpBuilder`]) — the struct is `#[non_exhaustive]`, so
/// literal construction is reserved to this crate and new knobs can be
/// added without breaking downstream code.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct TimeWarpConfig {
    /// How the cluster workers execute and exchange messages (see
    /// [`Transport`]).
    pub transport: Transport,
    /// Epochs processed per scheduling quantum before re-checking
    /// channels. (Formerly named `batch`; renamed so it cannot be
    /// confused with message batching, which is [`BatchPolicy`].)
    pub epochs_per_quantum: usize,
    /// Per-channel message batching (see [`BatchPolicy`]). Off by
    /// default.
    pub batch_policy: BatchPolicy,
    /// Attempt a GVT computation every this many quanta.
    pub gvt_interval: usize,
    /// Optimism window: a cluster will not execute events more than this far
    /// (in virtual time) above the current GVT. `u64::MAX` = unthrottled.
    /// Gate-level circuits are tightly coupled (every vector cycle crosses
    /// the cut), so small windows — a few vector periods — avoid rollback
    /// storms; this mirrors CTW practice of throttling cluster optimism.
    pub window: VTime,
    /// State-saving strategy for rollback (see [`StateSaving`]).
    pub state_saving: StateSaving,
    /// Crash-fault injection and recovery plan (see [`FaultPlan`]). The
    /// default injects nothing; recovery machinery is only engaged when a
    /// crash is armed.
    pub fault: FaultPlan,
    /// Checkpoint cadence for the deterministic transports: a full base
    /// image every Nth GVT round with delta images in between (see
    /// [`CheckpointCadence`]). The default captures a full image every
    /// round. Sender-side channel retention stretches to match, so crash
    /// restore stays exact at any cadence.
    pub checkpoint_cadence: CheckpointCadence,
    /// Scheduler-noise injection for [`Transport::Threads`]: when set, each
    /// worker derives a seeded RNG from this value and sprinkles
    /// `yield_now` / short sleeps between scheduling quanta. Final state is
    /// unaffected (that is what the threads fuzz suite asserts); only
    /// thread interleaving — and therefore rollback/message counts —
    /// varies. `None` (the default) injects nothing.
    pub thread_jitter: Option<u64>,
    /// Livelock watchdog: if GVT makes no progress for this many scheduling
    /// decisions (deterministic executor) or idle scheduling quanta
    /// (threaded executor), the run fails with
    /// [`TimeWarpError::Stalled`] instead of hanging. `0` disables the
    /// watchdog.
    pub stall_limit: u64,
    /// Per-command read timeout for the wire transports. On the Unix
    /// transport this bounds every response wait outright; over TCP the
    /// heartbeat loop bounds silence instead (see
    /// [`TimeWarpConfig::heartbeat_interval`]) and this bounds the
    /// handshake. Resolved by [`TimeWarpBuilder::build`]: explicit knob,
    /// else `DVS_TW_TIMEOUT_MS` (malformed values are a typed error, not a
    /// silent default), else 30 s.
    pub io_timeout: std::time::Duration,
    /// How long a worker gets to (re)connect — process spawn plus the
    /// broker accept window on TCP. Resolved like
    /// [`TimeWarpConfig::io_timeout`] from `DVS_TW_CONNECT_MS`, default
    /// 10 s.
    pub connect_timeout: std::time::Duration,
    /// TCP heartbeat idle interval: when a response is this late, the
    /// supervisor counts a missed beat and probes the worker with a
    /// `ping`. Resolved like [`TimeWarpConfig::io_timeout`] from
    /// `DVS_TW_HEARTBEAT_MS`, default 1 s.
    pub heartbeat_interval: std::time::Duration,
    /// Consecutive missed beats before the supervisor declares the
    /// connection half-open and tears it down for recovery. Detection
    /// latency is bounded by `heartbeat_interval × heartbeat_budget`
    /// (default 30 × 1 s — the same 30 s envelope the plain read timeout
    /// used to give, but recoverable instead of fatal).
    pub heartbeat_budget: u32,
    /// Deterministic network fault injection for the wire transports (see
    /// [`NetPlan`]). `None` injects nothing.
    pub chaos: Option<NetPlan>,
}

/// How a cluster preserves enough history to roll back — the classic Time
/// Warp design trade-off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum StateSaving {
    /// Incremental: log `(time, net, old value)` per change; rollback
    /// replays the log backwards. Cheap rollbacks, per-change overhead.
    IncrementalUndo,
    /// Periodic: snapshot the full net-value state every `interval`
    /// processed epochs; rollback restores the newest snapshot below the
    /// target and *coast-forwards* by re-applying the retained processed
    /// events (no re-sends — their messages remain valid). Cheap forward
    /// path, costlier rollbacks.
    Checkpoint { interval: u32 },
}

impl Default for TimeWarpConfig {
    fn default() -> Self {
        TimeWarpConfig {
            transport: Transport::Threads,
            epochs_per_quantum: 16,
            batch_policy: BatchPolicy::Off,
            gvt_interval: 1,
            window: 16,
            state_saving: StateSaving::IncrementalUndo,
            fault: FaultPlan::default(),
            checkpoint_cadence: CheckpointCadence::default(),
            thread_jitter: None,
            stall_limit: 5_000_000,
            io_timeout: std::time::Duration::from_millis(DEFAULT_IO_TIMEOUT_MS),
            connect_timeout: std::time::Duration::from_millis(DEFAULT_CONNECT_TIMEOUT_MS),
            heartbeat_interval: std::time::Duration::from_millis(DEFAULT_HEARTBEAT_MS),
            heartbeat_budget: DEFAULT_HEARTBEAT_BUDGET,
            chaos: None,
        }
    }
}

const DEFAULT_IO_TIMEOUT_MS: u64 = 30_000;
const DEFAULT_CONNECT_TIMEOUT_MS: u64 = 10_000;
const DEFAULT_HEARTBEAT_MS: u64 = 1_000;
const DEFAULT_HEARTBEAT_BUDGET: u32 = 30;

/// Strictly parse an environment variable holding a millisecond count.
/// Absent is fine (`Ok(None)`); present-but-malformed or zero is a typed
/// error — a timeout knob that silently falls back to a default turns a
/// typo into a 30-second mystery.
fn env_millis(var: &str) -> Result<Option<std::time::Duration>, TimeWarpError> {
    let invalid = |got: &str| TimeWarpError::InvalidConfig {
        reason: format!("{var} must be a positive integer of milliseconds, got `{got}`"),
    };
    match std::env::var(var) {
        Ok(s) => match s.trim().parse::<u64>() {
            Ok(0) => Err(invalid(&s)),
            Ok(ms) => Ok(Some(std::time::Duration::from_millis(ms))),
            Err(_) => Err(invalid(&s)),
        },
        Err(_) => Ok(None),
    }
}

impl TimeWarpConfig {
    /// Start building a configuration from the defaults.
    pub fn builder() -> TimeWarpBuilder {
        TimeWarpBuilder::new()
    }
}

/// Builder for [`TimeWarpConfig`] — the only way to construct one outside
/// this crate. Invalid combinations are rejected by [`build`] with
/// [`TimeWarpError::InvalidConfig`] instead of panicking mid-run.
///
/// ```
/// use dvs_sim::timewarp::{SchedulePolicy, TimeWarpConfig, Transport};
///
/// let cfg = TimeWarpConfig::builder()
///     .transport(Transport::in_proc(0xFA17, SchedulePolicy::RoundRobin))
///     .window(32)
///     .build()
///     .expect("valid config");
/// assert_eq!(cfg.window, 32);
/// ```
///
/// [`build`]: TimeWarpBuilder::build
#[derive(Debug, Clone, Default)]
#[must_use = "a builder does nothing until .build() is called"]
pub struct TimeWarpBuilder {
    cfg: TimeWarpConfig,
    // Timeout knobs stay unset until `build`, where an explicit value
    // wins, the environment is consulted next (strictly — malformed
    // values error), and the default applies last.
    io_timeout: Option<std::time::Duration>,
    connect_timeout: Option<std::time::Duration>,
    heartbeat_interval: Option<std::time::Duration>,
}

impl TimeWarpBuilder {
    /// A builder initialized with the default configuration.
    pub fn new() -> Self {
        TimeWarpBuilder {
            cfg: TimeWarpConfig::default(),
            io_timeout: None,
            connect_timeout: None,
            heartbeat_interval: None,
        }
    }

    /// Select the worker transport (see [`Transport`]).
    pub fn transport(mut self, transport: Transport) -> Self {
        self.cfg.transport = transport;
        self
    }

    /// Epochs processed per scheduling quantum (threaded transport only).
    pub fn epochs_per_quantum(mut self, epochs: usize) -> Self {
        self.cfg.epochs_per_quantum = epochs;
        self
    }

    /// Deprecated name for [`epochs_per_quantum`]: "batch" now refers to
    /// message batching (see [`message_batching`]), not epoch grouping.
    ///
    /// [`epochs_per_quantum`]: TimeWarpBuilder::epochs_per_quantum
    /// [`message_batching`]: TimeWarpBuilder::message_batching
    #[deprecated(note = "renamed to `epochs_per_quantum`; `batch` now means message batching")]
    pub fn batch(self, batch: usize) -> Self {
        self.epochs_per_quantum(batch)
    }

    /// Per-channel message batching policy (see [`BatchPolicy`]).
    pub fn message_batching(mut self, policy: BatchPolicy) -> Self {
        self.cfg.batch_policy = policy;
        self
    }

    /// Attempt a GVT computation every this many quanta.
    pub fn gvt_interval(mut self, gvt_interval: usize) -> Self {
        self.cfg.gvt_interval = gvt_interval;
        self
    }

    /// Optimism window above GVT (`u64::MAX` = unthrottled).
    pub fn window(mut self, window: VTime) -> Self {
        self.cfg.window = window;
        self
    }

    /// State-saving strategy for rollback.
    pub fn state_saving(mut self, state_saving: StateSaving) -> Self {
        self.cfg.state_saving = state_saving;
        self
    }

    /// Crash-fault injection and recovery plan.
    pub fn fault(mut self, fault: FaultPlan) -> Self {
        self.cfg.fault = fault;
        self
    }

    /// Checkpoint cadence: full bases every Nth GVT round, deltas between.
    pub fn checkpoint_cadence(mut self, cadence: CheckpointCadence) -> Self {
        self.cfg.checkpoint_cadence = cadence;
        self
    }

    /// Inject seeded scheduler noise into the threaded transport.
    pub fn thread_jitter(mut self, seed: u64) -> Self {
        self.cfg.thread_jitter = Some(seed);
        self
    }

    /// Livelock watchdog threshold (`0` disables it).
    pub fn stall_limit(mut self, stall_limit: u64) -> Self {
        self.cfg.stall_limit = stall_limit;
        self
    }

    /// Per-command read timeout for the wire transports (replaces raw
    /// `DVS_TW_TIMEOUT_MS` consultation; the env var remains a fallback
    /// when this knob is unset).
    pub fn io_timeout(mut self, d: std::time::Duration) -> Self {
        self.io_timeout = Some(d);
        self
    }

    /// Worker (re)connect window for the wire transports (env fallback:
    /// `DVS_TW_CONNECT_MS`).
    pub fn connect_timeout(mut self, d: std::time::Duration) -> Self {
        self.connect_timeout = Some(d);
        self
    }

    /// TCP heartbeat idle interval (env fallback: `DVS_TW_HEARTBEAT_MS`).
    pub fn heartbeat_interval(mut self, d: std::time::Duration) -> Self {
        self.heartbeat_interval = Some(d);
        self
    }

    /// Consecutive missed heartbeats tolerated before the connection is
    /// declared half-open and torn down for recovery.
    pub fn heartbeat_budget(mut self, budget: u32) -> Self {
        self.cfg.heartbeat_budget = budget;
        self
    }

    /// Attach a deterministic network fault plan (see [`NetPlan`]).
    pub fn chaos(mut self, plan: NetPlan) -> Self {
        self.cfg.chaos = Some(plan);
        self
    }

    /// Validate and produce the configuration.
    pub fn build(mut self) -> Result<TimeWarpConfig, TimeWarpError> {
        let invalid = |reason: &str| TimeWarpError::InvalidConfig {
            reason: reason.to_string(),
        };
        if self.cfg.epochs_per_quantum == 0 {
            return Err(invalid("epochs_per_quantum must be at least 1"));
        }
        if let BatchPolicy::PerQuantum {
            max_size,
            max_delay,
        } = self.cfg.batch_policy
        {
            if max_size == 0 {
                return Err(invalid("message batching max_size must be at least 1"));
            }
            if max_size > MAX_BATCH_MSGS {
                return Err(TimeWarpError::InvalidConfig {
                    reason: format!(
                        "message batching max_size {max_size} exceeds the wire cap {MAX_BATCH_MSGS}"
                    ),
                });
            }
            if max_delay == 0 {
                return Err(invalid(
                    "message batching max_delay must be at least 1 quantum",
                ));
            }
        }
        if self.cfg.gvt_interval == 0 {
            return Err(invalid("gvt_interval must be at least 1"));
        }
        if let StateSaving::Checkpoint { interval: 0 } = self.cfg.state_saving {
            return Err(invalid("checkpoint interval must be at least 1"));
        }
        if self.cfg.checkpoint_cadence.every_n_rounds == 0 {
            return Err(invalid("checkpoint cadence must be at least 1 round"));
        }
        if let Transport::Tcp { listen, .. } = &self.cfg.transport {
            if listen.is_empty() {
                return Err(invalid("Transport::Tcp listen address must not be empty"));
            }
        }
        if self.cfg.heartbeat_budget == 0 {
            return Err(invalid("heartbeat budget must be at least 1 missed beat"));
        }
        // Timeout resolution: explicit knob > environment (strict) >
        // default. A malformed environment value is an error even when the
        // knob is set — a typo'd deployment should fail loudly, not run
        // with whichever half of its settings happened to parse.
        let io_env = env_millis("DVS_TW_TIMEOUT_MS")?;
        let connect_env = env_millis("DVS_TW_CONNECT_MS")?;
        let heartbeat_env = env_millis("DVS_TW_HEARTBEAT_MS")?;
        self.cfg.io_timeout = self
            .io_timeout
            .or(io_env)
            .unwrap_or(std::time::Duration::from_millis(DEFAULT_IO_TIMEOUT_MS));
        self.cfg.connect_timeout = self
            .connect_timeout
            .or(connect_env)
            .unwrap_or(std::time::Duration::from_millis(DEFAULT_CONNECT_TIMEOUT_MS));
        self.cfg.heartbeat_interval = self
            .heartbeat_interval
            .or(heartbeat_env)
            .unwrap_or(std::time::Duration::from_millis(DEFAULT_HEARTBEAT_MS));
        Ok(self.cfg)
    }
}

/// Outcome of a Time Warp run.
#[derive(Debug, Clone)]
pub struct TwRunResult {
    /// Merged statistics over all clusters.
    pub stats: SimStats,
    /// Per-cluster statistics.
    pub cluster_stats: Vec<SimStats>,
    /// Final value of every net, merged from the owning clusters.
    pub values: Vec<Logic>,
    /// GVT computations that produced progress.
    pub gvt_rounds: u64,
    /// Crash-fault recovery provenance (all-zero for an undisturbed run).
    pub recovery: RecoveryOutcome,
}

/// Run the Time Warp kernel over the clusters of `plan`, simulating
/// `cycles` vectors of `stim`. `cfg.transport` selects threaded execution
/// (one worker thread per cluster), the deterministic in-process executor,
/// one OS process per cluster driven over Unix-domain sockets, or workers
/// dialing in over TCP; final net values are identical in all of them, and
/// the deterministic transports produce byte-identical artifacts. Crash
/// faults — injected via `cfg.fault`, or genuine worker deaths and dropped
/// connections under [`Transport::Process`] / [`Transport::Tcp`] — are
/// recovered transparently from the last GVT checkpoint; once the restart
/// budget is exhausted, the run degrades to the sequential simulator
/// (flagged in [`TwRunResult::recovery`]). Errors are reserved for
/// conditions no retry can fix (see [`TimeWarpError`]).
pub fn run_timewarp(
    nl: &Netlist,
    plan: &ClusterPlan,
    stim: &VectorStimulus,
    cycles: u64,
    cfg: &TimeWarpConfig,
) -> Result<TwRunResult, TimeWarpError> {
    match &cfg.transport {
        Transport::Threads => run_threads(nl, plan, stim, cycles, cfg),
        Transport::InProc { seed, schedule } => dst::run_deterministic(
            nl,
            plan,
            stim,
            cycles,
            cfg,
            *seed,
            schedule,
            cfg!(debug_assertions),
        ),
        Transport::Process {
            seed,
            schedule,
            worker,
        } => transport::run_process(
            nl,
            plan,
            stim,
            cycles,
            cfg,
            *seed,
            schedule,
            worker.as_deref(),
        ),
        Transport::Tcp {
            seed,
            schedule,
            listen,
            workers,
        } => transport::run_tcp(
            nl, plan, stim, cycles, cfg, *seed, schedule, listen, workers,
        ),
    }
}

/// One attempt of the threaded execution path.
enum ThreadsAttempt {
    /// All workers finished; the run is complete. Boxed: the result is
    /// far larger than the other variants.
    Done(Box<TwRunResult>),
    /// At least one worker died (injected fault or genuine panic); the
    /// run's partial state is discarded.
    Crashed,
    /// The livelock watchdog tripped on some worker.
    Stalled { gvt: VTime, idle: u64 },
}

/// The threaded execution path: a supervisor retrying crash-stopped runs
/// with bounded exponential backoff. Worker-level replay is impossible
/// here — message delivery order is not logged under free-running threads —
/// so recovery is a global restart; determinism of the *final state* (which
/// equals the sequential simulator's) is what makes the retry transparent.
fn run_threads(
    nl: &Netlist,
    plan: &ClusterPlan,
    stim: &VectorStimulus,
    cycles: u64,
    cfg: &TimeWarpConfig,
) -> Result<TwRunResult, TimeWarpError> {
    // The injection budget is shared across restarts, so the fault fires
    // exactly `crashes` times in total and later attempts run clean.
    let injector = PanicInjector::new(&cfg.fault);
    let mut restarts = 0u32;
    loop {
        match run_threads_once(nl, plan, stim, cycles, cfg, injector.as_ref()) {
            ThreadsAttempt::Done(mut r) => {
                r.recovery.crashes = injector.as_ref().map_or(0, |i| i.fired());
                r.recovery.restarts = restarts;
                r.recovery.victims = thread_victims(cfg, r.recovery.crashes);
                return Ok(*r);
            }
            ThreadsAttempt::Crashed => {
                if restarts >= cfg.fault.max_restarts {
                    let mut r = recovery::degrade_sequential(nl, stim, cycles);
                    r.recovery.crashes = injector.as_ref().map_or(0, |i| i.fired());
                    r.recovery.restarts = restarts;
                    r.recovery.victims = thread_victims(cfg, r.recovery.crashes);
                    return Ok(r);
                }
                std::thread::sleep(recovery::backoff(restarts));
                restarts += 1;
            }
            ThreadsAttempt::Stalled { gvt, idle } => {
                return Err(TimeWarpError::Stalled { gvt, idle })
            }
        }
    }
}

/// Under the threaded transport every injected crash hits the configured
/// victim cluster, so the victim list is fully determined by the plan and
/// the number of faults that actually fired.
fn thread_victims(cfg: &TimeWarpConfig, fired: u32) -> Vec<u32> {
    match cfg.fault.crash_at {
        Some((victim, _)) => vec![victim; fired as usize],
        None => Vec::new(),
    }
}

fn run_threads_once(
    nl: &Netlist,
    plan: &ClusterPlan,
    stim: &VectorStimulus,
    cycles: u64,
    cfg: &TimeWarpConfig,
    injector: Option<&PanicInjector>,
) -> ThreadsAttempt {
    let k = plan.k;
    let shared = Arc::new(GvtState::new(k));

    // One channel per worker; senders cloned to everyone.
    let mut senders = Vec::with_capacity(k);
    let mut receivers = Vec::with_capacity(k);
    for _ in 0..k {
        let (tx, rx) = crossbeam::channel::unbounded::<TwMessage>();
        senders.push(tx);
        receivers.push(rx);
    }

    let mut results: Vec<Option<(SimStats, Vec<Logic>)>> = (0..k).map(|_| None).collect();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(k);
        for (me, rx) in receivers.into_iter().enumerate() {
            let senders = senders.clone();
            let shared = Arc::clone(&shared);
            let plan_ref = &*plan;
            let cfg = cfg.clone();
            let stim = stim.clone();
            handles.push(scope.spawn(move || {
                let mut proc =
                    ClusterProcess::new(nl, plan_ref, me as u32, stim, cycles, cfg.state_saving);
                // A worker death — injected or genuine — is contained here
                // and turned into a missing result; the supervisor decides
                // whether to restart or degrade. The unwind boundary makes
                // `proc` unusable afterwards, which is fine: its state dies
                // with the crash.
                let alive = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    worker_loop(&mut proc, rx, &senders, &shared, &cfg, me, injector);
                }))
                .is_ok();
                if !alive {
                    // Wake the survivors so they stop waiting for us.
                    shared.abort.store(true, Ordering::SeqCst);
                }
                alive.then(|| (proc.take_stats(), proc.into_values()))
            }));
        }
        for (me, h) in handles.into_iter().enumerate() {
            results[me] = h.join().unwrap_or(None);
        }
    });

    if shared.stalled.load(Ordering::SeqCst) {
        return ThreadsAttempt::Stalled {
            gvt: shared.gvt.load(Ordering::SeqCst),
            idle: cfg.stall_limit,
        };
    }
    if results.iter().any(Option::is_none) || shared.abort.load(Ordering::SeqCst) {
        return ThreadsAttempt::Crashed;
    }
    let per_cluster = results.into_iter().flatten().collect();
    let mut r = merge_results(
        nl,
        plan,
        per_cluster,
        shared.gvt_rounds.load(Ordering::SeqCst),
    );
    // Exact transport provenance for the successful attempt. Under free-
    // running threads the values depend on interleaving (unlike the
    // deterministic transports), but the invariant `emitted ==
    // messages_sent + messages_folded` always holds — the batching fuzz
    // suite asserts it.
    r.recovery.messages_sent = shared.messages_sent.load(Ordering::SeqCst);
    r.recovery.frames_sent = shared.frames_sent.load(Ordering::SeqCst);
    r.recovery.messages_folded = shared.messages_folded.load(Ordering::SeqCst);
    ThreadsAttempt::Done(Box::new(r))
}

/// Merge per-cluster stats and final net values into a [`TwRunResult`].
/// Each cluster owns the values of nets its gates drive and of its stimulus
/// inputs; constants are forced. Shared by the threaded and deterministic
/// execution paths.
fn merge_results(
    nl: &Netlist,
    plan: &ClusterPlan,
    per_cluster: Vec<(SimStats, Vec<Logic>)>,
    gvt_rounds: u64,
) -> TwRunResult {
    let mut stats = SimStats::default();
    let mut cluster_stats = Vec::with_capacity(per_cluster.len());
    let mut values = vec![Logic::X; nl.net_count()];
    for (me, (s, vals)) in per_cluster.into_iter().enumerate() {
        stats.merge(&s);
        cluster_stats.push(s);
        for &g in &plan.clusters[me].gates {
            let out = nl.gates[g.idx()].output;
            values[out.idx()] = vals[out.idx()];
        }
        for &pi in &plan.clusters[me].stimulus_nets {
            values[pi.idx()] = vals[pi.idx()];
        }
    }
    if let Some(c0) = nl.const0_net {
        values[c0.idx()] = Logic::Zero;
    }
    if let Some(c1) = nl.const1_net {
        values[c1.idx()] = Logic::One;
    }
    stats.gvt_rounds = gvt_rounds;

    TwRunResult {
        stats,
        cluster_stats,
        values,
        gvt_rounds,
        recovery: RecoveryOutcome::default(),
    }
}

fn worker_loop(
    proc: &mut ClusterProcess<'_, '_>,
    rx: crossbeam::channel::Receiver<TwMessage>,
    senders: &[crossbeam::channel::Sender<TwMessage>],
    shared: &GvtState,
    cfg: &TimeWarpConfig,
    me: usize,
    injector: Option<&PanicInjector>,
) {
    let mut quantum = 0u64;
    let mut out = BatchedSender::new(shared, senders, cfg.batch_policy);
    // Scheduler-noise injection: a per-worker seeded RNG (the shared seed
    // xor'd with the cluster id, so workers de-correlate) decides between
    // quanta whether to yield the OS slice or sleep a few tens of
    // microseconds. This perturbs interleavings the way a loaded host
    // would, without touching the protocol itself.
    let mut jitter = cfg.thread_jitter.map(|seed| {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(seed ^ (me as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    });
    // Livelock watchdog: consecutive quanta without local work and without
    // a GVT advance. Any progress — own epochs or a moving GVT — resets it.
    let mut idle_spins = 0u64;
    let mut seen_gvt: VTime = 0;
    loop {
        if let Some(rng) = jitter.as_mut() {
            use rand::Rng;
            let roll: u32 = rng.gen_range(0..100);
            if roll < 10 {
                std::thread::sleep(std::time::Duration::from_micros(u64::from(roll) * 10));
            } else if roll < 35 {
                std::thread::yield_now();
            }
        }
        // A peer crashed or stalled; this attempt is abandoned.
        if shared.abort.load(Ordering::SeqCst) {
            break;
        }

        // Drain incoming messages. The in-transit counter is decremented
        // only after the local virtual time reflects each insertion, keeping
        // GVT samples sound.
        let mut drained = 0i64;
        while let Ok(msg) = rx.try_recv() {
            proc.handle_message(msg, &mut |m: TwMessage| {
                out.push(m, quantum);
            });
            drained += 1;
        }
        // Rollback eagerness: a drained straggler or anti-message may have
        // rolled us back and emitted fresh anti-messages. Any that did not
        // fold against a buffered positive must not linger — the receiver
        // is executing down a path our annihilations are about to undo.
        if out.pending_anti {
            out.flush_all();
        }
        shared.publish_lvt(me, proc.lvt());
        if drained > 0 {
            shared.in_transit.fetch_sub(drained, Ordering::SeqCst);
        }

        let gvt = shared.gvt.load(Ordering::SeqCst);
        if gvt == VTime::MAX {
            break; // global quiescence
        }
        if gvt > seen_gvt {
            seen_gvt = gvt;
            idle_spins = 0;
        }

        // Process a quantum of epochs within the optimism window.
        let limit = gvt.saturating_add(cfg.window);
        let mut worked = false;
        for _ in 0..cfg.epochs_per_quantum {
            if !proc.process_next_epoch(limit, &mut |m: TwMessage| {
                out.push(m, quantum);
            }) {
                break;
            }
            worked = true;
        }
        shared.publish_lvt(me, proc.lvt());

        quantum += 1;
        // Quantum boundary: flush every buffer whose oldest message has
        // aged `max_delay` quanta (with the default delay of 1, that is
        // every non-empty buffer).
        out.flush_expired(quantum);
        if let Some(inj) = injector {
            if inj.should_fire(me, quantum) {
                // Crash-stop this worker. The abort flag is raised first so
                // the survivors stop promptly instead of spinning on a GVT
                // that can no longer advance.
                shared.abort.store(true, Ordering::SeqCst);
                panic!("injected crash fault: cluster {me} at quantum {quantum}");
            }
        }
        if quantum.is_multiple_of(cfg.gvt_interval as u64) || !worked {
            // GVT eagerness: a buffered message counts as in transit, so
            // holding one through a sample attempt would only invalidate
            // our own sample (and, run-wide, stall GVT). Ship everything
            // first.
            out.flush_all();
            if let Some(new_gvt) = shared.try_compute_gvt() {
                proc.fossil_collect(new_gvt);
            } else {
                let g = shared.gvt.load(Ordering::SeqCst);
                if g != VTime::MAX {
                    proc.fossil_collect(g);
                }
            }
            if !worked {
                idle_spins += 1;
                if cfg.stall_limit > 0 && idle_spins >= cfg.stall_limit {
                    shared.stalled.store(true, Ordering::SeqCst);
                    shared.abort.store(true, Ordering::SeqCst);
                    break;
                }
                std::thread::yield_now();
            }
        }
        if worked {
            idle_spins = 0;
        }
    }
}

/// Per-destination send buffering for the threaded transport.
///
/// Pushed messages are counted in transit immediately (so GVT can never
/// advance past an unsent buffer) but handed to the channel only when the
/// buffer flushes: at `max_size`, at a quantum boundary once the buffer
/// has aged `max_delay` quanta, eagerly before every GVT sample attempt,
/// and eagerly after a drain phase that emitted anti-messages. An
/// anti-message whose positive still sits unsent in the same buffer
/// *folds*: both are dropped on the spot — annihilation performed before
/// the channel ever sees the pair. FIFO per channel is preserved (buffers
/// flush in push order, and a positive always precedes its anti: either
/// both are buffered, in order, or the positive was flushed earlier).
///
/// With [`BatchPolicy::Off`] every push ships immediately, matching the
/// historical one-message-per-send behaviour exactly.
struct BatchedSender<'a> {
    shared: &'a GvtState,
    senders: &'a [crossbeam::channel::Sender<TwMessage>],
    /// One unsent FIFO buffer per destination cluster. Empty vecs when
    /// batching is off.
    bufs: Vec<Vec<TwMessage>>,
    /// Quantum at which each buffer's oldest unsent message was pushed;
    /// `u64::MAX` when the buffer is empty.
    oldest: Vec<u64>,
    max_size: usize,
    max_delay: u64,
    /// Set when a push buffered an anti-message (rather than folding it);
    /// the worker loop flushes eagerly after the drain phase that set it.
    pending_anti: bool,
}

impl<'a> BatchedSender<'a> {
    fn new(
        shared: &'a GvtState,
        senders: &'a [crossbeam::channel::Sender<TwMessage>],
        policy: BatchPolicy,
    ) -> Self {
        let k = senders.len();
        let (max_size, max_delay) = match policy {
            BatchPolicy::Off => (1, 1),
            BatchPolicy::PerQuantum {
                max_size,
                max_delay,
            } => (max_size, max_delay),
        };
        BatchedSender {
            shared,
            senders,
            bufs: vec![Vec::new(); k],
            oldest: vec![u64::MAX; k],
            max_size,
            max_delay,
            pending_anti: false,
        }
    }

    fn push(&mut self, m: TwMessage, quantum: u64) {
        self.shared.send_epoch.fetch_add(1, Ordering::SeqCst);
        if self.max_size <= 1 {
            self.shared.in_transit.fetch_add(1, Ordering::SeqCst);
            self.shared.messages_sent.fetch_add(1, Ordering::Relaxed);
            self.shared.frames_sent.fetch_add(1, Ordering::Relaxed);
            // A failed send means the receiver died in a crash fault; the
            // message is lost with it — exactly the crash-stop model — and
            // the supervisor restarts the attempt.
            let _ = self.senders[m.dst as usize].send(m);
            return;
        }
        let d = m.dst as usize;
        if m.anti {
            // Fold: `(src, seq)` identifies the positive this anti
            // annihilates, and src is always this worker, so a match on
            // seq within the per-destination buffer is exact. The
            // positive was already counted in transit; the pair nets out
            // to nothing.
            if let Some(i) = self.bufs[d].iter().position(|p| !p.anti && p.seq == m.seq) {
                self.bufs[d].remove(i);
                self.shared.in_transit.fetch_sub(1, Ordering::SeqCst);
                self.shared.messages_folded.fetch_add(2, Ordering::Relaxed);
                if self.bufs[d].is_empty() {
                    self.oldest[d] = u64::MAX;
                }
                return;
            }
            self.pending_anti = true;
        }
        self.shared.in_transit.fetch_add(1, Ordering::SeqCst);
        if self.bufs[d].is_empty() {
            self.oldest[d] = quantum;
        }
        self.bufs[d].push(m);
        if self.bufs[d].len() >= self.max_size {
            self.flush_dst(d);
        }
    }

    fn flush_dst(&mut self, d: usize) {
        if self.bufs[d].is_empty() {
            return;
        }
        self.shared
            .messages_sent
            .fetch_add(self.bufs[d].len() as u64, Ordering::Relaxed);
        self.shared.frames_sent.fetch_add(1, Ordering::Relaxed);
        for m in self.bufs[d].drain(..) {
            let _ = self.senders[d].send(m);
        }
        self.oldest[d] = u64::MAX;
    }

    fn flush_all(&mut self) {
        for d in 0..self.bufs.len() {
            self.flush_dst(d);
        }
        self.pending_anti = false;
    }

    /// Quantum-boundary flush: ship every buffer whose oldest message has
    /// aged at least `max_delay` quanta.
    fn flush_expired(&mut self, quantum: u64) {
        for d in 0..self.bufs.len() {
            if quantum.saturating_sub(self.oldest[d]) >= self.max_delay {
                self.flush_dst(d);
            }
        }
    }
}
