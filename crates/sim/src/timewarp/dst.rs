//! Deterministic simulation testing (DST) for the Time Warp kernel.
//!
//! [`run_deterministic`] drives the same [`super::proc::ClusterProcess`] state machines
//! as the threaded kernel, but under a single-threaded virtual scheduler:
//! the executor owns one FIFO queue per directed cluster pair (so a positive
//! message always precedes its anti-message, exactly as on a real channel)
//! and consults a pluggable [`Schedule`] to decide, at every step, whether a
//! cluster processes its next epoch or an in-transit message is delivered.
//!
//! The only sources of nondeterminism in the threaded kernel are thread
//! interleaving and message latency; fixing the schedule therefore fixes the
//! entire execution. Every rollback, anti-message, GVT round and fossil
//! collection is reproduced exactly for a given `(seed, schedule)` pair,
//! which is what lets [`crate::stats::SimStats`] counters be compared
//! byte-for-byte across runs and machines.
//!
//! Fault injection is *protocol-legal by construction*: a schedule may delay
//! or reorder deliveries across channels arbitrarily and within a bounded
//! horizon (that is precisely what the adversarial
//! [`SchedulePolicy::StragglerHeavy`] and [`SchedulePolicy::DelayChannel`]
//! policies do), but FIFO order within one channel is enforced by the
//! executor's queues and cannot be violated, so annihilation stays sound.
//!
//! # Legality and progress
//!
//! The executor offers the schedule only *legal* actions:
//!
//! * `Step(c)` — cluster `c` has a next epoch within the optimism window
//!   (`lvt(c) <= GVT + window`) and is not idle;
//! * `Deliver { src, dst }` — the `src → dst` queue is non-empty (the head,
//!   and only the head, of that queue is delivered).
//!
//! When no action is legal, either messages are in transit (impossible:
//! queued messages are always deliverable) or every cluster is idle or
//! throttled with empty channels — in which case the GVT sample must
//! advance, un-throttling clusters or terminating the run. A schedule can
//! therefore delay a message for an arbitrary but *bounded* number of
//! decisions: eventually its delivery is the only legal action left.

use super::error::TimeWarpError;
use super::transport::{run_supervisor, InProcWorker};
use super::{TimeWarpConfig, TwRunResult};
use crate::cluster::ClusterPlan;
use crate::stimulus::VectorStimulus;
use crate::wheel::VTime;
use dvs_verilog::netlist::Netlist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One scheduling decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DstAction {
    /// Cluster `c` processes its next pending epoch.
    Step(u32),
    /// The head of the `src → dst` channel is delivered to `dst`.
    Deliver { src: u32, dst: u32 },
}

/// Read-only view of the executor state offered to a [`Schedule`].
#[derive(Debug)]
pub struct DstView<'a> {
    /// Current GVT lower bound.
    pub gvt: VTime,
    /// Current local virtual time per cluster (`VTime::MAX` = idle).
    pub lvts: &'a [VTime],
    /// Clusters with a legal `Step` action, ascending.
    pub steppable: &'a [u32],
    /// Channels with a legal `Deliver` action, ascending `(src, dst)`.
    pub deliverable: &'a [(u32, u32)],
    /// Monotone decision counter (0-based), for rotation-style schedules.
    pub decision: u64,
}

impl DstView<'_> {
    /// Total number of legal actions.
    pub fn action_count(&self) -> usize {
        self.steppable.len() + self.deliverable.len()
    }

    /// The `i`-th legal action: deliveries first, then steps.
    pub fn action_at(&self, i: usize) -> DstAction {
        if i < self.deliverable.len() {
            let (src, dst) = self.deliverable[i];
            DstAction::Deliver { src, dst }
        } else {
            DstAction::Step(self.steppable[i - self.deliverable.len()])
        }
    }

    /// Is `a` among the legal actions?
    pub fn is_legal(&self, a: DstAction) -> bool {
        match a {
            DstAction::Step(c) => self.steppable.contains(&c),
            DstAction::Deliver { src, dst } => self.deliverable.contains(&(src, dst)),
        }
    }
}

/// A deterministic scheduling policy: given the current legal actions,
/// choose exactly one. Implementations must be deterministic functions of
/// their own state and the view — no wall-clock, no OS entropy — or the
/// reproducibility guarantee of [`run_deterministic`] is lost.
pub trait Schedule {
    /// Choose one of the legal actions in `view`. Returning an illegal
    /// action is a bug in the schedule and panics the executor.
    fn next(&mut self, view: &DstView<'_>) -> DstAction;
}

/// Built-in schedule families, nameable in configs and artifacts. A policy
/// plus a seed fully determines the execution; custom policies can be used
/// by implementing [`Schedule`] and calling [`run_with_schedule`] directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// Deliver eagerly (rotating over non-empty channels), step clusters in
    /// rotation otherwise. Low-latency and fair — the benign baseline that
    /// mimics an idealised network. Ignores the seed.
    RoundRobin,
    /// Pick uniformly at random among all legal actions using a seeded
    /// xoshiro256++ generator. Different seeds explore different
    /// interleavings; the same seed replays the same execution exactly.
    SeededRandom,
    /// Adversarial: starve the slowest cluster (the one with the minimum
    /// LVT) and run everyone else as far ahead as the optimism window
    /// allows, delivering the victim's outgoing messages as late as legally
    /// possible — so they arrive as stragglers and force rollbacks.
    StragglerHeavy,
    /// Adversarial: hold every message on the `src → dst` channel until its
    /// delivery is the only legal action left (the maximum protocol-legal
    /// delay), behaving round-robin otherwise. Forces rollback storms on
    /// the receiving cluster while preserving FIFO within the channel.
    DelayChannel { src: u32, dst: u32 },
    /// Adversarial for message batching: alternate a *build* phase that
    /// prefers stepping clusters — letting per-channel queues deepen while
    /// nothing is delivered — with a *drain* phase that prefers delivering,
    /// releasing the backlog all at once. Deep queues make batched tails as
    /// long as the policy allows, and the sudden drains land stale
    /// timestamps on clusters that ran ahead during the build phase, so
    /// batch flush boundaries interleave with rollback storms. Ignores the
    /// seed.
    Bursty,
}

impl SchedulePolicy {
    /// Instantiate the schedule for `seed`.
    pub fn build(&self, seed: u64) -> Box<dyn Schedule + Send> {
        match *self {
            SchedulePolicy::RoundRobin => Box::new(RoundRobin::default()),
            SchedulePolicy::SeededRandom => Box::new(SeededRandom::new(seed)),
            SchedulePolicy::StragglerHeavy => Box::new(StragglerHeavy),
            SchedulePolicy::DelayChannel { src, dst } => Box::new(DelayChannel::new(src, dst)),
            SchedulePolicy::Bursty => Box::new(Bursty::default()),
        }
    }

    /// Stable name for logs and artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulePolicy::RoundRobin => "round_robin",
            SchedulePolicy::SeededRandom => "seeded_random",
            SchedulePolicy::StragglerHeavy => "straggler_heavy",
            SchedulePolicy::DelayChannel { .. } => "delay_channel",
            SchedulePolicy::Bursty => "bursty",
        }
    }
}

/// The lowest-numbered directed cluster pair `(src, dst)` that actually
/// carries messages under `plan` — a convenient target for
/// [`SchedulePolicy::DelayChannel`]. `None` when the partition has no cut.
pub fn first_cut_channel(plan: &ClusterPlan) -> Option<(u32, u32)> {
    let mut best: Option<(u32, u32)> = None;
    for (src, cluster) in plan.clusters.iter().enumerate() {
        for (_, dests) in &cluster.exports {
            for &d in dests {
                let c = (src as u32, d);
                if best.is_none_or(|b| c < b) {
                    best = Some(c);
                }
            }
        }
    }
    best
}

/// See [`SchedulePolicy::RoundRobin`].
#[derive(Debug, Default)]
struct RoundRobin {
    cursor: u64,
}

impl Schedule for RoundRobin {
    fn next(&mut self, view: &DstView<'_>) -> DstAction {
        let a = if !view.deliverable.is_empty() {
            let (src, dst) =
                view.deliverable[(self.cursor % view.deliverable.len() as u64) as usize];
            DstAction::Deliver { src, dst }
        } else {
            DstAction::Step(view.steppable[(self.cursor % view.steppable.len() as u64) as usize])
        };
        self.cursor += 1;
        a
    }
}

/// See [`SchedulePolicy::SeededRandom`].
#[derive(Debug)]
struct SeededRandom {
    rng: StdRng,
}

impl SeededRandom {
    fn new(seed: u64) -> Self {
        SeededRandom {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Schedule for SeededRandom {
    fn next(&mut self, view: &DstView<'_>) -> DstAction {
        view.action_at(self.rng.gen_range(0..view.action_count()))
    }
}

/// See [`SchedulePolicy::StragglerHeavy`].
#[derive(Debug, Default)]
struct StragglerHeavy;

impl Schedule for StragglerHeavy {
    fn next(&mut self, view: &DstView<'_>) -> DstAction {
        // The victim: minimum LVT, lowest id on ties.
        let victim = (0..view.lvts.len())
            .min_by_key(|&i| (view.lvts[i], i))
            .expect("at least one cluster") as u32;
        // 1. Run the most-advanced non-victim cluster further ahead.
        if let Some(&c) = view
            .steppable
            .iter()
            .filter(|&&c| c != victim)
            .max_by_key(|&&c| (view.lvts[c as usize], c))
        {
            return DstAction::Step(c);
        }
        // 2. Deliver messages not originating from the victim.
        if let Some(&(src, dst)) = view.deliverable.iter().find(|&&(s, _)| s != victim) {
            return DstAction::Deliver { src, dst };
        }
        // 3. Only now let the victim run (its sends pile up in the queues).
        if view.steppable.contains(&victim) {
            return DstAction::Step(victim);
        }
        // 4. Forced: deliver the victim's stale messages — the stragglers.
        let (src, dst) = view.deliverable[0];
        DstAction::Deliver { src, dst }
    }
}

/// See [`SchedulePolicy::DelayChannel`].
#[derive(Debug)]
struct DelayChannel {
    src: u32,
    dst: u32,
    cursor: u64,
}

impl DelayChannel {
    fn new(src: u32, dst: u32) -> Self {
        DelayChannel {
            src,
            dst,
            cursor: 0,
        }
    }
}

impl Schedule for DelayChannel {
    fn next(&mut self, view: &DstView<'_>) -> DstAction {
        let held = (self.src, self.dst);
        let others = view.deliverable.iter().filter(|&&c| c != held).count();
        let n = others + view.steppable.len();
        if n == 0 {
            // The held channel is the only action left: forced delivery.
            let (src, dst) = view.deliverable[0];
            return DstAction::Deliver { src, dst };
        }
        let i = (self.cursor % n as u64) as usize;
        self.cursor += 1;
        if i < others {
            let (src, dst) = *view
                .deliverable
                .iter()
                .filter(|&&c| c != held)
                .nth(i)
                .expect("index within filtered deliverables");
            DstAction::Deliver { src, dst }
        } else {
            DstAction::Step(view.steppable[i - others])
        }
    }
}

/// See [`SchedulePolicy::Bursty`].
#[derive(Debug, Default)]
struct Bursty {
    cursor: u64,
}

impl Schedule for Bursty {
    fn next(&mut self, view: &DstView<'_>) -> DstAction {
        // Half a period of building, half a period of draining. The period
        // is long enough that a drain releases queues deeper than any
        // sensible batch `max_size`, forcing multi-frame drains.
        const HALF_PERIOD: u64 = 48;
        let building = (self.cursor / HALF_PERIOD).is_multiple_of(2);
        let i = self.cursor;
        self.cursor += 1;
        let step =
            |v: &DstView<'_>| DstAction::Step(v.steppable[(i % v.steppable.len() as u64) as usize]);
        let deliver = |v: &DstView<'_>| {
            let (src, dst) = v.deliverable[(i % v.deliverable.len() as u64) as usize];
            DstAction::Deliver { src, dst }
        };
        if building {
            if !view.steppable.is_empty() {
                step(view)
            } else {
                deliver(view)
            }
        } else if !view.deliverable.is_empty() {
            deliver(view)
        } else {
            step(view)
        }
    }
}

/// Run the Time Warp kernel to completion under a named schedule policy.
/// Identical `(plan, stim, cycles, cfg, seed, policy)` inputs produce
/// identical results — including every [`crate::stats::SimStats`] counter
/// and, when `cfg.fault` injects crashes, every recovery counter.
///
/// With `check` set, protocol invariants are asserted at every decision
/// (see [`run_with_schedule`]); violations panic with the offending seed
/// and policy for reproduction.
#[allow(clippy::too_many_arguments)]
pub fn run_deterministic(
    nl: &Netlist,
    plan: &ClusterPlan,
    stim: &VectorStimulus,
    cycles: u64,
    cfg: &TimeWarpConfig,
    seed: u64,
    policy: &SchedulePolicy,
    check: bool,
) -> Result<TwRunResult, TimeWarpError> {
    let mut schedule = policy.build(seed);
    let label = format!("seed {seed}, schedule {policy:?}");
    run_with_schedule(
        nl,
        plan,
        stim,
        cycles,
        cfg,
        schedule.as_mut(),
        check,
        &label,
    )
}

/// Run the Time Warp kernel under an arbitrary [`Schedule`] implementation.
///
/// Invariants asserted when `check` is set (`label` is included in the
/// panic message so failures are reproducible):
///
/// * no sent or delivered message — positive or anti — carries a timestamp
///   below GVT, and no cluster steps an epoch below GVT;
/// * fossil collection never reclaims processed or undo history at or
///   above the GVT it was invoked with;
/// * at termination, annihilation left no orphan tombstones and no pending
///   events in any cluster;
/// * a recovered cluster's rebuilt incoming channels equal the in-flight
///   messages lost in the crash.
///
/// Crash faults from `cfg.fault` are injected when the executor reaches the
/// armed decision index and handled by restore-and-replay recovery (see
/// [`super::recovery`]); only unrecoverable conditions — a wedged GVT —
/// surface as [`TimeWarpError`].
#[allow(clippy::too_many_arguments)]
pub fn run_with_schedule(
    nl: &Netlist,
    plan: &ClusterPlan,
    stim: &VectorStimulus,
    cycles: u64,
    cfg: &TimeWarpConfig,
    schedule: &mut dyn Schedule,
    check: bool,
    label: &str,
) -> Result<TwRunResult, TimeWarpError> {
    let mut workers: Vec<InProcWorker<'_, '_>> = (0..plan.k)
        .map(|me| {
            InProcWorker::new(
                nl,
                plan,
                stim.clone(),
                cycles,
                cfg.state_saving,
                check,
                label,
                me as u32,
            )
        })
        .collect();
    // Recovery bookkeeping is only paid for when a crash fault is armed or
    // a delta cadence is in effect (capture is side-effect-free, so clean
    // cadence>1 runs stay byte-identical while exercising the delta path);
    // the process transport always tracks (workers can genuinely die).
    let track = cfg.fault.crash_at.is_some() || cfg.checkpoint_cadence.every_n_rounds > 1;
    run_supervisor(
        nl,
        plan,
        stim,
        cycles,
        cfg,
        schedule,
        check,
        label,
        &mut workers,
        track,
    )
}
