//! GVT-consistent cluster checkpoints.
//!
//! A [`Checkpoint`] is the complete fossil-stable image of one
//! [`super::proc::ClusterProcess`] taken at a successful GVT round. GVT
//! rounds are *consistent global cuts* for the kernel: a sample is only
//! valid while no message is in transit, so at the moment GVT advances
//! every channel is empty and the global state is exactly the union of the
//! per-cluster states — nothing is "on the wire". Capturing every cluster
//! right after the fossil collection for that round therefore yields a
//! coordinated checkpoint at minimal size (history strictly below GVT has
//! just been reclaimed).
//!
//! The image is *behaviorally exact*: restoring it produces a process whose
//! subsequent execution is bit-identical to the original's — including heap
//! tie-break order (`order` stamps are preserved), rollback history
//! (processed/undo/snapshots), annihilation state (tombstones), send/receive
//! cursors (`mseq`/`lseq`) and statistics. That is what lets the recovery
//! supervisor ([`super::recovery`]) replay a crashed cluster's input log on
//! top of its last checkpoint and land in exactly the pre-crash state.
//!
//! Serialization to the schema-versioned canonical JSON artifact format
//! lives in `dvs_core::artifact` (this crate stays dependency-free);
//! [`Checkpoint`] itself is plain data with public fields. Collections with
//! nondeterministic iteration order (the tombstone hash sets, the pending
//! binary heap) are captured *sorted*, so capturing the same state twice
//! yields equal — and identically serialized — checkpoints.

use super::TwMessage;
use crate::logic::Logic;
use crate::stats::SimStats;
use crate::wheel::VTime;

/// Schema version of the checkpoint image. Bumped when the layout changes
/// incompatibly; serializers embed it next to the artifact schema version.
pub const CHECKPOINT_SCHEMA: u32 = 1;

/// Provenance of a queued or processed event — mirrors the kernel's
/// internal source tag so rollback treatment survives a restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptSource {
    /// Environment input (vector stimulus or initial settling).
    Stimulus,
    /// Scheduled by local gate evaluation at `created_at`.
    Local { created_at: VTime, lseq: u64 },
    /// Received from cluster `src` with send sequence `seq`.
    Remote { src: u32, seq: u64 },
}

/// One pending or processed event with its heap tie-break stamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CkptEvent {
    pub time: VTime,
    pub net: u32,
    pub value: Logic,
    pub source: CkptSource,
    pub order: u64,
}

/// The complete state image of one cluster at a GVT round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Layout version ([`CHECKPOINT_SCHEMA`]).
    pub schema: u32,
    /// The cluster this image belongs to.
    pub cluster: u32,
    /// GVT at capture time — the consistent cut this image is part of.
    pub gvt: VTime,
    /// Net values (full vector, indexed by net id).
    pub values: Vec<Logic>,
    /// Pending events, sorted by `(time, order)` for deterministic capture.
    pub pending: Vec<CkptEvent>,
    /// Unconsumed remote tombstones `(src, seq)`, sorted.
    pub tomb_remote: Vec<(u32, u64)>,
    /// Unconsumed local tombstones (`lseq`), sorted.
    pub tomb_local: Vec<u64>,
    /// Processed events retained for rollback, in processing order.
    pub processed: Vec<CkptEvent>,
    /// Incremental undo log: `(time, net, previous value)`.
    pub undo: Vec<(VTime, u32, Logic)>,
    /// Periodic snapshots: `(time of last included epoch, values)`.
    pub snapshots: Vec<(VTime, Vec<Logic>)>,
    /// Epochs processed since the last snapshot (checkpoint state saving).
    pub epochs_since_snapshot: u32,
    /// Sent messages awaiting fossil collection: `(created_at, message)`.
    pub outlog: Vec<(VTime, TwMessage)>,
    /// Locally scheduled events: `(created_at, lseq)`.
    pub sched_log: Vec<(VTime, u64)>,
    /// Next stimulus cycle to generate (receive cursor of the environment).
    pub stim_cycle: u64,
    /// Local clock: time of the last processed epoch.
    pub last_time: VTime,
    /// Has initial settling run?
    pub settled: bool,
    /// Next heap tie-break stamp.
    pub order: u64,
    /// Next local-event sequence number.
    pub lseq: u64,
    /// Next message sequence number (per-cluster send cursor).
    pub mseq: u64,
    /// Statistics accumulated so far.
    pub stats: SimStats,
}
