//! GVT-consistent cluster checkpoints.
//!
//! A [`Checkpoint`] is the complete fossil-stable image of one
//! [`super::proc::ClusterProcess`] taken at a successful GVT round. GVT
//! rounds are *consistent global cuts* for the kernel: a sample is only
//! valid while no message is in transit, so at the moment GVT advances
//! every channel is empty and the global state is exactly the union of the
//! per-cluster states — nothing is "on the wire". Capturing every cluster
//! right after the fossil collection for that round therefore yields a
//! coordinated checkpoint at minimal size (history strictly below GVT has
//! just been reclaimed).
//!
//! The image is *behaviorally exact*: restoring it produces a process whose
//! subsequent execution is bit-identical to the original's — including heap
//! tie-break order (`order` stamps are preserved), rollback history
//! (processed/undo/snapshots), annihilation state (tombstones), send/receive
//! cursors (`mseq`/`lseq`) and statistics. That is what lets the recovery
//! supervisor ([`super::recovery`]) replay a crashed cluster's input log on
//! top of its last checkpoint and land in exactly the pre-crash state.
//!
//! Serialization to the schema-versioned canonical JSON artifact format
//! lives in `dvs_core::artifact` (this crate stays dependency-free);
//! [`Checkpoint`] itself is plain data with public fields. Collections with
//! nondeterministic iteration order (the tombstone hash sets, the pending
//! binary heap) are captured *sorted*, so capturing the same state twice
//! yields equal — and identically serialized — checkpoints.
//!
//! # Incremental checkpoints
//!
//! Full images every round dominate checkpoint cost at scale, so the
//! supervisor can run on a [`CheckpointCadence`]: a full base image every
//! Nth GVT round with a [`CheckpointDelta`] — the edits against the
//! previous round's image — in between. A delta is a pure function of two
//! consecutive images ([`CheckpointDelta::between`]) and applying it
//! ([`Checkpoint::apply_delta`]) is exact: `apply(prev, between(prev,
//! next)) == next`, field for field. Chains are validated on apply — the
//! delta must carry the same schema and cluster and its `base_gvt` must
//! equal the image it is applied to — and every structural mismatch
//! surfaces as a typed [`DeltaError`], never a panic, so a truncated or
//! reordered chain read from disk or the wire fails loudly.

use super::TwMessage;
use crate::logic::Logic;
use crate::stats::SimStats;
use crate::wheel::VTime;

/// Schema version of the checkpoint image. Bumped when the layout changes
/// incompatibly; serializers embed it next to the artifact schema version.
/// Version 2 introduced delta images and the base+delta restore payload —
/// the wire hello negotiates this next to the frame version, so a v1 peer
/// is rejected at the handshake instead of failing mid-restore.
pub const CHECKPOINT_SCHEMA: u32 = 2;

/// How often a full base image is captured. `every_n_rounds == 1` (the
/// default) reproduces the classic behaviour: a full [`Checkpoint`] at
/// every GVT round. With `N > 1`, rounds between bases capture
/// [`CheckpointDelta`]s and crash restore replays `base + deltas + input
/// log`; sender-side channel retention stretches to the same N rounds (see
/// [`super::recovery`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointCadence {
    /// Capture a full base every this many GVT rounds (>= 1).
    pub every_n_rounds: u32,
}

impl CheckpointCadence {
    /// A cadence taking a full base every `n` rounds (`n >= 1`).
    pub fn every_n_rounds(n: u32) -> Self {
        CheckpointCadence { every_n_rounds: n }
    }
}

impl Default for CheckpointCadence {
    fn default() -> Self {
        CheckpointCadence { every_n_rounds: 1 }
    }
}

/// Provenance of a queued or processed event — mirrors the kernel's
/// internal source tag so rollback treatment survives a restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptSource {
    /// Environment input (vector stimulus or initial settling).
    Stimulus,
    /// Scheduled by local gate evaluation at `created_at`.
    Local { created_at: VTime, lseq: u64 },
    /// Received from cluster `src` with send sequence `seq`.
    Remote { src: u32, seq: u64 },
}

/// One pending or processed event with its heap tie-break stamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CkptEvent {
    pub time: VTime,
    pub net: u32,
    pub value: Logic,
    pub source: CkptSource,
    pub order: u64,
}

/// The complete state image of one cluster at a GVT round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Layout version ([`CHECKPOINT_SCHEMA`]).
    pub schema: u32,
    /// The cluster this image belongs to.
    pub cluster: u32,
    /// GVT at capture time — the consistent cut this image is part of.
    pub gvt: VTime,
    /// Net values (full vector, indexed by net id).
    pub values: Vec<Logic>,
    /// Pending events, sorted by `(time, order)` for deterministic capture.
    pub pending: Vec<CkptEvent>,
    /// Unconsumed remote tombstones `(src, seq)`, sorted.
    pub tomb_remote: Vec<(u32, u64)>,
    /// Unconsumed local tombstones (`lseq`), sorted.
    pub tomb_local: Vec<u64>,
    /// Processed events retained for rollback, in processing order.
    pub processed: Vec<CkptEvent>,
    /// Incremental undo log: `(time, net, previous value)`.
    pub undo: Vec<(VTime, u32, Logic)>,
    /// Periodic snapshots: `(time of last included epoch, values)`.
    pub snapshots: Vec<(VTime, Vec<Logic>)>,
    /// Epochs processed since the last snapshot (checkpoint state saving).
    pub epochs_since_snapshot: u32,
    /// Sent messages awaiting fossil collection: `(created_at, message)`.
    pub outlog: Vec<(VTime, TwMessage)>,
    /// Locally scheduled events: `(created_at, lseq)`.
    pub sched_log: Vec<(VTime, u64)>,
    /// Next stimulus cycle to generate (receive cursor of the environment).
    pub stim_cycle: u64,
    /// Local clock: time of the last processed epoch.
    pub last_time: VTime,
    /// Has initial settling run?
    pub settled: bool,
    /// Next heap tie-break stamp.
    pub order: u64,
    /// Next local-event sequence number.
    pub lseq: u64,
    /// Next message sequence number (per-cluster send cursor).
    pub mseq: u64,
    /// Statistics accumulated so far.
    pub stats: SimStats,
}

/// Why a delta could not be applied to a base image. Every variant is a
/// structural rejection — corrupt, truncated or reordered chains are
/// reported, never panicked on, so untrusted artifacts fail safely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// The delta was produced under a different checkpoint schema.
    SchemaMismatch { expected: u32, got: u32 },
    /// The delta belongs to a different cluster than the base image.
    ClusterMismatch { expected: u32, got: u32 },
    /// The delta's `base_gvt` does not match the image it is applied to —
    /// the chain is truncated, reordered or spliced.
    ChainMismatch { expected: VTime, got: VTime },
    /// A field edit does not fit the base image (an element to remove is
    /// absent, a run is out of bounds, a log window exceeds the log).
    Corrupt(String),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::SchemaMismatch { expected, got } => {
                write!(
                    f,
                    "delta schema {got} does not match image schema {expected}"
                )
            }
            DeltaError::ClusterMismatch { expected, got } => {
                write!(f, "delta for cluster {got} applied to cluster {expected}")
            }
            DeltaError::ChainMismatch { expected, got } => {
                write!(
                    f,
                    "delta base gvt {got} does not match image gvt {expected}"
                )
            }
            DeltaError::Corrupt(detail) => write!(f, "corrupt delta: {detail}"),
        }
    }
}

impl std::error::Error for DeltaError {}

/// Edit script for the full net-value vector: either sparse runs of changed
/// values or a full replacement when the round touched too much of the
/// vector for runs to pay off. The choice is a deterministic function of
/// the two images, so identical rounds produce identical deltas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValuesDelta {
    /// Replace the whole vector.
    Full(Vec<Logic>),
    /// Overwrite runs `(start index, new values)`, ascending and disjoint.
    Runs(Vec<(u32, Vec<Logic>)>),
}

/// Edit script for a log-like field (processed history, undo log,
/// snapshots, output log, schedule log): fossil collection drains the
/// front, rollback truncates the back and new entries append, so the next
/// image is a contiguous window of the previous one plus appended entries:
/// `next = prev[drop_front .. drop_front + keep] ++ append`. When no window
/// survives, `keep == 0` and the delta degenerates to a full replacement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogDelta<T> {
    /// Entries dropped from the front of the previous image.
    pub drop_front: u32,
    /// Entries of the previous image retained (starting at `drop_front`).
    /// The sentinel [`KEEP_ALL`] means "the whole previous log, whatever
    /// its length" — the identity edit, encodable without knowing the base.
    pub keep: u32,
    /// Entries appended after the retained window.
    pub append: Vec<T>,
}

/// Sentinel `keep` value marking the identity log edit (`drop_front` must
/// be 0 and `append` empty): the next image's log equals the previous one.
/// Lets the serializer omit unchanged logs entirely — a real log can never
/// retain `u32::MAX` entries, so the value is unambiguous.
pub const KEEP_ALL: u32 = u32::MAX;

impl<T> LogDelta<T> {
    /// The identity edit: keep the previous log unchanged.
    pub fn keep_all() -> Self {
        LogDelta {
            drop_front: 0,
            keep: KEEP_ALL,
            append: Vec::new(),
        }
    }

    /// Whether this is the identity edit (serializers omit these).
    pub fn is_keep_all(&self) -> bool {
        self.drop_front == 0 && self.keep == KEEP_ALL && self.append.is_empty()
    }
}

/// The edits turning one cluster image into the next round's image.
///
/// Produced by [`CheckpointDelta::between`] and consumed by
/// [`Checkpoint::apply_delta`]; serialization lives next to the checkpoint
/// codecs in `dvs_core::artifact` (kind `tw_checkpoint_delta`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointDelta {
    /// Layout version ([`CHECKPOINT_SCHEMA`]).
    pub schema: u32,
    /// The cluster this delta belongs to.
    pub cluster: u32,
    /// GVT of the image this delta applies on top of.
    pub base_gvt: VTime,
    /// GVT of the image this delta reconstructs.
    pub gvt: VTime,
    /// Net-value edits.
    pub values: ValuesDelta,
    /// Sort keys `(time, order)` of pending events removed since the
    /// previous image (sorted). Keys alone identify the victims — the full
    /// event payload lives in the base image, so shipping it again would
    /// only inflate the delta.
    pub pending_removed: Vec<(VTime, u64)>,
    /// Pending events added since the previous image (sorted).
    pub pending_added: Vec<CkptEvent>,
    /// Remote tombstones consumed since the previous image.
    pub tomb_remote_removed: Vec<(u32, u64)>,
    /// Remote tombstones created since the previous image.
    pub tomb_remote_added: Vec<(u32, u64)>,
    /// Local tombstones consumed since the previous image.
    pub tomb_local_removed: Vec<u64>,
    /// Local tombstones created since the previous image.
    pub tomb_local_added: Vec<u64>,
    /// Window-plus-append edit of the processed history.
    pub processed: LogDelta<CkptEvent>,
    /// Window-plus-append edit of the undo log.
    pub undo: LogDelta<(VTime, u32, Logic)>,
    /// Window-plus-append edit of the snapshot list.
    pub snapshots: LogDelta<(VTime, Vec<Logic>)>,
    /// Replacement value (scalar — stored directly).
    pub epochs_since_snapshot: u32,
    /// Window-plus-append edit of the output log.
    pub outlog: LogDelta<(VTime, TwMessage)>,
    /// Window-plus-append edit of the schedule log.
    pub sched_log: LogDelta<(VTime, u64)>,
    /// Replacement stimulus cursor.
    pub stim_cycle: u64,
    /// Replacement local clock.
    pub last_time: VTime,
    /// Replacement settling flag.
    pub settled: bool,
    /// Replacement heap tie-break cursor.
    pub order: u64,
    /// Replacement local-event sequence cursor.
    pub lseq: u64,
    /// Replacement message sequence cursor.
    pub mseq: u64,
    /// Replacement statistics.
    pub stats: SimStats,
}

/// Diff two sorted sequences by a strict key, returning `(removed, added)`
/// in sorted order. Elements whose keys match but whose payloads differ are
/// treated as remove-then-add.
fn set_delta<T: Clone + PartialEq, K: Ord>(
    prev: &[T],
    next: &[T],
    key: impl Fn(&T) -> K,
) -> (Vec<T>, Vec<T>) {
    let mut removed = Vec::new();
    let mut added = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < prev.len() && j < next.len() {
        match key(&prev[i]).cmp(&key(&next[j])) {
            std::cmp::Ordering::Less => {
                removed.push(prev[i].clone());
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                added.push(next[j].clone());
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                if prev[i] != next[j] {
                    removed.push(prev[i].clone());
                    added.push(next[j].clone());
                }
                i += 1;
                j += 1;
            }
        }
    }
    removed.extend(prev[i..].iter().cloned());
    added.extend(next[j..].iter().cloned());
    (removed, added)
}

/// Diff the pending-event sets, identifying removals by their `(time,
/// order)` sort key only. The key is unique within an image (it is the
/// heap's total order), so the base image already holds everything needed
/// to locate a victim — the delta ships ~16 bytes per removal instead of a
/// full event. A key present in both images with a different payload is a
/// remove-then-add.
fn pending_delta(prev: &[CkptEvent], next: &[CkptEvent]) -> (Vec<(VTime, u64)>, Vec<CkptEvent>) {
    let key = |e: &CkptEvent| (e.time, e.order);
    let mut removed = Vec::new();
    let mut added = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < prev.len() && j < next.len() {
        match key(&prev[i]).cmp(&key(&next[j])) {
            std::cmp::Ordering::Less => {
                removed.push(key(&prev[i]));
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                added.push(next[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                if prev[i] != next[j] {
                    removed.push(key(&prev[i]));
                    added.push(next[j]);
                }
                i += 1;
                j += 1;
            }
        }
    }
    removed.extend(prev[i..].iter().map(key));
    added.extend(next[j..].iter().cloned());
    (removed, added)
}

/// Apply a pending-set edit: drop every event whose `(time, order)` key is
/// listed in `removed` (each key must match exactly one base event), then
/// merge `added` back in without key collisions.
fn pending_apply(
    prev: &[CkptEvent],
    removed: &[(VTime, u64)],
    added: &[CkptEvent],
) -> Result<Vec<CkptEvent>, DeltaError> {
    let key = |e: &CkptEvent| (e.time, e.order);
    let mut kept = Vec::with_capacity(prev.len().saturating_sub(removed.len()) + added.len());
    let mut ri = 0;
    for x in prev {
        if ri < removed.len() && removed[ri] == key(x) {
            ri += 1;
        } else {
            kept.push(*x);
        }
    }
    if ri != removed.len() {
        return Err(DeltaError::Corrupt(format!(
            "pending: removed key {:?} not present in base",
            removed[ri]
        )));
    }
    let mut out = Vec::with_capacity(kept.len() + added.len());
    let (mut i, mut j) = (0, 0);
    while i < kept.len() && j < added.len() {
        match key(&kept[i]).cmp(&key(&added[j])) {
            std::cmp::Ordering::Less => {
                out.push(kept[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(added[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                return Err(DeltaError::Corrupt(format!(
                    "pending: added event key {:?} collides with base",
                    key(&added[j])
                )));
            }
        }
    }
    out.extend(kept[i..].iter().cloned());
    out.extend(added[j..].iter().cloned());
    Ok(out)
}

/// Apply a sorted-set edit: drop `removed` (each must be present) and merge
/// `added` (no key collisions) back in, preserving sort order.
fn set_apply<T: Clone + PartialEq + std::fmt::Debug, K: Ord>(
    prev: &[T],
    removed: &[T],
    added: &[T],
    field: &str,
    key: impl Fn(&T) -> K,
) -> Result<Vec<T>, DeltaError> {
    let mut kept = Vec::with_capacity(prev.len().saturating_sub(removed.len()) + added.len());
    let mut ri = 0;
    for x in prev {
        if ri < removed.len() && removed[ri] == *x {
            ri += 1;
        } else {
            kept.push(x.clone());
        }
    }
    if ri != removed.len() {
        return Err(DeltaError::Corrupt(format!(
            "{field}: removed element {:?} not present in base",
            removed[ri]
        )));
    }
    let mut out = Vec::with_capacity(kept.len() + added.len());
    let (mut i, mut j) = (0, 0);
    while i < kept.len() && j < added.len() {
        match key(&kept[i]).cmp(&key(&added[j])) {
            std::cmp::Ordering::Less => {
                out.push(kept[i].clone());
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(added[j].clone());
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                return Err(DeltaError::Corrupt(format!(
                    "{field}: added element {:?} collides with base",
                    added[j]
                )));
            }
        }
    }
    out.extend(kept[i..].iter().cloned());
    out.extend(added[j..].iter().cloned());
    Ok(out)
}

/// Compute the window-plus-append edit for a log-like field: the largest
/// contiguous window of `prev` that is a prefix of `next`, everything after
/// it appended verbatim. Smallest `drop_front` wins ties so identical
/// inputs always produce the identical delta. An unchanged log collapses to
/// the [`KEEP_ALL`] identity edit, which serializers omit entirely.
fn log_delta<T: Clone + PartialEq>(prev: &[T], next: &[T]) -> LogDelta<T> {
    if prev == next {
        return LogDelta::keep_all();
    }
    let mut best_drop = 0usize;
    let mut best_keep = 0usize;
    for drop in 0..=prev.len() {
        let max = (prev.len() - drop).min(next.len());
        let mut l = 0;
        while l < max && prev[drop + l] == next[l] {
            l += 1;
        }
        if l > best_keep {
            best_keep = l;
            best_drop = drop;
            if best_keep == next.len() {
                break;
            }
        }
    }
    if best_keep == 0 {
        best_drop = 0;
    }
    LogDelta {
        drop_front: best_drop as u32,
        keep: best_keep as u32,
        append: next[best_keep..].to_vec(),
    }
}

/// Apply a window-plus-append edit, bounds-checked against the base log.
/// The [`KEEP_ALL`] sentinel returns the base log verbatim.
fn log_apply<T: Clone>(prev: &[T], d: &LogDelta<T>, field: &str) -> Result<Vec<T>, DeltaError> {
    if d.keep == KEEP_ALL {
        if d.drop_front != 0 || !d.append.is_empty() {
            return Err(DeltaError::Corrupt(format!(
                "{field}: keep-all sentinel with drop {} and {} appended",
                d.drop_front,
                d.append.len()
            )));
        }
        return Ok(prev.to_vec());
    }
    let drop = d.drop_front as usize;
    let keep = d.keep as usize;
    let end = drop.checked_add(keep).filter(|&e| e <= prev.len());
    let Some(end) = end else {
        return Err(DeltaError::Corrupt(format!(
            "{field}: window {drop}+{keep} exceeds base length {}",
            prev.len()
        )));
    };
    let mut out = prev[drop..end].to_vec();
    out.extend(d.append.iter().cloned());
    Ok(out)
}

/// Diff the net-value vectors. Sparse runs are used while fewer than a
/// quarter of the nets changed; beyond that a full replacement is at least
/// as compact once run headers are paid for. The threshold is part of the
/// deterministic capture contract — do not make it adaptive.
fn values_delta(prev: &[Logic], next: &[Logic]) -> ValuesDelta {
    if prev.len() != next.len() {
        return ValuesDelta::Full(next.to_vec());
    }
    let changed = prev.iter().zip(next).filter(|(a, b)| a != b).count();
    if changed * 4 >= next.len() {
        return ValuesDelta::Full(next.to_vec());
    }
    let mut runs = Vec::new();
    let mut i = 0;
    while i < next.len() {
        if prev[i] != next[i] {
            let start = i;
            while i < next.len() && prev[i] != next[i] {
                i += 1;
            }
            runs.push((start as u32, next[start..i].to_vec()));
        } else {
            i += 1;
        }
    }
    ValuesDelta::Runs(runs)
}

/// Apply a net-value edit, bounds-checked against the base vector.
fn values_apply(prev: &[Logic], d: &ValuesDelta) -> Result<Vec<Logic>, DeltaError> {
    match d {
        ValuesDelta::Full(v) => Ok(v.clone()),
        ValuesDelta::Runs(runs) => {
            let mut out = prev.to_vec();
            for (start, vals) in runs {
                let s = *start as usize;
                let end = s.checked_add(vals.len()).filter(|&e| e <= out.len());
                let Some(end) = end else {
                    return Err(DeltaError::Corrupt(format!(
                        "values: run at {s} of length {} exceeds {} nets",
                        vals.len(),
                        out.len()
                    )));
                };
                out[s..end].clone_from_slice(vals);
            }
            Ok(out)
        }
    }
}

impl CheckpointDelta {
    /// The edit script turning `prev` into `next`. Both images must belong
    /// to the same cluster and schema — diffing unrelated images is a
    /// caller bug, not a recoverable condition.
    pub fn between(prev: &Checkpoint, next: &Checkpoint) -> CheckpointDelta {
        assert_eq!(prev.cluster, next.cluster, "delta across clusters");
        assert_eq!(prev.schema, next.schema, "delta across schemas");
        let (pending_removed, pending_added) = pending_delta(&prev.pending, &next.pending);
        let (tomb_remote_removed, tomb_remote_added) =
            set_delta(&prev.tomb_remote, &next.tomb_remote, |t| *t);
        let (tomb_local_removed, tomb_local_added) =
            set_delta(&prev.tomb_local, &next.tomb_local, |t| *t);
        CheckpointDelta {
            schema: next.schema,
            cluster: next.cluster,
            base_gvt: prev.gvt,
            gvt: next.gvt,
            values: values_delta(&prev.values, &next.values),
            pending_removed,
            pending_added,
            tomb_remote_removed,
            tomb_remote_added,
            tomb_local_removed,
            tomb_local_added,
            processed: log_delta(&prev.processed, &next.processed),
            undo: log_delta(&prev.undo, &next.undo),
            snapshots: log_delta(&prev.snapshots, &next.snapshots),
            epochs_since_snapshot: next.epochs_since_snapshot,
            outlog: log_delta(&prev.outlog, &next.outlog),
            sched_log: log_delta(&prev.sched_log, &next.sched_log),
            stim_cycle: next.stim_cycle,
            last_time: next.last_time,
            settled: next.settled,
            order: next.order,
            lseq: next.lseq,
            mseq: next.mseq,
            stats: next.stats.clone(),
        }
    }
}

impl CheckpointDelta {
    /// Test hook for the corrupt-restore fallback: mangle this delta so
    /// that applying it fails with [`DeltaError::Corrupt`] — an
    /// out-of-bounds net-value run, the signature of retained state that
    /// rotted in memory or on disk. The structural envelope (schema,
    /// cluster, chain link) stays valid, so the corruption is only caught
    /// where a real one would be: inside [`Checkpoint::apply_delta`].
    pub(crate) fn poison(&mut self) {
        self.values = ValuesDelta::Runs(vec![(u32::MAX, vec![Logic::X])]);
    }
}

impl Checkpoint {
    /// Reconstruct the next round's image from this one plus its delta.
    /// Exact inverse of [`CheckpointDelta::between`]: `prev.apply_delta(
    /// &CheckpointDelta::between(&prev, &next)) == Ok(next)`.
    pub fn apply_delta(&self, d: &CheckpointDelta) -> Result<Checkpoint, DeltaError> {
        if d.schema != self.schema {
            return Err(DeltaError::SchemaMismatch {
                expected: self.schema,
                got: d.schema,
            });
        }
        if d.cluster != self.cluster {
            return Err(DeltaError::ClusterMismatch {
                expected: self.cluster,
                got: d.cluster,
            });
        }
        if d.base_gvt != self.gvt {
            return Err(DeltaError::ChainMismatch {
                expected: self.gvt,
                got: d.base_gvt,
            });
        }
        Ok(Checkpoint {
            schema: self.schema,
            cluster: self.cluster,
            gvt: d.gvt,
            values: values_apply(&self.values, &d.values)?,
            pending: pending_apply(&self.pending, &d.pending_removed, &d.pending_added)?,
            tomb_remote: set_apply(
                &self.tomb_remote,
                &d.tomb_remote_removed,
                &d.tomb_remote_added,
                "tomb_remote",
                |t| *t,
            )?,
            tomb_local: set_apply(
                &self.tomb_local,
                &d.tomb_local_removed,
                &d.tomb_local_added,
                "tomb_local",
                |t| *t,
            )?,
            processed: log_apply(&self.processed, &d.processed, "processed")?,
            undo: log_apply(&self.undo, &d.undo, "undo")?,
            snapshots: log_apply(&self.snapshots, &d.snapshots, "snapshots")?,
            epochs_since_snapshot: d.epochs_since_snapshot,
            outlog: log_apply(&self.outlog, &d.outlog, "outlog")?,
            sched_log: log_apply(&self.sched_log, &d.sched_log, "sched_log")?,
            stim_cycle: d.stim_cycle,
            last_time: d.last_time,
            settled: d.settled,
            order: d.order,
            lseq: d.lseq,
            mseq: d.mseq,
            stats: d.stats.clone(),
        })
    }

    /// Fold a whole delta chain onto this base image, validating every
    /// link. An empty chain returns the base unchanged.
    pub fn apply_chain(&self, deltas: &[CheckpointDelta]) -> Result<Checkpoint, DeltaError> {
        let mut cur = self.clone();
        for d in deltas {
            cur = cur.apply_delta(d)?;
        }
        Ok(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_delta_handles_drain_truncate_and_append() {
        // Fossil drained two from the front, rollback dropped one from the
        // back, two new entries appended.
        let prev = vec![1u32, 2, 3, 4, 5];
        let next = vec![3u32, 4, 8, 9];
        let d = log_delta(&prev, &next);
        assert_eq!((d.drop_front, d.keep), (2, 2));
        assert_eq!(d.append, vec![8, 9]);
        assert_eq!(log_apply(&prev, &d, "t").unwrap(), next);
    }

    #[test]
    fn log_delta_degenerates_to_replacement_without_overlap() {
        let prev = vec![1u32, 2, 3];
        let next = vec![7u32, 8];
        let d = log_delta(&prev, &next);
        assert_eq!((d.drop_front, d.keep), (0, 0));
        assert_eq!(log_apply(&prev, &d, "t").unwrap(), next);
    }

    #[test]
    fn log_apply_rejects_oversized_window() {
        let prev = vec![1u32, 2];
        let d = LogDelta {
            drop_front: 1,
            keep: 3,
            append: vec![],
        };
        assert!(matches!(
            log_apply(&prev, &d, "t"),
            Err(DeltaError::Corrupt(_))
        ));
    }

    #[test]
    fn log_delta_identity_collapses_to_keep_all_sentinel() {
        let log = vec![1u32, 2, 3];
        let d = log_delta(&log, &log);
        assert!(d.is_keep_all());
        assert_eq!(log_apply(&log, &d, "t").unwrap(), log);
        // The sentinel is unambiguous: any payload next to it is corruption.
        let bad = LogDelta {
            drop_front: 1,
            keep: KEEP_ALL,
            append: Vec::<u32>::new(),
        };
        assert!(matches!(
            log_apply(&log, &bad, "t"),
            Err(DeltaError::Corrupt(_))
        ));
    }

    #[test]
    fn pending_delta_ships_keys_only_and_round_trips() {
        let ev = |time: VTime, order: u64, net: u32| CkptEvent {
            time,
            net,
            value: Logic::One,
            source: CkptSource::Stimulus,
            order,
        };
        let prev = vec![ev(0, 1, 10), ev(5, 2, 11), ev(5, 3, 12)];
        let next = vec![ev(5, 3, 12), ev(7, 4, 13)];
        let (removed, added) = pending_delta(&prev, &next);
        assert_eq!(removed, vec![(0, 1), (5, 2)]);
        assert_eq!(added, vec![ev(7, 4, 13)]);
        assert_eq!(pending_apply(&prev, &removed, &added).unwrap(), next);
        // A key absent from the base is corruption, not a silent no-op.
        assert!(matches!(
            pending_apply(&prev, &[(9, 9)], &[]),
            Err(DeltaError::Corrupt(_))
        ));
        // Same key, different payload: remove-then-add by key.
        let repl = vec![ev(0, 1, 10), ev(5, 2, 99), ev(5, 3, 12)];
        let (removed, added) = pending_delta(&prev, &repl);
        assert_eq!(removed, vec![(5, 2)]);
        assert_eq!(added, vec![ev(5, 2, 99)]);
        assert_eq!(pending_apply(&prev, &removed, &added).unwrap(), repl);
    }

    #[test]
    fn set_delta_round_trips_and_rejects_missing_removals() {
        let prev = vec![(0u32, 1u64), (1, 4), (2, 2)];
        let next = vec![(0u32, 1u64), (1, 5), (3, 9)];
        let (removed, added) = set_delta(&prev, &next, |t| *t);
        assert_eq!(
            set_apply(&prev, &removed, &added, "t", |t| *t).unwrap(),
            next
        );
        let bogus = vec![(9u32, 9u64)];
        assert!(matches!(
            set_apply(&prev, &bogus, &[], "t", |t| *t),
            Err(DeltaError::Corrupt(_))
        ));
    }

    #[test]
    fn values_delta_prefers_runs_when_sparse_and_full_when_dense() {
        let prev: Vec<Logic> = vec![Logic::Zero; 40];
        let mut next = prev.clone();
        next[3] = Logic::One;
        next[4] = Logic::One;
        next[20] = Logic::X;
        match values_delta(&prev, &next) {
            ValuesDelta::Runs(runs) => assert_eq!(runs.len(), 2),
            ValuesDelta::Full(_) => panic!("sparse change must use runs"),
        }
        assert_eq!(
            values_apply(&prev, &values_delta(&prev, &next)).unwrap(),
            next
        );
        let dense: Vec<Logic> = vec![Logic::One; 40];
        assert!(matches!(values_delta(&prev, &dense), ValuesDelta::Full(_)));
    }
}
