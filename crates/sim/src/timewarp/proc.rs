//! Per-cluster optimistic simulation process.
//!
//! Each [`ClusterProcess`] owns one block of the partitioned circuit and
//! simulates it optimistically: events are processed in local timestamp
//! order without waiting for other clusters, with enough history retained
//! (undo log, processed-event list, output log) to roll back when a
//! straggler or anti-message arrives. See the module docs of
//! [`crate::timewarp`] for the protocol overview.

use super::checkpoint::{
    Checkpoint, CheckpointDelta, CkptEvent, CkptSource, DeltaError, CHECKPOINT_SCHEMA,
};
use super::{StateSaving, TwMessage};
use crate::cluster::ClusterPlan;
use crate::logic::{is_posedge, Logic};
use crate::stats::SimStats;
use crate::stimulus::VectorStimulus;
use crate::wheel::{NetEvent, VTime};
use dvs_verilog::netlist::{Fanout, GateKind, NetId, Netlist};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Where a pending event came from — determines rollback treatment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Source {
    /// Environment input (vector stimulus or initial settling): requeued
    /// verbatim on rollback.
    Stimulus,
    /// Scheduled by local gate evaluation at `created_at`; discarded on a
    /// rollback past `created_at` (reprocessing regenerates it).
    Local { created_at: VTime, lseq: u64 },
    /// Received from another cluster; identified for annihilation.
    Remote { src: u32, seq: u64 },
}

#[derive(Debug, Clone, Copy)]
struct Pend {
    ev: NetEvent,
    source: Source,
    order: u64,
}

impl PartialEq for Pend {
    fn eq(&self, other: &Self) -> bool {
        self.ev.time == other.ev.time && self.order == other.order
    }
}
impl Eq for Pend {}
impl Ord for Pend {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by (time, order).
        other
            .ev
            .time
            .cmp(&self.ev.time)
            .then_with(|| other.order.cmp(&self.order))
    }
}
impl PartialOrd for Pend {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// An undone-send record for anti-message generation.
#[derive(Debug, Clone, Copy)]
struct OutRec {
    created_at: VTime,
    msg: TwMessage,
}

fn pend_to_ckpt(p: &Pend) -> CkptEvent {
    CkptEvent {
        time: p.ev.time,
        net: p.ev.net.0,
        value: p.ev.value,
        source: match p.source {
            Source::Stimulus => CkptSource::Stimulus,
            Source::Local { created_at, lseq } => CkptSource::Local { created_at, lseq },
            Source::Remote { src, seq } => CkptSource::Remote { src, seq },
        },
        order: p.order,
    }
}

fn ckpt_to_pend(e: &CkptEvent) -> Pend {
    Pend {
        ev: NetEvent {
            time: e.time,
            net: NetId(e.net),
            value: e.value,
        },
        source: match e.source {
            CkptSource::Stimulus => Source::Stimulus,
            CkptSource::Local { created_at, lseq } => Source::Local { created_at, lseq },
            CkptSource::Remote { src, seq } => Source::Remote { src, seq },
        },
        order: e.order,
    }
}

/// One cluster's optimistic simulation state.
pub struct ClusterProcess<'nl, 'p> {
    nl: &'nl Netlist,
    me: u32,
    /// Gate ownership mask.
    mine: Vec<bool>,
    /// Per-net export destinations (empty for non-exported nets).
    export_dests: Vec<&'p [u32]>,
    /// Per-net: is this one of my stimulus inputs?
    stim_mask: Vec<bool>,
    fanout: Fanout,
    values: Vec<Logic>,

    pending: BinaryHeap<Pend>,
    tomb_remote: HashSet<(u32, u64)>,
    tomb_local: HashSet<u64>,
    /// Processed events in processing order (time nondecreasing).
    processed: Vec<Pend>,
    /// Incremental state saving: (time, net, previous value). Unused in
    /// checkpoint mode.
    undo: Vec<(VTime, u32, Logic)>,
    /// Periodic full-state snapshots: (time of last included epoch, values).
    /// Unused in incremental mode. A time-0 snapshot is always present
    /// until fossil collection replaces it with a newer safe base.
    snapshots: Vec<(VTime, Vec<Logic>)>,
    state_saving: StateSaving,
    /// Processed epochs since the last snapshot (checkpoint mode).
    epochs_since_snapshot: u32,
    /// Sent messages awaiting fossil collection (for anti-messages).
    outlog: Vec<OutRec>,
    /// Locally scheduled events: (created_at, lseq), for rollback discard.
    sched_log: Vec<(VTime, u64)>,

    stim: VectorStimulus,
    stim_cycle: u64,
    cycles: u64,

    last_time: VTime,
    settled: bool,
    order: u64,
    lseq: u64,
    mseq: u64,
    stats: SimStats,

    // Per-epoch scratch.
    seen: Vec<u32>,
    fire: Vec<u32>,
    stamp: u32,
    epoch_buf: Vec<Pend>,
    changed: Vec<(u32, Logic, Logic)>,
    affected: Vec<u32>,
}

impl<'nl, 'p> ClusterProcess<'nl, 'p> {
    pub fn new(
        nl: &'nl Netlist,
        plan: &'p ClusterPlan,
        me: u32,
        stim: VectorStimulus,
        cycles: u64,
        state_saving: StateSaving,
    ) -> Self {
        let cluster = &plan.clusters[me as usize];
        let mut mine = vec![false; nl.gate_count()];
        for &g in &cluster.gates {
            mine[g.idx()] = true;
        }
        let mut export_dests: Vec<&'p [u32]> = vec![&[]; nl.net_count()];
        for (net, dests) in &cluster.exports {
            export_dests[net.idx()] = dests.as_slice();
        }
        let mut stim_mask = vec![false; nl.net_count()];
        for &n in &cluster.stimulus_nets {
            stim_mask[n.idx()] = true;
        }
        let mut values = vec![Logic::Zero; nl.net_count()];
        if let Some(c1) = nl.const1_net {
            values[c1.idx()] = Logic::One;
        }
        let stats = SimStats {
            cycles,
            ..Default::default()
        };

        ClusterProcess {
            nl,
            me,
            mine,
            export_dests,
            stim_mask,
            fanout: nl.build_fanout(),
            values,
            pending: BinaryHeap::new(),
            tomb_remote: HashSet::new(),
            tomb_local: HashSet::new(),
            processed: Vec::new(),
            undo: Vec::new(),
            snapshots: Vec::new(),
            state_saving,
            epochs_since_snapshot: 0,
            outlog: Vec::new(),
            sched_log: Vec::new(),
            stim,
            stim_cycle: 0,
            cycles,
            last_time: 0,
            settled: false,
            order: 0,
            lseq: 0,
            mseq: 0,
            stats,
            seen: vec![0; nl.gate_count()],
            fire: vec![0; nl.gate_count()],
            stamp: 0,
            epoch_buf: Vec::with_capacity(64),
            changed: Vec::with_capacity(64),
            affected: Vec::with_capacity(64),
        }
    }

    /// Capture the complete behavioral state image of this cluster at GVT
    /// `gvt`. Called right after the fossil collection of a successful GVT
    /// round, so the image is both minimal and part of a consistent global
    /// cut (see [`super::checkpoint`]). Unordered collections are captured
    /// sorted, making equal states yield equal checkpoints.
    pub fn checkpoint(&self, gvt: VTime) -> Checkpoint {
        let mut pending: Vec<CkptEvent> = self.pending.iter().map(pend_to_ckpt).collect();
        pending.sort_unstable_by_key(|e| (e.time, e.order));
        let mut tomb_remote: Vec<(u32, u64)> = self.tomb_remote.iter().copied().collect();
        tomb_remote.sort_unstable();
        let mut tomb_local: Vec<u64> = self.tomb_local.iter().copied().collect();
        tomb_local.sort_unstable();
        Checkpoint {
            schema: CHECKPOINT_SCHEMA,
            cluster: self.me,
            gvt,
            values: self.values.clone(),
            pending,
            tomb_remote,
            tomb_local,
            processed: self.processed.iter().map(pend_to_ckpt).collect(),
            undo: self.undo.clone(),
            snapshots: self.snapshots.clone(),
            epochs_since_snapshot: self.epochs_since_snapshot,
            outlog: self.outlog.iter().map(|r| (r.created_at, r.msg)).collect(),
            sched_log: self.sched_log.clone(),
            stim_cycle: self.stim_cycle,
            last_time: self.last_time,
            settled: self.settled,
            order: self.order,
            lseq: self.lseq,
            mseq: self.mseq,
            stats: self.stats.clone(),
        }
    }

    /// Rebuild a process from a checkpoint image. The result is behaviorally
    /// identical to the captured process: heap tie-break order is preserved
    /// via the `order` stamps (the `Pend` ordering is total on distinct
    /// `(time, order)` pairs, so heap-internal layout cannot matter), and
    /// the per-epoch scratch fields (`seen`/`fire`/`stamp`) start zeroed —
    /// they only carry state *within* one epoch, and capture happens between
    /// epochs.
    pub fn from_checkpoint(
        nl: &'nl Netlist,
        plan: &'p ClusterPlan,
        stim: VectorStimulus,
        cycles: u64,
        state_saving: StateSaving,
        ck: &Checkpoint,
    ) -> Self {
        let mut p = ClusterProcess::new(nl, plan, ck.cluster, stim, cycles, state_saving);
        p.values.clone_from(&ck.values);
        p.pending = ck.pending.iter().map(ckpt_to_pend).collect();
        p.tomb_remote = ck.tomb_remote.iter().copied().collect();
        p.tomb_local = ck.tomb_local.iter().copied().collect();
        p.processed = ck.processed.iter().map(ckpt_to_pend).collect();
        p.undo.clone_from(&ck.undo);
        p.snapshots.clone_from(&ck.snapshots);
        p.epochs_since_snapshot = ck.epochs_since_snapshot;
        p.outlog = ck
            .outlog
            .iter()
            .map(|&(created_at, msg)| OutRec { created_at, msg })
            .collect();
        p.sched_log.clone_from(&ck.sched_log);
        p.stim_cycle = ck.stim_cycle;
        p.last_time = ck.last_time;
        p.settled = ck.settled;
        p.order = ck.order;
        p.lseq = ck.lseq;
        p.mseq = ck.mseq;
        p.stats = ck.stats.clone();
        p
    }

    /// Capture this round's image as a delta against the previous round's
    /// image (see [`CheckpointDelta::between`]). Pure: capturing is
    /// side-effect-free, so a delta capture perturbs execution exactly as
    /// little as a full capture does.
    pub fn checkpoint_delta(&self, prev: &Checkpoint, gvt: VTime) -> CheckpointDelta {
        CheckpointDelta::between(prev, &self.checkpoint(gvt))
    }

    /// Rebuild a process from a base image plus its delta chain, returning
    /// the process together with the reconstructed image (the respawned
    /// worker's "previous round" for subsequent delta captures). Chain
    /// defects surface as typed [`DeltaError`]s, never panics.
    #[allow(clippy::type_complexity)]
    pub fn from_chain(
        nl: &'nl Netlist,
        plan: &'p ClusterPlan,
        stim: VectorStimulus,
        cycles: u64,
        state_saving: StateSaving,
        base: &Checkpoint,
        deltas: &[CheckpointDelta],
    ) -> Result<(Self, Checkpoint), DeltaError> {
        let image = base.apply_chain(deltas)?;
        let p = ClusterProcess::from_checkpoint(nl, plan, stim, cycles, state_saving, &image);
        Ok((p, image))
    }

    pub fn take_stats(&mut self) -> SimStats {
        self.stats.end_time = self.last_time;
        self.stats.clone()
    }

    pub fn into_values(self) -> Vec<Logic> {
        self.values
    }

    /// Tombstones whose matching event has not (yet) been annihilated.
    /// After global quiescence every tombstone must have been consumed —
    /// a non-zero value then means annihilation was unsound.
    pub fn orphan_tombstones(&self) -> usize {
        self.tomb_remote.len() + self.tomb_local.len()
    }

    /// Events still queued (live or tombstoned). Zero at quiescence.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// `(processed, undo)` history entries with time ≥ `t` — used by the
    /// deterministic executor to assert that fossil collection only
    /// reclaims history strictly below GVT.
    pub fn history_at_or_after(&self, t: VTime) -> (usize, usize) {
        let p = self.processed.len() - self.processed.partition_point(|r| r.ev.time < t);
        let u = self.undo.len() - self.undo.partition_point(|&(ut, _, _)| ut < t);
        (p, u)
    }

    #[inline]
    fn push_pending(&mut self, ev: NetEvent, source: Source) {
        self.pending.push(Pend {
            ev,
            source,
            order: self.order,
        });
        self.order += 1;
    }

    /// Discard tombstoned heads and return the next real pending event time.
    fn clean_peek(&mut self) -> Option<VTime> {
        while let Some(head) = self.pending.peek() {
            let dead = match head.source {
                Source::Remote { src, seq } => self.tomb_remote.remove(&(src, seq)),
                Source::Local { lseq, .. } => self.tomb_local.remove(&lseq),
                Source::Stimulus => false,
            };
            if dead {
                self.pending.pop();
            } else {
                return Some(head.ev.time);
            }
        }
        None
    }

    /// Local virtual time: a lower bound on anything this cluster may still
    /// process or send. `VTime::MAX` when fully idle. The not-yet-generated
    /// next stimulus cycle counts: it may precede every queued event, and
    /// ignoring it would let GVT overtake epochs this cluster will still
    /// process.
    pub fn lvt(&mut self) -> VTime {
        let next_stim = if self.stim_cycle < self.cycles {
            self.stim_cycle * self.stim.period
        } else {
            VTime::MAX
        };
        match self.clean_peek() {
            Some(t) => t.min(next_stim),
            None => next_stim,
        }
    }

    /// Generate stimulus events for the next vector cycle.
    fn gen_stimulus(&mut self) {
        let cycle = self.stim_cycle;
        self.stim_cycle += 1;
        let mut buf = Vec::with_capacity(8);
        let mask = std::mem::take(&mut self.stim_mask);
        self.stim
            .events_for_cycle(cycle, |n| mask[n.idx()], &mut buf);
        self.stim_mask = mask;
        for ev in buf {
            self.push_pending(ev, Source::Stimulus);
        }
    }

    /// Initial settling: evaluate every owned combinational gate once and
    /// schedule disagreements at t=1 (exported ones are also sent).
    fn settle(&mut self, send: &mut impl FnMut(TwMessage)) {
        self.settled = true;
        if matches!(self.state_saving, StateSaving::Checkpoint { .. }) {
            // The permanent base: state before any epoch.
            self.snapshots.push((0, self.values.clone()));
        }
        for gi in 0..self.nl.gates.len() {
            if !self.mine[gi] || self.nl.gates[gi].kind.is_sequential() {
                continue;
            }
            let out_net = self.nl.gates[gi].output;
            let new = self.eval_comb(gi);
            if new != self.values[out_net.idx()] {
                let ev = NetEvent {
                    time: 1,
                    net: out_net,
                    value: new,
                };
                // Settling events survive any rollback (environment-like).
                self.push_pending(ev, Source::Stimulus);
                self.emit(0, ev, send);
            }
        }
    }

    /// Send `ev` to every remote reader of its net (no-op for local nets).
    fn emit(&mut self, created_at: VTime, ev: NetEvent, send: &mut impl FnMut(TwMessage)) {
        let dests = self.export_dests[ev.net.idx()];
        for &d in dests {
            let msg = TwMessage {
                src: self.me,
                dst: d,
                seq: self.mseq,
                ev,
                anti: false,
            };
            self.mseq += 1;
            self.outlog.push(OutRec { created_at, msg });
            self.stats.messages += 1;
            send(msg);
        }
    }

    /// Incorporate an incoming message, rolling back if it is a straggler.
    pub fn handle_message(&mut self, msg: TwMessage, send: &mut impl FnMut(TwMessage)) {
        debug_assert_eq!(msg.dst, self.me);
        if msg.ev.time <= self.last_time {
            self.rollback(msg.ev.time, send);
        }
        if msg.anti {
            // FIFO per sender guarantees the positive came first; it is now
            // either in pending (tombstone consumed at pop) or was dropped
            // back into pending by the rollback above.
            self.tomb_remote.insert((msg.src, msg.seq));
        } else {
            self.push_pending(
                msg.ev,
                Source::Remote {
                    src: msg.src,
                    seq: msg.seq,
                },
            );
        }
    }

    /// Roll state back so that no event at time ≥ `t` remains applied.
    fn rollback(&mut self, t: VTime, send: &mut impl FnMut(TwMessage)) {
        self.stats.rollbacks += 1;

        // 1. Restore net values.
        match self.state_saving {
            StateSaving::IncrementalUndo => {
                // Undo log is time-nondecreasing; replay backwards.
                while let Some(&(ut, net, old)) = self.undo.last() {
                    if ut < t {
                        break;
                    }
                    self.values[net as usize] = old;
                    self.undo.pop();
                }
            }
            StateSaving::Checkpoint { .. } => {
                // Restore the newest snapshot strictly below `t`, then
                // coast-forward: every later value change was recorded as a
                // processed event, so re-applying processed events with
                // snapshot_time < time < t rebuilds the state exactly. No
                // messages are re-sent — the originals remain valid.
                let si = self
                    .snapshots
                    .iter()
                    .rposition(|&(st, _)| st < t)
                    .expect("a base snapshot below any rollback target is retained");
                // Invalidated snapshots (time >= t) are discarded.
                self.snapshots.truncate(si + 1);
                let (snap_t, snap_vals) = &self.snapshots[si];
                self.values.copy_from_slice(snap_vals);
                let lo = self.processed.partition_point(|p| p.ev.time <= *snap_t);
                let hi = self.processed.partition_point(|p| p.ev.time < t);
                for rec in &self.processed[lo..hi] {
                    self.values[rec.ev.net.idx()] = rec.ev.value;
                }
                self.epochs_since_snapshot = 0;
            }
        }

        // 2. Requeue or discard processed events.
        let split = self.processed.partition_point(|p| p.ev.time < t);
        let undone = self.processed.split_off(split);
        self.stats.rolled_back_events += undone.len() as u64;
        let mut discarded_local: HashSet<u64> = HashSet::new();
        for rec in undone {
            match rec.source {
                Source::Local { created_at, lseq } if created_at >= t => {
                    // Created by an undone epoch; reprocessing regenerates
                    // it. Remembered so step 3 does not tombstone it — the
                    // event no longer exists, and an orphan tombstone would
                    // never be consumed.
                    discarded_local.insert(lseq);
                }
                _ => self.pending.push(rec),
            }
        }

        // 3. Discard not-yet-processed local events created by undone epochs.
        while let Some(&(ca, lseq)) = self.sched_log.last() {
            if ca < t {
                break;
            }
            if !discarded_local.remove(&lseq) {
                self.tomb_local.insert(lseq);
            }
            self.sched_log.pop();
        }

        // 4. Anti-messages for undone sends.
        let oidx = self.outlog.partition_point(|o| o.created_at < t);
        for rec in self.outlog.split_off(oidx) {
            let mut anti = rec.msg;
            anti.anti = true;
            self.stats.anti_messages += 1;
            send(anti);
        }

        self.last_time = t.saturating_sub(1);
    }

    /// Reclaim history strictly below `gvt`.
    pub fn fossil_collect(&mut self, gvt: VTime) {
        if gvt == 0 {
            return;
        }
        // In checkpoint mode, processed events must be retained back to the
        // newest snapshot below GVT (they are the coast-forward source);
        // older snapshots are dropped first.
        let horizon = match self.state_saving {
            StateSaving::IncrementalUndo => gvt,
            StateSaving::Checkpoint { .. } => {
                if let Some(si) = self.snapshots.iter().rposition(|&(t, _)| t < gvt) {
                    self.snapshots.drain(..si);
                }
                self.snapshots.first().map_or(0, |&(t, _)| t + 1).min(gvt)
            }
        };
        let u = self.undo.partition_point(|&(t, _, _)| t < horizon);
        self.undo.drain(..u);
        let p = self.processed.partition_point(|r| r.ev.time < horizon);
        self.stats.fossil_collected += p as u64;
        self.processed.drain(..p);
        let o = self.outlog.partition_point(|r| r.created_at < gvt);
        self.outlog.drain(..o);
        let s = self.sched_log.partition_point(|&(t, _)| t < gvt);
        self.sched_log.drain(..s);
    }

    /// Process the earliest pending epoch if its time is ≤ `limit`.
    /// Returns `false` when idle or throttled.
    pub fn process_next_epoch(&mut self, limit: VTime, send: &mut impl FnMut(TwMessage)) -> bool {
        if !self.settled {
            self.settle(send);
        }
        // Resolve the next epoch time, generating stimulus lazily so that
        // every vector cycle starting at or before that time exists in the
        // queue before we cross it.
        let t = loop {
            match self.clean_peek() {
                None => {
                    if self.stim_cycle < self.cycles {
                        self.gen_stimulus();
                        continue;
                    }
                    return false; // idle
                }
                Some(t) => {
                    if self.stim_cycle < self.cycles && t >= self.stim_cycle * self.stim.period {
                        self.gen_stimulus();
                        continue;
                    }
                    break t;
                }
            }
        };
        if t > limit {
            return false; // optimism window throttle
        }

        // Drain the epoch (clean_peek already consumed head tombstones; more
        // may surface as we pop).
        self.epoch_buf.clear();
        while let Some(&head) = self.pending.peek() {
            if head.ev.time != t {
                break;
            }
            self.pending.pop();
            let dead = match head.source {
                Source::Remote { src, seq } => self.tomb_remote.remove(&(src, seq)),
                Source::Local { lseq, .. } => self.tomb_local.remove(&lseq),
                Source::Stimulus => false,
            };
            if !dead {
                self.epoch_buf.push(head);
            }
        }
        if self.epoch_buf.is_empty() {
            return true; // everything at t was annihilated; made progress
        }

        self.stamp += 1;
        self.last_time = t;

        // Phase 1: apply changes, logging previous values.
        self.changed.clear();
        let epoch = std::mem::take(&mut self.epoch_buf);
        let log_undo = matches!(self.state_saving, StateSaving::IncrementalUndo);
        for p in &epoch {
            self.stats.events += 1;
            let ni = p.ev.net.idx();
            let old = self.values[ni];
            if old != p.ev.value {
                self.values[ni] = p.ev.value;
                if log_undo {
                    self.undo.push((t, ni as u32, old));
                }
                self.stats.net_toggles += 1;
                self.changed.push((ni as u32, old, p.ev.value));
            }
        }
        self.processed.extend(epoch.iter().copied());
        self.epoch_buf = epoch;

        // Phase 2: affected owned gates.
        self.affected.clear();
        let changed = std::mem::take(&mut self.changed);
        for &(net, old, new) in &changed {
            for &g in self.fanout.readers(dvs_verilog::netlist::NetId(net)) {
                if !self.mine[g.idx()] {
                    continue;
                }
                let gate = &self.nl.gates[g.idx()];
                match gate.kind {
                    GateKind::Dff => {
                        if gate.inputs[0].idx() == net as usize && is_posedge(old, new) {
                            if self.seen[g.idx()] != self.stamp {
                                self.seen[g.idx()] = self.stamp;
                                self.affected.push(g.0);
                            }
                            self.fire[g.idx()] = self.stamp;
                        }
                    }
                    GateKind::Dffr => {
                        let is_clk_edge =
                            gate.inputs[0].idx() == net as usize && is_posedge(old, new);
                        let is_rst_change = gate.inputs[1].idx() == net as usize;
                        if is_clk_edge || is_rst_change {
                            if self.seen[g.idx()] != self.stamp {
                                self.seen[g.idx()] = self.stamp;
                                self.affected.push(g.0);
                            }
                            if is_clk_edge {
                                self.fire[g.idx()] = self.stamp;
                            }
                        }
                    }
                    _ => {
                        if self.seen[g.idx()] != self.stamp {
                            self.seen[g.idx()] = self.stamp;
                            self.affected.push(g.0);
                        }
                    }
                }
            }
        }
        self.changed = changed;

        // Phase 3: evaluate, schedule, emit.
        let affected = std::mem::take(&mut self.affected);
        for &gi in &affected {
            let gate = &self.nl.gates[gi as usize];
            self.stats.gate_evals += 1;
            let new_out = match gate.kind {
                GateKind::Dff => self.values[gate.inputs[1].idx()].input(),
                GateKind::Dffr => {
                    if self.values[gate.inputs[1].idx()] == Logic::One {
                        Logic::Zero
                    } else if self.fire[gi as usize] == self.stamp {
                        self.values[gate.inputs[2].idx()].input()
                    } else {
                        continue; // reset released without a clock edge
                    }
                }
                GateKind::Latch => {
                    if self.values[gate.inputs[0].idx()] == Logic::One {
                        self.values[gate.inputs[1].idx()].input()
                    } else {
                        continue;
                    }
                }
                _ => self.eval_comb(gi as usize),
            };
            let out_net = gate.output;
            if new_out != self.values[out_net.idx()] {
                let ev = NetEvent {
                    time: t + 1,
                    net: out_net,
                    value: new_out,
                };
                let lseq = self.lseq;
                self.lseq += 1;
                self.sched_log.push((t, lseq));
                self.push_pending(
                    ev,
                    Source::Local {
                        created_at: t,
                        lseq,
                    },
                );
                self.emit(t, ev, send);
            }
        }
        self.affected = affected;

        if let StateSaving::Checkpoint { interval } = self.state_saving {
            self.epochs_since_snapshot += 1;
            if self.epochs_since_snapshot >= interval {
                self.snapshots.push((t, self.values.clone()));
                self.epochs_since_snapshot = 0;
            }
        }
        true
    }

    #[inline]
    fn eval_comb(&self, gi: usize) -> Logic {
        let g = &self.nl.gates[gi];
        let it = g.inputs.iter().map(|n| self.values[n.idx()]);
        match g.kind {
            GateKind::Buf => self.values[g.inputs[0].idx()].input(),
            GateKind::Not => self.values[g.inputs[0].idx()].not(),
            GateKind::Const0 => Logic::Zero,
            GateKind::Const1 => Logic::One,
            GateKind::And => it.fold(Logic::One, Logic::and),
            GateKind::Nand => it.fold(Logic::One, Logic::and).not(),
            GateKind::Or => it.fold(Logic::Zero, Logic::or),
            GateKind::Nor => it.fold(Logic::Zero, Logic::or).not(),
            GateKind::Xor => it.fold(Logic::Zero, Logic::xor),
            GateKind::Xnor => it.fold(Logic::Zero, Logic::xor).not(),
            GateKind::Dff | GateKind::Dffr | GateKind::Latch => unreachable!("handled by caller"),
        }
    }
}
