//! Deterministic network fault injection for the wire transports.
//!
//! [`NetPlan`] is to the network what [`super::recovery::FaultPlan`] is to
//! processes: a seeded, replayable description of exactly which faults hit
//! which connection and when. Every fault is keyed by a **cumulative
//! per-direction frame count** on one cluster's connection — not by wall
//! time — so the same plan against the same run perturbs the same frames
//! every time, and the chaos sweep can assert that the recovered run's
//! canonical artifact is byte-identical to the undisturbed one.
//!
//! The injection point is `ChaosStream`: a shim wrapping any
//! `WireStream` on the supervisor side of a connection. It understands
//! just enough of the version-3 framing (the 12-byte header) to count and
//! reassemble frames passing through in each direction, and perturbs them
//! per the plan: bit flips (caught downstream by the frame CRC),
//! truncation (mid-frame connection death), duplication (skipped
//! downstream by the stale sequence number), split writes and added
//! latency (benign reorderings of syscalls and time that must change
//! nothing), and sticky stalls/partitions (the link silently eats traffic
//! until the connection is torn down and redialed — exactly the half-open
//! failure the heartbeat budget exists to detect).
//!
//! Faults fire once each. Frame counters are cumulative across
//! reconnects of the same cluster (state lives in a shared
//! `ClusterChaos`, not in the stream wrapper), while sticky
//! stall/partition suppression heals on reconnect — a healed link is a
//! *new* link.

use super::wire::{WireStream, FRAME_HEADER, MAX_FRAME};
use std::cell::RefCell;
use std::io::{self, Read, Write};
use std::rc::Rc;
use std::time::Duration;

/// Which direction of a cluster's supervisor↔worker connection a fault
/// applies to, named from the supervisor's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetDir {
    /// Frames the supervisor sends (commands, restore payloads, pings).
    ToWorker,
    /// Frames the supervisor receives (responses, checkpoints, pongs).
    FromWorker,
}

/// What happens to the targeted frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFaultKind {
    /// Flip one bit of the frame payload (at `offset % payload_len`). The
    /// receiver's CRC32 check rejects the frame as corrupt; the connection
    /// dies and recovery respawns/reconnects.
    BitFlip {
        /// Byte offset into the payload; reduced modulo the payload
        /// length, so any value is valid for any frame.
        offset: u32,
    },
    /// Deliver only the first half of the frame, then kill the
    /// connection — the peer observes EOF mid-frame.
    Truncate,
    /// Deliver the frame twice. Benign: the receiver skips the replay by
    /// its stale sequence number, and the run must be byte-identical.
    Duplicate,
    /// Deliver the frame in two separate syscalls. Benign: framing must
    /// reassemble it transparently.
    SplitWrite,
    /// Delay the frame. Benign: wall-clock time is not an input to the
    /// deterministic supervisor.
    Latency {
        /// How long to hold the frame.
        millis: u32,
    },
    /// The link goes silent in **both** directions (the frame itself is
    /// eaten too), and stays silent until the connection is replaced.
    /// Detected by the heartbeat-miss budget.
    Stall,
    /// The link goes silent in the fault's direction only — the classic
    /// half-open connection (peer alive, one direction dead). Detected by
    /// the heartbeat-miss budget.
    Partition,
}

/// One injected fault: on `cluster`'s connection, when cumulative frame
/// number `frame` (0-based, counted per direction since the start of the
/// run, hello frames excluded) passes in direction `dir`, apply `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetFault {
    /// Target cluster's connection.
    pub cluster: u32,
    /// Direction the counted frame travels in.
    pub dir: NetDir,
    /// Cumulative per-direction frame index that triggers the fault.
    pub frame: u64,
    /// The perturbation.
    pub kind: NetFaultKind,
}

/// A seeded, replayable set of network faults for one run — the network
/// analogue of [`super::recovery::FaultPlan`]. Attach with
/// [`super::TimeWarpBuilder::chaos`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetPlan {
    /// The faults to inject. Order is irrelevant; each fires at most once.
    pub faults: Vec<NetFault>,
}

impl NetPlan {
    pub fn new() -> NetPlan {
        NetPlan::default()
    }

    /// Add one fault (builder-style).
    pub fn fault(mut self, f: NetFault) -> NetPlan {
        self.faults.push(f);
        self
    }

    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// A deterministic plan drawn from `seed` for a `k`-cluster run: one
    /// to three faults spread over clusters, directions, and fault kinds.
    /// The same `(seed, k)` always yields the same plan — the chaos sweep
    /// is a map from seeds to replayable scenarios. Frames below 4 are
    /// never targeted: the first frames of a connection carry `init` and
    /// the GVT-0 checkpoint, which run before the supervisor's recovery
    /// loop is armed.
    pub fn seeded(seed: u64, k: u32) -> NetPlan {
        let mut s = SplitMix(seed);
        let n = 1 + (s.next() % 3) as usize;
        let mut plan = NetPlan::new();
        for _ in 0..n {
            let cluster = (s.next() % k.max(1) as u64) as u32;
            let dir = if s.next().is_multiple_of(2) {
                NetDir::ToWorker
            } else {
                NetDir::FromWorker
            };
            let frame = 4 + s.next() % 36;
            let kind = match s.next() % 8 {
                0 => NetFaultKind::BitFlip {
                    offset: s.next() as u32,
                },
                1 => NetFaultKind::Truncate,
                2 | 3 => NetFaultKind::Duplicate,
                4 => NetFaultKind::SplitWrite,
                5 => NetFaultKind::Latency {
                    millis: 1 + (s.next() % 5) as u32,
                },
                6 => NetFaultKind::Stall,
                _ => NetFaultKind::Partition,
            };
            plan = plan.fault(NetFault {
                cluster,
                dir,
                frame,
                kind,
            });
        }
        plan
    }

    /// The per-cluster fault state the supervisor threads into each
    /// worker's connection wrapper.
    pub(crate) fn for_cluster(&self, cluster: u32) -> Rc<RefCell<ClusterChaos>> {
        let mut to = Vec::new();
        let mut from = Vec::new();
        for f in &self.faults {
            if f.cluster == cluster {
                match f.dir {
                    NetDir::ToWorker => to.push((f.frame, f.kind)),
                    NetDir::FromWorker => from.push((f.frame, f.kind)),
                }
            }
        }
        Rc::new(RefCell::new(ClusterChaos {
            to: DirState::new(to),
            from: DirState::new(from),
            fired: 0,
        }))
    }
}

/// splitmix64 — the standard seed expander; tiny and dependency-free.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[derive(Debug)]
struct DirState {
    /// Cumulative frames seen in this direction (across reconnects).
    frames: u64,
    /// Sticky silence: a stall/partition ate the link in this direction.
    suppressed: bool,
    /// Pending `(frame, kind)` faults, each fired at most once.
    faults: Vec<(u64, NetFaultKind)>,
}

impl DirState {
    fn new(faults: Vec<(u64, NetFaultKind)>) -> DirState {
        DirState {
            frames: 0,
            suppressed: false,
            faults,
        }
    }

    /// Count one frame passing and return the fault targeting it, if any.
    fn step(&mut self) -> Option<NetFaultKind> {
        let idx = self.frames;
        self.frames += 1;
        let pos = self.faults.iter().position(|&(f, _)| f == idx)?;
        Some(self.faults.swap_remove(pos).1)
    }
}

/// Per-cluster fault state shared by all [`ChaosStream`] clones wrapping
/// that cluster's connections over the run's lifetime.
#[derive(Debug)]
pub(crate) struct ClusterChaos {
    to: DirState,
    from: DirState,
    /// Faults that actually fired (feeds `chaos_faults_injected`).
    fired: u64,
}

impl ClusterChaos {
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// A replaced connection is a new link: sticky stall/partition
    /// silence does not survive a redial. Frame counters and unfired
    /// faults do.
    pub fn heal(&mut self) {
        self.to.suppressed = false;
        self.from.suppressed = false;
    }
}

/// The fault-injection shim: wraps the supervisor's side of one worker
/// connection and applies the plan's faults to version-3 command frames
/// passing through. Created (and re-created, on reconnect) by the
/// transport layer *after* the hello exchange, so hello frames are never
/// counted or perturbed.
#[derive(Debug)]
pub(crate) struct ChaosStream {
    inner: WireStream,
    state: Rc<RefCell<ClusterChaos>>,
    /// Read side: bytes of the frame currently being reassembled
    /// (header + payload so far).
    rd_buf: Vec<u8>,
    /// Total size of the frame being reassembled, once the header is in.
    rd_need: Option<usize>,
    /// Perturbed frame bytes waiting to be served to the caller.
    out: Vec<u8>,
    out_pos: usize,
    /// A read-side truncation killed the link: serve EOF forever.
    dead: bool,
}

impl ChaosStream {
    pub fn new(inner: WireStream, state: Rc<RefCell<ClusterChaos>>) -> ChaosStream {
        state.borrow_mut().heal();
        ChaosStream {
            inner,
            state,
            rd_buf: Vec::new(),
            rd_need: None,
            out: Vec::new(),
            out_pos: 0,
            dead: false,
        }
    }

    pub fn try_clone(&self) -> io::Result<ChaosStream> {
        Ok(ChaosStream {
            inner: self.inner.try_clone()?,
            state: Rc::clone(&self.state),
            rd_buf: Vec::new(),
            rd_need: None,
            out: Vec::new(),
            out_pos: 0,
            dead: false,
        })
    }

    pub fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        self.inner.set_read_timeout(d)
    }

    pub fn shutdown_both(&self) {
        self.inner.shutdown_both();
    }

    /// Pull bytes of the current in-flight frame from the inner stream.
    /// Returns `Ok(true)` when a whole frame is buffered in `rd_buf`,
    /// `Ok(false)` on EOF. Timeouts and other I/O errors pass through
    /// with the partial frame preserved for the next call.
    fn fill_frame(&mut self) -> io::Result<bool> {
        loop {
            let have = self.rd_buf.len();
            let need = match self.rd_need {
                Some(n) => n,
                None => {
                    if have == FRAME_HEADER {
                        let len = u32::from_le_bytes(self.rd_buf[0..4].try_into().expect("4 bytes"))
                            as usize;
                        if len == 0 || len > MAX_FRAME {
                            // A length the framing itself will reject:
                            // don't try to buffer it, hand the header
                            // through untouched and let the typed
                            // frame-source error surface downstream.
                            return Ok(true);
                        }
                        self.rd_need = Some(FRAME_HEADER + len);
                        continue;
                    }
                    FRAME_HEADER
                }
            };
            if have == need {
                return Ok(true);
            }
            let want = (need - have).min(64 << 10);
            self.rd_buf.resize(have + want, 0);
            match self.inner.read(&mut self.rd_buf[have..]) {
                Ok(0) => {
                    self.rd_buf.truncate(have);
                    return Ok(false);
                }
                Ok(n) => self.rd_buf.truncate(have + n),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    self.rd_buf.truncate(have);
                }
                Err(e) => {
                    self.rd_buf.truncate(have);
                    return Err(e);
                }
            }
        }
    }

    /// Serve buffered (already perturbed) bytes to the caller.
    fn serve(&mut self, buf: &mut [u8]) -> usize {
        let n = buf.len().min(self.out.len() - self.out_pos);
        buf[..n].copy_from_slice(&self.out[self.out_pos..self.out_pos + n]);
        self.out_pos += n;
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        }
        n
    }
}

impl Read for ChaosStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        loop {
            if self.out_pos < self.out.len() {
                return Ok(self.serve(buf));
            }
            if self.dead {
                return Ok(0);
            }
            if self.state.borrow().from.suppressed {
                // Half-open link: whatever the worker sends is eaten. Read
                // and discard so the kernel buffers don't implicate flow
                // control; surface only the read timeout to the caller —
                // that is what arms the heartbeat budget.
                let mut sink = [0u8; 4096];
                return match self.inner.read(&mut sink) {
                    Ok(0) => Ok(0),
                    Ok(_) => {
                        continue;
                    }
                    Err(e) => Err(e),
                };
            }
            match self.fill_frame()? {
                false => {
                    // EOF: mid-frame truncation surfaces downstream as a
                    // typed truncation error; a boundary EOF is clean.
                    let partial = std::mem::take(&mut self.rd_buf);
                    self.rd_need = None;
                    self.out = partial;
                    self.out_pos = 0;
                    if self.out.is_empty() {
                        return Ok(0);
                    }
                    self.dead = true;
                }
                true => {
                    let frame = std::mem::take(&mut self.rd_buf);
                    let complete = self.rd_need.take().is_some();
                    if !complete {
                        // Unparseable length prefix: pass through verbatim.
                        self.out = frame;
                        self.out_pos = 0;
                        continue;
                    }
                    let fault = {
                        let mut st = self.state.borrow_mut();
                        let f = st.from.step();
                        if f.is_some() {
                            st.fired += 1;
                        }
                        f
                    };
                    match fault {
                        None | Some(NetFaultKind::SplitWrite) => {
                            self.out = frame;
                        }
                        Some(NetFaultKind::BitFlip { offset }) => {
                            let mut frame = frame;
                            let body = frame.len() - FRAME_HEADER;
                            let at = (FRAME_HEADER + (offset as usize % body.max(1)))
                                .min(frame.len() - 1);
                            frame[at] ^= 0x01;
                            self.out = frame;
                        }
                        Some(NetFaultKind::Truncate) => {
                            let half = frame.len() / 2;
                            self.out = frame[..half.max(1)].to_vec();
                            self.dead = true;
                            self.inner.shutdown_both();
                        }
                        Some(NetFaultKind::Duplicate) => {
                            let mut doubled = frame.clone();
                            doubled.extend_from_slice(&frame);
                            self.out = doubled;
                        }
                        Some(NetFaultKind::Latency { millis }) => {
                            std::thread::sleep(Duration::from_millis(millis as u64));
                            self.out = frame;
                        }
                        Some(NetFaultKind::Stall) => {
                            let mut st = self.state.borrow_mut();
                            st.to.suppressed = true;
                            st.from.suppressed = true;
                            continue;
                        }
                        Some(NetFaultKind::Partition) => {
                            self.state.borrow_mut().from.suppressed = true;
                            continue;
                        }
                    }
                    self.out_pos = 0;
                }
            }
        }
    }
}

impl Write for ChaosStream {
    /// Each `write` call carries exactly one encoded frame — the frame
    /// sink assembles header + payload into a single buffer precisely so
    /// that a frame is one syscall (and, here, one countable unit).
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let fault = {
            let mut st = self.state.borrow_mut();
            if st.to.suppressed {
                // Eaten by the dead link; pretend success, like a kernel
                // buffering into a black hole.
                st.to.frames += 1;
                return Ok(buf.len());
            }
            let f = st.to.step();
            if f.is_some() {
                st.fired += 1;
            }
            f
        };
        match fault {
            None => self.inner.write_all(buf)?,
            Some(NetFaultKind::BitFlip { offset }) => {
                let mut bytes = buf.to_vec();
                let body = bytes.len().saturating_sub(FRAME_HEADER);
                let at = (FRAME_HEADER + (offset as usize % body.max(1))).min(bytes.len() - 1);
                bytes[at] ^= 0x01;
                self.inner.write_all(&bytes)?;
            }
            Some(NetFaultKind::Truncate) => {
                let half = (buf.len() / 2).max(1);
                self.inner.write_all(&buf[..half])?;
                let _ = self.inner.flush();
                self.inner.shutdown_both();
            }
            Some(NetFaultKind::Duplicate) => {
                self.inner.write_all(buf)?;
                self.inner.write_all(buf)?;
            }
            Some(NetFaultKind::SplitWrite) => {
                let half = (buf.len() / 2).max(1);
                self.inner.write_all(&buf[..half])?;
                self.inner.flush()?;
                self.inner.write_all(&buf[half..])?;
            }
            Some(NetFaultKind::Latency { millis }) => {
                std::thread::sleep(Duration::from_millis(millis as u64));
                self.inner.write_all(buf)?;
            }
            Some(NetFaultKind::Stall) => {
                let mut st = self.state.borrow_mut();
                st.to.suppressed = true;
                st.from.suppressed = true;
                return Ok(buf.len());
            }
            Some(NetFaultKind::Partition) => {
                self.state.borrow_mut().to.suppressed = true;
                return Ok(buf.len());
            }
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timewarp::wire::{encode_frame, FrameSink, FrameSource, WireError};
    use std::io::BufReader;
    use std::net::{TcpListener, TcpStream};

    fn tcp_pair() -> (WireStream, WireStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let dial = std::thread::spawn(move || TcpStream::connect(addr).expect("connect"));
        let (accepted, _) = listener.accept().expect("accept");
        (
            WireStream::Tcp(accepted),
            WireStream::Tcp(dial.join().expect("dial")),
        )
    }

    fn plan_state(faults: Vec<NetFault>) -> Rc<RefCell<ClusterChaos>> {
        NetPlan { faults }.for_cluster(0)
    }

    fn fault(dir: NetDir, frame: u64, kind: NetFaultKind) -> NetFault {
        NetFault {
            cluster: 0,
            dir,
            frame,
            kind,
        }
    }

    #[test]
    fn seeded_plans_are_deterministic_and_in_range() {
        for seed in 0..64u64 {
            let a = NetPlan::seeded(seed, 3);
            let b = NetPlan::seeded(seed, 3);
            assert_eq!(a, b);
            assert!(!a.is_empty() && a.faults.len() <= 3);
            for f in &a.faults {
                assert!(f.cluster < 3);
                assert!((4..40).contains(&f.frame));
            }
        }
        assert_ne!(NetPlan::seeded(1, 3), NetPlan::seeded(2, 3));
    }

    #[test]
    fn benign_faults_change_nothing_downstream() {
        // Duplicate + split write + latency on the supervisor→worker
        // direction: the receiver sees the exact frame sequence.
        let (sup, wrk) = tcp_pair();
        let state = plan_state(vec![
            fault(NetDir::ToWorker, 0, NetFaultKind::Duplicate),
            fault(NetDir::ToWorker, 1, NetFaultKind::SplitWrite),
            fault(NetDir::ToWorker, 2, NetFaultKind::Latency { millis: 1 }),
        ]);
        let mut sink = FrameSink::new(ChaosStream::new(sup, Rc::clone(&state)));
        let mut src = FrameSource::new(BufReader::new(wrk));
        for payload in [&b"frame a"[..], b"frame b", b"frame c", b"frame d"] {
            sink.send(payload).expect("send");
            assert_eq!(src.recv().expect("recv").as_deref(), Some(payload));
        }
        assert_eq!(src.dups_skipped, 1);
        assert_eq!(state.borrow().fired(), 3);
    }

    #[test]
    fn bitflips_are_rejected_by_the_receiver_crc() {
        let (sup, wrk) = tcp_pair();
        let state = plan_state(vec![fault(
            NetDir::ToWorker,
            1,
            NetFaultKind::BitFlip { offset: 3 },
        )]);
        let mut sink = FrameSink::new(ChaosStream::new(sup, state));
        let mut src = FrameSource::new(BufReader::new(wrk));
        sink.send(b"clean frame").expect("send");
        assert_eq!(
            src.recv().expect("recv").as_deref(),
            Some(&b"clean frame"[..])
        );
        sink.send(b"doomed frame").expect("send");
        let err = src.recv().expect_err("flipped frame must be corrupt");
        assert!(matches!(err, WireError::Corrupt(_)), "{err}");
    }

    #[test]
    fn read_side_bitflip_corrupts_the_supervisors_view() {
        let (sup, wrk) = tcp_pair();
        let state = plan_state(vec![fault(
            NetDir::FromWorker,
            0,
            NetFaultKind::BitFlip { offset: 0 },
        )]);
        let mut worker_sink = FrameSink::new(wrk);
        worker_sink.send(b"worker reply").expect("send");
        let shim = ChaosStream::new(sup, Rc::clone(&state));
        let mut src = FrameSource::new(BufReader::new(ReadAdapter(shim)));
        let err = src.recv().expect_err("flipped reply must be corrupt");
        assert!(matches!(err, WireError::Corrupt(_)), "{err}");
        assert_eq!(state.borrow().fired(), 1);
    }

    #[test]
    fn read_side_truncation_is_connection_death() {
        let (sup, wrk) = tcp_pair();
        let state = plan_state(vec![fault(NetDir::FromWorker, 0, NetFaultKind::Truncate)]);
        let mut worker_sink = FrameSink::new(wrk);
        worker_sink
            .send(b"a reply that will be cut short")
            .expect("send");
        let shim = ChaosStream::new(sup, state);
        let mut src = FrameSource::new(BufReader::new(ReadAdapter(shim)));
        let err = src.recv().expect_err("truncated reply");
        assert!(matches!(err, WireError::Truncated(_)), "{err}");
    }

    #[test]
    fn partition_surfaces_as_read_timeouts_until_healed() {
        let (sup, wrk) = tcp_pair();
        let state = plan_state(vec![fault(NetDir::FromWorker, 0, NetFaultKind::Partition)]);
        let shim = ChaosStream::new(sup, Rc::clone(&state));
        shim.set_read_timeout(Some(Duration::from_millis(20)))
            .expect("timeout");
        let mut worker_sink = FrameSink::new(wrk);
        worker_sink.send(b"eaten by the partition").expect("send");
        worker_sink.send(b"also eaten").expect("send");
        let mut src = FrameSource::new(BufReader::new(ReadAdapter(shim)));
        for _ in 0..2 {
            let err = src.recv().expect_err("partitioned link yields nothing");
            assert!(err.timed_out(), "{err}");
        }
        assert!(state.borrow().from.suppressed);
        state.borrow_mut().heal();
        assert!(!state.borrow().from.suppressed);
    }

    #[test]
    fn stall_eats_writes_in_both_directions() {
        let (sup, wrk) = tcp_pair();
        let state = plan_state(vec![fault(NetDir::ToWorker, 0, NetFaultKind::Stall)]);
        let mut sink = FrameSink::new(ChaosStream::new(sup, Rc::clone(&state)));
        sink.send(b"triggers the stall").expect("send");
        sink.send(b"never arrives").expect("send");
        assert!(state.borrow().to.suppressed && state.borrow().from.suppressed);
        // The worker side sees nothing at all.
        wrk.set_read_timeout(Some(Duration::from_millis(20)))
            .expect("timeout");
        let mut src = FrameSource::new(BufReader::new(wrk));
        assert!(src.recv().expect_err("nothing arrives").timed_out());
    }

    #[test]
    fn frame_counters_survive_reconnects_and_faults_fire_once() {
        let state = plan_state(vec![fault(NetDir::ToWorker, 2, NetFaultKind::Duplicate)]);
        {
            let (sup, wrk) = tcp_pair();
            let mut sink = FrameSink::new(ChaosStream::new(sup, Rc::clone(&state)));
            sink.send(b"frame 0").expect("send");
            sink.send(b"frame 1").expect("send");
            drop(wrk);
        }
        // Reconnect: counters carry over, so frame 2 (the first frame on
        // the *new* connection) still triggers the pending fault.
        let (sup, wrk) = tcp_pair();
        let mut sink = FrameSink::new(ChaosStream::new(sup, Rc::clone(&state)));
        sink.send(b"frame 2").expect("send");
        let mut src = FrameSource::new(BufReader::new(wrk));
        assert_eq!(src.recv().expect("recv").as_deref(), Some(&b"frame 2"[..]));
        // The duplicated copy is skipped on the next read (here: at EOF).
        drop(sink);
        assert_eq!(src.recv().expect("eof"), None);
        assert_eq!(src.dups_skipped, 1);
        assert_eq!(state.borrow().fired(), 1);
        assert_eq!(state.borrow().to.frames, 3);
    }

    /// `BufReader` requires `Read` on an owned value; a thin adapter lets
    /// the tests stack `FrameSource<BufReader<ReadAdapter>>` exactly like
    /// the transport does with its connection enum.
    struct ReadAdapter(ChaosStream);

    impl Read for ReadAdapter {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.0.read(buf)
        }
    }

    #[test]
    fn large_frames_cross_the_shim_in_chunks() {
        let (sup, wrk) = tcp_pair();
        let state = plan_state(vec![]);
        let payload = vec![0x5A_u8; 300 << 10];
        let send_payload = payload.clone();
        let sender = std::thread::spawn(move || {
            let mut sink = FrameSink::new(wrk);
            sink.send(&send_payload).expect("send");
        });
        let shim = ChaosStream::new(sup, state);
        let mut src = FrameSource::new(BufReader::new(ReadAdapter(shim)));
        assert_eq!(src.recv().expect("recv"), Some(payload));
        sender.join().expect("sender");
    }

    #[test]
    fn encode_frame_and_shim_agree_on_framing() {
        // The shim's frame reassembly reads the same header layout the
        // sink writes.
        let frame = encode_frame(0, b"layout check").expect("encode");
        assert_eq!(
            u32::from_le_bytes(frame[0..4].try_into().expect("len")) as usize,
            frame.len() - FRAME_HEADER
        );
    }
}
