//! Crash-fault injection and recovery for the Time Warp kernel.
//!
//! The fault model is a *crash-stop* worker: a cluster dies, losing its
//! entire in-memory state **and** every message currently in flight toward
//! it (its incoming channels die with it). Messages it already sent live on
//! — they left the node. Under [`super::Transport::InProc`] the crash is
//! simulated by discarding the cluster state machine; under
//! [`super::Transport::Process`] it is an OS process dying for real (a
//! `SIGKILL`'d worker, detected by the supervisor as a socket EOF); under
//! [`super::Transport::Tcp`] any dropped connection — EOF, reset, or a
//! read that times out — is folded into the same event, because over a
//! network a silent peer and a dead one cannot be told apart. Recovery is
//! identical every way and follows classic log-based rollback
//! recovery, built on two retention rules that piggyback on the existing
//! GVT machinery:
//!
//! * **coordinated checkpoints at GVT rounds** — a valid GVT sample requires
//!   `in_transit == 0`, i.e. empty channels, so the set of per-cluster
//!   images taken right after a GVT advance is a consistent global cut with
//!   no channel state (see [`super::checkpoint`]). On a
//!   [`super::CheckpointCadence`] of N, a full [`Checkpoint`] base is
//!   captured every Nth round and a
//!   [`super::checkpoint::CheckpointDelta`] on the rounds in between; the
//!   victim's restore image is `base + delta chain`;
//! * **sender-side retention until the base round** — every message sent
//!   since the last *base* round is retained by its sender (the
//!   supervisor's `sent_log`); the Nth GVT advance doubles as the group
//!   acknowledgement (every intermediate sample was only valid once every
//!   channel drained), so the retention window is exactly one cadence — N
//!   GVT rounds, the classic single-round window when N = 1.
//!
//! On a crash the supervisor rebuilds the victim from its last base plus
//! replayed deltas, **replays its input log** (the exact sequence of
//! step/deliver/fossil operations applied since the last captured image —
//! the cluster state machine is deterministic, so replay reproduces the
//! pre-crash state bit-for-bit, counters included, with re-sends
//! suppressed because the originals are already on the wire or delivered),
//! and re-fills its incoming channels with the undelivered suffix of each
//! neighbour's retained output history.
//! The global state after recovery is therefore *exactly* the pre-crash
//! state, which is what makes crash runs byte-identical to no-crash runs
//! under the deterministic transports — determinism is the correctness
//! oracle for recovery, the same way it is for the schedule fuzzer and for
//! the process transport itself.
//!
//! When the restart budget is exhausted the supervisor degrades gracefully:
//! the whole workload is re-run on the sequential simulator, yielding a
//! correct final state with `degraded = true` in the result instead of an
//! error.

use super::checkpoint::{Checkpoint, CheckpointDelta};
use super::proc::ClusterProcess;
use super::{TwMessage, TwRunResult};
use crate::seq::{NullObserver, SeqSim, SimConfig};
use crate::stimulus::VectorStimulus;
use crate::wheel::VTime;
use dvs_verilog::netlist::{NetId, Netlist};
use std::sync::atomic::{AtomicU32, Ordering};

/// Crash-fault injection plan — a first-class deterministic fault alongside
/// the [`super::dst::SchedulePolicy`] message faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Crash cluster `.0` when the deterministic executor reaches decision
    /// index `.1` (under the in-proc transport the cluster state machine is
    /// discarded; under the process transport the worker process is killed
    /// with `SIGKILL`), or — under [`super::Transport::Threads`] — when
    /// that cluster's worker finishes its `.1`-th scheduling quantum, by
    /// panicking it. `None` disables crash injection.
    pub crash_at: Option<(u32, u64)>,
    /// How many times the fault fires in total: after each recovery the
    /// fault re-arms until the budget is spent. Treated as at least 1 when
    /// `crash_at` is set.
    pub crashes: u32,
    /// Restarts the supervisor attempts before giving up and degrading to
    /// the sequential simulator.
    pub max_restarts: u32,
    /// Test hook for the corrupt-restore fallback: poison the delta chain
    /// shipped with this many subsequent restore attempts, so the worker
    /// rejects them as [`super::DeltaError::Corrupt`] and the supervisor
    /// must fall back to re-sending from the last full base (burning one
    /// extra restart-budget unit each time). `0` — the default — poisons
    /// nothing.
    pub corrupt_restores: u32,
}

impl FaultPlan {
    /// A single crash of `cluster` at decision/quantum `at`, with the
    /// default restart budget.
    pub fn crash(cluster: u32, at: u64) -> Self {
        FaultPlan {
            crash_at: Some((cluster, at)),
            crashes: 1,
            ..FaultPlan::default()
        }
    }

    /// Effective number of times the fault fires.
    pub(crate) fn crash_budget(&self) -> u32 {
        if self.crash_at.is_some() {
            self.crashes.max(1)
        } else {
            0
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            crash_at: None,
            crashes: 0,
            max_restarts: 3,
            corrupt_restores: 0,
        }
    }
}

/// What the supervisor did about crash faults during a run. All fields are
/// deterministic under the deterministic transports, but they are *recovery
/// provenance*, not simulation content — canonical artifacts exclude them
/// so a recovered run serializes byte-identically to an undisturbed one.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryOutcome {
    /// Crash faults that fired (injected or — under the process transport —
    /// genuine worker deaths).
    pub crashes: u32,
    /// Successful restore-and-replay recoveries.
    pub restarts: u32,
    /// Input-log operations replayed across all recoveries.
    pub replayed_ops: u64,
    /// The cluster that died, once per crash, in crash order.
    pub victims: Vec<u32>,
    /// Canonical-JSON bytes of every full base image captured during the
    /// run (including the initial GVT-0 bases). Counted identically on all
    /// deterministic transports, so it is exact and seed-reproducible.
    pub checkpoint_bytes_full: u64,
    /// Canonical-JSON bytes of every delta image captured during the run
    /// (zero on the default every-round cadence).
    pub checkpoint_bytes_delta: u64,
    /// Corrupt frames the supervisor observed on the wire (CRC32
    /// mismatches, sequence gaps, zero-length or oversized frames), each
    /// of which tore the connection down for recovery. Supervisor-side
    /// observations only: a frame corrupted on its way *to* a worker kills
    /// that worker's connection and is observed here as a connection loss,
    /// not a corrupt frame.
    pub corrupt_frames: u64,
    /// Heartbeats missed on connections the supervisor declared half-open:
    /// each detection contributes exactly its exhausted miss budget
    /// (`heartbeat_budget` beats per event), so the counter is
    /// deterministic under a seeded fault plan. Transient late beats that
    /// recovered before the budget ran out are not counted.
    pub heartbeats_missed: u64,
    /// Network faults from the [`super::NetPlan`] that actually fired
    /// (benign ones — duplicates, split writes, latency — included).
    pub chaos_faults_injected: u64,
    /// Messages shipped toward their receivers: channel pushes under
    /// [`super::Transport::Threads`], supervisor→worker message payloads
    /// on the wire transports (a `msg_batch` counts every message it
    /// carries; a `deliver_next` carries none). Exact and
    /// seed-reproducible on the deterministic transports,
    /// interleaving-dependent under free-running threads.
    pub messages_sent: u64,
    /// Pushes/frames that carried those messages. With batching off this
    /// equals [`messages_sent`](RecoveryOutcome::messages_sent); with
    /// batching on, `messages_sent / frames_sent` is the realized batch
    /// depth.
    pub frames_sent: u64,
    /// Messages annihilated inside a still-unsent threads-mode buffer,
    /// counting both members of each positive/anti pair. Always zero on
    /// the deterministic transports: their per-channel FIFO delivers a
    /// positive before its anti can be staged, so no unsent pair ever
    /// coexists (see EXPERIMENTS.md "Message batching").
    pub messages_folded: u64,
    /// The restart budget ran out and the run fell back to the sequential
    /// simulator; `values`/`stats` are the sequential run's.
    pub degraded: bool,
}

/// One logged operation applied to a cluster since its last checkpoint.
/// The cluster state machine is a deterministic function of this sequence,
/// which is exactly why replaying it reconstructs the pre-crash state.
/// This is also a wire type: the process transport ships the victim's log
/// in the `restore` frame so the respawned worker replays it locally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReplayOp {
    /// `process_next_epoch(limit, ..)` was invoked (the optimism limit is
    /// constant between GVT rounds, but stored per-op for robustness).
    Step { limit: VTime },
    /// This exact message was delivered.
    Deliver(TwMessage),
    /// Fossil collection ran at this GVT. Only transiently present: a GVT
    /// round re-checkpoints right after fossil collection, which truncates
    /// the log — but a worker that dies *between* the two (possible only
    /// with real processes) must replay the fossil or its `fossil_collected`
    /// counter would diverge from the undisturbed run.
    Fossil(VTime),
}

/// Replay a logged operation sequence against a rebuilt cluster process.
/// Re-sends are suppressed: the original messages are already on the wire
/// or delivered, and re-emitting them would duplicate `(src, seq)`
/// identities. Shared by the in-proc worker and the process-worker serve
/// loop.
pub(crate) fn replay_ops(p: &mut ClusterProcess<'_, '_>, ops: &[ReplayOp]) {
    let mut suppress = |_m: TwMessage| {};
    for op in ops {
        match *op {
            ReplayOp::Step { limit } => {
                p.process_next_epoch(limit, &mut suppress);
            }
            ReplayOp::Deliver(m) => p.handle_message(m, &mut suppress),
            ReplayOp::Fossil(gvt) => p.fossil_collect(gvt),
        }
    }
}

/// Recovery bookkeeping for the transport-generic supervisor: per-cluster
/// base images with their delta chains and input logs, per-channel
/// sender-side retention. Input logs are scoped to "since the last captured
/// image" (an image — base or delta — is captured at every GVT round);
/// channel retention is scoped to "since the last *base* round", because a
/// restore from an older base must be able to rebuild every channel suffix
/// a replayed delta round could have left in flight. A successful GVT
/// sample implies every channel drained, so the accumulated `delivered`
/// counters stay exact across the whole window. Unlike the worker state it
/// protects, this lives supervisor-side on **all** deterministic
/// transports, which is what keeps the recovery protocol identical whether
/// the worker is a struct in this process or an OS process on a socket.
pub(crate) struct RecoveryLog {
    k: usize,
    /// Base cadence: a full image every this many GVT rounds.
    cadence: u32,
    /// Delta rounds since the last base (0 right after a base round).
    rounds_since_base: u32,
    bases: Vec<Checkpoint>,
    deltas: Vec<Vec<CheckpointDelta>>,
    input_log: Vec<Vec<ReplayOp>>,
    /// Every operation applied since the last *base* round — `input_log`
    /// without the per-delta truncation. This is the replay sequence for
    /// the corrupt-restore fallback: when a victim's delta chain is
    /// rejected, the supervisor demotes it to its base image and must be
    /// able to replay the full window from there.
    base_log: Vec<Vec<ReplayOp>>,
    /// Messages sent on channel `src * k + dst` since the last base round
    /// (positives *and* anti-messages, in send order — FIFO per channel).
    sent_log: Vec<Vec<TwMessage>>,
    /// Deliveries consumed from each channel since the last base round.
    delivered: Vec<usize>,
}

impl RecoveryLog {
    /// Start from the initial coordinated checkpoints (GVT 0, fresh state),
    /// taking a full base every `cadence` GVT rounds thereafter.
    pub fn from_checkpoints(bases: Vec<Checkpoint>, cadence: u32) -> Self {
        let k = bases.len();
        RecoveryLog {
            k,
            cadence: cadence.max(1),
            rounds_since_base: 0,
            bases,
            deltas: vec![Vec::new(); k],
            input_log: vec![Vec::new(); k],
            base_log: vec![Vec::new(); k],
            sent_log: vec![Vec::new(); k * k],
            delivered: vec![0; k * k],
        }
    }

    pub fn record_step(&mut self, c: usize, limit: VTime) {
        self.input_log[c].push(ReplayOp::Step { limit });
        self.base_log[c].push(ReplayOp::Step { limit });
    }

    pub fn record_deliver(&mut self, m: TwMessage) {
        self.delivered[m.src as usize * self.k + m.dst as usize] += 1;
        self.input_log[m.dst as usize].push(ReplayOp::Deliver(m));
        self.base_log[m.dst as usize].push(ReplayOp::Deliver(m));
    }

    pub fn record_send(&mut self, m: TwMessage) {
        self.sent_log[m.src as usize * self.k + m.dst as usize].push(m);
    }

    pub fn record_fossil(&mut self, c: usize, gvt: VTime) {
        self.input_log[c].push(ReplayOp::Fossil(gvt));
        self.base_log[c].push(ReplayOp::Fossil(gvt));
    }

    /// Should the upcoming GVT round capture full bases (as opposed to
    /// deltas)? Round counting is global — all clusters share one cadence
    /// phase, so the coordinated cut is all-bases or all-deltas.
    pub fn next_is_base(&self) -> bool {
        self.rounds_since_base + 1 >= self.cadence
    }

    /// A fresh full base of cluster `i` was captured at a GVT round; its
    /// delta chain and input log restart from this image.
    pub fn set_base(&mut self, i: usize, ck: Checkpoint) {
        self.bases[i] = ck;
        self.deltas[i].clear();
        self.input_log[i].clear();
        self.base_log[i].clear();
    }

    /// A delta of cluster `i` against the previous round's image was
    /// captured; the input log restarts from the image the delta encodes
    /// (replay of logged ops resumes from `base + all deltas`).
    pub fn push_delta(&mut self, i: usize, d: CheckpointDelta) {
        debug_assert_eq!(d.cluster, i as u32);
        self.deltas[i].push(d);
        self.input_log[i].clear();
    }

    /// Close a GVT round after every cluster's image was captured. The
    /// *base* round is the group acknowledgement: a restore will never
    /// reach behind the new bases, so the sender-side retention windows
    /// reset. Delta rounds keep accumulating — a restore from the older
    /// base replays through them, so their channel suffixes must survive.
    pub fn round_complete(&mut self, base: bool) {
        if base {
            self.rounds_since_base = 0;
            for l in &mut self.sent_log {
                l.clear();
            }
            self.delivered.fill(0);
        } else {
            self.rounds_since_base += 1;
        }
    }

    /// The victim's last full base image.
    pub fn base(&self, victim: usize) -> &Checkpoint {
        &self.bases[victim]
    }

    /// The victim's delta chain on top of that base, oldest first.
    pub fn deltas(&self, victim: usize) -> &[CheckpointDelta] {
        &self.deltas[victim]
    }

    /// The victim's input log since its last captured image — the replay
    /// sequence applied after the base+delta reconstruction.
    pub fn ops(&self, victim: usize) -> &[ReplayOp] {
        &self.input_log[victim]
    }

    /// Corrupt-restore fallback: the victim's delta chain was rejected, so
    /// discard it and widen the input log to everything since the base —
    /// a restore from the bare base plus that replay reconstructs the same
    /// pre-crash state (sender-side retention already spans the whole base
    /// window, so channel refill stays exact). After the demotion the
    /// respawned worker's "previous image" is the base itself, which is
    /// precisely what its next delta capture will diff against.
    pub fn demote_to_base(&mut self, victim: usize) {
        self.deltas[victim].clear();
        self.input_log[victim] = self.base_log[victim].clone();
    }

    /// The undelivered suffix of the `src → dst` channel: what was in
    /// flight when `dst` crashed, reconstructed from the sender's retained
    /// output history minus the prefix `dst` had already consumed.
    pub fn undelivered(&self, src: usize, dst: usize) -> &[TwMessage] {
        let ch = src * self.k + dst;
        &self.sent_log[ch][self.delivered[ch]..]
    }
}

/// Shared panic-injection trigger for the threaded executor. The budget is
/// shared across supervisor restarts so the fault fires exactly
/// [`FaultPlan::crashes`] times in total.
pub(crate) struct PanicInjector {
    pub victim: u32,
    pub quantum: u64,
    budget: AtomicU32,
    initial: u32,
}

impl PanicInjector {
    pub fn new(plan: &FaultPlan) -> Option<Self> {
        let (victim, quantum) = plan.crash_at?;
        let budget = plan.crash_budget();
        Some(PanicInjector {
            victim,
            quantum,
            budget: AtomicU32::new(budget),
            initial: budget,
        })
    }

    /// Should worker `me` die at `quantum`? Consumes one unit of budget on
    /// a hit (atomically — only one incarnation of the victim can fire per
    /// budget unit).
    pub fn should_fire(&self, me: usize, quantum: u64) -> bool {
        me as u32 == self.victim
            && quantum == self.quantum
            && self
                .budget
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| b.checked_sub(1))
                .is_ok()
    }

    /// Crashes fired so far.
    pub fn fired(&self) -> u32 {
        self.initial - self.budget.load(Ordering::SeqCst)
    }
}

/// Graceful degradation: run the whole workload on the sequential simulator
/// and report its (correct) final state with `degraded = true`. The caller
/// fills in the crash/restart provenance.
pub(crate) fn degrade_sequential(nl: &Netlist, stim: &VectorStimulus, cycles: u64) -> TwRunResult {
    let mut seq = SeqSim::new(
        nl,
        &SimConfig {
            cycles,
            init_zero: true,
        },
    );
    seq.run(stim, cycles, &mut NullObserver);
    let values = (0..nl.net_count())
        .map(|i| seq.value(NetId(i as u32)))
        .collect();
    TwRunResult {
        stats: seq.stats().clone(),
        cluster_stats: Vec::new(),
        values,
        gvt_rounds: 0,
        recovery: RecoveryOutcome {
            degraded: true,
            ..RecoveryOutcome::default()
        },
    }
}

/// Exponential retry backoff for the threaded supervisor, capped so tests
/// stay fast. The deterministic executor has no wall clock — its "backoff"
/// is the bounded restart budget itself.
pub(crate) fn backoff(restart: u32) -> std::time::Duration {
    let ms = 1u64 << restart.min(6);
    std::time::Duration::from_millis(ms.min(50))
}
