//! Global Virtual Time state shared by all workers.
//!
//! The sampling scheme avoids a coordinator and message acknowledgements:
//!
//! * every worker publishes `lvt[w]` — a lower bound on the timestamp of any
//!   event it may still process or message it may still send;
//! * `in_transit` counts messages sent but not yet *reflected in the
//!   receiver's published LVT* (the receiver decrements only after
//!   publishing);
//! * `send_epoch` increments on every send.
//!
//! A sample `min(lvt)` taken while `in_transit == 0` held both before and
//! after reading all LVTs, with `send_epoch` unchanged across the read, is a
//! correct GVT lower bound: nothing was in flight, so every message is
//! reflected in some published LVT, and no new message appeared while
//! sampling. GVT only advances monotonically; `u64::MAX` signals global
//! quiescence (termination).
//!
//! The same state serves both executors: the free-running threaded workers
//! ([`super::run_timewarp`] in `Threads` mode) sample it concurrently,
//! while the deterministic single-threaded scheduler ([`super::dst`])
//! drives it from one thread — the atomics then cost nothing but keep the
//! code identical, so DST exercises the very bookkeeping the threads use.

use crate::wheel::VTime;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

/// Shared GVT bookkeeping.
#[derive(Debug)]
pub struct GvtState {
    /// Published local virtual time per worker.
    lvt: Vec<AtomicU64>,
    /// Messages sent minus messages incorporated by receivers.
    pub in_transit: AtomicI64,
    /// Incremented on every send; guards sample validity.
    pub send_epoch: AtomicU64,
    /// Current GVT lower bound (monotone; `u64::MAX` = all done).
    pub gvt: AtomicU64,
    /// Successful GVT computations.
    pub gvt_rounds: AtomicU64,
    /// Run-control: a worker died or stalled; everyone abandons the attempt.
    pub abort: AtomicBool,
    /// Run-control: the livelock watchdog tripped (implies `abort`).
    pub stalled: AtomicBool,
    /// Messages actually shipped into channels (threaded transport only;
    /// the wire transports count on the supervisor side instead). Relaxed
    /// ordering: pure telemetry, never part of the GVT protocol.
    pub messages_sent: AtomicU64,
    /// Channel pushes that carried those messages — one per flush batch,
    /// the threads-mode stand-in for a wire frame.
    pub frames_sent: AtomicU64,
    /// Messages annihilated inside an unsent buffer (counts both members
    /// of each positive/anti pair).
    pub messages_folded: AtomicU64,
    /// At most one sampler at a time.
    sample_lock: Mutex<()>,
}

impl GvtState {
    pub fn new(k: usize) -> Self {
        GvtState {
            lvt: (0..k).map(|_| AtomicU64::new(0)).collect(),
            in_transit: AtomicI64::new(0),
            send_epoch: AtomicU64::new(0),
            gvt: AtomicU64::new(0),
            gvt_rounds: AtomicU64::new(0),
            abort: AtomicBool::new(false),
            stalled: AtomicBool::new(false),
            messages_sent: AtomicU64::new(0),
            frames_sent: AtomicU64::new(0),
            messages_folded: AtomicU64::new(0),
            sample_lock: Mutex::new(()),
        }
    }

    /// Publish worker `w`'s local virtual time.
    #[inline]
    pub fn publish_lvt(&self, w: usize, t: VTime) {
        self.lvt[w].store(t, Ordering::SeqCst);
    }

    /// Attempt a GVT sample; returns the new GVT if the sample was valid and
    /// advanced it.
    pub fn try_compute_gvt(&self) -> Option<VTime> {
        let _guard = self.sample_lock.try_lock()?;
        let epoch_before = self.send_epoch.load(Ordering::SeqCst);
        if self.in_transit.load(Ordering::SeqCst) != 0 {
            return None;
        }
        let mut min = VTime::MAX;
        for l in &self.lvt {
            min = min.min(l.load(Ordering::SeqCst));
        }
        if self.in_transit.load(Ordering::SeqCst) != 0
            || self.send_epoch.load(Ordering::SeqCst) != epoch_before
        {
            return None; // a send intervened; sample invalid
        }
        let prev = self.gvt.fetch_max(min, Ordering::SeqCst);
        if min > prev {
            self.gvt_rounds.fetch_add(1, Ordering::SeqCst);
            Some(min)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gvt_is_min_of_published_lvts() {
        let g = GvtState::new(3);
        g.publish_lvt(0, 10);
        g.publish_lvt(1, 7);
        g.publish_lvt(2, 12);
        assert_eq!(g.try_compute_gvt(), Some(7));
        assert_eq!(g.gvt.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn gvt_never_regresses() {
        let g = GvtState::new(2);
        g.publish_lvt(0, 100);
        g.publish_lvt(1, 100);
        assert_eq!(g.try_compute_gvt(), Some(100));
        g.publish_lvt(0, 50); // stale publication must not pull GVT back
        assert_eq!(g.try_compute_gvt(), None);
        assert_eq!(g.gvt.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn in_transit_blocks_sampling() {
        let g = GvtState::new(1);
        g.publish_lvt(0, 5);
        g.in_transit.fetch_add(1, Ordering::SeqCst);
        assert_eq!(g.try_compute_gvt(), None);
        g.in_transit.fetch_sub(1, Ordering::SeqCst);
        assert_eq!(g.try_compute_gvt(), Some(5));
    }

    #[test]
    fn quiescence_is_max() {
        let g = GvtState::new(2);
        g.publish_lvt(0, VTime::MAX);
        g.publish_lvt(1, VTime::MAX);
        assert_eq!(g.try_compute_gvt(), Some(VTime::MAX));
    }

    #[test]
    fn rounds_count_only_progress() {
        let g = GvtState::new(1);
        g.publish_lvt(0, 3);
        g.try_compute_gvt();
        g.try_compute_gvt(); // no progress
        assert_eq!(g.gvt_rounds.load(Ordering::SeqCst), 1);
        g.publish_lvt(0, 9);
        g.try_compute_gvt();
        assert_eq!(g.gvt_rounds.load(Ordering::SeqCst), 2);
    }
}
