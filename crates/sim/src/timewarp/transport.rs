//! Pluggable worker transports for the Time Warp kernel.
//!
//! The deterministic executor ([`super::dst`]) drives one worker per
//! cluster through a small command vocabulary — step, deliver, fossil,
//! checkpoint, restore, finish. `ClusterWorker` abstracts *where* that
//! worker lives:
//!
//! * `InProcWorker` — the worker is a `ClusterProcess` owned by the
//!   supervisor itself, commands are direct method calls. This is the
//!   deterministic executor of [`Transport::InProc`], unchanged in
//!   behaviour from its pre-transport form.
//! * `ProcessWorker` — the worker is a separate OS process (the
//!   `tw_worker` binary) on a Unix-domain socket, commands are
//!   length-prefixed JSON frames. A `SIGKILL`'d worker surfaces as a
//!   socket EOF, which the supervisor treats exactly like an injected
//!   crash fault: restore from the last GVT-coordinated checkpoint, replay
//!   the input log, re-fill the lost channels (see [`super::recovery`]).
//!
//! The supervisor loop (`run_supervisor`) is transport-generic and
//! *identical* for both, which is what makes the canonical run artifact of
//! a process-transport run — crashed and recovered or not — byte-identical
//! to the same-seed in-proc run: both transports execute the same decision
//! sequence against the same deterministic cluster state machines.
//!
//! # Wire protocol
//!
//! Frames are `u32` little-endian length prefixes followed by that many
//! bytes of compact JSON, capped at [`MAX_FRAME`]. The supervisor connects
//! the conversation with a `hello` carrying [`WIRE_VERSION`] and
//! [`CHECKPOINT_SCHEMA`]; the worker answers with its own `hello` and both
//! sides reject a mismatch ([`TimeWarpError::VersionMismatch`]) — the
//! checkpoint serialization *is* the restore payload, so mixed-version
//! pairs must never exchange state. An `init` frame ships the reduced
//! netlist (gate structure only — names, hierarchy and declared delays do
//! not affect simulation), the partition assignment and the stimulus
//! parameters; the worker rebuilds its [`ClusterPlan`] locally, which is
//! deterministic, so both sides agree on every cut channel. Each command
//! frame is written with a single buffered syscall per quantum and the
//! response is read back under a timeout ([`TimeWarpError::WorkerTimeout`]
//! when it elapses — a hung worker is *not* crash-stop, so it is fatal
//! rather than recovered). Worker-side panics are caught and shipped back
//! as a typed `panic` frame ([`TimeWarpError::WorkerPanic`]) instead of an
//! opaque exit code.

use super::checkpoint::{Checkpoint, CHECKPOINT_SCHEMA};
use super::dst::{DstAction, DstView, Schedule, SchedulePolicy};
use super::error::TimeWarpError;
use super::gvt::GvtState;
use super::proc::ClusterProcess;
use super::recovery::{degrade_sequential, replay_ops, RecoveryLog, RecoveryOutcome, ReplayOp};
use super::{merge_results, StateSaving, TimeWarpConfig, TwMessage, TwRunResult};
use crate::artifact::{logic_str, logic_vec};
use crate::cluster::ClusterPlan;
use crate::logic::Logic;
use crate::stats::SimStats;
use crate::stimulus::VectorStimulus;
use crate::wheel::VTime;
use dvs_json::{uint_array, uint_vec, FromJson, Json, ObjBuilder, ToJson};
use dvs_verilog::netlist::{Gate, GateId, GateKind, InstId, Net, NetId, Netlist};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Where the Time Warp workers execute. Selecting a transport also selects
/// the execution discipline: `Threads` is free-running (wall-clock fast,
/// counters timing-dependent), the other two are deterministically
/// scheduled by `(seed, schedule)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum Transport {
    /// One free-running OS thread per cluster, exchanging messages over
    /// channels. Fastest wall-clock; counters depend on thread timing.
    #[default]
    Threads,
    /// Single-threaded virtual scheduler stepping cluster state machines
    /// owned by the supervisor itself. `(seed, schedule)` fully determines
    /// the execution, making every counter exact and reproducible —
    /// including under adversarial schedules.
    InProc {
        /// Seed for the schedule policy.
        seed: u64,
        /// The scheduling policy driving the executor.
        schedule: SchedulePolicy,
    },
    /// The same deterministic scheduler, but each cluster is a separate OS
    /// process (the `tw_worker` binary) driven over a Unix-domain socket.
    /// Crash faults are real `SIGKILL`s; recovery is checkpoint-restore
    /// plus input-log replay, and the canonical artifact stays
    /// byte-identical to the same-seed [`Transport::InProc`] run.
    Process {
        /// Seed for the schedule policy.
        seed: u64,
        /// The scheduling policy driving the executor.
        schedule: SchedulePolicy,
        /// Explicit path to the worker binary. `None` falls back to the
        /// `DVS_TW_WORKER` environment variable, then to a `tw_worker`
        /// next to (or one directory above) the current executable.
        worker: Option<PathBuf>,
    },
}

impl Transport {
    /// Deterministic in-process execution under `schedule` seeded with
    /// `seed`.
    pub fn in_proc(seed: u64, schedule: SchedulePolicy) -> Self {
        Transport::InProc { seed, schedule }
    }

    /// Deterministic process-per-cluster execution, discovering the worker
    /// binary from the environment.
    pub fn process(seed: u64, schedule: SchedulePolicy) -> Self {
        Transport::Process {
            seed,
            schedule,
            worker: None,
        }
    }

    /// Deterministic process-per-cluster execution with an explicit worker
    /// binary.
    pub fn process_with_worker(
        seed: u64,
        schedule: SchedulePolicy,
        worker: impl Into<PathBuf>,
    ) -> Self {
        Transport::Process {
            seed,
            schedule,
            worker: Some(worker.into()),
        }
    }

    /// Stable name for logs and artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            Transport::Threads => "threads",
            Transport::InProc { .. } => "in_proc",
            Transport::Process { .. } => "process",
        }
    }
}

/// Why a worker command failed, as seen by the transport. Only `Lost` is
/// recoverable (crash-stop: the worker is gone and its state with it);
/// everything else is mapped to a typed [`TimeWarpError`] by [`fatal`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum WorkerFailure {
    /// The worker vanished: socket EOF, broken pipe, or a dead process.
    Lost { detail: String },
    /// No response arrived within the read timeout.
    Timeout { after_ms: u64 },
    /// The worker caught a panic and reported it before exiting.
    Panic { message: String },
    /// The conversation itself broke: malformed frame, unexpected kind,
    /// spawn failure.
    Protocol { detail: String },
    /// Version negotiation failed; `theirs` is `(wire, checkpoint_schema)`.
    Version { theirs: (u32, u32) },
}

/// Map a non-recoverable worker failure to the public error type.
fn fatal(cluster: u32, f: WorkerFailure) -> TimeWarpError {
    match f {
        WorkerFailure::Lost { detail } => TimeWarpError::Transport { cluster, detail },
        WorkerFailure::Timeout { after_ms } => TimeWarpError::WorkerTimeout { cluster, after_ms },
        WorkerFailure::Panic { message } => TimeWarpError::WorkerPanic { cluster, message },
        WorkerFailure::Protocol { detail } => TimeWarpError::Transport { cluster, detail },
        WorkerFailure::Version { theirs } => TimeWarpError::VersionMismatch {
            cluster,
            ours: (WIRE_VERSION, CHECKPOINT_SCHEMA),
            theirs,
        },
    }
}

/// One Time Warp cluster as seen by the transport-generic supervisor.
/// Implementations must be deterministic state machines: the same command
/// sequence produces the same responses, counters included — that is the
/// contract the recovery replay and the cross-transport byte-identity
/// guarantee both rest on.
pub(crate) trait ClusterWorker {
    /// Current local virtual time (used once, at startup; afterwards the
    /// supervisor caches the LVT returned by each step/deliver).
    fn lvt(&mut self) -> Result<VTime, WorkerFailure>;
    /// Process the next pending epoch within `limit`; emitted messages are
    /// appended to `sends`. Returns the new LVT.
    fn step(&mut self, limit: VTime, sends: &mut Vec<TwMessage>) -> Result<VTime, WorkerFailure>;
    /// Deliver one message; emitted messages (e.g. rollback anti-messages)
    /// are appended to `sends`. Returns the new LVT.
    fn deliver(&mut self, m: TwMessage, sends: &mut Vec<TwMessage>)
        -> Result<VTime, WorkerFailure>;
    /// Fossil-collect history strictly below `gvt`.
    fn fossil(&mut self, gvt: VTime) -> Result<(), WorkerFailure>;
    /// Capture a checkpoint image at `gvt`.
    fn checkpoint(&mut self, gvt: VTime) -> Result<Checkpoint, WorkerFailure>;
    /// Rebuild the worker from `ck` and replay `ops` (re-sends
    /// suppressed). Returns the restored LVT.
    fn respawn(&mut self, ck: &Checkpoint, ops: &[ReplayOp]) -> Result<VTime, WorkerFailure>;
    /// Assert the quiescence invariants (check mode only): idle LVT, no
    /// orphan tombstones, no pending events.
    fn check_quiescence(&mut self) -> Result<(), WorkerFailure>;
    /// Tear down and return the final `(stats, net values)`.
    fn finish(&mut self) -> Result<(SimStats, Vec<Logic>), WorkerFailure>;
    /// Crash-fault injection: make this worker die right now, the same way
    /// a genuine crash would (in-proc: discard the state machine; process:
    /// `SIGKILL` the child and observe the socket EOF).
    fn inject_crash(&mut self);
    /// Unconditional teardown (degradation path / drop).
    fn kill(&mut self);
}

// ---------------------------------------------------------------------------
// In-process transport
// ---------------------------------------------------------------------------

/// A cluster worker living inside the supervisor: commands are direct
/// method calls on a [`ClusterProcess`].
pub(crate) struct InProcWorker<'nl, 'p> {
    nl: &'nl Netlist,
    plan: &'p ClusterPlan,
    stim: VectorStimulus,
    cycles: u64,
    state_saving: StateSaving,
    check: bool,
    label: String,
    me: u32,
    proc: Option<ClusterProcess<'nl, 'p>>,
}

impl<'nl, 'p> InProcWorker<'nl, 'p> {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        nl: &'nl Netlist,
        plan: &'p ClusterPlan,
        stim: VectorStimulus,
        cycles: u64,
        state_saving: StateSaving,
        check: bool,
        label: &str,
        me: u32,
    ) -> Self {
        let proc = ClusterProcess::new(nl, plan, me, stim.clone(), cycles, state_saving);
        InProcWorker {
            nl,
            plan,
            stim,
            cycles,
            state_saving,
            check,
            label: label.to_string(),
            me,
            proc: Some(proc),
        }
    }
}

impl ClusterWorker for InProcWorker<'_, '_> {
    fn lvt(&mut self) -> Result<VTime, WorkerFailure> {
        Ok(self.proc.as_mut().expect("in-proc worker is alive").lvt())
    }

    fn step(&mut self, limit: VTime, sends: &mut Vec<TwMessage>) -> Result<VTime, WorkerFailure> {
        let p = self.proc.as_mut().expect("in-proc worker is alive");
        p.process_next_epoch(limit, &mut |m: TwMessage| sends.push(m));
        Ok(p.lvt())
    }

    fn deliver(
        &mut self,
        m: TwMessage,
        sends: &mut Vec<TwMessage>,
    ) -> Result<VTime, WorkerFailure> {
        let p = self.proc.as_mut().expect("in-proc worker is alive");
        p.handle_message(m, &mut |m: TwMessage| sends.push(m));
        Ok(p.lvt())
    }

    fn fossil(&mut self, gvt: VTime) -> Result<(), WorkerFailure> {
        let p = self.proc.as_mut().expect("in-proc worker is alive");
        let before = self.check.then(|| p.history_at_or_after(gvt));
        p.fossil_collect(gvt);
        if let Some(before) = before {
            let after = p.history_at_or_after(gvt);
            assert_eq!(
                before, after,
                "fossil collection on cluster {} reclaimed history at or above GVT {gvt} ({})",
                self.me, self.label
            );
        }
        Ok(())
    }

    fn checkpoint(&mut self, gvt: VTime) -> Result<Checkpoint, WorkerFailure> {
        Ok(self
            .proc
            .as_ref()
            .expect("in-proc worker is alive")
            .checkpoint(gvt))
    }

    fn respawn(&mut self, ck: &Checkpoint, ops: &[ReplayOp]) -> Result<VTime, WorkerFailure> {
        let mut p = ClusterProcess::from_checkpoint(
            self.nl,
            self.plan,
            self.stim.clone(),
            self.cycles,
            self.state_saving,
            ck,
        );
        replay_ops(&mut p, ops);
        let lvt = p.lvt();
        self.proc = Some(p);
        Ok(lvt)
    }

    fn check_quiescence(&mut self) -> Result<(), WorkerFailure> {
        let p = self.proc.as_mut().expect("in-proc worker is alive");
        quiescence_asserts(p, self.me, &self.label);
        Ok(())
    }

    fn finish(&mut self) -> Result<(SimStats, Vec<Logic>), WorkerFailure> {
        let mut p = self.proc.take().expect("in-proc worker is alive");
        Ok((p.take_stats(), p.into_values()))
    }

    fn inject_crash(&mut self) {
        // Crash-stop: the in-memory state machine is simply gone.
        self.proc = None;
    }

    fn kill(&mut self) {
        self.proc = None;
    }
}

/// The quiescence invariants shared by both transports (the process worker
/// runs them on its own side, where the state lives).
fn quiescence_asserts(p: &mut ClusterProcess<'_, '_>, me: u32, label: &str) {
    assert_eq!(
        p.lvt(),
        VTime::MAX,
        "cluster {me} still has pending work at quiescence ({label})"
    );
    assert_eq!(
        p.orphan_tombstones(),
        0,
        "annihilation left orphan tombstones on cluster {me} at quiescence ({label})"
    );
    assert_eq!(
        p.pending_len(),
        0,
        "cluster {me} still has queued events at quiescence ({label})"
    );
}

// ---------------------------------------------------------------------------
// Transport-generic supervisor
// ---------------------------------------------------------------------------

/// Run the deterministic executor over an arbitrary set of workers. This is
/// the loop formerly private to the DST module, now generic over
/// [`ClusterWorker`]; `track` arms the recovery log (always on for the
/// process transport — real workers can die at any time — and on for
/// in-proc only when a crash fault is configured, so undisturbed in-proc
/// runs pay nothing).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_supervisor<W: ClusterWorker>(
    nl: &Netlist,
    plan: &ClusterPlan,
    stim: &VectorStimulus,
    cycles: u64,
    cfg: &TimeWarpConfig,
    schedule: &mut dyn Schedule,
    check: bool,
    label: &str,
    workers: &mut [W],
    track: bool,
) -> Result<TwRunResult, TimeWarpError> {
    let k = plan.k;
    assert_eq!(workers.len(), k, "one worker per cluster");
    let mut lvts = vec![0 as VTime; k];
    for (i, l) in lvts.iter_mut().enumerate() {
        *l = workers[i].lvt().map_err(|f| fatal(i as u32, f))?;
    }
    // The initial coordinated "checkpoint" is the fresh state at GVT 0. A
    // worker death this early has nothing to restore from, so it is fatal
    // rather than recovered.
    let log = if track {
        let mut cks = Vec::with_capacity(k);
        for (i, w) in workers.iter_mut().enumerate() {
            cks.push(w.checkpoint(0).map_err(|f| fatal(i as u32, f))?);
        }
        Some(RecoveryLog::from_checkpoints(cks))
    } else {
        None
    };
    let mut sup = Supervisor {
        nl,
        stim,
        cycles,
        cfg,
        check,
        label,
        workers,
        k,
        shared: GvtState::new(k),
        queues: vec![VecDeque::new(); k * k],
        lvts,
        log,
        outcome: RecoveryOutcome::default(),
    };
    let result = sup.run(schedule);
    match result {
        SupRun::Finished(per_cluster) => {
            let mut result = merge_results(
                nl,
                plan,
                per_cluster,
                sup.shared.gvt_rounds.load(Ordering::SeqCst),
            );
            result.recovery = sup.outcome;
            Ok(result)
        }
        SupRun::Degraded(r) => Ok(r),
        SupRun::Failed(e) => Err(e),
    }
}

/// How a supervised run ended.
enum SupRun {
    /// Clean completion: per-cluster `(stats, values)` ready to merge.
    Finished(Vec<(SimStats, Vec<Logic>)>),
    /// Restart budget exhausted; the sequential fallback already ran.
    Degraded(TwRunResult),
    Failed(TimeWarpError),
}

/// Outcome of one supervised worker command (possibly after recoveries).
enum OpOutcome {
    Done,
    Degraded(TwRunResult),
    Failed(TimeWarpError),
}

struct Supervisor<'a, W: ClusterWorker> {
    nl: &'a Netlist,
    stim: &'a VectorStimulus,
    cycles: u64,
    cfg: &'a TimeWarpConfig,
    check: bool,
    label: &'a str,
    workers: &'a mut [W],
    k: usize,
    shared: GvtState,
    /// One FIFO queue per directed cluster pair, indexed `src * k + dst`.
    /// FIFO within a queue is the per-channel ordering the annihilation
    /// protocol relies on; the schedule only controls *which* queue head
    /// is delivered next.
    queues: Vec<VecDeque<TwMessage>>,
    /// Cached per-cluster LVTs. `ClusterProcess::lvt` is idempotent
    /// between operations, so caching the value returned by each
    /// step/deliver is equivalent to re-querying every iteration — and
    /// under the process transport it saves a full round-trip per cluster
    /// per decision.
    lvts: Vec<VTime>,
    log: Option<RecoveryLog>,
    outcome: RecoveryOutcome,
}

macro_rules! try_op {
    ($e:expr) => {
        match $e {
            OpOutcome::Done => {}
            OpOutcome::Degraded(r) => return SupRun::Degraded(r),
            OpOutcome::Failed(e) => return SupRun::Failed(e),
        }
    };
}

impl<W: ClusterWorker> Supervisor<'_, W> {
    fn run(&mut self, schedule: &mut dyn Schedule) -> SupRun {
        let fault = self.cfg.fault;
        let mut crashes_left = fault.crash_budget();
        let gvt_cadence = (self.cfg.batch.max(1) * self.cfg.gvt_interval.max(1)) as u64;
        let mut decision: u64 = 0;
        let mut last_gvt: VTime = 0;
        let mut idle: u64 = 0;
        let mut steppable: Vec<u32> = Vec::with_capacity(self.k);
        let mut deliverable: Vec<(u32, u32)> = Vec::with_capacity(self.k * self.k);
        let mut sends: Vec<TwMessage> = Vec::new();

        loop {
            let gvt = self.shared.gvt.load(Ordering::SeqCst);
            if gvt == VTime::MAX {
                break; // global quiescence
            }
            if gvt > last_gvt {
                last_gvt = gvt;
                idle = 0;
            }
            let limit = gvt.saturating_add(self.cfg.window);

            // Refresh the view: publish every LVT, list legal actions.
            steppable.clear();
            deliverable.clear();
            for (i, &l) in self.lvts.iter().enumerate() {
                self.shared.publish_lvt(i, l);
                if l != VTime::MAX && l <= limit {
                    steppable.push(i as u32);
                }
            }
            for src in 0..self.k {
                for dst in 0..self.k {
                    if !self.queues[src * self.k + dst].is_empty() {
                        deliverable.push((src as u32, dst as u32));
                    }
                }
            }

            if steppable.is_empty() && deliverable.is_empty() {
                // Everyone is idle or throttled and nothing is in transit:
                // the GVT sample is valid by construction and must advance
                // (the minimum LVT exceeds the current GVT, or is MAX =
                // done). If it does not, the protocol is wedged — no retry
                // can fix that.
                let Some(new_gvt) = self.shared.try_compute_gvt() else {
                    return SupRun::Failed(TimeWarpError::Stalled { gvt, idle });
                };
                try_op!(self.gvt_round(new_gvt, true));
                continue;
            }

            // Crash injection: the armed fault fires when the executor
            // reaches decision index `crash_at.1`, before the schedule is
            // consulted — so the decision sequence after recovery is
            // identical to the no-crash run's, which is what makes
            // artifacts byte-identical.
            if crashes_left > 0 {
                if let Some((victim, at)) = fault.crash_at {
                    let v = victim as usize;
                    if decision == at && v < self.k {
                        crashes_left -= 1;
                        self.workers[v].inject_crash();
                        try_op!(self.recover(v));
                        continue;
                    }
                }
            }

            let action = {
                let view = DstView {
                    gvt,
                    lvts: &self.lvts,
                    steppable: &steppable,
                    deliverable: &deliverable,
                    decision,
                };
                let action = schedule.next(&view);
                assert!(
                    view.is_legal(action),
                    "schedule returned illegal action {action:?} at decision {decision} ({})",
                    self.label
                );
                action
            };
            decision += 1;
            idle += 1;
            if self.cfg.stall_limit > 0 && idle >= self.cfg.stall_limit {
                // Livelock watchdog: work keeps happening but GVT never
                // advances, so nothing will ever commit or terminate.
                return SupRun::Failed(TimeWarpError::Stalled { gvt, idle });
            }

            match action {
                DstAction::Step(c) => {
                    try_op!(self.do_step(c as usize, gvt, limit, &mut sends));
                }
                DstAction::Deliver { src, dst } => {
                    try_op!(self.do_deliver(src as usize, dst as usize, gvt, &mut sends));
                }
            }

            // Periodic GVT, mirroring the threaded workers' cadence of one
            // attempt per `gvt_interval` quanta of `batch` epochs.
            if decision.is_multiple_of(gvt_cadence) {
                if let Some(new_gvt) = self.shared.try_compute_gvt() {
                    try_op!(self.gvt_round(new_gvt, false));
                }
            }
        }

        // Quiescent: collect final state. A worker lost here is recovered
        // like any other (its log includes the final fossil collection).
        let mut per_cluster: Vec<(SimStats, Vec<Logic>)> = Vec::with_capacity(self.k);
        for i in 0..self.k {
            loop {
                match self.workers[i].finish() {
                    Ok(sv) => {
                        per_cluster.push(sv);
                        break;
                    }
                    Err(WorkerFailure::Lost { .. }) => match self.recover(i) {
                        OpOutcome::Done => {}
                        OpOutcome::Degraded(r) => return SupRun::Degraded(r),
                        OpOutcome::Failed(e) => return SupRun::Failed(e),
                    },
                    Err(f) => return SupRun::Failed(fatal(i as u32, f)),
                }
            }
        }
        SupRun::Finished(per_cluster)
    }

    /// Execute a `Step(c)` decision, recovering `c` as often as needed.
    fn do_step(
        &mut self,
        c: usize,
        gvt: VTime,
        limit: VTime,
        sends: &mut Vec<TwMessage>,
    ) -> OpOutcome {
        if self.check {
            assert!(
                self.lvts[c] >= gvt,
                "cluster {c} would step an epoch at t={} below GVT {gvt} ({})",
                self.lvts[c],
                self.label
            );
        }
        loop {
            sends.clear();
            match self.workers[c].step(limit, sends) {
                Ok(lvt) => {
                    // Record only after success: a worker that died
                    // mid-step never applied the op, so replay must not
                    // include it — the supervisor simply re-issues it.
                    if let Some(log) = self.log.as_mut() {
                        log.record_step(c, limit);
                    }
                    self.commit_sends(sends);
                    self.lvts[c] = lvt;
                    self.shared.publish_lvt(c, lvt);
                    return OpOutcome::Done;
                }
                Err(WorkerFailure::Lost { .. }) => match self.recover(c) {
                    OpOutcome::Done => {}
                    other => return other,
                },
                Err(f) => return OpOutcome::Failed(fatal(c as u32, f)),
            }
        }
    }

    /// Execute a `Deliver { src, dst }` decision, recovering `dst` as often
    /// as needed.
    fn do_deliver(
        &mut self,
        src: usize,
        dst: usize,
        gvt: VTime,
        sends: &mut Vec<TwMessage>,
    ) -> OpOutcome {
        let ch = src * self.k + dst;
        // Peek, don't pop: if the worker dies mid-delivery the message is
        // still in flight — it counts toward the victim's lost channel
        // state and is re-delivered to the respawned incarnation (recovery
        // re-fills the queue with it at the head, FIFO preserved).
        let msg = *self.queues[ch]
            .front()
            .expect("deliverable channel is non-empty");
        if self.check {
            assert!(
                msg.ev.time >= gvt,
                "message {src}->{dst} at t={} delivered below GVT {gvt} ({})",
                msg.ev.time,
                self.label
            );
        }
        loop {
            sends.clear();
            match self.workers[dst].deliver(msg, sends) {
                Ok(lvt) => {
                    self.queues[ch].pop_front();
                    if let Some(log) = self.log.as_mut() {
                        log.record_deliver(msg);
                    }
                    self.commit_sends(sends);
                    self.lvts[dst] = lvt;
                    // Same ordering discipline as the threaded kernel: the
                    // in-transit counter drops only after the receiver's
                    // LVT reflects the insertion, keeping GVT samples
                    // sound.
                    self.shared.publish_lvt(dst, lvt);
                    self.shared.in_transit.fetch_sub(1, Ordering::SeqCst);
                    return OpOutcome::Done;
                }
                Err(WorkerFailure::Lost { .. }) => match self.recover(dst) {
                    OpOutcome::Done => {}
                    other => return other,
                },
                Err(f) => return OpOutcome::Failed(fatal(dst as u32, f)),
            }
        }
    }

    /// Enqueue messages a worker emitted during a successful op and retain
    /// them in the sender-side log.
    fn commit_sends(&mut self, sends: &[TwMessage]) {
        for &m in sends {
            if self.check {
                let g = self.shared.gvt.load(Ordering::SeqCst);
                assert!(
                    m.ev.time >= g,
                    "message {}->{} at t={} sent below GVT {g} ({})",
                    m.src,
                    m.dst,
                    m.ev.time,
                    self.label
                );
            }
            self.shared.in_transit.fetch_add(1, Ordering::SeqCst);
            self.shared.send_epoch.fetch_add(1, Ordering::SeqCst);
            self.queues[m.src as usize * self.k + m.dst as usize].push_back(m);
            if let Some(log) = self.log.as_mut() {
                log.record_send(m);
            }
        }
    }

    /// One GVT round: fossil-collect everyone, then — unless the run just
    /// quiesced — capture the next coordinated checkpoint cut. `quiesce`
    /// marks the no-action path, the only place quiescence checks run.
    fn gvt_round(&mut self, new_gvt: VTime, quiesce: bool) -> OpOutcome {
        for i in 0..self.k {
            loop {
                match self.workers[i].fossil(new_gvt) {
                    Ok(()) => {
                        // Recorded even at GVT = MAX: a worker dying
                        // between this fossil and its finish must replay
                        // it or its fossil counter would diverge.
                        if let Some(log) = self.log.as_mut() {
                            log.record_fossil(i, new_gvt);
                        }
                        break;
                    }
                    Err(WorkerFailure::Lost { .. }) => match self.recover(i) {
                        OpOutcome::Done => {}
                        other => return other,
                    },
                    Err(f) => return OpOutcome::Failed(fatal(i as u32, f)),
                }
            }
        }
        if new_gvt != VTime::MAX {
            if self.log.is_some() {
                for i in 0..self.k {
                    loop {
                        match self.workers[i].checkpoint(new_gvt) {
                            Ok(ck) => {
                                if let Some(log) = self.log.as_mut() {
                                    log.set_checkpoint(i, ck);
                                }
                                break;
                            }
                            Err(WorkerFailure::Lost { .. }) => match self.recover(i) {
                                OpOutcome::Done => {}
                                other => return other,
                            },
                            Err(f) => return OpOutcome::Failed(fatal(i as u32, f)),
                        }
                    }
                }
                if let Some(log) = self.log.as_mut() {
                    log.clear_channels();
                }
            }
        } else if quiesce && self.check {
            for i in 0..self.k {
                loop {
                    match self.workers[i].check_quiescence() {
                        Ok(()) => break,
                        Err(WorkerFailure::Lost { .. }) => match self.recover(i) {
                            OpOutcome::Done => {}
                            other => return other,
                        },
                        Err(f) => return OpOutcome::Failed(fatal(i as u32, f)),
                    }
                }
            }
        }
        OpOutcome::Done
    }

    /// Crash-stop recovery of cluster `v`: drop its incoming channels,
    /// respawn from the last coordinated checkpoint, replay the input log,
    /// re-fill the channels from sender-side retention. Counts every death
    /// (including deaths during respawn itself) against the restart budget
    /// and degrades to the sequential simulator when it runs out.
    fn recover(&mut self, v: usize) -> OpOutcome {
        // Crash-stop: the victim loses its in-memory state and its
        // incoming channels (in-flight messages toward it die with it).
        // Captured once — respawn retries compare against the originally
        // lost set.
        let mut dropped: Vec<Vec<TwMessage>> = Vec::with_capacity(self.k);
        let mut dropped_total = 0i64;
        for src in 0..self.k {
            let q = &mut self.queues[src * self.k + v];
            dropped_total += q.len() as i64;
            dropped.push(q.drain(..).collect());
        }
        if dropped_total > 0 {
            self.shared
                .in_transit
                .fetch_sub(dropped_total, Ordering::SeqCst);
        }
        let log = self
            .log
            .take()
            .expect("recovery requires an armed recovery log");
        let out = self.recover_inner(v, &dropped, &log);
        self.log = Some(log);
        out
    }

    fn recover_inner(
        &mut self,
        v: usize,
        dropped: &[Vec<TwMessage>],
        log: &RecoveryLog,
    ) -> OpOutcome {
        loop {
            self.outcome.crashes += 1;
            self.outcome.victims.push(v as u32);
            if self.outcome.restarts >= self.cfg.fault.max_restarts {
                // Restart budget exhausted: graceful degradation.
                for w in self.workers.iter_mut() {
                    w.kill();
                }
                let mut r = degrade_sequential(self.nl, self.stim, self.cycles);
                r.recovery.crashes = self.outcome.crashes;
                r.recovery.restarts = self.outcome.restarts;
                r.recovery.replayed_ops = self.outcome.replayed_ops;
                r.recovery.victims = self.outcome.victims.clone();
                return OpOutcome::Degraded(r);
            }
            self.outcome.restarts += 1;
            match self.workers[v].respawn(log.checkpoint(v), log.ops(v)) {
                Ok(lvt) => {
                    self.outcome.replayed_ops += log.ops(v).len() as u64;
                    self.lvts[v] = lvt;
                    self.shared.publish_lvt(v, lvt);
                    // The lost channels are re-filled from each
                    // neighbour's retained output history (the
                    // undelivered suffix since the last GVT round).
                    let mut refilled = 0i64;
                    for (src, lost) in dropped.iter().enumerate() {
                        let und = log.undelivered(src, v);
                        if self.check {
                            assert_eq!(
                                und,
                                lost.as_slice(),
                                "recovered channel {src}->{v} differs from the lost \
                                 in-flight messages ({})",
                                self.label
                            );
                        }
                        refilled += und.len() as i64;
                        self.queues[src * self.k + v].extend(und.iter().copied());
                    }
                    if refilled > 0 {
                        self.shared.in_transit.fetch_add(refilled, Ordering::SeqCst);
                    }
                    return OpOutcome::Done;
                }
                // The replacement died during respawn (possible only with
                // real processes): another crash against the budget.
                Err(WorkerFailure::Lost { .. }) => continue,
                Err(f) => return OpOutcome::Failed(fatal(v as u32, f)),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Wire protocol: framing and frame vocabulary
// ---------------------------------------------------------------------------

/// Version of the framing and command vocabulary. Negotiated in the
/// `hello` exchange together with [`CHECKPOINT_SCHEMA`] (the restore
/// payload is a serialized [`Checkpoint`], so both must match).
pub const WIRE_VERSION: u32 = 1;

/// Upper bound on a frame payload (64 MiB). A length prefix above this is
/// a protocol error, not an allocation request.
pub const MAX_FRAME: usize = 64 << 20;

/// Write one `u32`-LE length-prefixed frame. Header and payload are
/// assembled into a single buffer first, so each frame costs one write
/// syscall and a reader never observes a torn header from a live peer.
fn write_frame<Wr: Write>(w: &mut Wr, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "frame of {} bytes exceeds the {MAX_FRAME}-byte limit",
                payload.len()
            ),
        ));
    }
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    w.flush()
}

/// Read one frame. `Ok(None)` is a clean EOF *at a frame boundary* (the
/// peer closed deliberately); EOF inside a header or payload is an
/// `UnexpectedEof` error — the signature of a killed worker.
fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut header[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(None);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed inside a frame header",
                ));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Serialize and send one JSON frame.
fn send_json<Wr: Write>(w: &mut Wr, j: &Json) -> io::Result<()> {
    let text = j
        .emit()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.msg))?;
    write_frame(w, text.as_bytes())
}

fn parse_json(bytes: &[u8]) -> Result<Json, String> {
    let text = std::str::from_utf8(bytes).map_err(|e| format!("frame is not UTF-8: {e}"))?;
    Json::parse(text).map_err(|e| format!("frame is not JSON: {}", e.msg))
}

fn json_kind(j: &Json) -> Result<&str, String> {
    j.field("kind").and_then(Json::as_str).map_err(|e| e.msg)
}

/// Virtual times go on the wire as integers, with the idle sentinel
/// `VTime::MAX` as `null` (it does not fit a JSON int).
fn vtime_json(t: VTime) -> Json {
    if t == VTime::MAX {
        Json::Null
    } else if let Ok(i) = i64::try_from(t) {
        Json::Int(i)
    } else {
        // Virtual times beyond i64 don't occur in practice (they are
        // bounded by cycles × period), but the codec must not silently
        // saturate: fall back to a decimal string.
        Json::Str(t.to_string())
    }
}

fn vtime_from(v: &Json) -> Result<VTime, String> {
    match v {
        Json::Null => Ok(VTime::MAX),
        Json::Str(s) => s
            .parse::<VTime>()
            .map_err(|e| format!("bad vtime string {s:?}: {e}")),
        other => other.as_u64().map_err(|e| e.msg),
    }
}

fn hello_json() -> Json {
    ObjBuilder::new()
        .str("kind", "hello")
        .uint("wire", WIRE_VERSION as u64)
        .uint("checkpoint_schema", CHECKPOINT_SCHEMA as u64)
        .build()
}

/// Parse a `hello` and return the peer's `(wire, checkpoint_schema)`.
fn hello_versions(j: &Json) -> Result<(u32, u32), String> {
    if json_kind(j)? != "hello" {
        return Err(format!("expected a hello frame, got {j:?}"));
    }
    let err = |e: dvs_json::JsonError| e.msg;
    let wire = j.field("wire").and_then(Json::as_u64).map_err(err)? as u32;
    let ckpt = j
        .field("checkpoint_schema")
        .and_then(Json::as_u64)
        .map_err(err)? as u32;
    Ok((wire, ckpt))
}

fn ready_json(lvt: VTime) -> Json {
    ObjBuilder::new()
        .str("kind", "ready")
        .field("lvt", vtime_json(lvt))
        .build()
}

fn ok_json() -> Json {
    ObjBuilder::new().str("kind", "ok").build()
}

fn done_json(lvt: VTime, sends: &[TwMessage]) -> Json {
    ObjBuilder::new()
        .str("kind", "done")
        .field("lvt", vtime_json(lvt))
        .array("sends", sends.iter().map(ToJson::to_json).collect())
        .build()
}

fn state_saving_json(s: StateSaving) -> Json {
    match s {
        StateSaving::IncrementalUndo => ObjBuilder::new().str("kind", "incremental").build(),
        StateSaving::Checkpoint { interval } => ObjBuilder::new()
            .str("kind", "checkpoint")
            .uint("interval", interval as u64)
            .build(),
    }
}

fn state_saving_from_json(v: &Json) -> Result<StateSaving, String> {
    match json_kind(v)? {
        "incremental" => Ok(StateSaving::IncrementalUndo),
        "checkpoint" => Ok(StateSaving::Checkpoint {
            interval: v
                .field("interval")
                .and_then(Json::as_u64)
                .map_err(|e| e.msg)? as u32,
        }),
        other => Err(format!("unknown state-saving kind {other:?}")),
    }
}

fn replay_op_json(op: &ReplayOp) -> Json {
    match *op {
        ReplayOp::Step { limit } => ObjBuilder::new()
            .str("op", "step")
            .field("limit", vtime_json(limit))
            .build(),
        ReplayOp::Deliver(m) => ObjBuilder::new()
            .str("op", "deliver")
            .field("msg", m.to_json())
            .build(),
        ReplayOp::Fossil(gvt) => ObjBuilder::new()
            .str("op", "fossil")
            .field("gvt", vtime_json(gvt))
            .build(),
    }
}

fn replay_op_from_json(v: &Json) -> Result<ReplayOp, String> {
    let err = |e: dvs_json::JsonError| e.msg;
    match v.field("op").and_then(Json::as_str).map_err(err)? {
        "step" => Ok(ReplayOp::Step {
            limit: vtime_from(v.field("limit").map_err(err)?)?,
        }),
        "deliver" => Ok(ReplayOp::Deliver(
            TwMessage::from_json(v.field("msg").map_err(err)?).map_err(err)?,
        )),
        "fossil" => Ok(ReplayOp::Fossil(vtime_from(v.field("gvt").map_err(err)?)?)),
        other => Err(format!("unknown replay op {other:?}")),
    }
}

/// Build the `init` frame: everything a worker needs to rebuild its
/// cluster — the reduced netlist (gate structure only; names, hierarchy
/// and declared delays do not affect the unit-delay simulation), the
/// partition assignment, and the stimulus parameters. The worker reruns
/// [`ClusterPlan::new`] locally, which is deterministic, so both sides
/// derive identical cut channels.
#[allow(clippy::too_many_arguments)]
fn init_json(
    nl: &Netlist,
    plan: &ClusterPlan,
    stim: &VectorStimulus,
    cycles: u64,
    state_saving: StateSaving,
    check: bool,
    cluster: u32,
    label: &str,
) -> Json {
    let opt_net = |n: Option<NetId>| match n {
        Some(id) => Json::Int(id.0 as i64),
        None => Json::Null,
    };
    let gates: Vec<Json> = nl
        .gates
        .iter()
        .map(|g| {
            let mut a = Vec::with_capacity(2 + g.inputs.len());
            a.push(Json::Str(g.kind.name().to_string()));
            a.push(Json::Int(g.output.0 as i64));
            a.extend(g.inputs.iter().map(|n| Json::Int(n.0 as i64)));
            Json::Array(a)
        })
        .collect();
    ObjBuilder::new()
        .str("kind", "init")
        .uint("cluster", cluster as u64)
        .uint("k", plan.k as u64)
        .bool("check", check)
        .str("label", label)
        .uint("cycles", cycles)
        .field("state_saving", state_saving_json(state_saving))
        .uint("nets", nl.net_count() as u64)
        .field("const0", opt_net(nl.const0_net))
        .field("const1", opt_net(nl.const1_net))
        .field(
            "primary_inputs",
            uint_array(
                &nl.primary_inputs
                    .iter()
                    .map(|n| n.0 as u64)
                    .collect::<Vec<_>>(),
            ),
        )
        .array("gates", gates)
        .field(
            "gate_block",
            uint_array(
                &plan
                    .gate_block
                    .iter()
                    .map(|&b| b as u64)
                    .collect::<Vec<_>>(),
            ),
        )
        .field(
            "stim",
            ObjBuilder::new()
                .field(
                    "data_inputs",
                    uint_array(
                        &stim
                            .data_inputs
                            .iter()
                            .map(|n| n.0 as u64)
                            .collect::<Vec<_>>(),
                    ),
                )
                .field("clock", opt_net(stim.clock))
                .uint("period", stim.period)
                .uint("seed", stim.seed)
                .build(),
        )
        .build()
}

/// Everything a worker rebuilds from the `init` frame.
struct WorkerInit {
    netlist: Netlist,
    gate_block: Vec<u32>,
    k: usize,
    cluster: u32,
    check: bool,
    cycles: u64,
    state_saving: StateSaving,
    stim: VectorStimulus,
    label: String,
}

fn worker_init_from_json(v: &Json) -> Result<WorkerInit, String> {
    let err = |e: dvs_json::JsonError| e.msg;
    if json_kind(v)? != "init" {
        return Err(format!(
            "expected an init frame, got kind {:?}",
            json_kind(v)
        ));
    }
    let nets = v.field("nets").and_then(Json::as_usize).map_err(err)?;
    let opt_net = |x: &Json| -> Result<Option<NetId>, String> {
        match x {
            Json::Null => Ok(None),
            other => Ok(Some(NetId(other.as_u64().map_err(err)? as u32))),
        }
    };
    let net_ids = |x: &Json| -> Result<Vec<NetId>, String> {
        Ok(uint_vec(x)
            .map_err(err)?
            .into_iter()
            .map(|n| NetId(n as u32))
            .collect())
    };
    let mut netlist = Netlist {
        nets: (0..nets)
            .map(|_| Net {
                name: String::new(),
                driver: None,
            })
            .collect(),
        ..Netlist::default()
    };
    netlist.const0_net = opt_net(v.field("const0").map_err(err)?)?;
    netlist.const1_net = opt_net(v.field("const1").map_err(err)?)?;
    netlist.primary_inputs = net_ids(v.field("primary_inputs").map_err(err)?)?;
    for (i, g) in v
        .field("gates")
        .and_then(Json::as_array)
        .map_err(err)?
        .iter()
        .enumerate()
    {
        let parts = g.as_array().map_err(err)?;
        if parts.len() < 2 {
            return Err(format!("gate {i}: expected [kind, output, inputs...]"));
        }
        let kind_name = parts[0].as_str().map_err(err)?;
        let kind = GateKind::from_name(kind_name)
            .ok_or_else(|| format!("gate {i}: unknown gate kind {kind_name:?}"))?;
        let output = NetId(parts[1].as_u64().map_err(err)? as u32);
        if output.idx() >= nets {
            return Err(format!("gate {i}: output net {} out of range", output.0));
        }
        let inputs = parts[2..]
            .iter()
            .map(|p| p.as_u64().map(|n| NetId(n as u32)))
            .collect::<Result<Vec<_>, _>>()
            .map_err(err)?;
        if inputs.iter().any(|n| n.idx() >= nets) {
            return Err(format!("gate {i}: input net out of range"));
        }
        netlist.nets[output.idx()].driver = Some(GateId(netlist.gates.len() as u32));
        netlist.gates.push(Gate {
            kind,
            output,
            inputs,
            owner: InstId(0),
            delay: None,
        });
    }
    let gate_block: Vec<u32> = uint_vec(v.field("gate_block").map_err(err)?)
        .map_err(err)?
        .into_iter()
        .map(|b| b as u32)
        .collect();
    if gate_block.len() != netlist.gate_count() {
        return Err("gate_block length does not match the gate count".to_string());
    }
    let k = v.field("k").and_then(Json::as_usize).map_err(err)?;
    if k == 0 || gate_block.iter().any(|&b| (b as usize) >= k) {
        return Err("gate_block assigns a gate to an out-of-range cluster".to_string());
    }
    let cluster = v.field("cluster").and_then(Json::as_u64).map_err(err)? as u32;
    if cluster as usize >= k {
        return Err(format!("cluster {cluster} out of range for k={k}"));
    }
    let s = v.field("stim").map_err(err)?;
    let stim = VectorStimulus {
        data_inputs: net_ids(s.field("data_inputs").map_err(err)?)?,
        clock: opt_net(s.field("clock").map_err(err)?)?,
        period: s.field("period").and_then(Json::as_u64).map_err(err)?,
        seed: s.field("seed").and_then(Json::as_u64).map_err(err)?,
    };
    Ok(WorkerInit {
        netlist,
        gate_block,
        k,
        cluster,
        check: v.field("check").and_then(Json::as_bool).map_err(err)?,
        cycles: v.field("cycles").and_then(Json::as_u64).map_err(err)?,
        state_saving: state_saving_from_json(v.field("state_saving").map_err(err)?)?,
        stim,
        label: v
            .field("label")
            .and_then(Json::as_str)
            .map_err(err)?
            .to_string(),
    })
}

// ---------------------------------------------------------------------------
// Process transport: supervisor side
// ---------------------------------------------------------------------------

/// How long the supervisor waits for a freshly spawned worker to connect.
const SPAWN_TIMEOUT: Duration = Duration::from_secs(10);

/// Default per-response read timeout (overridable via `DVS_TW_TIMEOUT_MS`).
const DEFAULT_READ_TIMEOUT: Duration = Duration::from_millis(30_000);

fn read_timeout() -> Duration {
    std::env::var("DVS_TW_TIMEOUT_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .map(Duration::from_millis)
        .unwrap_or(DEFAULT_READ_TIMEOUT)
}

/// Locate the worker binary: explicit path, then `DVS_TW_WORKER`, then a
/// `tw_worker` sibling of the current executable (or of its parent
/// directory — test binaries live one level below the build root).
fn resolve_worker(explicit: Option<&Path>) -> Result<PathBuf, String> {
    if let Some(p) = explicit {
        return if p.is_file() {
            Ok(p.to_path_buf())
        } else {
            Err(format!("worker binary {} does not exist", p.display()))
        };
    }
    if let Ok(env) = std::env::var("DVS_TW_WORKER") {
        let p = PathBuf::from(env);
        return if p.is_file() {
            Ok(p)
        } else {
            Err(format!(
                "DVS_TW_WORKER points at {}, which does not exist",
                p.display()
            ))
        };
    }
    if let Ok(exe) = std::env::current_exe() {
        if let Some(dir) = exe.parent() {
            for d in [Some(dir), dir.parent()].into_iter().flatten() {
                let cand = d.join("tw_worker");
                if cand.is_file() {
                    return Ok(cand);
                }
            }
        }
    }
    Err(
        "no tw_worker binary found: pass Transport::Process { worker }, set DVS_TW_WORKER, \
         or place tw_worker next to the current executable"
            .to_string(),
    )
}

static SOCKET_SERIAL: AtomicU64 = AtomicU64::new(0);

fn next_socket_path(cluster: u32) -> PathBuf {
    let serial = SOCKET_SERIAL.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "dvs-tw-{}-{cluster}-{serial}.sock",
        std::process::id()
    ))
}

/// A cluster worker living in a separate OS process, driven over a
/// Unix-domain socket. The supervisor owns the listening socket and the
/// child's lifetime; a dead child surfaces as [`WorkerFailure::Lost`] on
/// the next exchange, which is precisely the crash-stop signal the
/// recovery supervisor consumes.
pub(crate) struct ProcessWorker {
    cluster: u32,
    bin: PathBuf,
    init: Json,
    timeout: Duration,
    socket_path: Option<PathBuf>,
    child: Option<Child>,
    reader: Option<io::BufReader<UnixStream>>,
    writer: Option<UnixStream>,
    last_lvt: VTime,
}

impl ProcessWorker {
    pub fn new(cluster: u32, bin: PathBuf, init: Json, timeout: Duration) -> Self {
        ProcessWorker {
            cluster,
            bin,
            init,
            timeout,
            socket_path: None,
            child: None,
            reader: None,
            writer: None,
            last_lvt: 0,
        }
    }

    /// Spawn (or respawn) the child, negotiate versions, and initialize it.
    /// On success `last_lvt` holds the worker's fresh LVT.
    fn spawn(&mut self) -> Result<(), WorkerFailure> {
        self.kill_child();
        let path = next_socket_path(self.cluster);
        let _ = std::fs::remove_file(&path);
        let proto = |detail: String| WorkerFailure::Protocol { detail };
        let listener = UnixListener::bind(&path)
            .map_err(|e| proto(format!("bind {}: {e}", path.display())))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| proto(format!("listener nonblocking: {e}")))?;
        let child = Command::new(&self.bin)
            .arg("--socket")
            .arg(&path)
            .spawn()
            .map_err(|e| proto(format!("spawn {}: {e}", self.bin.display())))?;
        self.child = Some(child);
        self.socket_path = Some(path);
        let deadline = Instant::now() + SPAWN_TIMEOUT;
        let stream = loop {
            match listener.accept() {
                Ok((s, _)) => break s,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if let Some(status) = self
                        .child
                        .as_mut()
                        .and_then(|c| c.try_wait().ok().flatten())
                    {
                        return Err(WorkerFailure::Lost {
                            detail: format!("worker exited during startup: {status}"),
                        });
                    }
                    if Instant::now() >= deadline {
                        return Err(WorkerFailure::Timeout {
                            after_ms: SPAWN_TIMEOUT.as_millis() as u64,
                        });
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(proto(format!("accept: {e}"))),
            }
        };
        stream
            .set_nonblocking(false)
            .map_err(|e| proto(format!("stream blocking: {e}")))?;
        stream
            .set_read_timeout(Some(self.timeout))
            .map_err(|e| proto(format!("read timeout: {e}")))?;
        let writer = stream
            .try_clone()
            .map_err(|e| proto(format!("clone stream: {e}")))?;
        self.reader = Some(io::BufReader::new(stream));
        self.writer = Some(writer);

        // Version negotiation: the supervisor speaks first; the worker
        // always answers with its own versions so a mismatch is
        // diagnosable on both sides.
        self.send(&hello_json())?;
        let reply = self.read_response()?;
        let theirs = hello_versions(&reply).map_err(|detail| WorkerFailure::Protocol { detail })?;
        if theirs != (WIRE_VERSION, CHECKPOINT_SCHEMA) {
            return Err(WorkerFailure::Version { theirs });
        }
        let init = self.init.clone();
        let ready = self.call(&init)?;
        self.last_lvt = self.expect_ready(&ready)?;
        Ok(())
    }

    fn send(&mut self, j: &Json) -> Result<(), WorkerFailure> {
        let w = self.writer.as_mut().ok_or_else(|| WorkerFailure::Lost {
            detail: "no connection to worker".to_string(),
        })?;
        send_json(w, j).map_err(|e| WorkerFailure::Lost {
            detail: format!("write failed: {e}"),
        })
    }

    fn read_response(&mut self) -> Result<Json, WorkerFailure> {
        let r = self.reader.as_mut().ok_or_else(|| WorkerFailure::Lost {
            detail: "no connection to worker".to_string(),
        })?;
        let bytes = match read_frame(r) {
            Ok(Some(bytes)) => bytes,
            Ok(None) => {
                return Err(WorkerFailure::Lost {
                    detail: "socket EOF (worker process died)".to_string(),
                })
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(WorkerFailure::Timeout {
                    after_ms: self.timeout.as_millis() as u64,
                })
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                return Err(WorkerFailure::Protocol {
                    detail: e.to_string(),
                })
            }
            Err(e) => {
                return Err(WorkerFailure::Lost {
                    detail: format!("read failed: {e}"),
                })
            }
        };
        let j = parse_json(&bytes).map_err(|detail| WorkerFailure::Protocol { detail })?;
        match json_kind(&j).map_err(|detail| WorkerFailure::Protocol { detail })? {
            "panic" => Err(WorkerFailure::Panic {
                message: j
                    .field("message")
                    .and_then(Json::as_str)
                    .unwrap_or("<no message>")
                    .to_string(),
            }),
            "error" => Err(WorkerFailure::Protocol {
                detail: j
                    .field("detail")
                    .and_then(Json::as_str)
                    .unwrap_or("<no detail>")
                    .to_string(),
            }),
            _ => Ok(j),
        }
    }

    /// One command round-trip: a single buffered write, then the response.
    fn call(&mut self, j: &Json) -> Result<Json, WorkerFailure> {
        self.send(j)?;
        self.read_response()
    }

    fn expect_kind(&self, j: &Json, want: &str) -> Result<(), WorkerFailure> {
        let kind = json_kind(j).map_err(|detail| WorkerFailure::Protocol { detail })?;
        if kind == want {
            Ok(())
        } else {
            Err(WorkerFailure::Protocol {
                detail: format!("expected a {want:?} frame, got {kind:?}"),
            })
        }
    }

    fn expect_ready(&self, j: &Json) -> Result<VTime, WorkerFailure> {
        self.expect_kind(j, "ready")?;
        j.field("lvt")
            .map_err(|e| WorkerFailure::Protocol { detail: e.msg })
            .and_then(|v| vtime_from(v).map_err(|detail| WorkerFailure::Protocol { detail }))
    }

    /// Parse a `done` response: new LVT plus emitted messages.
    fn expect_done(&self, j: &Json, sends: &mut Vec<TwMessage>) -> Result<VTime, WorkerFailure> {
        self.expect_kind(j, "done")?;
        let proto = |detail: String| WorkerFailure::Protocol { detail };
        let lvt = vtime_from(j.field("lvt").map_err(|e| proto(e.msg))?).map_err(proto)?;
        for m in j
            .field("sends")
            .and_then(Json::as_array)
            .map_err(|e| proto(e.msg))?
        {
            sends.push(TwMessage::from_json(m).map_err(|e| proto(e.msg))?);
        }
        Ok(lvt)
    }

    fn kill_child(&mut self) {
        if let Some(mut child) = self.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        self.reader = None;
        self.writer = None;
        if let Some(path) = self.socket_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl ClusterWorker for ProcessWorker {
    fn lvt(&mut self) -> Result<VTime, WorkerFailure> {
        Ok(self.last_lvt)
    }

    fn step(&mut self, limit: VTime, sends: &mut Vec<TwMessage>) -> Result<VTime, WorkerFailure> {
        let cmd = ObjBuilder::new()
            .str("kind", "step")
            .field("limit", vtime_json(limit))
            .build();
        let r = self.call(&cmd)?;
        self.expect_done(&r, sends)
    }

    fn deliver(
        &mut self,
        m: TwMessage,
        sends: &mut Vec<TwMessage>,
    ) -> Result<VTime, WorkerFailure> {
        let cmd = ObjBuilder::new()
            .str("kind", "deliver")
            .field("msg", m.to_json())
            .build();
        let r = self.call(&cmd)?;
        self.expect_done(&r, sends)
    }

    fn fossil(&mut self, gvt: VTime) -> Result<(), WorkerFailure> {
        let cmd = ObjBuilder::new()
            .str("kind", "fossil")
            .field("gvt", vtime_json(gvt))
            .build();
        let r = self.call(&cmd)?;
        self.expect_kind(&r, "ok")
    }

    fn checkpoint(&mut self, gvt: VTime) -> Result<Checkpoint, WorkerFailure> {
        let cmd = ObjBuilder::new()
            .str("kind", "ckpt")
            .field("gvt", vtime_json(gvt))
            .build();
        let r = self.call(&cmd)?;
        self.expect_kind(&r, "ckpt")?;
        let ck = r
            .field("ck")
            .map_err(|e| WorkerFailure::Protocol { detail: e.msg })?;
        Checkpoint::from_json(ck).map_err(|e| WorkerFailure::Protocol { detail: e.msg })
    }

    fn respawn(&mut self, ck: &Checkpoint, ops: &[ReplayOp]) -> Result<VTime, WorkerFailure> {
        self.spawn()?;
        let cmd = ObjBuilder::new()
            .str("kind", "restore")
            .field("ck", ck.to_json())
            .array("ops", ops.iter().map(replay_op_json).collect())
            .build();
        let r = self.call(&cmd)?;
        self.last_lvt = self.expect_ready(&r)?;
        Ok(self.last_lvt)
    }

    fn check_quiescence(&mut self) -> Result<(), WorkerFailure> {
        let r = self.call(&ok_json_cmd("quiesce"))?;
        self.expect_kind(&r, "ok")
    }

    fn finish(&mut self) -> Result<(SimStats, Vec<Logic>), WorkerFailure> {
        let r = self.call(&ok_json_cmd("finish"))?;
        self.expect_kind(&r, "finished")?;
        let proto = |detail: String| WorkerFailure::Protocol { detail };
        let stats = SimStats::from_json(r.field("stats").map_err(|e| proto(e.msg))?)
            .map_err(|e| proto(e.msg))?;
        let values =
            logic_vec(r.field("values").map_err(|e| proto(e.msg))?).map_err(|e| proto(e.msg))?;
        Ok((stats, values))
    }

    fn inject_crash(&mut self) {
        // A real SIGKILL, then observe the death the way a genuine crash
        // would surface: drain the socket to EOF before dropping it.
        if let Some(child) = self.child.as_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
        if let Some(r) = self.reader.as_mut() {
            let mut sink = [0u8; 256];
            loop {
                match r.read(&mut sink) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => continue,
                }
            }
        }
        self.kill_child();
    }

    fn kill(&mut self) {
        self.kill_child();
    }
}

impl Drop for ProcessWorker {
    fn drop(&mut self) {
        self.kill_child();
    }
}

/// A bare `{"kind": <kind>}` command frame.
fn ok_json_cmd(kind: &str) -> Json {
    ObjBuilder::new().str("kind", kind).build()
}

/// Run the Time Warp kernel with one OS process per cluster.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_process(
    nl: &Netlist,
    plan: &ClusterPlan,
    stim: &VectorStimulus,
    cycles: u64,
    cfg: &TimeWarpConfig,
    seed: u64,
    policy: &SchedulePolicy,
    worker_bin: Option<&Path>,
) -> Result<TwRunResult, TimeWarpError> {
    let check = cfg!(debug_assertions);
    // Same label as the in-proc executor: assertions and artifacts must
    // not depend on the transport.
    let label = format!("seed {seed}, schedule {policy:?}");
    let bin =
        resolve_worker(worker_bin).map_err(|reason| TimeWarpError::InvalidConfig { reason })?;
    let timeout = read_timeout();
    let mut schedule = policy.build(seed);
    let mut workers: Vec<ProcessWorker> = (0..plan.k)
        .map(|me| {
            ProcessWorker::new(
                me as u32,
                bin.clone(),
                init_json(
                    nl,
                    plan,
                    stim,
                    cycles,
                    cfg.state_saving,
                    check,
                    me as u32,
                    &label,
                ),
                timeout,
            )
        })
        .collect();
    for w in &mut workers {
        let cluster = w.cluster;
        w.spawn().map_err(|f| fatal(cluster, f))?;
    }
    run_supervisor(
        nl,
        plan,
        stim,
        cycles,
        cfg,
        schedule.as_mut(),
        check,
        &label,
        &mut workers,
        true,
    )
}

// ---------------------------------------------------------------------------
// Process transport: worker side
// ---------------------------------------------------------------------------

/// Entry point for the `tw_worker` binary: connect back to the supervisor's
/// socket and serve one cluster until the supervisor says `finish` (or the
/// connection closes).
///
/// Protocol (all frames are `u32`-LE length-prefixed compact JSON):
///
/// 1. supervisor sends `hello` (wire + checkpoint schema versions);
/// 2. worker always replies with its own `hello`, then exits quietly on a
///    mismatch — the supervisor owns the error report;
/// 3. supervisor sends `init` (netlist + gate block + stimulus + config);
///    worker replies `ready` with its LVT;
/// 4. command loop: `step`/`deliver` → `done`, `fossil`/`quiesce` → `ok`,
///    `ckpt` → `ckpt`, `restore` → `ready`, `finish` → `finished`.
///
/// Worker panics inside a command are caught and shipped back as a typed
/// `panic` frame so the supervisor can raise
/// [`TimeWarpError::WorkerPanic`] instead of seeing an opaque dead socket.
pub fn serve_worker(socket: &Path) -> io::Result<()> {
    let stream = UnixStream::connect(socket)?;
    serve_stream(stream)
}

fn serve_stream(stream: UnixStream) -> io::Result<()> {
    // Frames are built whole in `write_frame`'s buffer, so the raw stream
    // needs no write-side buffering of its own.
    let mut writer = stream.try_clone()?;
    let mut reader = io::BufReader::new(stream);

    // Version negotiation: read the supervisor's hello, always answer with
    // ours (both sides can then diagnose a mismatch), bail quietly if the
    // versions differ — the supervisor raises the typed error.
    let hello = match read_frame(&mut reader)? {
        Some(bytes) => bytes,
        None => return Ok(()),
    };
    send_json(&mut writer, &hello_json())?;
    let theirs = parse_json(&hello)
        .and_then(|j| hello_versions(&j))
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    if theirs != (WIRE_VERSION, CHECKPOINT_SCHEMA) {
        return Ok(());
    }

    let init = match read_frame(&mut reader)? {
        Some(bytes) => bytes,
        None => return Ok(()),
    };
    let init = match parse_json(&init).and_then(|j| worker_init_from_json(&j)) {
        Ok(init) => init,
        Err(detail) => {
            send_json(
                &mut writer,
                &ObjBuilder::new()
                    .str("kind", "error")
                    .str("detail", &detail)
                    .build(),
            )?;
            return Ok(());
        }
    };
    serve_cluster(init, reader, writer)
}

/// Parse `DVS_TW_SELFKILL=<cluster>:<after>` — a test hook that makes this
/// worker abort (SIGABRT, no unwinding, no reply frame) immediately before
/// dispatching its `<after>`-th command. Exercises asynchronous worker
/// death at a point the supervisor did not choose.
fn selfkill_budget(cluster: u32) -> Option<u64> {
    let spec = std::env::var("DVS_TW_SELFKILL").ok()?;
    let (c, after) = spec.split_once(':')?;
    if c.parse::<u32>().ok()? != cluster {
        return None;
    }
    after.parse::<u64>().ok()
}

fn serve_cluster(
    init: WorkerInit,
    mut reader: io::BufReader<UnixStream>,
    mut writer: UnixStream,
) -> io::Result<()> {
    let WorkerInit {
        netlist,
        gate_block,
        k,
        cluster,
        check,
        cycles,
        state_saving,
        stim,
        label,
    } = init;
    let plan = ClusterPlan::new(&netlist, &gate_block, k);
    let mut proc = Some(ClusterProcess::new(
        &netlist,
        &plan,
        cluster,
        stim.clone(),
        cycles,
        state_saving,
    ));
    send_json(&mut writer, &ready_json(lvt_of(&mut proc)))?;
    let mut selfkill = selfkill_budget(cluster);

    loop {
        let bytes = match read_frame(&mut reader)? {
            Some(bytes) => bytes,
            None => return Ok(()), // supervisor went away — crash-stop too
        };
        if let Some(left) = selfkill.as_mut() {
            if *left <= 1 {
                // Die exactly like SIGKILL would: no unwinding, no drops,
                // no farewell frame.
                std::process::abort();
            }
            *left -= 1;
        }
        let cmd = match parse_json(&bytes) {
            Ok(cmd) => cmd,
            Err(detail) => {
                send_json(
                    &mut writer,
                    &ObjBuilder::new()
                        .str("kind", "error")
                        .str("detail", &detail)
                        .build(),
                )?;
                return Ok(());
            }
        };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dispatch(
                &cmd,
                &netlist,
                &plan,
                &stim,
                cycles,
                state_saving,
                check,
                &label,
                cluster,
                &mut proc,
                &mut selfkill,
            )
        }));
        match outcome {
            Ok(Ok(Some(reply))) => {
                // `finish` wraps its reply so the loop knows to answer and
                // then hang up cleanly.
                if json_kind(&reply) == Ok("finished-wrap") {
                    let inner = reply
                        .field("inner")
                        .expect("finished-wrap frames carry an inner reply");
                    send_json(&mut writer, inner)?;
                    return Ok(());
                }
                send_json(&mut writer, &reply)?
            }
            Ok(Ok(None)) => return Ok(()),
            Ok(Err(detail)) => {
                send_json(
                    &mut writer,
                    &ObjBuilder::new()
                        .str("kind", "error")
                        .str("detail", &detail)
                        .build(),
                )?;
                return Ok(());
            }
            Err(payload) => {
                send_json(
                    &mut writer,
                    &ObjBuilder::new()
                        .str("kind", "panic")
                        .str("message", &panic_message(payload.as_ref()))
                        .build(),
                )?;
                return Ok(());
            }
        }
    }
}

fn lvt_of(proc: &mut Option<ClusterProcess<'_, '_>>) -> VTime {
    proc.as_mut().map_or(VTime::MAX, ClusterProcess::lvt)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Execute one supervisor command against the local cluster process.
/// `Ok(Some(reply))` answers and continues, `Ok(None)` is a clean `finish`,
/// `Err(detail)` is a protocol error (reply + hang up).
#[allow(clippy::too_many_arguments)]
fn dispatch<'nl, 'p>(
    cmd: &Json,
    nl: &'nl Netlist,
    plan: &'p ClusterPlan,
    stim: &VectorStimulus,
    cycles: u64,
    state_saving: StateSaving,
    check: bool,
    label: &str,
    cluster: u32,
    proc: &mut Option<ClusterProcess<'nl, 'p>>,
    selfkill: &mut Option<u64>,
) -> Result<Option<Json>, String>
where
    'nl: 'p,
{
    let kind = json_kind(cmd)?;
    let live = |p: &mut Option<ClusterProcess<'nl, 'p>>| -> Result<(), String> {
        if p.is_none() {
            return Err(format!("command {kind:?} after finish"));
        }
        Ok(())
    };
    match kind {
        "step" => {
            live(proc)?;
            let limit = vtime_from(cmd.field("limit").map_err(|e| e.msg)?)?;
            let p = proc.as_mut().expect("live() checked presence");
            let mut sends = Vec::new();
            p.process_next_epoch(limit, &mut |m: TwMessage| sends.push(m));
            Ok(Some(done_json(p.lvt(), &sends)))
        }
        "deliver" => {
            live(proc)?;
            let m =
                TwMessage::from_json(cmd.field("msg").map_err(|e| e.msg)?).map_err(|e| e.msg)?;
            let p = proc.as_mut().expect("live() checked presence");
            let mut sends = Vec::new();
            p.handle_message(m, &mut |m: TwMessage| sends.push(m));
            Ok(Some(done_json(p.lvt(), &sends)))
        }
        "fossil" => {
            live(proc)?;
            let gvt = vtime_from(cmd.field("gvt").map_err(|e| e.msg)?)?;
            let p = proc.as_mut().expect("live() checked presence");
            let before = check.then(|| p.history_at_or_after(gvt));
            p.fossil_collect(gvt);
            if let Some(before) = before {
                let after = p.history_at_or_after(gvt);
                assert_eq!(
                    before, after,
                    "fossil collection on cluster {cluster} reclaimed history at or above \
                     GVT {gvt} ({label})"
                );
            }
            Ok(Some(ok_json()))
        }
        "ckpt" => {
            live(proc)?;
            let gvt = vtime_from(cmd.field("gvt").map_err(|e| e.msg)?)?;
            let p = proc.as_ref().expect("live() checked presence");
            Ok(Some(
                ObjBuilder::new()
                    .str("kind", "ckpt")
                    .field("ck", p.checkpoint(gvt).to_json())
                    .build(),
            ))
        }
        "restore" => {
            let ck =
                Checkpoint::from_json(cmd.field("ck").map_err(|e| e.msg)?).map_err(|e| e.msg)?;
            let mut ops = Vec::new();
            for op in cmd
                .field("ops")
                .and_then(Json::as_array)
                .map_err(|e| e.msg)?
            {
                ops.push(replay_op_from_json(op)?);
            }
            let mut p =
                ClusterProcess::from_checkpoint(nl, plan, stim.clone(), cycles, state_saving, &ck);
            replay_ops(&mut p, &ops);
            let lvt = p.lvt();
            *proc = Some(p);
            // A restored worker is a fresh process as far as the fault
            // model is concerned; it must not re-arm the self-kill hook.
            *selfkill = None;
            Ok(Some(ready_json(lvt)))
        }
        "quiesce" => {
            live(proc)?;
            if check {
                let p = proc.as_mut().expect("live() checked presence");
                quiescence_asserts(p, cluster, label);
            }
            Ok(Some(ok_json()))
        }
        "finish" => {
            live(proc)?;
            let mut p = proc.take().expect("live() checked presence");
            let stats = p.take_stats();
            let values = p.into_values();
            // Answer, then let the caller hang up.
            let reply = ObjBuilder::new()
                .str("kind", "finished")
                .field("stats", stats.to_json())
                .str("values", &logic_str(&values))
                .build();
            send_reply_and_stop(reply)
        }
        other => Err(format!("unknown command kind {other:?}")),
    }
}

/// `finish` both replies and terminates the loop; model that as a reply the
/// caller must send before returning `Ok(None)`. Implemented as a tiny
/// shim so `dispatch` keeps a single return type.
fn send_reply_and_stop(reply: Json) -> Result<Option<Json>, String> {
    // Encode "reply then stop" as a special frame the serve loop unpacks.
    Ok(Some(
        ObjBuilder::new()
            .str("kind", "finished-wrap")
            .field("inner", reply)
            .build(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reader that yields at most one byte per `read` call — models a
    /// socket delivering frames in arbitrarily small pieces.
    struct Trickle<R>(R);

    impl<R: io::Read> io::Read for Trickle<R> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let n = buf.len().min(1);
            self.0.read(&mut buf[..n])
        }
    }

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello frames").expect("write");
        write_frame(&mut buf, b"").expect("write empty");
        let mut r = io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r).expect("read").as_deref(),
            Some(&b"hello frames"[..])
        );
        assert_eq!(read_frame(&mut r).expect("read").as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).expect("eof"), None);
    }

    #[test]
    fn frame_survives_split_reads() {
        let mut buf = Vec::new();
        let payload = vec![0xAB_u8; 1000];
        write_frame(&mut buf, &payload).expect("write");
        let mut r = Trickle(io::Cursor::new(buf));
        assert_eq!(read_frame(&mut r).expect("read"), Some(payload));
        assert_eq!(read_frame(&mut r).expect("eof"), None);
    }

    #[test]
    fn eof_inside_header_is_an_error() {
        // Two bytes of a four-byte header, then EOF.
        let mut r = io::Cursor::new(vec![7u8, 0]);
        let err = read_frame(&mut r).expect_err("partial header must error");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn eof_inside_payload_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"full payload").expect("write");
        buf.truncate(buf.len() - 3);
        let mut r = io::Cursor::new(buf);
        let err = read_frame(&mut r).expect_err("partial payload must error");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_frame_is_rejected_before_allocation() {
        let mut buf = (u32::MAX).to_le_bytes().to_vec();
        buf.extend_from_slice(b"junk");
        let mut r = io::Cursor::new(buf);
        let err = read_frame(&mut r).expect_err("oversized header must error");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        let too_big = vec![0u8; MAX_FRAME + 1];
        let err = write_frame(&mut Vec::new(), &too_big).expect_err("oversized write");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn vtime_sentinel_round_trips() {
        for t in [0, 1, 42, VTime::MAX - 1, VTime::MAX] {
            let j = vtime_json(t);
            assert_eq!(vtime_from(&j).expect("round trip"), t);
        }
        assert_eq!(vtime_json(VTime::MAX), Json::Null);
    }

    #[test]
    fn state_saving_round_trips() {
        for s in [
            StateSaving::IncrementalUndo,
            StateSaving::Checkpoint { interval: 7 },
        ] {
            let j = state_saving_json(s);
            assert_eq!(state_saving_from_json(&j).expect("round trip"), s);
        }
    }

    #[test]
    fn replay_ops_round_trip() {
        let ops = [
            ReplayOp::Step { limit: VTime::MAX },
            ReplayOp::Step { limit: 16 },
            ReplayOp::Deliver(TwMessage {
                src: 1,
                dst: 0,
                seq: 4,
                ev: crate::wheel::NetEvent {
                    time: 9,
                    net: dvs_verilog::netlist::NetId(3),
                    value: Logic::One,
                },
                anti: false,
            }),
            ReplayOp::Fossil(VTime::MAX),
        ];
        for op in &ops {
            let j = replay_op_json(op);
            assert_eq!(&replay_op_from_json(&j).expect("round trip"), op);
        }
    }

    #[test]
    fn hello_mismatch_shuts_the_worker_down_quietly() {
        let (sup, worker) = UnixStream::pair().expect("socketpair");
        let handle = std::thread::spawn(move || serve_stream(worker));

        let mut writer = sup.try_clone().expect("clone");
        let mut reader = io::BufReader::new(sup);
        // Pretend to be a future supervisor with a newer wire version.
        let bad_hello = ObjBuilder::new()
            .str("kind", "hello")
            .uint("wire", (WIRE_VERSION + 1) as u64)
            .uint("checkpoint_schema", CHECKPOINT_SCHEMA as u64)
            .build();
        send_json(&mut writer, &bad_hello).expect("send hello");

        // The worker still answers with its own hello…
        let reply = read_frame(&mut reader)
            .expect("read")
            .expect("worker hello");
        let reply = parse_json(&reply).expect("parse");
        assert_eq!(
            hello_versions(&reply).expect("versions"),
            (WIRE_VERSION, CHECKPOINT_SCHEMA)
        );
        // …then hangs up instead of serving commands.
        assert_eq!(read_frame(&mut reader).expect("clean eof"), None);
        handle.join().expect("join").expect("serve_stream exits Ok");
    }

    #[test]
    fn checkpoint_payload_crosses_a_real_socket() {
        let ck = Checkpoint {
            schema: CHECKPOINT_SCHEMA,
            cluster: 2,
            gvt: 17,
            values: vec![Logic::Zero, Logic::One, Logic::X, Logic::Z],
            pending: Vec::new(),
            tomb_remote: vec![(1, 9)],
            tomb_local: vec![3],
            processed: Vec::new(),
            undo: vec![(12, 1, Logic::X)],
            snapshots: Vec::new(),
            epochs_since_snapshot: 2,
            outlog: Vec::new(),
            sched_log: vec![(11, 7)],
            stim_cycle: 5,
            last_time: 16,
            settled: true,
            order: 40,
            lseq: 8,
            mseq: 11,
            stats: SimStats::default(),
        };
        let (mut a, b) = UnixStream::pair().expect("socketpair");
        let payload = ck.to_json();
        let writer = std::thread::spawn(move || {
            send_json(&mut a, &payload).expect("send checkpoint");
        });
        let mut reader = io::BufReader::new(b);
        let bytes = read_frame(&mut reader).expect("read").expect("one frame");
        let back =
            Checkpoint::from_json(&parse_json(&bytes).expect("parse")).expect("checkpoint decodes");
        assert_eq!(back.schema, ck.schema);
        assert_eq!(back.cluster, ck.cluster);
        assert_eq!(back.gvt, ck.gvt);
        assert_eq!(back.values, ck.values);
        assert_eq!(back.tomb_remote, ck.tomb_remote);
        assert_eq!(back.tomb_local, ck.tomb_local);
        assert_eq!(back.undo, ck.undo);
        assert_eq!(back.sched_log, ck.sched_log);
        assert_eq!(back.stim_cycle, ck.stim_cycle);
        assert_eq!(back.mseq, ck.mseq);
        writer.join().expect("writer thread");
    }
}
