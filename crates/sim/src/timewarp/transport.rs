//! Pluggable worker transports for the Time Warp kernel.
//!
//! The deterministic executor ([`super::dst`]) drives one worker per
//! cluster through a small command vocabulary — step, deliver, fossil,
//! checkpoint, restore, finish. `ClusterWorker` abstracts *where* that
//! worker lives:
//!
//! * `InProcWorker` — the worker is a `ClusterProcess` owned by the
//!   supervisor itself, commands are direct method calls. This is the
//!   deterministic executor of [`Transport::InProc`], unchanged in
//!   behaviour from its pre-transport form.
//! * `ProcessWorker` — the worker is a separate OS process (the
//!   `tw_worker` binary) on a `WireStream`: either a Unix-domain socket
//!   ([`Transport::Process`], the supervisor spawns the child and owns the
//!   per-cluster socket) or a TCP connection ([`Transport::Tcp`], the
//!   supervisor binds one shared listener and each worker *dials in* with
//!   `tw_worker --connect host:port`). Commands are length-prefixed JSON
//!   frames either way. A `SIGKILL`'d worker surfaces as a socket EOF; a
//!   dropped TCP connection (EOF, reset, or a read that times out)
//!   surfaces the same way — and the supervisor treats every one of them
//!   exactly like an injected crash fault: restore from the last
//!   GVT-coordinated checkpoint, replay the input log, re-fill the lost
//!   channels (see [`super::recovery`]).
//!
//! The supervisor loop (`run_supervisor`) is transport-generic and
//! *identical* for all of them, which is what makes the canonical run
//! artifact of a process- or TCP-transport run — crashed and recovered or
//! not — byte-identical to the same-seed in-proc run: every transport
//! executes the same decision sequence against the same deterministic
//! cluster state machines.
//!
//! # Wire protocol
//!
//! The `hello` exchange (one frame each direction, supervisor first) uses
//! the legacy v2 framing — a bare `u32` little-endian length prefix — so
//! any peer version can parse it and version negotiation rejects a
//! mismatched pairing as [`TimeWarpError::VersionMismatch`] instead of a
//! framing error. Every frame after the hello is wire v3: a 12-byte
//! `[len][seq][crc32]` header whose checksum covers the sequence number
//! and payload (framing lives in [`super::wire`]), capped at
//! [`MAX_FRAME`]. A checksum or sequence violation surfaces as
//! `WireError::Corrupt` (see [`super::wire`]), which the supervisor treats
//! exactly like a vanished peer: drop the connection, count the frame,
//! recover through checkpoint-restore. The supervisor's hello carries
//! [`WIRE_VERSION`] and [`CHECKPOINT_SCHEMA`] plus — over TCP — a per-run
//! token; the worker answers with its own `hello` (over TCP also echoing
//! the token and declaring which cluster it serves, so the shared listener
//! can match a reconnecting worker back to its cluster). An `init` frame
//! ships the reduced netlist (gate structure only — names, hierarchy and
//! declared delays do not affect simulation), the partition assignment and
//! the stimulus parameters; the worker rebuilds its [`ClusterPlan`]
//! locally, which is deterministic, so both sides agree on every cut
//! channel. Each command frame is written with a single buffered syscall
//! per quantum and the response is read back under a timeout. On the Unix
//! transport a hung worker is *not* crash-stop, so the timeout is fatal
//! ([`TimeWarpError::WorkerTimeout`]); over TCP the supervisor probes a
//! silent peer with heartbeat `ping` frames every `heartbeat_interval` and
//! declares it lost after `heartbeat_budget` consecutive unanswered
//! probes — bounding half-open-connection detection at
//! `budget × interval` instead of hanging for the full `io_timeout` — and
//! recovers it like a crash. Only the spawn/handshake phase (before the
//! first checkpoint exists) keeps the fatal timeout. Worker-side panics
//! are caught and shipped back as a typed `panic` frame
//! ([`TimeWarpError::WorkerPanic`]) instead of an opaque exit code.
//!
//! When a [`super::chaos::NetPlan`] is armed, the supervisor routes each
//! affected cluster's post-hello byte stream through the deterministic
//! fault-injection shim (`ChaosStream` in [`super::chaos`]), which corrupts,
//! duplicates, delays, truncates or suppresses whole frames at seeded
//! frame indices — every injected fault must resolve through the typed
//! recovery paths above, never a panic or a silent misparse.

use super::chaos::{ChaosStream, ClusterChaos};
use super::checkpoint::{Checkpoint, CheckpointDelta, DeltaError, CHECKPOINT_SCHEMA};
use super::dst::{DstAction, DstView, Schedule, SchedulePolicy};
use super::error::TimeWarpError;
use super::gvt::GvtState;
use super::proc::ClusterProcess;
use super::recovery::{degrade_sequential, replay_ops, RecoveryLog, RecoveryOutcome, ReplayOp};
use super::wire::{
    hello_json, hello_parse, json_kind, parse_json, read_frame, run_token, send_json, DialJitter,
    FrameSink, FrameSource, WireError, WireStream,
};
use super::{merge_results, StateSaving, TimeWarpConfig, TwMessage, TwRunResult, MAX_BATCH_MSGS};
use crate::artifact::{logic_str, logic_vec};
use crate::cluster::ClusterPlan;
use crate::logic::Logic;
use crate::stats::SimStats;
use crate::stimulus::VectorStimulus;
use crate::wheel::VTime;
use dvs_json::{uint_array, uint_vec, FromJson, Json, ObjBuilder, ToJson};
use dvs_verilog::netlist::{Gate, GateId, GateKind, InstId, Net, NetId, Netlist};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

pub use super::wire::{MAX_FRAME, WIRE_VERSION};

/// Where the Time Warp workers execute. Selecting a transport also selects
/// the execution discipline: `Threads` is free-running (wall-clock fast,
/// counters timing-dependent), the other two are deterministically
/// scheduled by `(seed, schedule)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum Transport {
    /// One free-running OS thread per cluster, exchanging messages over
    /// channels. Fastest wall-clock; counters depend on thread timing.
    #[default]
    Threads,
    /// Single-threaded virtual scheduler stepping cluster state machines
    /// owned by the supervisor itself. `(seed, schedule)` fully determines
    /// the execution, making every counter exact and reproducible —
    /// including under adversarial schedules.
    InProc {
        /// Seed for the schedule policy.
        seed: u64,
        /// The scheduling policy driving the executor.
        schedule: SchedulePolicy,
    },
    /// The same deterministic scheduler, but each cluster is a separate OS
    /// process (the `tw_worker` binary) driven over a Unix-domain socket.
    /// Crash faults are real `SIGKILL`s; recovery is checkpoint-restore
    /// plus input-log replay, and the canonical artifact stays
    /// byte-identical to the same-seed [`Transport::InProc`] run.
    Process {
        /// Seed for the schedule policy.
        seed: u64,
        /// The scheduling policy driving the executor.
        schedule: SchedulePolicy,
        /// Explicit path to the worker binary. `None` falls back to the
        /// `DVS_TW_WORKER` environment variable, then to a `tw_worker`
        /// next to (or one directory above) the current executable.
        worker: Option<PathBuf>,
    },
    /// The same deterministic scheduler, but the workers dial in over TCP:
    /// the supervisor binds one listener at `listen`, mints a per-run
    /// token, and each `tw_worker --connect host:port` identifies itself
    /// with that token plus the cluster it serves. A dropped connection
    /// (EOF, reset, or read timeout) is crash-stop — checkpoint-restore
    /// recovery, exactly like a `SIGKILL` on [`Transport::Process`] — and
    /// the canonical artifact stays byte-identical to the same-seed
    /// [`Transport::InProc`] run.
    Tcp {
        /// Seed for the schedule policy.
        seed: u64,
        /// The scheduling policy driving the executor.
        schedule: SchedulePolicy,
        /// Address the supervisor listens on, e.g. `"127.0.0.1:0"` (port 0
        /// picks a free port; useful with [`TcpWorkers::Spawn`], where the
        /// supervisor tells the workers where to dial).
        listen: String,
        /// Where the dialing workers come from.
        workers: TcpWorkers,
    },
}

/// How [`Transport::Tcp`] obtains its workers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TcpWorkers {
    /// The supervisor spawns one local `tw_worker --connect` child per
    /// cluster (localhost only, but exercising the full TCP path — this is
    /// what the kill-harness CI runs). Crashed workers are respawned.
    Spawn {
        /// Explicit path to the worker binary; `None` resolves like
        /// [`Transport::Process`] (`DVS_TW_WORKER`, then a sibling).
        worker: Option<PathBuf>,
    },
    /// Workers are started externally (possibly on other hosts) and dial
    /// the supervisor themselves; the supervisor prints the listen address
    /// and run token on stderr and *waits* for reconnections instead of
    /// respawning — a worker that never comes back exhausts the restart
    /// budget and degrades the run to the sequential simulator.
    External,
}

impl Transport {
    /// Deterministic in-process execution under `schedule` seeded with
    /// `seed`.
    pub fn in_proc(seed: u64, schedule: SchedulePolicy) -> Self {
        Transport::InProc { seed, schedule }
    }

    /// Deterministic process-per-cluster execution, discovering the worker
    /// binary from the environment.
    pub fn process(seed: u64, schedule: SchedulePolicy) -> Self {
        Transport::Process {
            seed,
            schedule,
            worker: None,
        }
    }

    /// Deterministic process-per-cluster execution with an explicit worker
    /// binary.
    pub fn process_with_worker(
        seed: u64,
        schedule: SchedulePolicy,
        worker: impl Into<PathBuf>,
    ) -> Self {
        Transport::Process {
            seed,
            schedule,
            worker: Some(worker.into()),
        }
    }

    /// Deterministic TCP execution on localhost: the supervisor binds an
    /// ephemeral `127.0.0.1` port and spawns one local `tw_worker
    /// --connect` child per cluster.
    pub fn tcp(seed: u64, schedule: SchedulePolicy) -> Self {
        Transport::Tcp {
            seed,
            schedule,
            listen: "127.0.0.1:0".to_string(),
            workers: TcpWorkers::Spawn { worker: None },
        }
    }

    /// Like [`Transport::tcp`] with an explicit worker binary.
    pub fn tcp_with_worker(
        seed: u64,
        schedule: SchedulePolicy,
        worker: impl Into<PathBuf>,
    ) -> Self {
        Transport::Tcp {
            seed,
            schedule,
            listen: "127.0.0.1:0".to_string(),
            workers: TcpWorkers::Spawn {
                worker: Some(worker.into()),
            },
        }
    }

    /// Deterministic TCP execution with externally started workers: the
    /// supervisor listens on `listen` and waits for `k` dial-ins carrying
    /// the run token it prints on stderr.
    pub fn tcp_external(seed: u64, schedule: SchedulePolicy, listen: impl Into<String>) -> Self {
        Transport::Tcp {
            seed,
            schedule,
            listen: listen.into(),
            workers: TcpWorkers::External,
        }
    }

    /// Stable name for logs and artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            Transport::Threads => "threads",
            Transport::InProc { .. } => "in_proc",
            Transport::Process { .. } => "process",
            Transport::Tcp { .. } => "tcp",
        }
    }
}

/// Why a worker command failed, as seen by the transport. Only `Lost` is
/// recoverable (crash-stop: the worker is gone and its state with it);
/// everything else is mapped to a typed [`TimeWarpError`] by [`fatal`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum WorkerFailure {
    /// The worker vanished: socket EOF, broken pipe, or a dead process.
    Lost { detail: String },
    /// No response arrived within the read timeout.
    Timeout { after_ms: u64 },
    /// The worker caught a panic and reported it before exiting.
    Panic { message: String },
    /// The conversation itself broke: malformed frame, unexpected kind,
    /// spawn failure.
    Protocol { detail: String },
    /// Version negotiation failed; `theirs` is `(wire, checkpoint_schema)`.
    Version { theirs: (u32, u32) },
    /// The shipped restore payload (base + delta chain) was rejected as
    /// corrupt by the restoring side. Recoverable: the supervisor demotes
    /// the victim's log to its last full base and retries, burning one
    /// restart-budget unit, before degrading to the sequential simulator.
    CorruptRestore { detail: String },
}

/// Map a non-recoverable worker failure to the public error type.
fn fatal(cluster: u32, f: WorkerFailure) -> TimeWarpError {
    match f {
        WorkerFailure::Lost { detail } => TimeWarpError::Transport { cluster, detail },
        WorkerFailure::Timeout { after_ms } => TimeWarpError::WorkerTimeout { cluster, after_ms },
        WorkerFailure::Panic { message } => TimeWarpError::WorkerPanic { cluster, message },
        WorkerFailure::Protocol { detail } => TimeWarpError::Transport { cluster, detail },
        WorkerFailure::Version { theirs } => TimeWarpError::VersionMismatch {
            cluster,
            ours: (WIRE_VERSION, CHECKPOINT_SCHEMA),
            theirs,
        },
        // Reachable only if a corrupt restore escapes the supervisor's
        // base-fallback path (it degrades instead); typed as a transport
        // failure rather than panicking on an impossible state.
        WorkerFailure::CorruptRestore { detail } => TimeWarpError::Transport { cluster, detail },
    }
}

/// Network-integrity counters a worker transport accumulates on the side,
/// folded into [`RecoveryOutcome`] when the run ends — cleanly or
/// degraded. Everything here is a *supervisor-side observation*:
/// supervisor→worker corruption is observed as a connection loss (the
/// worker hangs up on an untrustworthy stream), not as a corrupt frame.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub(crate) struct WireCounters {
    /// Inbound frames rejected by the v3 checksum/sequence validation.
    pub corrupt_frames: u64,
    /// Heartbeat probes charged by budget-exhaustion events (each
    /// detection contributes exactly its exhausted budget, keeping the
    /// counter schedule-exact; transient recovered misses are free).
    pub heartbeats_missed: u64,
    /// Faults the chaos shim actually injected on this worker's streams.
    pub chaos_faults_injected: u64,
    /// Message payloads shipped to this worker: a plain `deliver` counts
    /// one, a `msg_batch` counts every message it carries, a
    /// `deliver_next` counts zero.
    pub messages_sent: u64,
    /// Frames that carried those payloads (`deliver` + `msg_batch`
    /// frames; `deliver_next` frames carry none). With batching off this
    /// equals `messages_sent`.
    pub frames_sent: u64,
}

/// One Time Warp cluster as seen by the transport-generic supervisor.
/// Implementations must be deterministic state machines: the same command
/// sequence produces the same responses, counters included — that is the
/// contract the recovery replay and the cross-transport byte-identity
/// guarantee both rest on.
pub(crate) trait ClusterWorker {
    /// Current local virtual time (used once, at startup; afterwards the
    /// supervisor caches the LVT returned by each step/deliver).
    fn lvt(&mut self) -> Result<VTime, WorkerFailure>;
    /// Process the next pending epoch within `limit`; emitted messages are
    /// appended to `sends`. Returns the new LVT.
    fn step(&mut self, limit: VTime, sends: &mut Vec<TwMessage>) -> Result<VTime, WorkerFailure>;
    /// Deliver one message; emitted messages (e.g. rollback anti-messages)
    /// are appended to `sends`. Returns the new LVT.
    fn deliver(&mut self, m: TwMessage, sends: &mut Vec<TwMessage>)
        -> Result<VTime, WorkerFailure>;
    /// Deliver `m` now, with `tail` naming the committed FIFO successors
    /// already queued on the same channel. A wire transport may pre-ship
    /// the tail in the same frame (receiver-side staging, the `msg_batch`
    /// command) so that later delivers of those messages are payload-free
    /// — but the *semantics* must equal [`Self::deliver`]`(m, sends)`
    /// exactly: one message applied, same response. The supervisor treats
    /// the tail as a hint it will re-offer (identically, since channel
    /// queues only pop on delivery) on every subsequent decision, so an
    /// implementation is free to ignore it — the default does.
    fn deliver_batched(
        &mut self,
        m: TwMessage,
        _tail: &[TwMessage],
        sends: &mut Vec<TwMessage>,
    ) -> Result<VTime, WorkerFailure> {
        self.deliver(m, sends)
    }
    /// Fossil-collect history strictly below `gvt`.
    fn fossil(&mut self, gvt: VTime) -> Result<(), WorkerFailure>;
    /// Capture a full base checkpoint image at `gvt`. The worker retains
    /// the image as the reference for subsequent delta captures.
    fn checkpoint(&mut self, gvt: VTime) -> Result<Checkpoint, WorkerFailure>;
    /// Capture this round's image as a delta against the previous round's
    /// (base or delta-reconstructed) image, advancing the worker's
    /// reference image. Only legal after an initial [`Self::checkpoint`].
    fn checkpoint_delta(&mut self, gvt: VTime) -> Result<CheckpointDelta, WorkerFailure>;
    /// Rebuild the worker from `base` plus its delta chain and replay
    /// `ops` (re-sends suppressed). Returns the restored LVT.
    fn respawn(
        &mut self,
        base: &Checkpoint,
        deltas: &[CheckpointDelta],
        ops: &[ReplayOp],
    ) -> Result<VTime, WorkerFailure>;
    /// Assert the quiescence invariants (check mode only): idle LVT, no
    /// orphan tombstones, no pending events.
    fn check_quiescence(&mut self) -> Result<(), WorkerFailure>;
    /// Tear down and return the final `(stats, net values)`.
    fn finish(&mut self) -> Result<(SimStats, Vec<Logic>), WorkerFailure>;
    /// Crash-fault injection: make this worker die right now, the same way
    /// a genuine crash would (in-proc: discard the state machine; process:
    /// `SIGKILL` the child and observe the socket EOF).
    fn inject_crash(&mut self);
    /// Unconditional teardown (degradation path / drop).
    fn kill(&mut self);
    /// Cumulative network-integrity counters (corrupt frames, heartbeat
    /// budget exhaustions, injected chaos faults). Zero for transports
    /// with no wire underneath.
    fn wire_counters(&self) -> WireCounters {
        WireCounters::default()
    }
}

// ---------------------------------------------------------------------------
// In-process transport
// ---------------------------------------------------------------------------

/// A cluster worker living inside the supervisor: commands are direct
/// method calls on a [`ClusterProcess`].
pub(crate) struct InProcWorker<'nl, 'p> {
    nl: &'nl Netlist,
    plan: &'p ClusterPlan,
    stim: VectorStimulus,
    cycles: u64,
    state_saving: StateSaving,
    check: bool,
    label: String,
    me: u32,
    proc: Option<ClusterProcess<'nl, 'p>>,
    /// The previous round's image — the reference for delta captures.
    /// `None` until the first full checkpoint is taken.
    prev: Option<Checkpoint>,
}

impl<'nl, 'p> InProcWorker<'nl, 'p> {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        nl: &'nl Netlist,
        plan: &'p ClusterPlan,
        stim: VectorStimulus,
        cycles: u64,
        state_saving: StateSaving,
        check: bool,
        label: &str,
        me: u32,
    ) -> Self {
        let proc = ClusterProcess::new(nl, plan, me, stim.clone(), cycles, state_saving);
        InProcWorker {
            nl,
            plan,
            stim,
            cycles,
            state_saving,
            check,
            label: label.to_string(),
            me,
            proc: Some(proc),
            prev: None,
        }
    }
}

impl ClusterWorker for InProcWorker<'_, '_> {
    fn lvt(&mut self) -> Result<VTime, WorkerFailure> {
        Ok(self.proc.as_mut().expect("in-proc worker is alive").lvt())
    }

    fn step(&mut self, limit: VTime, sends: &mut Vec<TwMessage>) -> Result<VTime, WorkerFailure> {
        let p = self.proc.as_mut().expect("in-proc worker is alive");
        p.process_next_epoch(limit, &mut |m: TwMessage| sends.push(m));
        Ok(p.lvt())
    }

    fn deliver(
        &mut self,
        m: TwMessage,
        sends: &mut Vec<TwMessage>,
    ) -> Result<VTime, WorkerFailure> {
        let p = self.proc.as_mut().expect("in-proc worker is alive");
        p.handle_message(m, &mut |m: TwMessage| sends.push(m));
        Ok(p.lvt())
    }

    fn fossil(&mut self, gvt: VTime) -> Result<(), WorkerFailure> {
        let p = self.proc.as_mut().expect("in-proc worker is alive");
        let before = self.check.then(|| p.history_at_or_after(gvt));
        p.fossil_collect(gvt);
        if let Some(before) = before {
            let after = p.history_at_or_after(gvt);
            assert_eq!(
                before, after,
                "fossil collection on cluster {} reclaimed history at or above GVT {gvt} ({})",
                self.me, self.label
            );
        }
        Ok(())
    }

    fn checkpoint(&mut self, gvt: VTime) -> Result<Checkpoint, WorkerFailure> {
        let ck = self
            .proc
            .as_ref()
            .expect("in-proc worker is alive")
            .checkpoint(gvt);
        self.prev = Some(ck.clone());
        Ok(ck)
    }

    fn checkpoint_delta(&mut self, gvt: VTime) -> Result<CheckpointDelta, WorkerFailure> {
        let p = self.proc.as_ref().expect("in-proc worker is alive");
        let prev = self
            .prev
            .as_ref()
            .expect("delta capture requires a prior full checkpoint");
        let next = p.checkpoint(gvt);
        let d = CheckpointDelta::between(prev, &next);
        self.prev = Some(next);
        Ok(d)
    }

    fn respawn(
        &mut self,
        base: &Checkpoint,
        deltas: &[CheckpointDelta],
        ops: &[ReplayOp],
    ) -> Result<VTime, WorkerFailure> {
        let (mut p, image) = ClusterProcess::from_chain(
            self.nl,
            self.plan,
            self.stim.clone(),
            self.cycles,
            self.state_saving,
            base,
            deltas,
        )
        .map_err(|e| match e {
            // A chain that does not apply is recoverable: the supervisor
            // retries from the last full base before giving up. Schema or
            // cluster mismatches mean the supervisor itself is confused —
            // that stays a protocol failure.
            DeltaError::Corrupt(_) | DeltaError::ChainMismatch { .. } => {
                WorkerFailure::CorruptRestore {
                    detail: format!("restore chain rejected: {e}"),
                }
            }
            other => WorkerFailure::Protocol {
                detail: format!("restore chain rejected: {other}"),
            },
        })?;
        replay_ops(&mut p, ops);
        let lvt = p.lvt();
        self.proc = Some(p);
        self.prev = Some(image);
        Ok(lvt)
    }

    fn check_quiescence(&mut self) -> Result<(), WorkerFailure> {
        let p = self.proc.as_mut().expect("in-proc worker is alive");
        quiescence_asserts(p, self.me, &self.label);
        Ok(())
    }

    fn finish(&mut self) -> Result<(SimStats, Vec<Logic>), WorkerFailure> {
        let mut p = self.proc.take().expect("in-proc worker is alive");
        Ok((p.take_stats(), p.into_values()))
    }

    fn inject_crash(&mut self) {
        // Crash-stop: the in-memory state machine is simply gone.
        self.proc = None;
    }

    fn kill(&mut self) {
        self.proc = None;
    }
}

/// The quiescence invariants shared by both transports (the process worker
/// runs them on its own side, where the state lives).
fn quiescence_asserts(p: &mut ClusterProcess<'_, '_>, me: u32, label: &str) {
    assert_eq!(
        p.lvt(),
        VTime::MAX,
        "cluster {me} still has pending work at quiescence ({label})"
    );
    assert_eq!(
        p.orphan_tombstones(),
        0,
        "annihilation left orphan tombstones on cluster {me} at quiescence ({label})"
    );
    assert_eq!(
        p.pending_len(),
        0,
        "cluster {me} still has queued events at quiescence ({label})"
    );
}

// ---------------------------------------------------------------------------
// Transport-generic supervisor
// ---------------------------------------------------------------------------

/// Run the deterministic executor over an arbitrary set of workers. This is
/// the loop formerly private to the DST module, now generic over
/// [`ClusterWorker`]; `track` arms the recovery log (always on for the
/// process transport — real workers can die at any time — and on for
/// in-proc only when a crash fault is configured, so undisturbed in-proc
/// runs pay nothing).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_supervisor<W: ClusterWorker>(
    nl: &Netlist,
    plan: &ClusterPlan,
    stim: &VectorStimulus,
    cycles: u64,
    cfg: &TimeWarpConfig,
    schedule: &mut dyn Schedule,
    check: bool,
    label: &str,
    workers: &mut [W],
    track: bool,
) -> Result<TwRunResult, TimeWarpError> {
    let k = plan.k;
    assert_eq!(workers.len(), k, "one worker per cluster");
    let mut lvts = vec![0 as VTime; k];
    for (i, l) in lvts.iter_mut().enumerate() {
        *l = workers[i].lvt().map_err(|f| fatal(i as u32, f))?;
    }
    // The initial coordinated "checkpoint" is the fresh state at GVT 0. A
    // worker death this early has nothing to restore from, so it is fatal
    // rather than recovered.
    let mut outcome = RecoveryOutcome::default();
    let log = if track {
        let mut cks = Vec::with_capacity(k);
        for (i, w) in workers.iter_mut().enumerate() {
            let ck = w.checkpoint(0).map_err(|f| fatal(i as u32, f))?;
            outcome.checkpoint_bytes_full += json_len(&ck.to_json());
            cks.push(ck);
        }
        Some(RecoveryLog::from_checkpoints(
            cks,
            cfg.checkpoint_cadence.every_n_rounds,
        ))
    } else {
        None
    };
    let mut sup = Supervisor {
        nl,
        stim,
        cycles,
        cfg,
        check,
        label,
        workers,
        k,
        shared: GvtState::new(k),
        queues: vec![VecDeque::new(); k * k],
        lvts,
        log,
        outcome,
        corrupts_left: cfg.fault.corrupt_restores,
    };
    let result = sup.run(schedule);
    match result {
        SupRun::Finished(per_cluster) => {
            sup.fold_wire_counters();
            let mut result = merge_results(
                nl,
                plan,
                per_cluster,
                sup.shared.gvt_rounds.load(Ordering::SeqCst),
            );
            result.recovery = sup.outcome;
            Ok(result)
        }
        SupRun::Degraded(r) => Ok(*r),
        SupRun::Failed(e) => Err(e),
    }
}

/// How a supervised run ended.
enum SupRun {
    /// Clean completion: per-cluster `(stats, values)` ready to merge.
    Finished(Vec<(SimStats, Vec<Logic>)>),
    /// Restart budget exhausted; the sequential fallback already ran.
    /// Boxed: a full run result dwarfs the other variants.
    Degraded(Box<TwRunResult>),
    Failed(TimeWarpError),
}

/// Outcome of one supervised worker command (possibly after recoveries).
enum OpOutcome {
    Done,
    Degraded(Box<TwRunResult>),
    Failed(TimeWarpError),
}

/// The image captured at one GVT round: a full base or a delta against the
/// previous round's image, per the configured [`super::CheckpointCadence`].
enum Captured {
    Base(Checkpoint),
    Delta(CheckpointDelta),
}

/// Canonical serialized size of an image, counted identically on every
/// deterministic transport (the supervisor re-emits the parsed struct, so
/// wire formatting differences cannot leak into the exact counters).
fn json_len(j: &Json) -> u64 {
    j.emit().map_or(0, |s| s.len() as u64)
}

struct Supervisor<'a, W: ClusterWorker> {
    nl: &'a Netlist,
    stim: &'a VectorStimulus,
    cycles: u64,
    cfg: &'a TimeWarpConfig,
    check: bool,
    label: &'a str,
    workers: &'a mut [W],
    k: usize,
    shared: GvtState,
    /// One FIFO queue per directed cluster pair, indexed `src * k + dst`.
    /// FIFO within a queue is the per-channel ordering the annihilation
    /// protocol relies on; the schedule only controls *which* queue head
    /// is delivered next.
    queues: Vec<VecDeque<TwMessage>>,
    /// Cached per-cluster LVTs. `ClusterProcess::lvt` is idempotent
    /// between operations, so caching the value returned by each
    /// step/deliver is equivalent to re-querying every iteration — and
    /// under the process transport it saves a full round-trip per cluster
    /// per decision.
    lvts: Vec<VTime>,
    log: Option<RecoveryLog>,
    outcome: RecoveryOutcome,
    /// Remaining [`super::recovery::FaultPlan::corrupt_restores`] fault
    /// injections: how many further restore attempts ship a poisoned
    /// delta chain.
    corrupts_left: u32,
}

macro_rules! try_op {
    ($e:expr) => {
        match $e {
            OpOutcome::Done => {}
            OpOutcome::Degraded(r) => return SupRun::Degraded(r),
            OpOutcome::Failed(e) => return SupRun::Failed(e),
        }
    };
}

impl<W: ClusterWorker> Supervisor<'_, W> {
    fn run(&mut self, schedule: &mut dyn Schedule) -> SupRun {
        let fault = self.cfg.fault;
        let mut crashes_left = fault.crash_budget();
        let gvt_cadence =
            (self.cfg.epochs_per_quantum.max(1) * self.cfg.gvt_interval.max(1)) as u64;
        let mut decision: u64 = 0;
        let mut last_gvt: VTime = 0;
        let mut idle: u64 = 0;
        let mut steppable: Vec<u32> = Vec::with_capacity(self.k);
        let mut deliverable: Vec<(u32, u32)> = Vec::with_capacity(self.k * self.k);
        let mut sends: Vec<TwMessage> = Vec::new();

        loop {
            let gvt = self.shared.gvt.load(Ordering::SeqCst);
            if gvt == VTime::MAX {
                break; // global quiescence
            }
            if gvt > last_gvt {
                last_gvt = gvt;
                idle = 0;
            }
            let limit = gvt.saturating_add(self.cfg.window);

            // Refresh the view: publish every LVT, list legal actions.
            steppable.clear();
            deliverable.clear();
            for (i, &l) in self.lvts.iter().enumerate() {
                self.shared.publish_lvt(i, l);
                if l != VTime::MAX && l <= limit {
                    steppable.push(i as u32);
                }
            }
            for src in 0..self.k {
                for dst in 0..self.k {
                    if !self.queues[src * self.k + dst].is_empty() {
                        deliverable.push((src as u32, dst as u32));
                    }
                }
            }

            if steppable.is_empty() && deliverable.is_empty() {
                // Everyone is idle or throttled and nothing is in transit:
                // the GVT sample is valid by construction and must advance
                // (the minimum LVT exceeds the current GVT, or is MAX =
                // done). If it does not, the protocol is wedged — no retry
                // can fix that.
                let Some(new_gvt) = self.shared.try_compute_gvt() else {
                    return SupRun::Failed(TimeWarpError::Stalled { gvt, idle });
                };
                try_op!(self.gvt_round(new_gvt, true));
                continue;
            }

            // Crash injection: the armed fault fires when the executor
            // reaches decision index `crash_at.1`, before the schedule is
            // consulted — so the decision sequence after recovery is
            // identical to the no-crash run's, which is what makes
            // artifacts byte-identical.
            if crashes_left > 0 {
                if let Some((victim, at)) = fault.crash_at {
                    let v = victim as usize;
                    if decision == at && v < self.k {
                        crashes_left -= 1;
                        self.workers[v].inject_crash();
                        try_op!(self.recover(v));
                        continue;
                    }
                }
            }

            let action = {
                let view = DstView {
                    gvt,
                    lvts: &self.lvts,
                    steppable: &steppable,
                    deliverable: &deliverable,
                    decision,
                };
                let action = schedule.next(&view);
                assert!(
                    view.is_legal(action),
                    "schedule returned illegal action {action:?} at decision {decision} ({})",
                    self.label
                );
                action
            };
            decision += 1;
            idle += 1;
            if self.cfg.stall_limit > 0 && idle >= self.cfg.stall_limit {
                // Livelock watchdog: work keeps happening but GVT never
                // advances, so nothing will ever commit or terminate.
                return SupRun::Failed(TimeWarpError::Stalled { gvt, idle });
            }

            match action {
                DstAction::Step(c) => {
                    try_op!(self.do_step(c as usize, gvt, limit, &mut sends));
                }
                DstAction::Deliver { src, dst } => {
                    try_op!(self.do_deliver(src as usize, dst as usize, gvt, &mut sends));
                }
            }

            // Periodic GVT, mirroring the threaded workers' cadence of one
            // attempt per `gvt_interval` quanta of `batch` epochs.
            if decision.is_multiple_of(gvt_cadence) {
                if let Some(new_gvt) = self.shared.try_compute_gvt() {
                    try_op!(self.gvt_round(new_gvt, false));
                }
            }
        }

        // Quiescent: collect final state. A worker lost here is recovered
        // like any other (its log includes the final fossil collection).
        let mut per_cluster: Vec<(SimStats, Vec<Logic>)> = Vec::with_capacity(self.k);
        for i in 0..self.k {
            loop {
                match self.workers[i].finish() {
                    Ok(sv) => {
                        per_cluster.push(sv);
                        break;
                    }
                    Err(WorkerFailure::Lost { .. }) => match self.recover(i) {
                        OpOutcome::Done => {}
                        OpOutcome::Degraded(r) => return SupRun::Degraded(r),
                        OpOutcome::Failed(e) => return SupRun::Failed(e),
                    },
                    Err(f) => return SupRun::Failed(fatal(i as u32, f)),
                }
            }
        }
        SupRun::Finished(per_cluster)
    }

    /// Execute a `Step(c)` decision, recovering `c` as often as needed.
    fn do_step(
        &mut self,
        c: usize,
        gvt: VTime,
        limit: VTime,
        sends: &mut Vec<TwMessage>,
    ) -> OpOutcome {
        if self.check {
            assert!(
                self.lvts[c] >= gvt,
                "cluster {c} would step an epoch at t={} below GVT {gvt} ({})",
                self.lvts[c],
                self.label
            );
        }
        loop {
            sends.clear();
            match self.workers[c].step(limit, sends) {
                Ok(lvt) => {
                    // Record only after success: a worker that died
                    // mid-step never applied the op, so replay must not
                    // include it — the supervisor simply re-issues it.
                    if let Some(log) = self.log.as_mut() {
                        log.record_step(c, limit);
                    }
                    self.commit_sends(sends);
                    self.lvts[c] = lvt;
                    self.shared.publish_lvt(c, lvt);
                    return OpOutcome::Done;
                }
                Err(WorkerFailure::Lost { .. }) => match self.recover(c) {
                    OpOutcome::Done => {}
                    other => return other,
                },
                Err(f) => return OpOutcome::Failed(fatal(c as u32, f)),
            }
        }
    }

    /// Execute a `Deliver { src, dst }` decision, recovering `dst` as often
    /// as needed.
    fn do_deliver(
        &mut self,
        src: usize,
        dst: usize,
        gvt: VTime,
        sends: &mut Vec<TwMessage>,
    ) -> OpOutcome {
        let ch = src * self.k + dst;
        // Peek, don't pop: if the worker dies mid-delivery the message is
        // still in flight — it counts toward the victim's lost channel
        // state and is re-delivered to the respawned incarnation (recovery
        // re-fills the queue with it at the head, FIFO preserved).
        let msg = *self.queues[ch]
            .front()
            .expect("deliverable channel is non-empty");
        if self.check {
            assert!(
                msg.ev.time >= gvt,
                "message {src}->{dst} at t={} delivered below GVT {gvt} ({})",
                msg.ev.time,
                self.label
            );
        }
        // The committed FIFO successors of `msg` on this channel, offered
        // to the transport for receiver-side staging (capped at the
        // policy's batch size, head included). Recomputed per decision
        // from the queue itself, which only pops on delivery — so a
        // worker that staged a tail and then died is offered the
        // identical tail again after recovery.
        let tail: Vec<TwMessage> = if self.cfg.batch_policy.is_on() {
            self.queues[ch]
                .iter()
                .skip(1)
                .take(self.cfg.batch_policy.max_size().saturating_sub(1))
                .copied()
                .collect()
        } else {
            Vec::new()
        };
        loop {
            sends.clear();
            let delivered = if self.cfg.batch_policy.is_on() {
                self.workers[dst].deliver_batched(msg, &tail, sends)
            } else {
                self.workers[dst].deliver(msg, sends)
            };
            match delivered {
                Ok(lvt) => {
                    self.queues[ch].pop_front();
                    if let Some(log) = self.log.as_mut() {
                        log.record_deliver(msg);
                    }
                    self.commit_sends(sends);
                    self.lvts[dst] = lvt;
                    // Same ordering discipline as the threaded kernel: the
                    // in-transit counter drops only after the receiver's
                    // LVT reflects the insertion, keeping GVT samples
                    // sound.
                    self.shared.publish_lvt(dst, lvt);
                    self.shared.in_transit.fetch_sub(1, Ordering::SeqCst);
                    return OpOutcome::Done;
                }
                Err(WorkerFailure::Lost { .. }) => match self.recover(dst) {
                    OpOutcome::Done => {}
                    other => return other,
                },
                Err(f) => return OpOutcome::Failed(fatal(dst as u32, f)),
            }
        }
    }

    /// Enqueue messages a worker emitted during a successful op and retain
    /// them in the sender-side log.
    fn commit_sends(&mut self, sends: &[TwMessage]) {
        for &m in sends {
            if self.check {
                let g = self.shared.gvt.load(Ordering::SeqCst);
                assert!(
                    m.ev.time >= g,
                    "message {}->{} at t={} sent below GVT {g} ({})",
                    m.src,
                    m.dst,
                    m.ev.time,
                    self.label
                );
            }
            self.shared.in_transit.fetch_add(1, Ordering::SeqCst);
            self.shared.send_epoch.fetch_add(1, Ordering::SeqCst);
            self.queues[m.src as usize * self.k + m.dst as usize].push_back(m);
            if let Some(log) = self.log.as_mut() {
                log.record_send(m);
            }
        }
    }

    /// One GVT round: fossil-collect everyone, then — unless the run just
    /// quiesced — capture the next coordinated checkpoint cut. `quiesce`
    /// marks the no-action path, the only place quiescence checks run.
    fn gvt_round(&mut self, new_gvt: VTime, quiesce: bool) -> OpOutcome {
        for i in 0..self.k {
            loop {
                match self.workers[i].fossil(new_gvt) {
                    Ok(()) => {
                        // Recorded even at GVT = MAX: a worker dying
                        // between this fossil and its finish must replay
                        // it or its fossil counter would diverge.
                        if let Some(log) = self.log.as_mut() {
                            log.record_fossil(i, new_gvt);
                        }
                        break;
                    }
                    Err(WorkerFailure::Lost { .. }) => match self.recover(i) {
                        OpOutcome::Done => {}
                        other => return other,
                    },
                    Err(f) => return OpOutcome::Failed(fatal(i as u32, f)),
                }
            }
        }
        if new_gvt != VTime::MAX {
            if let Some(log) = self.log.as_ref() {
                // On an every-N cadence, only every Nth round captures full
                // bases; the rounds between capture deltas against the
                // previous round's image. The cadence phase is global, so
                // the coordinated cut stays all-bases or all-deltas.
                let base = log.next_is_base();
                for i in 0..self.k {
                    loop {
                        let captured = if base {
                            self.workers[i].checkpoint(new_gvt).map(Captured::Base)
                        } else {
                            self.workers[i]
                                .checkpoint_delta(new_gvt)
                                .map(Captured::Delta)
                        };
                        match captured {
                            Ok(Captured::Base(ck)) => {
                                self.outcome.checkpoint_bytes_full += json_len(&ck.to_json());
                                if let Some(log) = self.log.as_mut() {
                                    log.set_base(i, ck);
                                }
                                break;
                            }
                            Ok(Captured::Delta(d)) => {
                                self.outcome.checkpoint_bytes_delta += json_len(&d.to_json());
                                if let Some(log) = self.log.as_mut() {
                                    log.push_delta(i, d);
                                }
                                break;
                            }
                            Err(WorkerFailure::Lost { .. }) => match self.recover(i) {
                                OpOutcome::Done => {}
                                other => return other,
                            },
                            Err(f) => return OpOutcome::Failed(fatal(i as u32, f)),
                        }
                    }
                }
                if let Some(log) = self.log.as_mut() {
                    log.round_complete(base);
                }
            }
        } else if quiesce && self.check {
            for i in 0..self.k {
                loop {
                    match self.workers[i].check_quiescence() {
                        Ok(()) => break,
                        Err(WorkerFailure::Lost { .. }) => match self.recover(i) {
                            OpOutcome::Done => {}
                            other => return other,
                        },
                        Err(f) => return OpOutcome::Failed(fatal(i as u32, f)),
                    }
                }
            }
        }
        OpOutcome::Done
    }

    /// Crash-stop recovery of cluster `v`: drop its incoming channels,
    /// respawn from the last base image plus its delta chain, replay the
    /// input log, re-fill the channels from sender-side retention (which
    /// spans the whole cadence window). Counts every death
    /// (including deaths during respawn itself) against the restart budget
    /// and degrades to the sequential simulator when it runs out.
    fn recover(&mut self, v: usize) -> OpOutcome {
        // Crash-stop: the victim loses its in-memory state and its
        // incoming channels (in-flight messages toward it die with it).
        // Captured once — respawn retries compare against the originally
        // lost set.
        let mut dropped: Vec<Vec<TwMessage>> = Vec::with_capacity(self.k);
        let mut dropped_total = 0i64;
        for src in 0..self.k {
            let q = &mut self.queues[src * self.k + v];
            dropped_total += q.len() as i64;
            dropped.push(q.drain(..).collect());
        }
        if dropped_total > 0 {
            self.shared
                .in_transit
                .fetch_sub(dropped_total, Ordering::SeqCst);
        }
        let mut log = self
            .log
            .take()
            .expect("recovery requires an armed recovery log");
        let out = self.recover_inner(v, &dropped, &mut log);
        self.log = Some(log);
        out
    }

    /// Restart budget exhausted (or a base-only restore was itself
    /// rejected): kill everyone and fall back to the sequential simulator,
    /// carrying the exact recovery counters into the degraded result.
    fn degrade(&mut self) -> OpOutcome {
        for w in self.workers.iter_mut() {
            w.kill();
        }
        self.fold_wire_counters();
        let mut r = degrade_sequential(self.nl, self.stim, self.cycles);
        r.recovery.crashes = self.outcome.crashes;
        r.recovery.restarts = self.outcome.restarts;
        r.recovery.replayed_ops = self.outcome.replayed_ops;
        r.recovery.victims = self.outcome.victims.clone();
        r.recovery.corrupt_frames = self.outcome.corrupt_frames;
        r.recovery.heartbeats_missed = self.outcome.heartbeats_missed;
        r.recovery.chaos_faults_injected = self.outcome.chaos_faults_injected;
        r.recovery.messages_sent = self.outcome.messages_sent;
        r.recovery.frames_sent = self.outcome.frames_sent;
        r.recovery.messages_folded = self.outcome.messages_folded;
        OpOutcome::Degraded(Box::new(r))
    }

    /// Sum each worker's side-accumulated wire counters into the outcome.
    /// Called exactly once per run, on whichever path ends it.
    fn fold_wire_counters(&mut self) {
        for w in self.workers.iter() {
            let c = w.wire_counters();
            self.outcome.corrupt_frames += c.corrupt_frames;
            self.outcome.heartbeats_missed += c.heartbeats_missed;
            self.outcome.chaos_faults_injected += c.chaos_faults_injected;
            self.outcome.messages_sent += c.messages_sent;
            self.outcome.frames_sent += c.frames_sent;
        }
    }

    fn recover_inner(
        &mut self,
        v: usize,
        dropped: &[Vec<TwMessage>],
        log: &mut RecoveryLog,
    ) -> OpOutcome {
        // Set after a shipped delta chain was rejected as corrupt: the
        // victim's log has been demoted to its last full base, and a
        // second rejection degrades instead of looping forever.
        let mut base_only = false;
        loop {
            self.outcome.crashes += 1;
            self.outcome.victims.push(v as u32);
            if self.outcome.restarts >= self.cfg.fault.max_restarts {
                return self.degrade();
            }
            self.outcome.restarts += 1;
            // Fault injection: poison the delta chain about to ship so the
            // restoring side rejects it as `DeltaError::Corrupt` —
            // exercising the same base-fallback path a frame corrupted in
            // transit (but CRC-validated into a parseable chain) would take.
            let poisoned;
            let deltas: &[CheckpointDelta] = if self.corrupts_left > 0 && !log.deltas(v).is_empty()
            {
                self.corrupts_left -= 1;
                let mut chain = log.deltas(v).to_vec();
                chain.last_mut().expect("chain is non-empty").poison();
                poisoned = chain;
                &poisoned
            } else {
                log.deltas(v)
            };
            match self.workers[v].respawn(log.base(v), deltas, log.ops(v)) {
                Ok(lvt) => {
                    self.outcome.replayed_ops += log.ops(v).len() as u64;
                    self.lvts[v] = lvt;
                    self.shared.publish_lvt(v, lvt);
                    // The lost channels are re-filled from each
                    // neighbour's retained output history (the
                    // undelivered suffix since the last base round).
                    let mut refilled = 0i64;
                    for (src, lost) in dropped.iter().enumerate() {
                        let und = log.undelivered(src, v);
                        if self.check {
                            assert_eq!(
                                und,
                                lost.as_slice(),
                                "recovered channel {src}->{v} differs from the lost \
                                 in-flight messages ({})",
                                self.label
                            );
                        }
                        refilled += und.len() as i64;
                        self.queues[src * self.k + v].extend(und.iter().copied());
                    }
                    if refilled > 0 {
                        self.shared.in_transit.fetch_add(refilled, Ordering::SeqCst);
                    }
                    return OpOutcome::Done;
                }
                // The replacement died during respawn (possible only with
                // real processes): another crash against the budget.
                Err(WorkerFailure::Lost { .. }) => continue,
                // The shipped delta chain did not survive the trip: burn a
                // restart unit, demote the victim's log to its last full
                // base (the op log re-grows from the base round, which the
                // sender-side retention window already spans) and re-send
                // base-only.
                Err(WorkerFailure::CorruptRestore { .. }) if !base_only => {
                    base_only = true;
                    log.demote_to_base(v);
                    continue;
                }
                // Even the bare base was rejected: nothing left to restore
                // from — degrade to the sequential simulator.
                Err(WorkerFailure::CorruptRestore { .. }) => return self.degrade(),
                Err(f) => return OpOutcome::Failed(fatal(v as u32, f)),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Wire protocol: frame vocabulary (framing itself lives in super::wire)
// ---------------------------------------------------------------------------

/// Virtual times go on the wire as integers, with the idle sentinel
/// `VTime::MAX` as `null` (it does not fit a JSON int).
fn vtime_json(t: VTime) -> Json {
    if t == VTime::MAX {
        Json::Null
    } else if let Ok(i) = i64::try_from(t) {
        Json::Int(i)
    } else {
        // Virtual times beyond i64 don't occur in practice (they are
        // bounded by cycles × period), but the codec must not silently
        // saturate: fall back to a decimal string.
        Json::Str(t.to_string())
    }
}

fn vtime_from(v: &Json) -> Result<VTime, String> {
    match v {
        Json::Null => Ok(VTime::MAX),
        Json::Str(s) => s
            .parse::<VTime>()
            .map_err(|e| format!("bad vtime string {s:?}: {e}")),
        other => other.as_u64().map_err(|e| e.msg),
    }
}

fn ready_json(lvt: VTime) -> Json {
    ObjBuilder::new()
        .str("kind", "ready")
        .field("lvt", vtime_json(lvt))
        .build()
}

fn ok_json() -> Json {
    ObjBuilder::new().str("kind", "ok").build()
}

fn done_json(lvt: VTime, sends: &[TwMessage]) -> Json {
    ObjBuilder::new()
        .str("kind", "done")
        .field("lvt", vtime_json(lvt))
        .array("sends", sends.iter().map(ToJson::to_json).collect())
        .build()
}

fn state_saving_json(s: StateSaving) -> Json {
    match s {
        StateSaving::IncrementalUndo => ObjBuilder::new().str("kind", "incremental").build(),
        StateSaving::Checkpoint { interval } => ObjBuilder::new()
            .str("kind", "checkpoint")
            .uint("interval", interval as u64)
            .build(),
    }
}

fn state_saving_from_json(v: &Json) -> Result<StateSaving, String> {
    match json_kind(v)? {
        "incremental" => Ok(StateSaving::IncrementalUndo),
        "checkpoint" => Ok(StateSaving::Checkpoint {
            interval: v
                .field("interval")
                .and_then(Json::as_u64)
                .map_err(|e| e.msg)? as u32,
        }),
        other => Err(format!("unknown state-saving kind {other:?}")),
    }
}

fn replay_op_json(op: &ReplayOp) -> Json {
    match *op {
        ReplayOp::Step { limit } => ObjBuilder::new()
            .str("op", "step")
            .field("limit", vtime_json(limit))
            .build(),
        ReplayOp::Deliver(m) => ObjBuilder::new()
            .str("op", "deliver")
            .field("msg", m.to_json())
            .build(),
        ReplayOp::Fossil(gvt) => ObjBuilder::new()
            .str("op", "fossil")
            .field("gvt", vtime_json(gvt))
            .build(),
    }
}

fn replay_op_from_json(v: &Json) -> Result<ReplayOp, String> {
    let err = |e: dvs_json::JsonError| e.msg;
    match v.field("op").and_then(Json::as_str).map_err(err)? {
        "step" => Ok(ReplayOp::Step {
            limit: vtime_from(v.field("limit").map_err(err)?)?,
        }),
        "deliver" => Ok(ReplayOp::Deliver(
            TwMessage::from_json(v.field("msg").map_err(err)?).map_err(err)?,
        )),
        "fossil" => Ok(ReplayOp::Fossil(vtime_from(v.field("gvt").map_err(err)?)?)),
        other => Err(format!("unknown replay op {other:?}")),
    }
}

/// Build the `init` frame: everything a worker needs to rebuild its
/// cluster — the reduced netlist (gate structure only; names, hierarchy
/// and declared delays do not affect the unit-delay simulation), the
/// partition assignment, and the stimulus parameters. The worker reruns
/// [`ClusterPlan::new`] locally, which is deterministic, so both sides
/// derive identical cut channels.
#[allow(clippy::too_many_arguments)]
fn init_json(
    nl: &Netlist,
    plan: &ClusterPlan,
    stim: &VectorStimulus,
    cycles: u64,
    state_saving: StateSaving,
    check: bool,
    cluster: u32,
    label: &str,
) -> Json {
    let opt_net = |n: Option<NetId>| match n {
        Some(id) => Json::Int(id.0 as i64),
        None => Json::Null,
    };
    let gates: Vec<Json> = nl
        .gates
        .iter()
        .map(|g| {
            let mut a = Vec::with_capacity(2 + g.inputs.len());
            a.push(Json::Str(g.kind.name().to_string()));
            a.push(Json::Int(g.output.0 as i64));
            a.extend(g.inputs.iter().map(|n| Json::Int(n.0 as i64)));
            Json::Array(a)
        })
        .collect();
    ObjBuilder::new()
        .str("kind", "init")
        .uint("cluster", cluster as u64)
        .uint("k", plan.k as u64)
        .bool("check", check)
        .str("label", label)
        .uint("cycles", cycles)
        .field("state_saving", state_saving_json(state_saving))
        .uint("nets", nl.net_count() as u64)
        .field("const0", opt_net(nl.const0_net))
        .field("const1", opt_net(nl.const1_net))
        .field(
            "primary_inputs",
            uint_array(
                &nl.primary_inputs
                    .iter()
                    .map(|n| n.0 as u64)
                    .collect::<Vec<_>>(),
            ),
        )
        .array("gates", gates)
        .field(
            "gate_block",
            uint_array(
                &plan
                    .gate_block
                    .iter()
                    .map(|&b| b as u64)
                    .collect::<Vec<_>>(),
            ),
        )
        .field(
            "stim",
            ObjBuilder::new()
                .field(
                    "data_inputs",
                    uint_array(
                        &stim
                            .data_inputs
                            .iter()
                            .map(|n| n.0 as u64)
                            .collect::<Vec<_>>(),
                    ),
                )
                .field("clock", opt_net(stim.clock))
                .uint("period", stim.period)
                .uint("seed", stim.seed)
                .build(),
        )
        .build()
}

/// Everything a worker rebuilds from the `init` frame.
struct WorkerInit {
    netlist: Netlist,
    gate_block: Vec<u32>,
    k: usize,
    cluster: u32,
    check: bool,
    cycles: u64,
    state_saving: StateSaving,
    stim: VectorStimulus,
    label: String,
}

fn worker_init_from_json(v: &Json) -> Result<WorkerInit, String> {
    let err = |e: dvs_json::JsonError| e.msg;
    if json_kind(v)? != "init" {
        return Err(format!(
            "expected an init frame, got kind {:?}",
            json_kind(v)
        ));
    }
    let nets = v.field("nets").and_then(Json::as_usize).map_err(err)?;
    let opt_net = |x: &Json| -> Result<Option<NetId>, String> {
        match x {
            Json::Null => Ok(None),
            other => Ok(Some(NetId(other.as_u64().map_err(err)? as u32))),
        }
    };
    let net_ids = |x: &Json| -> Result<Vec<NetId>, String> {
        Ok(uint_vec(x)
            .map_err(err)?
            .into_iter()
            .map(|n| NetId(n as u32))
            .collect())
    };
    let mut netlist = Netlist {
        nets: (0..nets)
            .map(|_| Net {
                name: String::new(),
                driver: None,
            })
            .collect(),
        ..Netlist::default()
    };
    netlist.const0_net = opt_net(v.field("const0").map_err(err)?)?;
    netlist.const1_net = opt_net(v.field("const1").map_err(err)?)?;
    netlist.primary_inputs = net_ids(v.field("primary_inputs").map_err(err)?)?;
    for (i, g) in v
        .field("gates")
        .and_then(Json::as_array)
        .map_err(err)?
        .iter()
        .enumerate()
    {
        let parts = g.as_array().map_err(err)?;
        if parts.len() < 2 {
            return Err(format!("gate {i}: expected [kind, output, inputs...]"));
        }
        let kind_name = parts[0].as_str().map_err(err)?;
        let kind = GateKind::from_name(kind_name)
            .ok_or_else(|| format!("gate {i}: unknown gate kind {kind_name:?}"))?;
        let output = NetId(parts[1].as_u64().map_err(err)? as u32);
        if output.idx() >= nets {
            return Err(format!("gate {i}: output net {} out of range", output.0));
        }
        let inputs = parts[2..]
            .iter()
            .map(|p| p.as_u64().map(|n| NetId(n as u32)))
            .collect::<Result<Vec<_>, _>>()
            .map_err(err)?;
        if inputs.iter().any(|n| n.idx() >= nets) {
            return Err(format!("gate {i}: input net out of range"));
        }
        netlist.nets[output.idx()].driver = Some(GateId(netlist.gates.len() as u32));
        netlist.gates.push(Gate {
            kind,
            output,
            inputs,
            owner: InstId(0),
            delay: None,
        });
    }
    let gate_block: Vec<u32> = uint_vec(v.field("gate_block").map_err(err)?)
        .map_err(err)?
        .into_iter()
        .map(|b| b as u32)
        .collect();
    if gate_block.len() != netlist.gate_count() {
        return Err("gate_block length does not match the gate count".to_string());
    }
    let k = v.field("k").and_then(Json::as_usize).map_err(err)?;
    if k == 0 || gate_block.iter().any(|&b| (b as usize) >= k) {
        return Err("gate_block assigns a gate to an out-of-range cluster".to_string());
    }
    let cluster = v.field("cluster").and_then(Json::as_u64).map_err(err)? as u32;
    if cluster as usize >= k {
        return Err(format!("cluster {cluster} out of range for k={k}"));
    }
    let s = v.field("stim").map_err(err)?;
    let stim = VectorStimulus {
        data_inputs: net_ids(s.field("data_inputs").map_err(err)?)?,
        clock: opt_net(s.field("clock").map_err(err)?)?,
        period: s.field("period").and_then(Json::as_u64).map_err(err)?,
        seed: s.field("seed").and_then(Json::as_u64).map_err(err)?,
    };
    Ok(WorkerInit {
        netlist,
        gate_block,
        k,
        cluster,
        check: v.field("check").and_then(Json::as_bool).map_err(err)?,
        cycles: v.field("cycles").and_then(Json::as_u64).map_err(err)?,
        state_saving: state_saving_from_json(v.field("state_saving").map_err(err)?)?,
        stim,
        label: v
            .field("label")
            .and_then(Json::as_str)
            .map_err(err)?
            .to_string(),
    })
}

// ---------------------------------------------------------------------------
// Process transport: supervisor side
// ---------------------------------------------------------------------------

/// How long the supervisor waits for a freshly spawned worker to connect.
const SPAWN_TIMEOUT: Duration = Duration::from_secs(10);

/// Wire-level timing knobs shared by every process/TCP worker, resolved
/// once from the run's [`TimeWarpConfig`] (builder knob, then strict env
/// fallback, then default — see [`super::TimeWarpBuilder::io_timeout`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct WireTiming {
    /// Per-response read window. Unix: fatal on expiry (a hung local
    /// child is not crash-stop). TCP: governs only the spawn/handshake
    /// phase; afterwards heartbeat probing takes over.
    pub io: Duration,
    /// Dial-in / reconnect window for the TCP transport.
    pub connect: Duration,
    /// Idle interval between supervisor→worker heartbeat probes (TCP,
    /// post-handshake).
    pub heartbeat: Duration,
    /// Consecutive unanswered probes before the peer is declared lost.
    pub budget: u32,
}

impl WireTiming {
    pub fn from_cfg(cfg: &TimeWarpConfig) -> WireTiming {
        WireTiming {
            io: cfg.io_timeout,
            connect: cfg.connect_timeout,
            heartbeat: cfg.heartbeat_interval,
            budget: cfg.heartbeat_budget,
        }
    }
}

/// Worker-side connect/reconnect window: `DVS_TW_CONNECT_MS`, strictly
/// parsed — a present-but-malformed or zero value is an error, never a
/// silent fallback to the default (the worker has no builder, so the env
/// var is its only knob and a typo must not masquerade as a config).
fn worker_connect_window() -> io::Result<Duration> {
    match std::env::var("DVS_TW_CONNECT_MS") {
        Err(_) => Ok(Duration::from_millis(super::DEFAULT_CONNECT_TIMEOUT_MS)),
        Ok(s) => s
            .parse::<u64>()
            .ok()
            .filter(|&ms| ms > 0)
            .map(Duration::from_millis)
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "DVS_TW_CONNECT_MS must be a positive integer of milliseconds, \
                         got {s:?}"
                    ),
                )
            }),
    }
}

/// The byte stream a worker conversation runs over: the raw socket, or the
/// same socket routed through the deterministic fault-injection shim.
pub(crate) enum Conn {
    Plain(WireStream),
    Chaos(ChaosStream),
}

impl Conn {
    fn wrap(stream: WireStream, chaos: Option<&Rc<RefCell<ClusterChaos>>>) -> Conn {
        match chaos {
            Some(state) => Conn::Chaos(ChaosStream::new(stream, Rc::clone(state))),
            None => Conn::Plain(stream),
        }
    }

    fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Plain(s) => s.try_clone().map(Conn::Plain),
            Conn::Chaos(s) => s.try_clone().map(Conn::Chaos),
        }
    }

    fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Plain(s) => s.set_read_timeout(d),
            Conn::Chaos(s) => s.set_read_timeout(d),
        }
    }

    fn shutdown_both(&self) {
        match self {
            Conn::Plain(s) => s.shutdown_both(),
            Conn::Chaos(s) => s.shutdown_both(),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Plain(s) => s.read(buf),
            Conn::Chaos(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Plain(s) => s.write(buf),
            Conn::Chaos(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Plain(s) => s.flush(),
            Conn::Chaos(s) => s.flush(),
        }
    }
}

/// Locate the worker binary: explicit path, then `DVS_TW_WORKER`, then a
/// `tw_worker` sibling of the current executable (or of its parent
/// directory — test binaries live one level below the build root).
fn resolve_worker(explicit: Option<&Path>) -> Result<PathBuf, String> {
    if let Some(p) = explicit {
        return if p.is_file() {
            Ok(p.to_path_buf())
        } else {
            Err(format!("worker binary {} does not exist", p.display()))
        };
    }
    if let Ok(env) = std::env::var("DVS_TW_WORKER") {
        let p = PathBuf::from(env);
        return if p.is_file() {
            Ok(p)
        } else {
            Err(format!(
                "DVS_TW_WORKER points at {}, which does not exist",
                p.display()
            ))
        };
    }
    if let Ok(exe) = std::env::current_exe() {
        if let Some(dir) = exe.parent() {
            for d in [Some(dir), dir.parent()].into_iter().flatten() {
                let cand = d.join("tw_worker");
                if cand.is_file() {
                    return Ok(cand);
                }
            }
        }
    }
    Err(
        "no tw_worker binary found: pass Transport::Process { worker }, set DVS_TW_WORKER, \
         or place tw_worker next to the current executable"
            .to_string(),
    )
}

static SOCKET_SERIAL: AtomicU64 = AtomicU64::new(0);

fn next_socket_path(cluster: u32) -> PathBuf {
    let serial = SOCKET_SERIAL.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "dvs-tw-{}-{cluster}-{serial}.sock",
        std::process::id()
    ))
}

/// Supervisor side of [`Transport::Tcp`]: the single shared listener every
/// worker dials, plus the per-run token and the parking lot for dial-ins
/// that arrive while the supervisor is waiting on a *different* cluster
/// (TCP gives no ordering across connections, and after a network fault a
/// reconnecting worker can race a respawned one).
pub(crate) struct TcpBroker {
    listener: TcpListener,
    addr: SocketAddr,
    token: String,
    /// Read timeout applied to the hello exchange on a fresh connection —
    /// a dial-in that never completes its hello must not wedge the accept
    /// loop.
    hello_timeout: Duration,
    /// The configured dial-in window, reported in timeout failures (the
    /// caller owns the actual deadline).
    connect_window: Duration,
    /// Parked hello-negotiated connections, keyed by cluster, each with
    /// the `batch` capability its worker hello advertised.
    pending: RefCell<HashMap<u32, (WireStream, bool)>>,
}

impl TcpBroker {
    fn bind(
        listen: &str,
        token: String,
        hello_timeout: Duration,
        connect_window: Duration,
    ) -> Result<Self, String> {
        let listener =
            TcpListener::bind(listen).map_err(|e| format!("bind TCP listener {listen}: {e}"))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("TCP listener address: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("TCP listener nonblocking: {e}"))?;
        Ok(TcpBroker {
            listener,
            addr,
            token,
            hello_timeout,
            connect_window,
            pending: RefCell::new(HashMap::new()),
        })
    }

    /// Wait until a hello-negotiated connection for `cluster` is available:
    /// either already parked from an earlier accept, or a fresh dial-in.
    /// `child` (spawn mode) lets the wait fail fast when the local worker
    /// process died instead of connecting. Dial-ins carrying the wrong
    /// token — strays from another run, port scanners — are dropped
    /// without disturbing the run; a correct-token peer with mismatched
    /// versions is fatal (mixed versions must never exchange state).
    fn accept_for(
        &self,
        cluster: u32,
        deadline: Instant,
        mut child: Option<&mut Child>,
    ) -> Result<(WireStream, bool), WorkerFailure> {
        loop {
            if let Some(s) = self.pending.borrow_mut().remove(&cluster) {
                return Ok(s);
            }
            match self.listener.accept() {
                // greet() returns None for stray peers, dropped quietly.
                Ok((conn, _)) => {
                    if let Some((who, stream, batch)) = self.greet(conn)? {
                        if who == cluster {
                            return Ok((stream, batch));
                        }
                        // Another cluster's worker arrived first; park it
                        // for that cluster's next accept (latest wins — a
                        // re-dial supersedes a stale parked connection).
                        self.pending.borrow_mut().insert(who, (stream, batch));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if let Some(c) = child.as_deref_mut() {
                        if let Some(status) = c.try_wait().ok().flatten() {
                            return Err(WorkerFailure::Lost {
                                detail: format!("worker exited during startup: {status}"),
                            });
                        }
                    }
                    if Instant::now() >= deadline {
                        return Err(WorkerFailure::Timeout {
                            after_ms: self.connect_window.as_millis() as u64,
                        });
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => {
                    return Err(WorkerFailure::Protocol {
                        detail: format!("accept: {e}"),
                    })
                }
            }
        }
    }

    /// Hello exchange on a fresh dial-in. `Ok(Some((cluster, stream,
    /// batch)))` is a negotiated worker with its advertised `msg_batch`
    /// capability; `Ok(None)` a stray to drop (wrong token, malformed
    /// hello, vanished mid-handshake).
    fn greet(&self, conn: TcpStream) -> Result<Option<(u32, WireStream, bool)>, WorkerFailure> {
        let setup = conn
            .set_nodelay(true)
            .and_then(|()| conn.set_nonblocking(false))
            .and_then(|()| conn.set_read_timeout(Some(self.hello_timeout)));
        if setup.is_err() {
            return Ok(None);
        }
        let mut stream = WireStream::Tcp(conn);
        let Ok(mut writer) = stream.try_clone() else {
            return Ok(None);
        };
        // The supervisor speaks first, exactly as on the Unix transport;
        // the worker validates our token before revealing anything.
        if send_json(&mut writer, &hello_json(&self.token, None, true)).is_err() {
            return Ok(None);
        }
        let Ok(Some(bytes)) = read_frame(&mut stream) else {
            return Ok(None);
        };
        let Ok(theirs) = parse_json(&bytes).and_then(|j| hello_parse(&j)) else {
            return Ok(None);
        };
        if theirs.token != self.token {
            return Ok(None);
        }
        if theirs.versions() != (WIRE_VERSION, CHECKPOINT_SCHEMA) {
            return Err(WorkerFailure::Version {
                theirs: theirs.versions(),
            });
        }
        let Some(who) = theirs.cluster else {
            return Err(WorkerFailure::Protocol {
                detail: "TCP worker hello did not declare a cluster".to_string(),
            });
        };
        Ok(Some((who, stream, theirs.batch)))
    }
}

/// Where a [`ProcessWorker`]'s byte stream comes from.
#[derive(Clone)]
enum Link {
    /// Supervisor-owned per-cluster Unix socket; the supervisor spawns the
    /// child with `--socket`.
    Unix { bin: PathBuf },
    /// Shared TCP listener; the worker dials in. `spawn` is the local
    /// binary to launch with `--connect` (None = externally started
    /// workers, the supervisor only waits).
    Tcp {
        broker: Rc<TcpBroker>,
        spawn: Option<PathBuf>,
    },
}

/// A cluster worker living in a separate OS process, driven over a
/// [`WireStream`] — a Unix-domain socket ([`Transport::Process`]) or a TCP
/// connection ([`Transport::Tcp`]). A dead child, a reset connection, or
/// (over TCP) a silent peer surfaces as [`WorkerFailure::Lost`] on the
/// next exchange, which is precisely the crash-stop signal the recovery
/// supervisor consumes.
pub(crate) struct ProcessWorker {
    cluster: u32,
    link: Link,
    init: Json,
    timing: WireTiming,
    /// Shared chaos state for this cluster (frame counters + pending
    /// faults survive reconnects); `None` routes frames straight through.
    chaos: Option<Rc<RefCell<ClusterChaos>>>,
    socket_path: Option<PathBuf>,
    child: Option<Child>,
    reader: Option<FrameSource<io::BufReader<Conn>>>,
    writer: Option<FrameSink<Conn>>,
    last_lvt: VTime,
    /// True once the init handshake completed on the current connection:
    /// TCP read timeouts switch from fatal to heartbeat probing.
    probing: bool,
    corrupt_frames: u64,
    heartbeats_missed: u64,
    /// Whether the current connection's worker hello advertised the
    /// `msg_batch` capability. A pre-batching v3 peer omits the flag and
    /// keeps receiving plain `deliver` frames.
    batch_ok: bool,
    /// Supervisor-side mirror of the worker's per-source stash depth:
    /// how many staged messages from each source the worker still holds.
    /// Dies with the connection (a respawned or reconnected worker has an
    /// empty stash).
    staged: HashMap<u32, u64>,
    messages_sent: u64,
    frames_sent: u64,
}

impl ProcessWorker {
    pub fn new(
        cluster: u32,
        bin: PathBuf,
        init: Json,
        timing: WireTiming,
        chaos: Option<Rc<RefCell<ClusterChaos>>>,
    ) -> Self {
        ProcessWorker {
            cluster,
            link: Link::Unix { bin },
            init,
            timing,
            chaos,
            socket_path: None,
            child: None,
            reader: None,
            writer: None,
            last_lvt: 0,
            probing: false,
            corrupt_frames: 0,
            heartbeats_missed: 0,
            batch_ok: false,
            staged: HashMap::new(),
            messages_sent: 0,
            frames_sent: 0,
        }
    }

    pub fn tcp(
        cluster: u32,
        broker: Rc<TcpBroker>,
        spawn: Option<PathBuf>,
        init: Json,
        timing: WireTiming,
        chaos: Option<Rc<RefCell<ClusterChaos>>>,
    ) -> Self {
        ProcessWorker {
            cluster,
            link: Link::Tcp { broker, spawn },
            init,
            timing,
            chaos,
            socket_path: None,
            child: None,
            reader: None,
            writer: None,
            last_lvt: 0,
            probing: false,
            corrupt_frames: 0,
            heartbeats_missed: 0,
            batch_ok: false,
            staged: HashMap::new(),
            messages_sent: 0,
            frames_sent: 0,
        }
    }

    fn is_tcp(&self) -> bool {
        matches!(self.link, Link::Tcp { .. })
    }

    /// Tear down the byte stream (both directions) without touching the
    /// process. Over TCP this is how the supervisor declares a silent peer
    /// dead, and how a supervisor-side connection reset is injected.
    fn drop_connection(&mut self) {
        if let Some(w) = self.writer.as_ref() {
            w.get_ref().shutdown_both();
        }
        self.reader = None;
        self.writer = None;
        self.probing = false;
        // Staged messages live in the worker's per-connection stash; they
        // die with the stream.
        self.staged.clear();
    }

    /// Spawn (or respawn / await reconnection of) the worker, negotiate
    /// versions, and initialize it. On success `last_lvt` holds the
    /// worker's fresh LVT.
    fn spawn(&mut self) -> Result<(), WorkerFailure> {
        self.kill_child();
        self.probing = false;
        self.batch_ok = false;
        self.staged.clear();
        let proto = |detail: String| WorkerFailure::Protocol { detail };
        let link = self.link.clone();
        // `greeted` marks streams whose hello exchange the broker already
        // completed (TCP); the Unix path negotiates below.
        let (stream, greeted) = match &link {
            Link::Unix { bin } => {
                let path = next_socket_path(self.cluster);
                let _ = std::fs::remove_file(&path);
                let listener = UnixListener::bind(&path)
                    .map_err(|e| proto(format!("bind {}: {e}", path.display())))?;
                listener
                    .set_nonblocking(true)
                    .map_err(|e| proto(format!("listener nonblocking: {e}")))?;
                let child = Command::new(bin)
                    .arg("--socket")
                    .arg(&path)
                    .spawn()
                    .map_err(|e| proto(format!("spawn {}: {e}", bin.display())))?;
                self.child = Some(child);
                self.socket_path = Some(path);
                let deadline = Instant::now() + SPAWN_TIMEOUT;
                let stream = loop {
                    match listener.accept() {
                        Ok((s, _)) => break s,
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            if let Some(status) = self
                                .child
                                .as_mut()
                                .and_then(|c| c.try_wait().ok().flatten())
                            {
                                return Err(WorkerFailure::Lost {
                                    detail: format!("worker exited during startup: {status}"),
                                });
                            }
                            if Instant::now() >= deadline {
                                return Err(WorkerFailure::Timeout {
                                    after_ms: SPAWN_TIMEOUT.as_millis() as u64,
                                });
                            }
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(e) => return Err(proto(format!("accept: {e}"))),
                    }
                };
                stream
                    .set_nonblocking(false)
                    .map_err(|e| proto(format!("stream blocking: {e}")))?;
                (WireStream::Unix(stream), false)
            }
            Link::Tcp { broker, spawn } => {
                if let Some(bin) = spawn {
                    let child = Command::new(bin)
                        .arg("--connect")
                        .arg(broker.addr.to_string())
                        .arg("--cluster")
                        .arg(self.cluster.to_string())
                        .arg("--token")
                        .arg(&broker.token)
                        .spawn()
                        .map_err(|e| proto(format!("spawn {}: {e}", bin.display())))?;
                    self.child = Some(child);
                }
                let deadline = Instant::now() + self.timing.connect;
                let (stream, batch) =
                    broker.accept_for(self.cluster, deadline, self.child.as_mut())?;
                self.batch_ok = batch;
                (stream, true)
            }
        };
        // The whole handshake — hello, init, restore — runs under the
        // plain io window; heartbeat probing only arms once the worker
        // has answered.
        stream
            .set_read_timeout(Some(self.timing.io))
            .map_err(|e| proto(format!("read timeout: {e}")))?;

        let mut stream = stream;
        if !greeted {
            // Version negotiation: the supervisor speaks first; the worker
            // always answers with its own versions so a mismatch is
            // diagnosable on both sides. The hello stays on the legacy
            // 4-byte framing — a v2 peer can parse it, so the pairing
            // fails as a typed mismatch, not a framing error. (The Unix
            // transport carries no token — the per-cluster socket path
            // already scopes the conversation.)
            let mut hello_writer = stream
                .try_clone()
                .map_err(|e| proto(format!("clone stream: {e}")))?;
            send_json(&mut hello_writer, &hello_json("", None, true)).map_err(|e| {
                WorkerFailure::Lost {
                    detail: format!("write failed: {e}"),
                }
            })?;
            let reply = match read_frame(&mut stream) {
                Ok(Some(bytes)) => bytes,
                Ok(None) => {
                    return Err(WorkerFailure::Lost {
                        detail: "socket EOF during hello".to_string(),
                    })
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Err(WorkerFailure::Timeout {
                        after_ms: self.timing.io.as_millis() as u64,
                    })
                }
                Err(e) => {
                    return Err(WorkerFailure::Lost {
                        detail: format!("read failed: {e}"),
                    })
                }
            };
            let theirs = parse_json(&reply)
                .and_then(|j| hello_parse(&j))
                .map_err(|detail| WorkerFailure::Protocol { detail })?;
            if theirs.versions() != (WIRE_VERSION, CHECKPOINT_SCHEMA) {
                return Err(WorkerFailure::Version {
                    theirs: theirs.versions(),
                });
            }
            self.batch_ok = theirs.batch;
        }
        // Past the hello every frame is v3 — checksummed and sequenced —
        // and, when a chaos plan targets this cluster, routed through the
        // fault-injection shim (wrapping re-arms suppressed directions:
        // a reconnect heals a partition or stall).
        let conn = Conn::wrap(stream, self.chaos.as_ref());
        let writer = conn
            .try_clone()
            .map_err(|e| proto(format!("clone stream: {e}")))?;
        self.reader = Some(FrameSource::new(io::BufReader::new(conn)));
        self.writer = Some(FrameSink::new(writer));

        let init = self.init.clone();
        let ready = self.call(&init)?;
        self.last_lvt = self.expect_ready(&ready)?;
        if self.is_tcp() {
            // Handshake complete: arm heartbeat probing. The per-read
            // window drops to the probe interval, so a half-open
            // connection is detected in `budget × interval` instead of
            // hanging for the full io window.
            if let Some(r) = self.reader.as_ref() {
                r.get_ref()
                    .get_ref()
                    .set_read_timeout(Some(self.timing.heartbeat))
                    .map_err(|e| proto(format!("read timeout: {e}")))?;
            }
            self.probing = true;
        }
        Ok(())
    }

    fn send(&mut self, j: &Json) -> Result<(), WorkerFailure> {
        let w = self.writer.as_mut().ok_or_else(|| WorkerFailure::Lost {
            detail: "no connection to worker".to_string(),
        })?;
        w.send_json(j).map_err(|e| WorkerFailure::Lost {
            detail: format!("write failed: {e}"),
        })
    }

    /// Read the next substantive response frame. Heartbeat `pong`s are
    /// consumed transparently. A read timeout on a probing TCP connection
    /// counts one missed beat and sends a `ping`; `heartbeat_budget`
    /// consecutive misses declare the peer lost (half-open connections are
    /// detected in bounded time instead of hanging until `io_timeout`).
    /// A checksum/sequence violation means the stream can no longer be
    /// trusted: count it, drop the connection, and let checkpoint-restore
    /// recovery rebuild the conversation from known-good state.
    fn read_response(&mut self) -> Result<Json, WorkerFailure> {
        let mut misses: u32 = 0;
        loop {
            let r = self.reader.as_mut().ok_or_else(|| WorkerFailure::Lost {
                detail: "no connection to worker".to_string(),
            })?;
            let bytes = match r.recv() {
                Ok(Some(bytes)) => bytes,
                Ok(None) => {
                    return Err(WorkerFailure::Lost {
                        detail: "socket EOF (worker process died)".to_string(),
                    })
                }
                Err(e) if e.timed_out() => {
                    if self.probing {
                        misses += 1;
                        if misses >= self.timing.budget {
                            self.heartbeats_missed += self.timing.budget as u64;
                            self.drop_connection();
                            return Err(WorkerFailure::Lost {
                                detail: format!(
                                    "heartbeat budget exhausted: {} probes over {} ms went \
                                     unanswered; connection dropped (crash-stop)",
                                    self.timing.budget,
                                    self.timing.heartbeat.as_millis() as u64
                                        * self.timing.budget as u64
                                ),
                            });
                        }
                        if self.send(&ok_json_cmd("ping")).is_err() {
                            self.drop_connection();
                            return Err(WorkerFailure::Lost {
                                detail: "connection died during a heartbeat probe".to_string(),
                            });
                        }
                        continue;
                    }
                    return Err(WorkerFailure::Timeout {
                        after_ms: self.timing.io.as_millis() as u64,
                    });
                }
                Err(e) if e.is_corrupt() => {
                    self.corrupt_frames += 1;
                    self.drop_connection();
                    return Err(WorkerFailure::Lost {
                        detail: format!("corrupt frame from worker ({e}); connection dropped"),
                    });
                }
                Err(WireError::Truncated(detail)) => {
                    self.drop_connection();
                    return Err(WorkerFailure::Lost {
                        detail: format!("truncated frame: {detail}"),
                    });
                }
                Err(e) => {
                    return Err(WorkerFailure::Lost {
                        detail: format!("read failed: {e}"),
                    })
                }
            };
            let j = parse_json(&bytes).map_err(|detail| WorkerFailure::Protocol { detail })?;
            match json_kind(&j).map_err(|detail| WorkerFailure::Protocol { detail })? {
                // A pong can interleave with (or precede) any response; it
                // only proves liveness.
                "pong" => {
                    misses = 0;
                    continue;
                }
                "panic" => {
                    return Err(WorkerFailure::Panic {
                        message: j
                            .field("message")
                            .and_then(Json::as_str)
                            .unwrap_or("<no message>")
                            .to_string(),
                    })
                }
                "error" => {
                    return Err(WorkerFailure::Protocol {
                        detail: j
                            .field("detail")
                            .and_then(Json::as_str)
                            .unwrap_or("<no detail>")
                            .to_string(),
                    })
                }
                "restore_corrupt" => {
                    return Err(WorkerFailure::CorruptRestore {
                        detail: j
                            .field("detail")
                            .and_then(Json::as_str)
                            .unwrap_or("<no detail>")
                            .to_string(),
                    })
                }
                _ => return Ok(j),
            }
        }
    }

    /// One command round-trip: a single buffered write, then the response.
    fn call(&mut self, j: &Json) -> Result<Json, WorkerFailure> {
        self.send(j)?;
        self.read_response()
    }

    /// One *supervised* command round-trip. Over TCP a silent remote peer
    /// is indistinguishable from a vanished host (no RST ever arrives
    /// from a powered-off machine); `read_response`'s heartbeat probing
    /// converts that silence into a crash-stop loss, which the recovery
    /// path respawns-or-awaits-reconnect. Over Unix a hung local child is
    /// *not* crash-stop, so the io timeout stays fatal.
    fn command(&mut self, j: &Json) -> Result<Json, WorkerFailure> {
        self.call(j)
    }

    fn expect_kind(&self, j: &Json, want: &str) -> Result<(), WorkerFailure> {
        let kind = json_kind(j).map_err(|detail| WorkerFailure::Protocol { detail })?;
        if kind == want {
            Ok(())
        } else {
            Err(WorkerFailure::Protocol {
                detail: format!("expected a {want:?} frame, got {kind:?}"),
            })
        }
    }

    fn expect_ready(&self, j: &Json) -> Result<VTime, WorkerFailure> {
        self.expect_kind(j, "ready")?;
        j.field("lvt")
            .map_err(|e| WorkerFailure::Protocol { detail: e.msg })
            .and_then(|v| vtime_from(v).map_err(|detail| WorkerFailure::Protocol { detail }))
    }

    /// Parse a `done` response: new LVT plus emitted messages.
    fn expect_done(&self, j: &Json, sends: &mut Vec<TwMessage>) -> Result<VTime, WorkerFailure> {
        self.expect_kind(j, "done")?;
        let proto = |detail: String| WorkerFailure::Protocol { detail };
        let lvt = vtime_from(j.field("lvt").map_err(|e| proto(e.msg))?).map_err(proto)?;
        for m in j
            .field("sends")
            .and_then(Json::as_array)
            .map_err(|e| proto(e.msg))?
        {
            sends.push(TwMessage::from_json(m).map_err(|e| proto(e.msg))?);
        }
        Ok(lvt)
    }

    fn kill_child(&mut self) {
        if let Some(mut child) = self.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        self.reader = None;
        self.writer = None;
        self.probing = false;
        self.staged.clear();
        if let Some(path) = self.socket_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl ClusterWorker for ProcessWorker {
    fn lvt(&mut self) -> Result<VTime, WorkerFailure> {
        Ok(self.last_lvt)
    }

    fn step(&mut self, limit: VTime, sends: &mut Vec<TwMessage>) -> Result<VTime, WorkerFailure> {
        let cmd = ObjBuilder::new()
            .str("kind", "step")
            .field("limit", vtime_json(limit))
            .build();
        let r = self.command(&cmd)?;
        self.expect_done(&r, sends)
    }

    fn deliver(
        &mut self,
        m: TwMessage,
        sends: &mut Vec<TwMessage>,
    ) -> Result<VTime, WorkerFailure> {
        let cmd = ObjBuilder::new()
            .str("kind", "deliver")
            .field("msg", m.to_json())
            .build();
        let r = self.command(&cmd)?;
        let lvt = self.expect_done(&r, sends)?;
        self.messages_sent += 1;
        self.frames_sent += 1;
        Ok(lvt)
    }

    fn deliver_batched(
        &mut self,
        m: TwMessage,
        tail: &[TwMessage],
        sends: &mut Vec<TwMessage>,
    ) -> Result<VTime, WorkerFailure> {
        // Negotiated off (the worker's hello never advertised `batch`):
        // plain one-message delivers, exactly as before batching existed.
        if !self.batch_ok {
            return self.deliver(m, sends);
        }
        let held = self.staged.get(&m.src).copied().unwrap_or(0);
        if held > 0 {
            // The worker already holds `m` at the front of its stash for
            // this source: tell it to apply the next staged message. The
            // (seq, anti) echo lets the worker assert the two sides agree
            // on *which* message that is — any divergence is a protocol
            // bug, and a typed error beats silently diverging state.
            let cmd = ObjBuilder::new()
                .str("kind", "deliver_next")
                .uint("src", m.src as u64)
                .uint("seq", m.seq)
                .bool("anti", m.anti)
                .build();
            let r = self.command(&cmd)?;
            let lvt = self.expect_done(&r, sends)?;
            self.staged.insert(m.src, held - 1);
            Ok(lvt)
        } else {
            // Ship the head plus the channel's committed tail in one
            // frame; the worker applies the head now and stashes the rest
            // for payload-free `deliver_next` commands.
            let mut msgs = Vec::with_capacity(1 + tail.len());
            msgs.push(m.to_json());
            msgs.extend(tail.iter().map(|t| t.to_json()));
            let cmd = ObjBuilder::new()
                .str("kind", "msg_batch")
                .uint("src", m.src as u64)
                .array("msgs", msgs)
                .build();
            let r = self.command(&cmd)?;
            let lvt = self.expect_done(&r, sends)?;
            self.messages_sent += 1 + tail.len() as u64;
            self.frames_sent += 1;
            self.staged.insert(m.src, tail.len() as u64);
            Ok(lvt)
        }
    }

    fn fossil(&mut self, gvt: VTime) -> Result<(), WorkerFailure> {
        let cmd = ObjBuilder::new()
            .str("kind", "fossil")
            .field("gvt", vtime_json(gvt))
            .build();
        let r = self.command(&cmd)?;
        self.expect_kind(&r, "ok")
    }

    fn checkpoint(&mut self, gvt: VTime) -> Result<Checkpoint, WorkerFailure> {
        let cmd = ObjBuilder::new()
            .str("kind", "ckpt")
            .field("gvt", vtime_json(gvt))
            .build();
        let r = self.command(&cmd)?;
        self.expect_kind(&r, "ckpt")?;
        let ck = r
            .field("ck")
            .map_err(|e| WorkerFailure::Protocol { detail: e.msg })?;
        Checkpoint::from_json(ck).map_err(|e| WorkerFailure::Protocol { detail: e.msg })
    }

    fn checkpoint_delta(&mut self, gvt: VTime) -> Result<CheckpointDelta, WorkerFailure> {
        let cmd = ObjBuilder::new()
            .str("kind", "ckpt_delta")
            .field("gvt", vtime_json(gvt))
            .build();
        let r = self.command(&cmd)?;
        self.expect_kind(&r, "ckpt_delta")?;
        let d = r
            .field("delta")
            .map_err(|e| WorkerFailure::Protocol { detail: e.msg })?;
        CheckpointDelta::from_json(d).map_err(|e| WorkerFailure::Protocol { detail: e.msg })
    }

    fn respawn(
        &mut self,
        base: &Checkpoint,
        deltas: &[CheckpointDelta],
        ops: &[ReplayOp],
    ) -> Result<VTime, WorkerFailure> {
        // Over TCP a respawn that times out (the replacement never dials
        // in, or a remote worker never reconnects) is itself a crash-stop
        // loss: each failed attempt burns one unit of the restart budget,
        // so a vanished remote degrades the run to the sequential
        // simulator instead of hanging or erroring out.
        let tcp = self.is_tcp();
        let remap = |f: WorkerFailure| match f {
            WorkerFailure::Timeout { after_ms } if tcp => WorkerFailure::Lost {
                detail: format!("worker did not (re)connect within {after_ms} ms"),
            },
            other => other,
        };
        self.spawn().map_err(remap)?;
        let cmd = ObjBuilder::new()
            .str("kind", "restore")
            .field("ck", base.to_json())
            .array("deltas", deltas.iter().map(|d| d.to_json()).collect())
            .array("ops", ops.iter().map(replay_op_json).collect())
            .build();
        let r = self.command(&cmd)?;
        self.last_lvt = self.expect_ready(&r)?;
        Ok(self.last_lvt)
    }

    fn check_quiescence(&mut self) -> Result<(), WorkerFailure> {
        let r = self.command(&ok_json_cmd("quiesce"))?;
        self.expect_kind(&r, "ok")
    }

    fn finish(&mut self) -> Result<(SimStats, Vec<Logic>), WorkerFailure> {
        let r = self.command(&ok_json_cmd("finish"))?;
        self.expect_kind(&r, "finished")?;
        let proto = |detail: String| WorkerFailure::Protocol { detail };
        let stats = SimStats::from_json(r.field("stats").map_err(|e| proto(e.msg))?)
            .map_err(|e| proto(e.msg))?;
        let values =
            logic_vec(r.field("values").map_err(|e| proto(e.msg))?).map_err(|e| proto(e.msg))?;
        Ok((stats, values))
    }

    fn inject_crash(&mut self) {
        // Over TCP, `DVS_TW_TCP_FAULT=reset` injects a supervisor-side
        // connection reset instead of a process kill: the stream is shut
        // down in both directions and dropped while the worker process
        // stays up. The worker observes EOF and exits (crash-stop from its
        // side); the supervisor's next exchange fails as `Lost` and the
        // stale incarnation is reaped by the next spawn. This is the
        // network-partition shape of a fault, as opposed to the host-death
        // shape below.
        if self.is_tcp() && std::env::var("DVS_TW_TCP_FAULT").as_deref() == Ok("reset") {
            self.drop_connection();
            return;
        }
        // A real SIGKILL, then observe the death the way a genuine crash
        // would surface: drain the socket to EOF before dropping it.
        if let Some(child) = self.child.as_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
        if let Some(r) = self.reader.as_mut() {
            while let Ok(Some(_)) = r.recv() {}
        }
        self.kill_child();
    }

    fn kill(&mut self) {
        self.kill_child();
    }

    fn wire_counters(&self) -> WireCounters {
        WireCounters {
            corrupt_frames: self.corrupt_frames,
            heartbeats_missed: self.heartbeats_missed,
            chaos_faults_injected: self.chaos.as_ref().map_or(0, |c| c.borrow().fired()),
            messages_sent: self.messages_sent,
            frames_sent: self.frames_sent,
        }
    }
}

impl Drop for ProcessWorker {
    fn drop(&mut self) {
        self.kill_child();
    }
}

/// A bare `{"kind": <kind>}` command frame.
fn ok_json_cmd(kind: &str) -> Json {
    ObjBuilder::new().str("kind", kind).build()
}

/// Run the Time Warp kernel with one OS process per cluster.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_process(
    nl: &Netlist,
    plan: &ClusterPlan,
    stim: &VectorStimulus,
    cycles: u64,
    cfg: &TimeWarpConfig,
    seed: u64,
    policy: &SchedulePolicy,
    worker_bin: Option<&Path>,
) -> Result<TwRunResult, TimeWarpError> {
    let check = cfg!(debug_assertions);
    // Same label as the in-proc executor: assertions and artifacts must
    // not depend on the transport.
    let label = format!("seed {seed}, schedule {policy:?}");
    let bin =
        resolve_worker(worker_bin).map_err(|reason| TimeWarpError::InvalidConfig { reason })?;
    let timing = WireTiming::from_cfg(cfg);
    let chaos_plan = cfg.chaos.clone().unwrap_or_default();
    let mut schedule = policy.build(seed);
    let mut workers: Vec<ProcessWorker> = (0..plan.k)
        .map(|me| {
            ProcessWorker::new(
                me as u32,
                bin.clone(),
                init_json(
                    nl,
                    plan,
                    stim,
                    cycles,
                    cfg.state_saving,
                    check,
                    me as u32,
                    &label,
                ),
                timing,
                (!chaos_plan.is_empty()).then(|| chaos_plan.for_cluster(me as u32)),
            )
        })
        .collect();
    for w in &mut workers {
        let cluster = w.cluster;
        w.spawn().map_err(|f| fatal(cluster, f))?;
    }
    run_supervisor(
        nl,
        plan,
        stim,
        cycles,
        cfg,
        schedule.as_mut(),
        check,
        &label,
        &mut workers,
        true,
    )
}

/// Run the Time Warp kernel with workers dialing in over TCP. The
/// supervisor binds `listen`, mints a per-run token, and either spawns
/// local `tw_worker --connect` children ([`TcpWorkers::Spawn`]) or waits
/// for externally started ones ([`TcpWorkers::External`], printing the
/// address + token on stderr so the operator can start them).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_tcp(
    nl: &Netlist,
    plan: &ClusterPlan,
    stim: &VectorStimulus,
    cycles: u64,
    cfg: &TimeWarpConfig,
    seed: u64,
    policy: &SchedulePolicy,
    listen: &str,
    tcp_workers: &TcpWorkers,
) -> Result<TwRunResult, TimeWarpError> {
    let check = cfg!(debug_assertions);
    // Same label as the in-proc executor: assertions and artifacts must
    // not depend on the transport.
    let label = format!("seed {seed}, schedule {policy:?}");
    let invalid = |reason: String| TimeWarpError::InvalidConfig { reason };
    let spawn_bin = match tcp_workers {
        TcpWorkers::Spawn { worker } => Some(resolve_worker(worker.as_deref()).map_err(invalid)?),
        TcpWorkers::External => None,
    };
    let timing = WireTiming::from_cfg(cfg);
    let chaos_plan = cfg.chaos.clone().unwrap_or_default();
    let broker =
        Rc::new(TcpBroker::bind(listen, run_token(), timing.io, timing.connect).map_err(invalid)?);
    if spawn_bin.is_none() {
        // Externally started workers need the resolved address (port 0
        // picks one at bind time) and the run token.
        eprintln!(
            "tw supervisor listening on {addr}; start {k} workers with: \
             tw_worker --connect {addr} --cluster <0..{k}> --token {token}",
            addr = broker.addr,
            k = plan.k,
            token = broker.token,
        );
    }
    let mut schedule = policy.build(seed);
    let mut workers: Vec<ProcessWorker> = (0..plan.k)
        .map(|me| {
            ProcessWorker::tcp(
                me as u32,
                Rc::clone(&broker),
                spawn_bin.clone(),
                init_json(
                    nl,
                    plan,
                    stim,
                    cycles,
                    cfg.state_saving,
                    check,
                    me as u32,
                    &label,
                ),
                timing,
                (!chaos_plan.is_empty()).then(|| chaos_plan.for_cluster(me as u32)),
            )
        })
        .collect();
    for w in &mut workers {
        let cluster = w.cluster;
        w.spawn().map_err(|f| fatal(cluster, f))?;
    }
    run_supervisor(
        nl,
        plan,
        stim,
        cycles,
        cfg,
        schedule.as_mut(),
        check,
        &label,
        &mut workers,
        true,
    )
}

// ---------------------------------------------------------------------------
// Process transport: worker side
// ---------------------------------------------------------------------------

/// Entry point for the `tw_worker` binary: connect back to the supervisor's
/// socket and serve one cluster until the supervisor says `finish` (or the
/// connection closes).
///
/// Protocol (all frames are `u32`-LE length-prefixed compact JSON):
///
/// 1. supervisor sends `hello` (wire + checkpoint schema versions);
/// 2. worker always replies with its own `hello`, then exits quietly on a
///    mismatch — the supervisor owns the error report;
/// 3. supervisor sends `init` (netlist + gate block + stimulus + config);
///    worker replies `ready` with its LVT;
/// 4. command loop: `step`/`deliver` → `done`, `fossil`/`quiesce` → `ok`,
///    `ckpt` → `ckpt`, `restore` → `ready`, `finish` → `finished`.
///
/// Worker panics inside a command are caught and shipped back as a typed
/// `panic` frame so the supervisor can raise
/// [`TimeWarpError::WorkerPanic`] instead of seeing an opaque dead socket.
pub fn serve_worker(socket: &Path) -> io::Result<()> {
    let stream = UnixStream::connect(socket)?;
    // The Unix transport carries no token: the per-cluster socket path
    // already scopes the conversation, and the supervisor sends "".
    serve_wire(WireStream::Unix(stream), None, "")
}

/// TCP entry point for the `tw_worker` binary: dial the supervisor at
/// `addr` (retrying refused connections with jittered doubling backoff
/// until `DVS_TW_CONNECT_MS` elapses — the supervisor may not have reached
/// this cluster's accept yet, or the worker may be reconnecting after a
/// network fault) and serve `cluster` until `finish` or EOF. The backoff
/// jitter is deterministic, seeded from the run token and cluster id, so a
/// cluster-wide reconnect storm de-synchronises reproducibly instead of
/// hammering the listener in lockstep. The hello exchange presents
/// `token`; a supervisor with a different token (another run) is abandoned
/// quietly.
pub fn serve_worker_tcp(addr: &str, cluster: u32, token: &str) -> io::Result<()> {
    let deadline = Instant::now() + worker_connect_window()?;
    let mut jitter = DialJitter::new(token, cluster);
    let base = Duration::from_millis(10);
    let cap = Duration::from_millis(500);
    let mut delay = base;
    let stream = loop {
        match TcpStream::connect(addr) {
            Ok(s) => break s,
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(e);
                }
                std::thread::sleep(delay);
                delay = jitter.next_delay(delay, base, cap);
            }
        }
    };
    stream.set_nodelay(true)?;
    serve_wire(WireStream::Tcp(stream), Some(cluster), token)
}

/// Map a framing error to `io::Error` for the worker's `io::Result` entry
/// points (integrity violations become `InvalidData`).
fn wire_io(e: WireError) -> io::Error {
    match e {
        WireError::Io(e) => e,
        other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
    }
}

/// Worker-side read: a clean EOF ends the session, and so does an
/// integrity violation — a worker that can no longer trust its inbound
/// stream hangs up and lets the supervisor's recovery path observe the
/// loss and restore from checkpoint. Only genuine I/O errors escape.
fn worker_recv(source: &mut FrameSource<io::BufReader<WireStream>>) -> io::Result<Option<Vec<u8>>> {
    match source.recv() {
        Ok(frame) => Ok(frame),
        Err(WireError::Io(e)) => Err(e),
        Err(_corrupt_or_truncated) => Ok(None),
    }
}

fn serve_wire(stream: WireStream, identity: Option<u32>, token: &str) -> io::Result<()> {
    // Frames are built whole before hitting the socket, so the raw stream
    // needs no write-side buffering of its own.
    let mut writer = stream.try_clone()?;
    let mut reader = io::BufReader::new(stream);

    // Version + token negotiation: read the supervisor's hello, always
    // answer with ours (both sides can then diagnose a mismatch), bail
    // quietly if the versions or tokens differ — on a version mismatch the
    // supervisor raises the typed error; on a token mismatch this worker
    // simply dialed the wrong run and must not disturb it. Hellos stay on
    // the legacy length-only framing permanently so any wire version can
    // parse the other side's greeting before negotiation completes.
    let hello = match read_frame(&mut reader)? {
        Some(bytes) => bytes,
        None => return Ok(()),
    };
    // Advertise the `msg_batch` capability — unless the `DVS_TW_NO_BATCH`
    // test hook simulates a pre-batching v3 peer, whose hello simply
    // lacks the flag (negotiation then keeps the supervisor on plain
    // `deliver` frames).
    let advertise_batch = std::env::var_os("DVS_TW_NO_BATCH").is_none();
    send_json(&mut writer, &hello_json(token, identity, advertise_batch))?;
    let theirs = parse_json(&hello)
        .and_then(|j| hello_parse(&j))
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    if theirs.versions() != (WIRE_VERSION, CHECKPOINT_SCHEMA) {
        return Ok(());
    }
    if theirs.token != token {
        return Ok(());
    }

    // Everything after the hello rides the checksummed v3 framing.
    let mut source = FrameSource::new(reader);
    let mut sink = FrameSink::new(writer);
    let init = match worker_recv(&mut source)? {
        Some(bytes) => bytes,
        None => return Ok(()),
    };
    let init = match parse_json(&init).and_then(|j| worker_init_from_json(&j)) {
        Ok(init) => init,
        Err(detail) => {
            sink.send_json(
                &ObjBuilder::new()
                    .str("kind", "error")
                    .str("detail", &detail)
                    .build(),
            )
            .map_err(wire_io)?;
            return Ok(());
        }
    };
    serve_cluster(init, source, sink)
}

/// Parse `DVS_TW_SELFKILL=<cluster>:<after>` — a test hook that makes this
/// worker abort (SIGABRT, no unwinding, no reply frame) immediately before
/// dispatching its `<after>`-th command. Exercises asynchronous worker
/// death at a point the supervisor did not choose.
fn selfkill_budget(cluster: u32) -> Option<u64> {
    let spec = std::env::var("DVS_TW_SELFKILL").ok()?;
    let (c, after) = spec.split_once(':')?;
    if c.parse::<u32>().ok()? != cluster {
        return None;
    }
    after.parse::<u64>().ok()
}

fn serve_cluster(
    init: WorkerInit,
    mut source: FrameSource<io::BufReader<WireStream>>,
    mut sink: FrameSink<WireStream>,
) -> io::Result<()> {
    let WorkerInit {
        netlist,
        gate_block,
        k,
        cluster,
        check,
        cycles,
        state_saving,
        stim,
        label,
    } = init;
    let plan = ClusterPlan::new(&netlist, &gate_block, k);
    let mut proc = Some(ClusterProcess::new(
        &netlist,
        &plan,
        cluster,
        stim.clone(),
        cycles,
        state_saving,
    ));
    sink.send_json(&ready_json(lvt_of(&mut proc)))
        .map_err(wire_io)?;
    let mut selfkill = selfkill_budget(cluster);
    // Reference image for delta capture: the last full or reconstructed
    // checkpoint this incarnation produced or was restored from.
    let mut prev_ckpt: Option<Checkpoint> = None;
    // Staged messages from `msg_batch` frames, FIFO per source channel,
    // applied one at a time by `deliver_next` commands. Connection-local
    // by construction: a respawned or reconnected worker starts empty,
    // mirroring the supervisor's cleared staging mirror.
    let mut stash: HashMap<u32, VecDeque<TwMessage>> = HashMap::new();

    loop {
        let bytes = match worker_recv(&mut source)? {
            Some(bytes) => bytes,
            None => return Ok(()), // supervisor went away — crash-stop too
        };
        let cmd = match parse_json(&bytes) {
            Ok(cmd) => cmd,
            Err(detail) => {
                sink.send_json(
                    &ObjBuilder::new()
                        .str("kind", "error")
                        .str("detail", &detail)
                        .build(),
                )
                .map_err(wire_io)?;
                return Ok(());
            }
        };
        // Heartbeat probes are liveness traffic, not simulation commands:
        // answer before the self-kill hook so an idle-but-probed worker
        // burns its crash budget on real work, deterministically.
        if json_kind(&cmd) == Ok("ping") {
            sink.send_json(&ObjBuilder::new().str("kind", "pong").build())
                .map_err(wire_io)?;
            continue;
        }
        if let Some(left) = selfkill.as_mut() {
            if *left <= 1 {
                // Die exactly like SIGKILL would: no unwinding, no drops,
                // no farewell frame.
                std::process::abort();
            }
            *left -= 1;
        }
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dispatch(
                &cmd,
                &netlist,
                &plan,
                &stim,
                cycles,
                state_saving,
                check,
                &label,
                cluster,
                &mut proc,
                &mut selfkill,
                &mut prev_ckpt,
                &mut stash,
            )
        }));
        match outcome {
            Ok(Ok(Some(reply))) => {
                // `finish` wraps its reply so the loop knows to answer and
                // then hang up cleanly.
                if json_kind(&reply) == Ok("finished-wrap") {
                    let inner = reply
                        .field("inner")
                        .expect("finished-wrap frames carry an inner reply");
                    sink.send_json(inner).map_err(wire_io)?;
                    return Ok(());
                }
                sink.send_json(&reply).map_err(wire_io)?
            }
            Ok(Ok(None)) => return Ok(()),
            Ok(Err(detail)) => {
                sink.send_json(
                    &ObjBuilder::new()
                        .str("kind", "error")
                        .str("detail", &detail)
                        .build(),
                )
                .map_err(wire_io)?;
                return Ok(());
            }
            Err(payload) => {
                sink.send_json(
                    &ObjBuilder::new()
                        .str("kind", "panic")
                        .str("message", &panic_message(payload.as_ref()))
                        .build(),
                )
                .map_err(wire_io)?;
                return Ok(());
            }
        }
    }
}

fn lvt_of(proc: &mut Option<ClusterProcess<'_, '_>>) -> VTime {
    proc.as_mut().map_or(VTime::MAX, ClusterProcess::lvt)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Execute one supervisor command against the local cluster process.
/// `Ok(Some(reply))` answers and continues, `Ok(None)` is a clean `finish`,
/// `Err(detail)` is a protocol error (reply + hang up).
#[allow(clippy::too_many_arguments)]
fn dispatch<'nl, 'p>(
    cmd: &Json,
    nl: &'nl Netlist,
    plan: &'p ClusterPlan,
    stim: &VectorStimulus,
    cycles: u64,
    state_saving: StateSaving,
    check: bool,
    label: &str,
    cluster: u32,
    proc: &mut Option<ClusterProcess<'nl, 'p>>,
    selfkill: &mut Option<u64>,
    prev_ckpt: &mut Option<Checkpoint>,
    stash: &mut HashMap<u32, VecDeque<TwMessage>>,
) -> Result<Option<Json>, String>
where
    'nl: 'p,
{
    let kind = json_kind(cmd)?;
    let live = |p: &mut Option<ClusterProcess<'nl, 'p>>| -> Result<(), String> {
        if p.is_none() {
            return Err(format!("command {kind:?} after finish"));
        }
        Ok(())
    };
    match kind {
        "step" => {
            live(proc)?;
            let limit = vtime_from(cmd.field("limit").map_err(|e| e.msg)?)?;
            let p = proc.as_mut().expect("live() checked presence");
            let mut sends = Vec::new();
            p.process_next_epoch(limit, &mut |m: TwMessage| sends.push(m));
            Ok(Some(done_json(p.lvt(), &sends)))
        }
        "deliver" => {
            live(proc)?;
            let m =
                TwMessage::from_json(cmd.field("msg").map_err(|e| e.msg)?).map_err(|e| e.msg)?;
            let p = proc.as_mut().expect("live() checked presence");
            let mut sends = Vec::new();
            p.handle_message(m, &mut |m: TwMessage| sends.push(m));
            Ok(Some(done_json(p.lvt(), &sends)))
        }
        "msg_batch" => {
            live(proc)?;
            let src = cmd.field("src").and_then(Json::as_u64).map_err(|e| e.msg)? as u32;
            let msgs = cmd
                .field("msgs")
                .and_then(Json::as_array)
                .map_err(|e| e.msg)?;
            if msgs.is_empty() {
                return Err("msg_batch with no messages".to_string());
            }
            // Reject an oversized batch from its declared length, before
            // materializing a single message out of it.
            if msgs.len() > MAX_BATCH_MSGS {
                return Err(format!(
                    "msg_batch of {} messages exceeds the cap of {MAX_BATCH_MSGS}",
                    msgs.len()
                ));
            }
            if stash.get(&src).is_some_and(|q| !q.is_empty()) {
                return Err(format!(
                    "msg_batch for source {src} while staged messages remain"
                ));
            }
            let mut parsed = Vec::with_capacity(msgs.len());
            for m in msgs {
                let m = TwMessage::from_json(m).map_err(|e| e.msg)?;
                if m.src != src || m.dst != cluster {
                    return Err(format!(
                        "msg_batch message {}->{} does not belong to channel {src}->{cluster}",
                        m.src, m.dst
                    ));
                }
                parsed.push(m);
            }
            // Apply the head exactly as a plain deliver would; stage the
            // FIFO tail for payload-free `deliver_next` commands.
            let mut it = parsed.into_iter();
            let head = it.next().expect("non-empty batch checked above");
            stash.entry(src).or_default().extend(it);
            let p = proc.as_mut().expect("live() checked presence");
            let mut sends = Vec::new();
            p.handle_message(head, &mut |m: TwMessage| sends.push(m));
            Ok(Some(done_json(p.lvt(), &sends)))
        }
        "deliver_next" => {
            live(proc)?;
            let src = cmd.field("src").and_then(Json::as_u64).map_err(|e| e.msg)? as u32;
            let seq = cmd.field("seq").and_then(Json::as_u64).map_err(|e| e.msg)?;
            let anti = cmd
                .field("anti")
                .and_then(Json::as_bool)
                .map_err(|e| e.msg)?;
            let m = stash
                .get_mut(&src)
                .and_then(VecDeque::pop_front)
                .ok_or_else(|| format!("deliver_next for source {src} with an empty stash"))?;
            // The supervisor echoes which message it believes is next on
            // the channel; a mismatch means the two sides' FIFO views
            // diverged, and a typed error beats silently corrupting state.
            if m.seq != seq || m.anti != anti {
                return Err(format!(
                    "deliver_next desync on channel {src}->{cluster}: supervisor expects \
                     seq {seq} (anti {anti}), stash head is seq {} (anti {})",
                    m.seq, m.anti
                ));
            }
            let p = proc.as_mut().expect("live() checked presence");
            let mut sends = Vec::new();
            p.handle_message(m, &mut |m: TwMessage| sends.push(m));
            Ok(Some(done_json(p.lvt(), &sends)))
        }
        "fossil" => {
            live(proc)?;
            let gvt = vtime_from(cmd.field("gvt").map_err(|e| e.msg)?)?;
            let p = proc.as_mut().expect("live() checked presence");
            let before = check.then(|| p.history_at_or_after(gvt));
            p.fossil_collect(gvt);
            if let Some(before) = before {
                let after = p.history_at_or_after(gvt);
                assert_eq!(
                    before, after,
                    "fossil collection on cluster {cluster} reclaimed history at or above \
                     GVT {gvt} ({label})"
                );
            }
            Ok(Some(ok_json()))
        }
        "ckpt" => {
            live(proc)?;
            let gvt = vtime_from(cmd.field("gvt").map_err(|e| e.msg)?)?;
            let p = proc.as_ref().expect("live() checked presence");
            let ck = p.checkpoint(gvt);
            let reply = ObjBuilder::new()
                .str("kind", "ckpt")
                .field("ck", ck.to_json())
                .build();
            // A base capture resets the delta chain: the next `ckpt_delta`
            // encodes edits against this image.
            *prev_ckpt = Some(ck);
            Ok(Some(reply))
        }
        "ckpt_delta" => {
            live(proc)?;
            let gvt = vtime_from(cmd.field("gvt").map_err(|e| e.msg)?)?;
            let prev = prev_ckpt
                .as_ref()
                .ok_or_else(|| "ckpt_delta before any base checkpoint".to_string())?;
            let p = proc.as_ref().expect("live() checked presence");
            let next = p.checkpoint(gvt);
            let delta = CheckpointDelta::between(prev, &next);
            *prev_ckpt = Some(next);
            Ok(Some(
                ObjBuilder::new()
                    .str("kind", "ckpt_delta")
                    .field("delta", delta.to_json())
                    .build(),
            ))
        }
        "restore" => {
            let base =
                Checkpoint::from_json(cmd.field("ck").map_err(|e| e.msg)?).map_err(|e| e.msg)?;
            // Pre-delta supervisors (schema 1) sent no `deltas` key; the
            // hello handshake rejects those pairings, but tolerate an
            // absent key as an empty chain so the frame shape stays simple.
            let mut deltas = Vec::new();
            if let Some(list) = cmd.get("deltas") {
                for d in list.as_array().map_err(|e| e.msg)? {
                    deltas.push(CheckpointDelta::from_json(d).map_err(|e| e.msg)?);
                }
            }
            let mut ops = Vec::new();
            for op in cmd
                .field("ops")
                .and_then(Json::as_array)
                .map_err(|e| e.msg)?
            {
                ops.push(replay_op_from_json(op)?);
            }
            let (mut p, image) = match ClusterProcess::from_chain(
                nl,
                plan,
                stim.clone(),
                cycles,
                state_saving,
                &base,
                &deltas,
            ) {
                Ok(pair) => pair,
                // Integrity failures in the shipped chain are recoverable
                // on the supervisor side (it falls back to the last full
                // base), so answer with a typed frame and keep serving on
                // this connection instead of hanging up.
                Err(e @ (DeltaError::Corrupt(_) | DeltaError::ChainMismatch { .. })) => {
                    return Ok(Some(
                        ObjBuilder::new()
                            .str("kind", "restore_corrupt")
                            .str("detail", &format!("restore chain rejected: {e}"))
                            .build(),
                    ));
                }
                Err(other) => return Err(format!("restore chain rejected: {other}")),
            };
            replay_ops(&mut p, &ops);
            let lvt = p.lvt();
            *proc = Some(p);
            *prev_ckpt = Some(image);
            // A restored worker is a fresh process as far as the fault
            // model is concerned; it must not re-arm the self-kill hook.
            *selfkill = None;
            // Staged messages belong to the pre-restore incarnation; the
            // supervisor re-offers them from its (never-popped-early)
            // channel queues. In practice a restore always arrives on a
            // fresh connection with an empty stash — this is defense in
            // depth.
            stash.clear();
            Ok(Some(ready_json(lvt)))
        }
        "quiesce" => {
            live(proc)?;
            if check {
                let p = proc.as_mut().expect("live() checked presence");
                quiescence_asserts(p, cluster, label);
            }
            Ok(Some(ok_json()))
        }
        "finish" => {
            live(proc)?;
            let mut p = proc.take().expect("live() checked presence");
            let stats = p.take_stats();
            let values = p.into_values();
            // Answer, then let the caller hang up.
            let reply = ObjBuilder::new()
                .str("kind", "finished")
                .field("stats", stats.to_json())
                .str("values", &logic_str(&values))
                .build();
            send_reply_and_stop(reply)
        }
        other => Err(format!("unknown command kind {other:?}")),
    }
}

/// `finish` both replies and terminates the loop; model that as a reply the
/// caller must send before returning `Ok(None)`. Implemented as a tiny
/// shim so `dispatch` keeps a single return type.
fn send_reply_and_stop(reply: Json) -> Result<Option<Json>, String> {
    // Encode "reply then stop" as a special frame the serve loop unpacks.
    Ok(Some(
        ObjBuilder::new()
            .str("kind", "finished-wrap")
            .field("inner", reply)
            .build(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vtime_sentinel_round_trips() {
        for t in [0, 1, 42, VTime::MAX - 1, VTime::MAX] {
            let j = vtime_json(t);
            assert_eq!(vtime_from(&j).expect("round trip"), t);
        }
        assert_eq!(vtime_json(VTime::MAX), Json::Null);
    }

    #[test]
    fn state_saving_round_trips() {
        for s in [
            StateSaving::IncrementalUndo,
            StateSaving::Checkpoint { interval: 7 },
        ] {
            let j = state_saving_json(s);
            assert_eq!(state_saving_from_json(&j).expect("round trip"), s);
        }
    }

    #[test]
    fn replay_ops_round_trip() {
        let ops = [
            ReplayOp::Step { limit: VTime::MAX },
            ReplayOp::Step { limit: 16 },
            ReplayOp::Deliver(TwMessage {
                src: 1,
                dst: 0,
                seq: 4,
                ev: crate::wheel::NetEvent {
                    time: 9,
                    net: dvs_verilog::netlist::NetId(3),
                    value: Logic::One,
                },
                anti: false,
            }),
            ReplayOp::Fossil(VTime::MAX),
        ];
        for op in &ops {
            let j = replay_op_json(op);
            assert_eq!(&replay_op_from_json(&j).expect("round trip"), op);
        }
    }

    #[test]
    fn hello_mismatch_shuts_the_worker_down_quietly() {
        // Both directions of skew: a future supervisor with a newer wire
        // version, and a stale v2 supervisor predating checksummed frames.
        // Hellos stay on the legacy length-only framing precisely so this
        // exchange parses on both sides regardless of version.
        for wire in [WIRE_VERSION + 1, WIRE_VERSION - 1] {
            let (sup, worker) = UnixStream::pair().expect("socketpair");
            let handle = std::thread::spawn(move || serve_wire(WireStream::Unix(worker), None, ""));

            let mut writer = sup.try_clone().expect("clone");
            let mut reader = io::BufReader::new(sup);
            let bad_hello = ObjBuilder::new()
                .str("kind", "hello")
                .uint("wire", wire as u64)
                .uint("checkpoint_schema", CHECKPOINT_SCHEMA as u64)
                .build();
            send_json(&mut writer, &bad_hello).expect("send hello");

            // The worker still answers with its own hello…
            let reply = read_frame(&mut reader)
                .expect("read")
                .expect("worker hello");
            let reply = hello_parse(&parse_json(&reply).expect("parse")).expect("hello");
            assert_eq!(reply.versions(), (WIRE_VERSION, CHECKPOINT_SCHEMA));
            // …then hangs up instead of serving commands.
            assert_eq!(read_frame(&mut reader).expect("clean eof"), None);
            handle.join().expect("join").expect("serve_wire exits Ok");
        }
    }

    /// A worker dialed into the wrong run (the supervisor's hello carries
    /// a different token) answers the hello, then exits quietly instead of
    /// serving — it must not disturb a run it does not belong to.
    #[test]
    fn token_mismatch_shuts_the_worker_down_quietly() {
        let (sup, worker) = UnixStream::pair().expect("socketpair");
        let handle =
            std::thread::spawn(move || serve_wire(WireStream::Unix(worker), Some(0), "right"));

        let mut writer = sup.try_clone().expect("clone");
        let mut reader = io::BufReader::new(sup);
        send_json(&mut writer, &hello_json("wrong", None, false)).expect("send hello");

        let reply = read_frame(&mut reader)
            .expect("read")
            .expect("worker hello");
        let reply = hello_parse(&parse_json(&reply).expect("parse")).expect("hello");
        assert_eq!(reply.token, "right");
        assert_eq!(reply.cluster, Some(0));
        assert_eq!(read_frame(&mut reader).expect("clean eof"), None);
        handle.join().expect("join").expect("serve_wire exits Ok");
    }

    /// A worker dials the broker presenting `token` for `cluster`, speaking
    /// the protocol (read supervisor hello first, then answer).
    fn dial(addr: SocketAddr, token: &str, cluster: u32) -> std::thread::JoinHandle<WireStream> {
        let token = token.to_string();
        std::thread::spawn(move || {
            let conn = TcpStream::connect(addr).expect("connect");
            let mut stream = WireStream::Tcp(conn);
            let mut writer = stream.try_clone().expect("clone");
            let _sup_hello = read_frame(&mut stream).expect("read").expect("sup hello");
            send_json(&mut writer, &hello_json(&token, Some(cluster), true)).expect("send hello");
            stream
        })
    }

    /// The broker drops a wrong-token dial-in without disturbing the run,
    /// then matches the correct-token worker to its cluster.
    #[test]
    fn broker_ignores_strays_and_matches_by_cluster() {
        let broker = TcpBroker::bind(
            "127.0.0.1:0",
            "good-token".to_string(),
            Duration::from_millis(2_000),
            Duration::from_millis(2_000),
        )
        .expect("bind");
        let stray = dial(broker.addr, "evil-token", 0);
        // Give the stray a head start so the broker meets it first. (The
        // dialers block reading the supervisor hello, so they are joined
        // only after accept_for has greeted them.)
        std::thread::sleep(Duration::from_millis(50));
        let genuine = dial(broker.addr, "good-token", 0);
        let deadline = Instant::now() + Duration::from_secs(5);
        let (got, batch) = broker.accept_for(0, deadline, None).expect("accept");
        assert!(batch, "dial() advertises batching in its hello");
        // The genuine worker's connection is the one handed back: prove it
        // by round-tripping a frame (the stray's socket was dropped, so
        // writing to it would fail or go nowhere).
        let mut sup_side = got;
        send_json(&mut sup_side, &ok_json_cmd("ping")).expect("send");
        let mut worker_side = genuine.join().expect("worker thread");
        let bytes = read_frame(&mut worker_side).expect("read").expect("frame");
        let j = parse_json(&bytes).expect("parse");
        assert_eq!(json_kind(&j).expect("kind"), "ping");
        drop(stray.join().expect("stray thread"));
    }

    /// Out-of-order dial-ins: cluster 1's worker connects while the broker
    /// is waiting on cluster 0. The broker parks it and hands it back
    /// instantly on the next `accept_for(1)` — this is also the reconnect
    /// path: after a reset, a re-dialing worker is matched back to its
    /// cluster by the identity in its hello, whatever order it arrives in.
    #[test]
    fn broker_parks_out_of_order_dialins() {
        let broker = TcpBroker::bind(
            "127.0.0.1:0",
            "tok".to_string(),
            Duration::from_millis(2_000),
            Duration::from_millis(2_000),
        )
        .expect("bind");
        let w1 = dial(broker.addr, "tok", 1);
        std::thread::sleep(Duration::from_millis(50));
        let w0 = dial(broker.addr, "tok", 0);
        let deadline = Instant::now() + Duration::from_secs(5);
        let (s0, _) = broker.accept_for(0, deadline, None).expect("accept 0");
        // Cluster 1 is already parked: no new dial-in needed.
        let (s1, _) = broker
            .accept_for(1, Instant::now() + Duration::from_millis(200), None)
            .expect("accept 1 from pending");
        drop(s0);
        drop(s1);
        drop(w0.join().expect("w0 thread"));
        drop(w1.join().expect("w1 thread"));
    }

    /// A correct-token peer with a mismatched wire version is fatal — the
    /// checkpoint payload must never cross a mixed-version pair. The peer
    /// here presents `WIRE_VERSION - 1`: a v2 worker (pre-checksum
    /// framing) meeting a v3 supervisor surfaces as the typed
    /// [`TimeWarpError::VersionMismatch`], not as garbled frames — hellos
    /// deliberately stay on the legacy framing both versions can parse.
    #[test]
    fn broker_rejects_version_mismatch_as_fatal() {
        let broker = TcpBroker::bind(
            "127.0.0.1:0",
            "tok".to_string(),
            Duration::from_millis(2_000),
            Duration::from_millis(2_000),
        )
        .expect("bind");
        let addr = broker.addr;
        let old = std::thread::spawn(move || {
            let conn = TcpStream::connect(addr).expect("connect");
            let mut stream = WireStream::Tcp(conn);
            let mut writer = stream.try_clone().expect("clone");
            let _ = read_frame(&mut stream).expect("read").expect("sup hello");
            let stale = ObjBuilder::new()
                .str("kind", "hello")
                .uint("wire", (WIRE_VERSION - 1) as u64)
                .uint("checkpoint_schema", CHECKPOINT_SCHEMA as u64)
                .str("token", "tok")
                .uint("cluster", 0)
                .build();
            send_json(&mut writer, &stale).expect("send hello");
            stream
        });
        let deadline = Instant::now() + Duration::from_secs(5);
        let err = broker
            .accept_for(0, deadline, None)
            .expect_err("version mismatch must be fatal");
        assert_eq!(
            err,
            WorkerFailure::Version {
                theirs: (WIRE_VERSION - 1, CHECKPOINT_SCHEMA)
            }
        );
        assert!(matches!(
            fatal(0, err),
            TimeWarpError::VersionMismatch { .. }
        ));
        drop(old.join().expect("old peer thread"));
    }

    /// A TCP worker that completes the hello but goes silent during the
    /// handshake (never answers `init`) surfaces as a read timeout, which
    /// the spawn path keeps *fatal*: [`TimeWarpError::WorkerTimeout`].
    /// (Only post-handshake silence, once a checkpoint exists to restore
    /// from, is converted to a recoverable loss.)
    #[test]
    fn handshake_read_timeout_is_worker_timeout() {
        let broker = Rc::new(
            TcpBroker::bind(
                "127.0.0.1:0",
                "tok".to_string(),
                Duration::from_millis(2_000),
                Duration::from_millis(2_000),
            )
            .expect("bind"),
        );
        let addr = broker.addr;
        let token = broker.token.clone();
        let mute = std::thread::spawn(move || {
            let conn = TcpStream::connect(addr).expect("connect");
            let mut stream = WireStream::Tcp(conn);
            let mut writer = stream.try_clone().expect("clone");
            let _ = read_frame(&mut stream).expect("read").expect("sup hello");
            send_json(&mut writer, &hello_json(&token, Some(0), true)).expect("send hello");
            // Swallow the init frame, then go silent until the supervisor
            // gives up (keep the socket open so no EOF arrives).
            let _init = read_frame(&mut stream).expect("read init");
            std::thread::sleep(Duration::from_millis(500));
        });
        let timing = WireTiming {
            io: Duration::from_millis(50),
            connect: Duration::from_millis(2_000),
            heartbeat: Duration::from_secs(1),
            budget: 30,
        };
        let mut w = ProcessWorker::tcp(0, broker, None, ok_json_cmd("init"), timing, None);
        let err = w.spawn().expect_err("silent worker must time out");
        assert_eq!(err, WorkerFailure::Timeout { after_ms: 50 });
        assert!(matches!(
            fatal(0, err),
            TimeWarpError::WorkerTimeout {
                cluster: 0,
                after_ms: 50
            }
        ));
        mute.join().expect("mute thread");
    }

    /// Post-handshake silence over TCP is crash-stop: the heartbeat prober
    /// sends `ping` frames each idle interval, and when `budget`
    /// consecutive probes go unanswered the connection is torn down and
    /// the worker is declared `Lost` — which routes it into
    /// checkpoint-restore recovery instead of a fatal
    /// [`TimeWarpError::WorkerTimeout`]. Detection is bounded at
    /// `budget * heartbeat` instead of the full I/O timeout.
    #[test]
    fn heartbeat_budget_exhaustion_over_tcp_becomes_lost() {
        let broker = Rc::new(
            TcpBroker::bind(
                "127.0.0.1:0",
                "tok".to_string(),
                Duration::from_millis(2_000),
                Duration::from_millis(2_000),
            )
            .expect("bind"),
        );
        let addr = broker.addr;
        let token = broker.token.clone();
        let mute = std::thread::spawn(move || {
            let conn = TcpStream::connect(addr).expect("connect");
            let mut stream = WireStream::Tcp(conn);
            let writer = stream.try_clone().expect("clone");
            let _ = read_frame(&mut stream).expect("read").expect("sup hello");
            let mut legacy_writer = writer.try_clone().expect("clone");
            send_json(&mut legacy_writer, &hello_json(&token, Some(0), true)).expect("send hello");
            // Post-hello traffic rides the checksummed v3 framing:
            // acknowledge init like a real worker, then never answer again.
            let mut source = FrameSource::new(io::BufReader::new(stream));
            let mut sink = FrameSink::new(writer);
            let _init = source.recv().expect("read init");
            sink.send_json(&ready_json(0)).expect("send ready");
            // Swallow every further frame (commands and heartbeat pings
            // alike) without ever answering, holding the socket open until
            // the supervisor gives up and shuts it down.
            while let Ok(Some(_)) = source.recv() {}
        });
        let timing = WireTiming {
            io: Duration::from_millis(2_000),
            connect: Duration::from_millis(2_000),
            heartbeat: Duration::from_millis(25),
            budget: 2,
        };
        let mut w = ProcessWorker::tcp(0, broker, None, ok_json_cmd("init"), timing, None);
        w.spawn().expect("handshake completes");
        let t0 = Instant::now();
        let err = w
            .command(&ok_json_cmd("quiesce"))
            .expect_err("silent peer must be declared lost");
        assert!(
            matches!(&err, WorkerFailure::Lost { detail } if detail.contains("heartbeat")),
            "expected heartbeat-budget Lost, got {err:?}"
        );
        // Detection is bounded by the heartbeat budget, far below the I/O
        // timeout a plain blocking read would have waited out.
        assert!(
            t0.elapsed() < timing.io,
            "heartbeat probing must beat the raw I/O timeout"
        );
        // A typed recovery signal, not a fatal timeout.
        assert!(matches!(fatal(0, err), TimeWarpError::Transport { .. }));
        // Budget exhaustion is charged exactly once, at `budget` misses.
        assert_eq!(
            w.wire_counters().heartbeats_missed,
            u64::from(timing.budget)
        );
        // The connection was dropped with it: the next command fails
        // immediately, without waiting out another probe cycle.
        let t0 = Instant::now();
        let err = w.command(&ok_json_cmd("quiesce")).expect_err("no stream");
        assert!(matches!(err, WorkerFailure::Lost { .. }));
        assert!(
            t0.elapsed() < timing.heartbeat,
            "second failure should be instant"
        );
        mute.join().expect("mute thread");
    }

    #[test]
    fn checkpoint_payload_crosses_a_real_socket() {
        let ck = Checkpoint {
            schema: CHECKPOINT_SCHEMA,
            cluster: 2,
            gvt: 17,
            values: vec![Logic::Zero, Logic::One, Logic::X, Logic::Z],
            pending: Vec::new(),
            tomb_remote: vec![(1, 9)],
            tomb_local: vec![3],
            processed: Vec::new(),
            undo: vec![(12, 1, Logic::X)],
            snapshots: Vec::new(),
            epochs_since_snapshot: 2,
            outlog: Vec::new(),
            sched_log: vec![(11, 7)],
            stim_cycle: 5,
            last_time: 16,
            settled: true,
            order: 40,
            lseq: 8,
            mseq: 11,
            stats: SimStats::default(),
        };
        let (a, b) = UnixStream::pair().expect("socketpair");
        let payload = ck.to_json();
        let writer = std::thread::spawn(move || {
            // Checkpoints ride the checksummed v3 framing in production.
            let mut sink = FrameSink::new(a);
            sink.send_json(&payload).expect("send checkpoint");
        });
        let mut source = FrameSource::new(io::BufReader::new(b));
        let bytes = source.recv().expect("read").expect("one frame");
        let back =
            Checkpoint::from_json(&parse_json(&bytes).expect("parse")).expect("checkpoint decodes");
        assert_eq!(back.schema, ck.schema);
        assert_eq!(back.cluster, ck.cluster);
        assert_eq!(back.gvt, ck.gvt);
        assert_eq!(back.values, ck.values);
        assert_eq!(back.tomb_remote, ck.tomb_remote);
        assert_eq!(back.tomb_local, ck.tomb_local);
        assert_eq!(back.undo, ck.undo);
        assert_eq!(back.sched_log, ck.sched_log);
        assert_eq!(back.stim_cycle, ck.stim_cycle);
        assert_eq!(back.mseq, ck.mseq);
        writer.join().expect("writer thread");
    }

    /// Hand-authored `init` frame for a two-cluster chain `net0 → not →
    /// net1 → not → net2`. The served worker is cluster 1, whose single
    /// gate reads net 1 — the 0→1 message channel the batch tests drive.
    /// The stimulus seed deliberately exceeds `i64::MAX`: it must survive
    /// the JSON codec's decimal-string fallback losslessly (a saturated
    /// seed once made workers simulate a different stimulus than their
    /// supervisor).
    fn tiny_init_json() -> Json {
        let gate = |kind: &str, output: i64, input: i64| {
            Json::Array(vec![
                Json::Str(kind.to_string()),
                Json::Int(output),
                Json::Int(input),
            ])
        };
        ObjBuilder::new()
            .str("kind", "init")
            .uint("cluster", 1)
            .uint("k", 2)
            .bool("check", true)
            .str("label", "batch-unit")
            .uint("cycles", 4)
            .field(
                "state_saving",
                state_saving_json(StateSaving::IncrementalUndo),
            )
            .uint("nets", 3)
            .field("const0", Json::Null)
            .field("const1", Json::Null)
            .field("primary_inputs", uint_array(&[0]))
            .array("gates", vec![gate("not", 1, 0), gate("not", 2, 1)])
            .field("gate_block", uint_array(&[0, 1]))
            .field(
                "stim",
                ObjBuilder::new()
                    .field("data_inputs", uint_array(&[0]))
                    .field("clock", Json::Null)
                    .uint("period", 2)
                    .uint("seed", 11_601_856_998_475_820_192)
                    .build(),
            )
            .build()
    }

    type WorkerSession = (
        FrameSink<WireStream>,
        FrameSource<io::BufReader<WireStream>>,
        std::thread::JoinHandle<io::Result<()>>,
    );

    /// Complete the hello + init handshake against a real [`serve_wire`]
    /// worker over a Unix socketpair, returning the supervisor side of
    /// the checksummed v3 framing with the worker ready for commands.
    fn batch_worker_session() -> WorkerSession {
        let (sup, worker) = UnixStream::pair().expect("socketpair");
        let handle = std::thread::spawn(move || serve_wire(WireStream::Unix(worker), None, ""));
        let mut writer = WireStream::Unix(sup).try_clone().expect("clone");
        let mut reader = io::BufReader::new(writer.try_clone().expect("clone"));
        send_json(&mut writer, &hello_json("", None, true)).expect("send hello");
        let reply = read_frame(&mut reader)
            .expect("read")
            .expect("worker hello");
        let reply = hello_parse(&parse_json(&reply).expect("parse")).expect("hello");
        assert!(reply.batch, "worker must advertise msg_batch by default");
        let mut sink = FrameSink::new(writer);
        let mut source = FrameSource::new(reader);
        sink.send_json(&tiny_init_json()).expect("send init");
        let ready = source.recv().expect("read").expect("ready frame");
        let ready = parse_json(&ready).expect("parse ready");
        assert_eq!(json_kind(&ready).expect("kind"), "ready");
        (sink, source, handle)
    }

    fn channel_msg(seq: u64, time: VTime, value: Logic) -> TwMessage {
        TwMessage {
            src: 0,
            dst: 1,
            seq,
            ev: crate::wheel::NetEvent {
                time,
                net: NetId(1),
                value,
            },
            anti: false,
        }
    }

    /// A `msg_batch` frame round-trips through a real worker over a real
    /// socket: the head applies immediately, the staged tail is released
    /// in FIFO order by payload-free `deliver_next` commands, and one
    /// more release past the end of the stash is a typed protocol error.
    #[test]
    fn msg_batch_round_trips_through_a_real_worker() {
        let (mut sink, mut source, handle) = batch_worker_session();
        let batch = [
            channel_msg(1, 1, Logic::One),
            channel_msg(2, 2, Logic::Zero),
            channel_msg(3, 3, Logic::One),
        ];
        let cmd = ObjBuilder::new()
            .str("kind", "msg_batch")
            .uint("src", 0)
            .array("msgs", batch.iter().map(TwMessage::to_json).collect())
            .build();
        sink.send_json(&cmd).expect("send batch");
        let reply = parse_json(&source.recv().expect("read").expect("reply")).expect("parse");
        assert_eq!(
            json_kind(&reply).expect("kind"),
            "done",
            "the batch head applies like a plain deliver"
        );
        // Release the staged tail one message at a time; the (seq, anti)
        // echo must match the worker's stash head.
        for m in &batch[1..] {
            let cmd = ObjBuilder::new()
                .str("kind", "deliver_next")
                .uint("src", 0)
                .uint("seq", m.seq)
                .bool("anti", m.anti)
                .build();
            sink.send_json(&cmd).expect("send deliver_next");
            let reply = parse_json(&source.recv().expect("read").expect("reply")).expect("parse");
            assert_eq!(
                json_kind(&reply).expect("kind"),
                "done",
                "staged message seq {} must be released",
                m.seq
            );
        }
        // The stash is drained: another release is a protocol error, and
        // the worker reports it and hangs up instead of guessing.
        let cmd = ObjBuilder::new()
            .str("kind", "deliver_next")
            .uint("src", 0)
            .uint("seq", 4)
            .bool("anti", false)
            .build();
        sink.send_json(&cmd).expect("send deliver_next");
        let reply = parse_json(&source.recv().expect("read").expect("reply")).expect("parse");
        assert_eq!(json_kind(&reply).expect("kind"), "error");
        let detail = reply
            .field("detail")
            .and_then(Json::as_str)
            .expect("detail");
        assert!(
            detail.contains("empty stash"),
            "unexpected detail: {detail}"
        );
        assert_eq!(source.recv().expect("clean eof"), None);
        handle.join().expect("join").expect("serve_wire exits Ok");
    }

    /// An oversized batch is rejected from its declared length alone,
    /// before a single message is materialized: the `msgs` entries here
    /// are `null`, which would fail message parsing with a different
    /// error if the worker ever looked past the length.
    #[test]
    fn oversize_msg_batch_is_rejected_before_materializing() {
        let (mut sink, mut source, handle) = batch_worker_session();
        let cmd = ObjBuilder::new()
            .str("kind", "msg_batch")
            .uint("src", 0)
            .array("msgs", vec![Json::Null; MAX_BATCH_MSGS + 1])
            .build();
        sink.send_json(&cmd).expect("send oversize batch");
        let reply = parse_json(&source.recv().expect("read").expect("reply")).expect("parse");
        assert_eq!(json_kind(&reply).expect("kind"), "error");
        let detail = reply
            .field("detail")
            .and_then(Json::as_str)
            .expect("detail");
        assert!(
            detail.contains("exceeds the cap"),
            "expected the declared-length rejection, got: {detail}"
        );
        assert_eq!(source.recv().expect("clean eof"), None);
        handle.join().expect("join").expect("serve_wire exits Ok");
    }

    /// A flipped bit inside a `msg_batch` frame surfaces as the typed
    /// [`WireError::Corrupt`] (CRC mismatch), which `is_corrupt` routes
    /// into connection recovery — a multi-message frame gets no weaker
    /// integrity checking than a single-message one.
    #[test]
    fn bit_flip_in_a_batched_frame_is_corrupt() {
        let cmd = ObjBuilder::new()
            .str("kind", "msg_batch")
            .uint("src", 0)
            .array(
                "msgs",
                vec![
                    channel_msg(1, 3, Logic::One).to_json(),
                    channel_msg(2, 5, Logic::Zero).to_json(),
                ],
            )
            .build();
        let mut sink = FrameSink::new(Vec::new());
        sink.send_json(&cmd).expect("encode");
        let clean = sink.get_ref().clone();
        // Sanity: the unflipped frame decodes back to the same command.
        let mut src = FrameSource::new(io::Cursor::new(clean.clone()));
        let bytes = src.recv().expect("recv").expect("frame");
        assert_eq!(parse_json(&bytes).expect("parse"), cmd);
        // Flip one bit in the final byte — inside the JSON body, past the
        // header, so only the payload CRC can catch it.
        let mut flipped = clean;
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        let mut src = FrameSource::new(io::Cursor::new(flipped));
        let err = src.recv().expect_err("corrupt frame must not decode");
        assert!(matches!(err, WireError::Corrupt(_)), "got {err:?}");
        assert!(err.is_corrupt(), "recovery keys on is_corrupt");
    }
}
