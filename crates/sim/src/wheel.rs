//! Event queues for the simulation kernels.
//!
//! Two implementations behind one minimal interface:
//!
//! * [`HeapQueue`] — a binary heap with a stable (time, sequence) order;
//!   works for any delay model and is the queue used by Time Warp clusters
//!   (which need arbitrary insertion of stragglers).
//! * [`TimingWheel`] — a calendar queue specialized for the unit-delay model
//!   the paper uses (all gate delays are 1, stimulus arrives at known
//!   times): O(1) insert/pop within a bounded look-ahead window.

use crate::logic::Logic;
use dvs_verilog::netlist::NetId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Virtual time, in gate-delay ticks.
pub type VTime = u64;

/// A scheduled net-value change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetEvent {
    pub time: VTime,
    pub net: NetId,
    pub value: Logic,
}

/// Heap entry ordered by (time, seq) so pops are deterministic FIFO within a
/// timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    ev: NetEvent,
    seq: u64,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .ev
            .time
            .cmp(&self.ev.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Stable binary-heap event queue.
#[derive(Debug, Default)]
pub struct HeapQueue {
    heap: BinaryHeap<Entry>,
    seq: u64,
}

impl HeapQueue {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, ev: NetEvent) {
        self.heap.push(Entry { ev, seq: self.seq });
        self.seq += 1;
    }

    pub fn peek_time(&self) -> Option<VTime> {
        self.heap.peek().map(|e| e.ev.time)
    }

    pub fn pop(&mut self) -> Option<NetEvent> {
        self.heap.pop().map(|e| e.ev)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Pop every event scheduled at the earliest time into `out`; returns
    /// that time.
    pub fn pop_epoch(&mut self, out: &mut Vec<NetEvent>) -> Option<VTime> {
        let t = self.peek_time()?;
        while let Some(&head) = self.heap.peek() {
            if head.ev.time != t {
                break;
            }
            self.heap.pop();
            out.push(head.ev);
        }
        Some(t)
    }
}

/// Calendar queue for unit-delay simulation: a ring of buckets indexed by
/// `time % horizon`. Events beyond the horizon overflow into a heap and are
/// reloaded lazily. With unit delays the vast majority of events land within
/// a couple of ticks, making this effectively O(1).
#[derive(Debug)]
pub struct TimingWheel {
    buckets: Vec<Vec<NetEvent>>,
    horizon: usize,
    now: VTime,
    len: usize,
    overflow: HeapQueue,
}

impl TimingWheel {
    /// `horizon` must exceed the largest scheduling offset seen in steady
    /// state (unit delay ⇒ small; stimulus may schedule a full period ahead).
    pub fn new(horizon: usize) -> Self {
        assert!(horizon >= 2);
        TimingWheel {
            buckets: (0..horizon).map(|_| Vec::new()).collect(),
            horizon,
            now: 0,
            len: 0,
            overflow: HeapQueue::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.len + self.overflow.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current epoch time (the earliest time that may still hold events).
    pub fn now(&self) -> VTime {
        self.now
    }

    pub fn push(&mut self, ev: NetEvent) {
        debug_assert!(ev.time >= self.now, "scheduling into the past");
        if ev.time >= self.now + self.horizon as u64 {
            self.overflow.push(ev);
        } else {
            self.buckets[(ev.time % self.horizon as u64) as usize].push(ev);
            self.len += 1;
        }
    }

    /// Advance `now` to the next non-empty epoch *without* draining it, and
    /// return its time. `None` when the queue is empty.
    pub fn next_time(&mut self) -> Option<VTime> {
        if self.is_empty() {
            return None;
        }
        loop {
            // Reload overflow events that now fit in the window.
            while self
                .overflow
                .peek_time()
                .is_some_and(|t| t < self.now + self.horizon as u64)
            {
                if let Some(ev) = self.overflow.pop() {
                    self.buckets[(ev.time % self.horizon as u64) as usize].push(ev);
                    self.len += 1;
                }
            }
            let idx = (self.now % self.horizon as u64) as usize;
            if !self.buckets[idx].is_empty() {
                return Some(self.now);
            }
            self.now += 1;
            // If the window is empty but overflow has far-future events,
            // jump straight to them.
            if self.len == 0 {
                if let Some(t) = self.overflow.peek_time() {
                    if t >= self.now + self.horizon as u64 {
                        self.now = t;
                    }
                } else {
                    return None;
                }
            }
        }
    }

    /// Advance to the next non-empty epoch, draining its events into `out`
    /// (in insertion order). Returns the epoch time.
    pub fn pop_epoch(&mut self, out: &mut Vec<NetEvent>) -> Option<VTime> {
        let t = self.next_time()?;
        let idx = (t % self.horizon as u64) as usize;
        let before = out.len();
        out.append(&mut self.buckets[idx]);
        self.len -= out.len() - before;
        self.now = t + 1;
        Some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: VTime, net: u32) -> NetEvent {
        NetEvent {
            time,
            net: NetId(net),
            value: Logic::One,
        }
    }

    #[test]
    fn heap_orders_by_time_then_fifo() {
        let mut q = HeapQueue::new();
        q.push(ev(5, 0));
        q.push(ev(3, 1));
        q.push(ev(5, 2));
        q.push(ev(3, 3));
        let order: Vec<(VTime, u32)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.time, e.net.0))
            .collect();
        assert_eq!(order, vec![(3, 1), (3, 3), (5, 0), (5, 2)]);
    }

    #[test]
    fn heap_pop_epoch_groups_by_time() {
        let mut q = HeapQueue::new();
        for (t, n) in [(2, 0), (2, 1), (4, 2)] {
            q.push(ev(t, n));
        }
        let mut out = Vec::new();
        assert_eq!(q.pop_epoch(&mut out), Some(2));
        assert_eq!(out.len(), 2);
        out.clear();
        assert_eq!(q.pop_epoch(&mut out), Some(4));
        assert_eq!(out.len(), 1);
        assert_eq!(q.pop_epoch(&mut out), None);
    }

    #[test]
    fn wheel_basic_epochs() {
        let mut w = TimingWheel::new(8);
        w.push(ev(0, 0));
        w.push(ev(1, 1));
        w.push(ev(1, 2));
        let mut out = Vec::new();
        assert_eq!(w.pop_epoch(&mut out), Some(0));
        assert_eq!(out.len(), 1);
        out.clear();
        assert_eq!(w.pop_epoch(&mut out), Some(1));
        assert_eq!(out.len(), 2);
        assert!(w.is_empty());
    }

    #[test]
    fn wheel_skips_gaps() {
        let mut w = TimingWheel::new(4);
        w.push(ev(0, 0));
        let mut out = Vec::new();
        w.pop_epoch(&mut out);
        out.clear();
        w.push(ev(3, 1));
        assert_eq!(w.pop_epoch(&mut out), Some(3));
    }

    #[test]
    fn wheel_overflow_beyond_horizon() {
        let mut w = TimingWheel::new(4);
        w.push(ev(0, 0));
        w.push(ev(100, 1)); // far beyond horizon → overflow heap
        w.push(ev(101, 2));
        let mut out = Vec::new();
        assert_eq!(w.pop_epoch(&mut out), Some(0));
        out.clear();
        assert_eq!(w.pop_epoch(&mut out), Some(100));
        assert_eq!(out[0].net.0, 1);
        out.clear();
        assert_eq!(w.pop_epoch(&mut out), Some(101));
        assert!(w.is_empty());
        assert_eq!(w.pop_epoch(&mut out), None);
    }

    #[test]
    fn wheel_interleaved_push_pop() {
        let mut w = TimingWheel::new(8);
        w.push(ev(0, 0));
        let mut out = Vec::new();
        w.pop_epoch(&mut out);
        // Unit-delay style: each epoch schedules the next.
        for t in 1..50u64 {
            w.push(ev(t, t as u32));
            out.clear();
            assert_eq!(w.pop_epoch(&mut out), Some(t));
            assert_eq!(out.len(), 1);
        }
    }

    #[test]
    fn wheel_len_counts_overflow() {
        let mut w = TimingWheel::new(2);
        w.push(ev(0, 0));
        w.push(ev(50, 1));
        assert_eq!(w.len(), 2);
    }

    #[test]
    #[should_panic(expected = "past")]
    #[cfg(debug_assertions)]
    fn wheel_rejects_past_events() {
        let mut w = TimingWheel::new(4);
        w.push(ev(5, 0));
        let mut out = Vec::new();
        w.pop_epoch(&mut out);
        w.push(ev(2, 1));
    }
}
