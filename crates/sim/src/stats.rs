//! Simulation statistics shared by the sequential, Time Warp and modeled
//! kernels.

/// Counters accumulated during a simulation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Net-change events processed (scheduled events popped and applied).
    pub events: u64,
    /// Gate evaluations performed (the paper's unit of computational load).
    pub gate_evals: u64,
    /// Events that actually changed a net's value.
    pub net_toggles: u64,
    /// Input vectors applied.
    pub cycles: u64,
    /// Largest virtual time reached.
    pub end_time: u64,
    /// Inter-cluster messages sent (parallel kernels only).
    pub messages: u64,
    /// Anti-messages sent (Time Warp only).
    pub anti_messages: u64,
    /// Rollbacks performed (Time Warp only).
    pub rollbacks: u64,
    /// Events undone by rollbacks (re-executed later).
    pub rolled_back_events: u64,
    /// GVT computations performed.
    pub gvt_rounds: u64,
    /// Committed history records reclaimed by fossil collection (processed
    /// events whose timestamps fell below GVT).
    pub fossil_collected: u64,
}

impl SimStats {
    /// Merge per-cluster stats into a run total.
    pub fn merge(&mut self, other: &SimStats) {
        self.events += other.events;
        self.gate_evals += other.gate_evals;
        self.net_toggles += other.net_toggles;
        self.cycles = self.cycles.max(other.cycles);
        self.end_time = self.end_time.max(other.end_time);
        self.messages += other.messages;
        self.anti_messages += other.anti_messages;
        self.rollbacks += other.rollbacks;
        self.rolled_back_events += other.rolled_back_events;
        self.gvt_rounds = self.gvt_rounds.max(other.gvt_rounds);
        self.fossil_collected += other.fossil_collected;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters_and_maxes_clocks() {
        let mut a = SimStats {
            events: 10,
            gate_evals: 5,
            net_toggles: 4,
            cycles: 100,
            end_time: 999,
            messages: 3,
            anti_messages: 1,
            rollbacks: 2,
            rolled_back_events: 7,
            gvt_rounds: 4,
            fossil_collected: 6,
        };
        let b = SimStats {
            events: 1,
            gate_evals: 1,
            net_toggles: 1,
            cycles: 50,
            end_time: 2000,
            messages: 1,
            anti_messages: 0,
            rollbacks: 0,
            rolled_back_events: 0,
            gvt_rounds: 9,
            fossil_collected: 2,
        };
        a.merge(&b);
        assert_eq!(a.events, 11);
        assert_eq!(a.cycles, 100);
        assert_eq!(a.end_time, 2000);
        assert_eq!(a.gvt_rounds, 9);
        assert_eq!(a.messages, 4);
        assert_eq!(a.fossil_collected, 8);
    }
}
