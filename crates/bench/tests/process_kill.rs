//! Kill-harness tests for [`Transport::Process`]: real `tw_worker` OS
//! processes, real `SIGKILL`s, and the strongest oracle the kernel offers —
//! the canonical artifact of a crashed-and-recovered process run must be
//! **byte-identical** to the same-seed undisturbed in-process run.
//!
//! The worker binary is the `tw_worker` sibling target of this crate;
//! Cargo hands its path to integration tests via `CARGO_BIN_EXE_tw_worker`.
//!
//! Tests in this file serialize on a mutex: the self-kill test configures
//! workers through the process environment (`DVS_TW_SELFKILL`), which
//! would leak into any concurrently spawned worker.

use dvs_core::tw_run_canonical_json;
use dvs_core::{partition_multiway, MultiwayConfig};
use dvs_sim::cluster::ClusterPlan;
use dvs_sim::stimulus::VectorStimulus;
use dvs_sim::timewarp::{
    run_timewarp, BatchPolicy, CheckpointCadence, FaultPlan, SchedulePolicy, TimeWarpConfig,
    Transport, TwRunResult,
};
use dvs_verilog::Netlist;
use dvs_workloads::viterbi::{generate_viterbi, ViterbiParams};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};

const K: u32 = 3;
const CYCLES: u64 = 20;
const STIM_SEED: u64 = 7;
const SCHED_SEED: u64 = 2008;

fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_tw_worker"))
}

/// Serialize every test in this file (see module docs).
fn lock() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

fn fixture() -> (Netlist, Vec<u32>, VectorStimulus) {
    let src = generate_viterbi(&ViterbiParams::tiny());
    let nl = dvs_verilog::parse_and_elaborate(&src)
        .expect("viterbi elaborates")
        .into_netlist();
    let part = partition_multiway(&nl, &MultiwayConfig::new(K, 20.0));
    let stim = VectorStimulus::from_netlist(&nl, 10, STIM_SEED);
    (nl, part.gate_blocks, stim)
}

fn config(transport: Transport, fault: FaultPlan) -> TimeWarpConfig {
    config_cadenced(transport, fault, 1)
}

fn config_cadenced(transport: Transport, fault: FaultPlan, cadence: u32) -> TimeWarpConfig {
    TimeWarpConfig::builder()
        .transport(transport)
        .window(8)
        .epochs_per_quantum(2)
        .gvt_interval(1)
        .checkpoint_cadence(CheckpointCadence::every_n_rounds(cadence))
        .fault(fault)
        .build()
        .expect("valid config")
}

/// Same kernel knobs as [`config`] but with per-quantum message batching
/// on — `msg_batch` wire frames stage message tails worker-side.
fn config_batched(transport: Transport, fault: FaultPlan) -> TimeWarpConfig {
    TimeWarpConfig::builder()
        .transport(transport)
        .window(8)
        .epochs_per_quantum(2)
        .gvt_interval(1)
        .message_batching(BatchPolicy::per_quantum())
        .fault(fault)
        .build()
        .expect("valid config")
}

fn run(nl: &Netlist, gb: &[u32], stim: &VectorStimulus, cfg: &TimeWarpConfig) -> TwRunResult {
    let plan = ClusterPlan::new(nl, gb, K as usize);
    run_timewarp(nl, &plan, stim, CYCLES, cfg).expect("time warp run failed")
}

fn canonical(tw: &TwRunResult) -> String {
    tw_run_canonical_json(tw).emit().expect("canonical emit")
}

fn in_proc(policy: SchedulePolicy) -> Transport {
    Transport::in_proc(SCHED_SEED, policy)
}

fn process(policy: SchedulePolicy) -> Transport {
    Transport::process_with_worker(SCHED_SEED, policy, worker_bin())
}

/// An undisturbed process run must be byte-identical to the same-seed
/// in-process run: the transport is invisible in the artifacts.
#[test]
fn clean_process_run_matches_inproc_bytes() {
    let _g = lock();
    let (nl, gb, stim) = fixture();
    for policy in [SchedulePolicy::RoundRobin, SchedulePolicy::SeededRandom] {
        let a = run(
            &nl,
            &gb,
            &stim,
            &config(in_proc(policy), FaultPlan::default()),
        );
        let b = run(
            &nl,
            &gb,
            &stim,
            &config(process(policy), FaultPlan::default()),
        );
        assert_eq!(b.recovery.crashes, 0, "{}: phantom crash", policy.name());
        assert_eq!(
            canonical(&a),
            canonical(&b),
            "{}: process transport diverged from in-proc",
            policy.name()
        );
    }
}

/// `SIGKILL` a worker at assorted decision depths (the supervisor's fault
/// injector kills the real OS process and observes the socket EOF). The
/// recovered run's canonical artifact must equal the undisturbed in-proc
/// run's, byte for byte, and the victim must be recorded.
#[test]
fn sigkilled_worker_recovers_byte_identically() {
    let _g = lock();
    let (nl, gb, stim) = fixture();
    let policy = SchedulePolicy::SeededRandom;
    let clean = canonical(&run(
        &nl,
        &gb,
        &stim,
        &config(in_proc(policy), FaultPlan::default()),
    ));
    // Decision indices chosen from the seed to cover early/mid/late kills
    // without hand-tuning to the workload.
    let mut fired = 0u32;
    for (victim, at) in [(0u32, 3u64), (1, 47), (2, 211), (0, 800)] {
        let tw = run(
            &nl,
            &gb,
            &stim,
            &config(process(policy), FaultPlan::crash(victim, at)),
        );
        let label = format!("kill cluster {victim} at decision {at}");
        assert_eq!(
            tw.recovery.crashes, tw.recovery.restarts,
            "{label}: every kill must be recovered"
        );
        assert!(!tw.recovery.degraded, "{label}: unexpected degradation");
        assert_eq!(
            tw.recovery.victims,
            vec![victim; tw.recovery.crashes as usize],
            "{label}: victim not recorded"
        );
        if tw.recovery.crashes > 0 {
            assert!(
                tw.recovery.replayed_ops > 0 || tw.recovery.crashes == 0,
                "{label}: recovery replayed nothing"
            );
        }
        fired += tw.recovery.crashes;
        assert_eq!(canonical(&tw), clean, "{label}: artifact diverged");
    }
    assert!(fired >= 2, "sweep fired only {fired} kills — widen indices");
}

/// The batching leg of the kill sweep: `SIGKILL`s land while batched
/// message tails sit staged on the worker (shipped in a `msg_batch` frame
/// but not yet released by `deliver_next`). The restore path must drop the
/// stage on both sides and replay from the input log, converging on the
/// byte-identical artifact of an **unbatched** undisturbed in-proc run —
/// batching plus crashes together still change nothing observable.
#[test]
fn sigkilled_worker_with_batching_recovers_byte_identically() {
    let _g = lock();
    let (nl, gb, stim) = fixture();
    let policy = SchedulePolicy::SeededRandom;
    let clean = canonical(&run(
        &nl,
        &gb,
        &stim,
        &config(in_proc(policy), FaultPlan::default()),
    ));
    // Batching on, no faults: sanity-check the staging path is exercised
    // at all before killing through it.
    let quiet = run(
        &nl,
        &gb,
        &stim,
        &config_batched(process(policy), FaultPlan::default()),
    );
    assert_eq!(quiet.recovery.crashes, 0, "phantom crash under batching");
    assert_eq!(
        quiet.recovery.messages_folded, 0,
        "deterministic transports never fold"
    );
    assert!(
        quiet.recovery.frames_sent < quiet.recovery.messages_sent,
        "batching shipped no multi-message frames ({} frames / {} messages) — \
         the staging path is not being exercised",
        quiet.recovery.frames_sent,
        quiet.recovery.messages_sent
    );
    assert_eq!(canonical(&quiet), clean, "clean batched run diverged");
    let mut fired = 0u32;
    for (victim, at) in [(0u32, 3u64), (1, 47), (2, 211), (0, 800)] {
        let tw = run(
            &nl,
            &gb,
            &stim,
            &config_batched(process(policy), FaultPlan::crash(victim, at)),
        );
        let label = format!("batched kill cluster {victim} at decision {at}");
        assert_eq!(
            tw.recovery.crashes, tw.recovery.restarts,
            "{label}: every kill must be recovered"
        );
        assert!(!tw.recovery.degraded, "{label}: unexpected degradation");
        assert_eq!(tw.recovery.messages_folded, 0, "{label}: phantom fold");
        fired += tw.recovery.crashes;
        assert_eq!(canonical(&tw), clean, "{label}: artifact diverged");
    }
    assert!(fired >= 2, "sweep fired only {fired} kills — widen indices");
}

/// Capability negotiation end to end: a worker that does not advertise
/// `msg_batch` in its hello (`DVS_TW_NO_BATCH`, simulating a pre-batching
/// v3 peer) keeps a batching-enabled supervisor on plain one-message
/// `deliver` frames — every message ships in its own frame, nothing is
/// staged, and the artifact still matches the unbatched in-proc run.
#[test]
fn no_batch_worker_negotiates_batching_off() {
    let _g = lock();
    let (nl, gb, stim) = fixture();
    let policy = SchedulePolicy::SeededRandom;
    let clean = canonical(&run(
        &nl,
        &gb,
        &stim,
        &config(in_proc(policy), FaultPlan::default()),
    ));
    std::env::set_var("DVS_TW_NO_BATCH", "1");
    let tw = run(
        &nl,
        &gb,
        &stim,
        &config_batched(process(policy), FaultPlan::default()),
    );
    std::env::remove_var("DVS_TW_NO_BATCH");
    assert_eq!(tw.recovery.crashes, 0, "phantom crash during negotiation");
    assert_eq!(
        tw.recovery.frames_sent, tw.recovery.messages_sent,
        "negotiated-off batching must ship one frame per message"
    );
    assert_eq!(tw.recovery.messages_folded, 0, "phantom fold");
    assert_eq!(
        canonical(&tw),
        clean,
        "negotiated-off batching diverged from the unbatched in-proc run"
    );
}

/// The delta-cadence leg: with bases only every 4th GVT round and deltas
/// in between, `SIGKILL`s that land *between* bases force a restore from
/// the base plus the replayed delta chain plus the input log over the
/// N-round retention window — and the recovered artifact must still be
/// byte-identical to the undisturbed in-proc run.
#[test]
fn sigkill_between_bases_restores_from_delta_chain() {
    let _g = lock();
    let (nl, gb, stim) = fixture();
    let policy = SchedulePolicy::SeededRandom;
    let clean = canonical(&run(
        &nl,
        &gb,
        &stim,
        &config(in_proc(policy), FaultPlan::default()),
    ));
    // Capture is side-effect-free: a clean cadence-4 process run must be
    // byte-identical to the plain cadence-1 run.
    let quiet = run(
        &nl,
        &gb,
        &stim,
        &config_cadenced(process(policy), FaultPlan::default(), 4),
    );
    assert_eq!(quiet.recovery.crashes, 0, "phantom crash under cadence");
    assert!(
        quiet.recovery.checkpoint_bytes_delta > 0,
        "cadence-4 clean run captured no deltas"
    );
    assert_eq!(canonical(&quiet), clean, "cadence perturbed the artifact");
    // With gvt_interval 1 and bases every 4th round, these decision depths
    // land the kill between bases at several chain lengths.
    let mut fired = 0u32;
    for (victim, at) in [(0u32, 29u64), (1, 83), (2, 211)] {
        let tw = run(
            &nl,
            &gb,
            &stim,
            &config_cadenced(process(policy), FaultPlan::crash(victim, at), 4),
        );
        let label = format!("cadence-4 kill cluster {victim} at decision {at}");
        assert_eq!(
            tw.recovery.crashes, tw.recovery.restarts,
            "{label}: every kill must be recovered"
        );
        assert!(!tw.recovery.degraded, "{label}: unexpected degradation");
        assert!(
            tw.recovery.checkpoint_bytes_delta > 0,
            "{label}: no delta bytes counted"
        );
        fired += tw.recovery.crashes;
        assert_eq!(canonical(&tw), clean, "{label}: artifact diverged");
    }
    assert!(fired >= 2, "sweep fired only {fired} kills — widen indices");
}

/// Asynchronous death: the worker aborts *itself* (`DVS_TW_SELFKILL`)
/// right before dispatching a command, at a point the supervisor did not
/// choose. The supervisor sees a dead socket mid-exchange and must still
/// converge to the undisturbed artifact.
#[test]
fn selfkilled_worker_converges() {
    let _g = lock();
    let (nl, gb, stim) = fixture();
    let policy = SchedulePolicy::RoundRobin;
    let clean = canonical(&run(
        &nl,
        &gb,
        &stim,
        &config(in_proc(policy), FaultPlan::default()),
    ));
    // After the initial GVT-0 checkpoint (command 1), die before the 6th
    // command. The restored worker disarms the hook, so exactly one crash
    // fires.
    std::env::set_var("DVS_TW_SELFKILL", "1:6");
    let tw = run(
        &nl,
        &gb,
        &stim,
        &config(process(policy), FaultPlan::default()),
    );
    std::env::remove_var("DVS_TW_SELFKILL");
    assert_eq!(tw.recovery.crashes, 1, "self-kill did not fire");
    assert_eq!(tw.recovery.restarts, 1);
    assert_eq!(tw.recovery.victims, vec![1]);
    assert_eq!(canonical(&tw), clean, "async death diverged");
}

/// Killing the same worker more times than the restart budget allows
/// degrades to the sequential simulator — correct values, `degraded`
/// flagged, every victim recorded — rather than erroring out.
#[test]
fn exhausted_budget_degrades_gracefully() {
    let _g = lock();
    let (nl, gb, stim) = fixture();
    let policy = SchedulePolicy::RoundRobin;
    let fault = FaultPlan {
        crash_at: Some((2, 30)),
        crashes: 3,
        max_restarts: 2,
        corrupt_restores: 0,
    };
    let a = run(&nl, &gb, &stim, &config(in_proc(policy), fault));
    let b = run(&nl, &gb, &stim, &config(process(policy), fault));
    for (tw, which) in [(&a, "in-proc"), (&b, "process")] {
        assert!(tw.recovery.degraded, "{which}: budget was not exhausted");
        assert_eq!(tw.recovery.crashes, 3, "{which}");
        assert_eq!(tw.recovery.restarts, 2, "{which}");
        assert_eq!(tw.recovery.victims, vec![2, 2, 2], "{which}");
    }
    assert_eq!(
        canonical(&a),
        canonical(&b),
        "degraded artifacts diverged across transports"
    );
}
