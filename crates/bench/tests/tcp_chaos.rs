//! Network-chaos suite for [`Transport::Tcp`]: every run goes through the
//! deterministic fault-injection shim (`dvs_sim::timewarp::chaos`) wrapping
//! the supervisor side of each worker connection — flipped bits, truncated
//! and duplicated frames, split writes, injected latency, silent stalls,
//! and half-open partitions, all drawn from seeded, replayable plans.
//!
//! The oracle is the same as the kill harness's, and it is absolute: the
//! canonical artifact of every disturbed run must be **byte-identical** to
//! the same-seed undisturbed in-process run. Benign faults (duplicates,
//! split writes, latency) must be invisible outright; destructive faults
//! (corruption, truncation, stalls, partitions) must be detected — by the
//! CRC32 frame check or the heartbeat prober — and recovered through the
//! same crash-stop respawn/restore path a `SIGKILL` takes. No injected
//! fault may panic the supervisor or a worker, and none may leak into the
//! results.
//!
//! On an artifact mismatch the failing pair is dumped to
//! `target/tmp/tcp_chaos_diff_<label>.txt`, and a failing sweep seed to
//! `target/tmp/tcp_chaos_seed_<seed>.txt`, for CI to upload.

use dvs_core::tw_run_canonical_json;
use dvs_core::{partition_multiway, MultiwayConfig};
use dvs_sim::cluster::ClusterPlan;
use dvs_sim::stimulus::VectorStimulus;
use dvs_sim::timewarp::{
    run_timewarp, CheckpointCadence, FaultPlan, NetDir, NetFault, NetFaultKind, NetPlan,
    SchedulePolicy, TimeWarpConfig, Transport, TwRunResult,
};
use dvs_verilog::Netlist;
use dvs_workloads::viterbi::{generate_viterbi, ViterbiParams};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

const K: u32 = 3;
const CYCLES: u64 = 20;
const STIM_SEED: u64 = 7;
const SCHED_SEED: u64 = 2008;
/// Heartbeat interval for legs that need stall/partition detection. Short
/// enough to keep the suite fast, long enough (with the generous restart
/// budget) that a CI-preempted worker is re-adopted rather than failing
/// the run.
const HEARTBEAT_MS: u64 = 100;
const HEARTBEAT_BUDGET: u32 = 2;
/// Restart budget for chaos legs: a seeded plan carries up to three
/// destructive faults, and CI timing noise may add a spurious loss or
/// two — byte-identity must survive all of them without degrading.
const MAX_RESTARTS: u32 = 12;

fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_tw_worker"))
}

/// Serialize every test in this file: each run spawns K worker processes,
/// and the stall/partition legs time out on real wall-clock heartbeats —
/// oversubscribing the host skews them.
fn lock() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

fn fixture() -> &'static (Netlist, Vec<u32>, VectorStimulus) {
    static FIX: OnceLock<(Netlist, Vec<u32>, VectorStimulus)> = OnceLock::new();
    FIX.get_or_init(|| {
        let src = generate_viterbi(&ViterbiParams::tiny());
        let nl = dvs_verilog::parse_and_elaborate(&src)
            .expect("viterbi elaborates")
            .into_netlist();
        let part = partition_multiway(&nl, &MultiwayConfig::new(K, 20.0));
        let stim = VectorStimulus::from_netlist(&nl, 10, STIM_SEED);
        (nl, part.gate_blocks, stim)
    })
}

struct RunSpec {
    transport: Transport,
    fault: FaultPlan,
    chaos: Option<NetPlan>,
    cadence: u32,
    heartbeat: Option<(u64, u32)>,
}

impl RunSpec {
    fn tcp() -> RunSpec {
        RunSpec {
            transport: Transport::tcp_with_worker(
                SCHED_SEED,
                SchedulePolicy::SeededRandom,
                worker_bin(),
            ),
            fault: FaultPlan {
                max_restarts: MAX_RESTARTS,
                ..FaultPlan::default()
            },
            chaos: None,
            cadence: 1,
            heartbeat: None,
        }
    }

    fn chaos(mut self, plan: NetPlan) -> RunSpec {
        self.chaos = Some(plan);
        self
    }

    fn heartbeat(mut self) -> RunSpec {
        self.heartbeat = Some((HEARTBEAT_MS, HEARTBEAT_BUDGET));
        self
    }

    fn fault(mut self, fault: FaultPlan) -> RunSpec {
        self.fault = fault;
        self
    }

    fn cadence(mut self, cadence: u32) -> RunSpec {
        self.cadence = cadence;
        self
    }
}

fn run(spec: RunSpec) -> TwRunResult {
    let (nl, gb, stim) = fixture();
    let mut b = TimeWarpConfig::builder()
        .transport(spec.transport)
        .window(8)
        .epochs_per_quantum(2)
        .gvt_interval(1)
        .checkpoint_cadence(CheckpointCadence::every_n_rounds(spec.cadence))
        .fault(spec.fault);
    if let Some(plan) = spec.chaos {
        b = b.chaos(plan);
    }
    if let Some((ms, budget)) = spec.heartbeat {
        b = b
            .heartbeat_interval(Duration::from_millis(ms))
            .heartbeat_budget(budget);
    }
    let cfg = b.build().expect("valid config");
    let plan = ClusterPlan::new(nl, gb, K as usize);
    run_timewarp(nl, &plan, stim, CYCLES, &cfg).expect("time warp run failed")
}

fn canonical(tw: &TwRunResult) -> String {
    tw_run_canonical_json(tw).emit().expect("canonical emit")
}

/// The undisturbed in-process reference artifact, computed once.
fn clean() -> &'static str {
    static CLEAN: OnceLock<String> = OnceLock::new();
    CLEAN.get_or_init(|| {
        let (nl, gb, stim) = fixture();
        let cfg = TimeWarpConfig::builder()
            .transport(Transport::in_proc(SCHED_SEED, SchedulePolicy::SeededRandom))
            .window(8)
            .epochs_per_quantum(2)
            .gvt_interval(1)
            .build()
            .expect("valid config");
        let plan = ClusterPlan::new(nl, gb, K as usize);
        canonical(&run_timewarp(nl, &plan, stim, CYCLES, &cfg).expect("clean run"))
    })
}

/// Byte-identity assertion that dumps both artifacts to
/// `target/tmp/tcp_chaos_diff_<label>.txt` on mismatch, for CI to upload.
fn assert_identical(got: &str, label: &str) {
    let expected = clean();
    if expected == got {
        return;
    }
    let slug: String = label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("tcp_chaos_diff_{slug}.txt"));
    let body = format!(
        "scenario: {label}\n\n--- expected (in-proc) ---\n{expected}\n\n--- got (chaos) ---\n{got}\n"
    );
    let _ = std::fs::write(&path, body);
    panic!("{label}: chaos artifact diverged from in-proc (diff dumped to {path:?})");
}

/// One seeded sweep iteration: draw the plan, run it, demand identity.
fn assert_seed_is_invisible(seed: u64) {
    let plan = NetPlan::seeded(seed, K);
    let tw = run(RunSpec::tcp().chaos(plan.clone()).heartbeat());
    assert!(
        !tw.recovery.degraded,
        "seed {seed:#018x}: degraded under plan {plan:?}"
    );
    assert_identical(&canonical(&tw), &format!("seed_{seed:016x}"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The acceptance sweep: every proptest-drawn seed expands to a
    /// replayable [`NetPlan`] (one to three faults over random clusters,
    /// directions, frames, and kinds — corruption, truncation,
    /// duplication, split writes, latency, stalls, partitions), and every
    /// one of them must recover to a byte-identical artifact.
    #[test]
    fn seeded_chaos_plans_recover_byte_identically(seed in any::<u64>()) {
        let _g = lock();
        let result = std::panic::catch_unwind(|| assert_seed_is_invisible(seed));
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            let dump = format!(
                "failing chaos sweep seed: {seed:#018x}\nplan: {:?}\n\npanic: {msg}\n",
                NetPlan::seeded(seed, K)
            );
            let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
            let _ = std::fs::create_dir_all(&dir);
            let _ = std::fs::write(dir.join(format!("tcp_chaos_seed_{seed:016x}.txt")), &dump);
            eprintln!("{dump}");
            std::panic::resume_unwind(payload);
        }
    }
}

/// The nightly wide sweep: 64 fixed seeds on top of the 16 proptest-drawn
/// ones, run in release from the cron workflow
/// (`cargo test --release -p dvs-bench --test tcp_chaos -- --ignored`).
/// Too slow for the per-push job; `#[ignore]` keeps it out of `cargo test`
/// while leaving it one flag away.
#[test]
#[ignore = "wide sweep, run by the nightly workflow with -- --ignored"]
fn nightly_wide_seed_sweep() {
    let _g = lock();
    for i in 0..64u64 {
        // splitmix-style spread so the seeds don't share low bits.
        let seed = (i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        assert_seed_is_invisible(seed);
    }
}

/// One fixed scenario per fault kind, each with its deterministic counter
/// expectations — benign kinds must not trigger recovery at all,
/// destructive kinds must be detected and recovered exactly once. The
/// default heartbeat interval (1 s) never fires on this workload, so the
/// frame sequence, and with it every counter, is exact.
#[test]
fn every_fault_kind_recovers_byte_identically() {
    let _g = lock();
    struct Scenario {
        label: &'static str,
        fault: NetFault,
        crashes: u32,
        corrupt_frames: u64,
    }
    let fault = |cluster, dir, frame, kind| NetFault {
        cluster,
        dir,
        frame,
        kind,
    };
    let scenarios = [
        Scenario {
            label: "bitflip_from_worker",
            fault: fault(
                1,
                NetDir::FromWorker,
                8,
                NetFaultKind::BitFlip { offset: 5 },
            ),
            crashes: 1,
            corrupt_frames: 1,
        },
        // A flipped supervisor→worker frame is caught by the *worker's*
        // CRC check; it hangs up quietly and the supervisor observes the
        // loss as EOF, not as a locally corrupt frame.
        Scenario {
            label: "bitflip_to_worker",
            fault: fault(0, NetDir::ToWorker, 8, NetFaultKind::BitFlip { offset: 2 }),
            crashes: 1,
            corrupt_frames: 0,
        },
        Scenario {
            label: "truncate_from_worker",
            fault: fault(2, NetDir::FromWorker, 9, NetFaultKind::Truncate),
            crashes: 1,
            corrupt_frames: 0,
        },
        Scenario {
            label: "duplicate_from_worker",
            fault: fault(1, NetDir::FromWorker, 7, NetFaultKind::Duplicate),
            crashes: 0,
            corrupt_frames: 0,
        },
        Scenario {
            label: "duplicate_to_worker",
            fault: fault(2, NetDir::ToWorker, 6, NetFaultKind::Duplicate),
            crashes: 0,
            corrupt_frames: 0,
        },
        Scenario {
            label: "split_write_to_worker",
            fault: fault(0, NetDir::ToWorker, 6, NetFaultKind::SplitWrite),
            crashes: 0,
            corrupt_frames: 0,
        },
        Scenario {
            label: "latency_from_worker",
            fault: fault(
                1,
                NetDir::FromWorker,
                5,
                NetFaultKind::Latency { millis: 3 },
            ),
            crashes: 0,
            corrupt_frames: 0,
        },
    ];
    for s in scenarios {
        let tw = run(RunSpec::tcp().chaos(NetPlan::new().fault(s.fault)));
        let r = &tw.recovery;
        assert_eq!(
            r.chaos_faults_injected, 1,
            "{}: the fault never fired",
            s.label
        );
        assert_eq!(r.crashes, s.crashes, "{}: crash count", s.label);
        assert_eq!(r.restarts, s.crashes, "{}: every crash recovered", s.label);
        assert_eq!(
            r.corrupt_frames, s.corrupt_frames,
            "{}: corrupt frame count",
            s.label
        );
        assert!(!r.degraded, "{}: unexpected degradation", s.label);
        assert_identical(&canonical(&tw), s.label);
    }
}

/// Stalls (both directions dead) and partitions (one direction dead — the
/// classic half-open connection) leave no EOF to observe; only the
/// heartbeat prober can detect them. Detection must be bounded at
/// `budget × interval`, surface as *typed recovery* (a recovered crash
/// with `heartbeats_missed` charged, never a fatal `WorkerTimeout`), and
/// the recovered run must still be byte-identical.
#[test]
fn stall_and_partition_surface_as_typed_recovery() {
    let _g = lock();
    for (label, fault) in [
        (
            "stall",
            NetFault {
                cluster: 1,
                dir: NetDir::ToWorker,
                frame: 10,
                kind: NetFaultKind::Stall,
            },
        ),
        (
            "partition_from_worker",
            NetFault {
                cluster: 2,
                dir: NetDir::FromWorker,
                frame: 9,
                kind: NetFaultKind::Partition,
            },
        ),
    ] {
        let tw = run(RunSpec::tcp()
            .chaos(NetPlan::new().fault(fault))
            .heartbeat());
        let r = &tw.recovery;
        assert_eq!(r.crashes, 1, "{label}: the silent link was not detected");
        assert_eq!(r.restarts, 1, "{label}");
        assert_eq!(
            r.heartbeats_missed,
            u64::from(HEARTBEAT_BUDGET),
            "{label}: budget exhaustion must be charged exactly once"
        );
        assert_eq!(r.victims, vec![fault.cluster], "{label}: victim recorded");
        assert!(!r.degraded, "{label}");
        assert_identical(&canonical(&tw), label);
    }
}

/// The corrupt-restore fallback: the delta chain shipped with a restore is
/// poisoned (`FaultPlan::corrupt_restores`), the worker rejects it as
/// `DeltaError::Corrupt`, and the supervisor — instead of failing the run
/// — demotes the victim's log to its last full base and re-sends, burning
/// one extra restart-budget unit. One kill therefore costs two recorded
/// crashes and two restarts, and the run still converges byte-identically.
#[test]
fn corrupt_restore_falls_back_to_last_full_base() {
    let _g = lock();
    let fault = FaultPlan {
        crash_at: Some((0, 47)),
        crashes: 1,
        max_restarts: 4,
        corrupt_restores: 1,
    };
    let tw = run(RunSpec::tcp().fault(fault).cadence(4));
    let r = &tw.recovery;
    assert_eq!(
        (r.crashes, r.restarts),
        (2, 2),
        "one kill + one rejected chain must cost exactly two restart units"
    );
    assert_eq!(r.victims, vec![0, 0]);
    assert!(!r.degraded, "the base fallback must succeed, not degrade");
    assert_identical(&canonical(&tw), "corrupt_restore_fallback");
}

/// When the rejected chain burns the *last* restart unit, the fallback has
/// nothing left to retry with: the run degrades to the sequential
/// simulator gracefully — flagged, counters intact — rather than erroring
/// out or looping.
#[test]
fn corrupt_restore_against_exhausted_budget_degrades() {
    let _g = lock();
    let fault = FaultPlan {
        crash_at: Some((0, 47)),
        crashes: 1,
        max_restarts: 1,
        corrupt_restores: 1,
    };
    let tw = run(RunSpec::tcp().fault(fault).cadence(4));
    let r = &tw.recovery;
    assert!(r.degraded, "exhausted budget must degrade");
    assert_eq!(r.crashes, 2, "the rejected restore counts as a crash");
    assert_eq!(r.restarts, 1, "only one restart unit existed");
}
