//! Batching-equivalence suite: message batching must be invisible in the
//! results on every transport.
//!
//! The contract under test (see `EXPERIMENTS.md`, "Message batching"):
//! [`BatchPolicy`] changes how many frames (or channel pushes) carry the
//! kernel's messages — never which messages are applied, nor in what
//! order. Concretely:
//!
//! * **InProc / Process / TCP** (deterministic transports): the canonical
//!   artifact of a batched run is **byte-identical** to the unbatched
//!   same-seed run. Batching here is receiver-side staging — the committed
//!   FIFO queue tail rides one `msg_batch` frame and later deliveries are
//!   payload-free `deliver_next` commands — so the supervisor's decision
//!   sequence is untouched by construction, and these tests prove the
//!   implementation honours that.
//! * **Threads** (free-running): counters depend on OS interleaving, so
//!   byte-equality is not defined; instead the final net values must match
//!   the unbatched run (both equal the sequential simulator) and message
//!   conservation must hold: `emitted == messages_sent + messages_folded`.
//!
//! Failing cases are dumped to `target/tmp/batch_equiv_failure_*.txt`
//! (same convention as the DST fuzzers) and CI's `batch-fuzz` job uploads
//! the set.

use dvs_core::tw_run_canonical_json;
use dvs_core::{partition_multiway, MultiwayConfig};
use dvs_sim::cluster::ClusterPlan;
use dvs_sim::stimulus::VectorStimulus;
use dvs_sim::timewarp::dst::first_cut_channel;
use dvs_sim::timewarp::{
    run_timewarp, BatchPolicy, SchedulePolicy, TimeWarpConfig, Transport, TwRunResult,
};
use dvs_verilog::netlist::Netlist;
use dvs_verilog::parse_and_elaborate;
use dvs_workloads::seqcirc::{generate_counter, generate_lfsr};
use dvs_workloads::viterbi::{generate_viterbi, ViterbiParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_tw_worker"))
}

/// Everything needed to replay one equivalence case.
#[derive(Debug, Clone)]
struct EquivCase {
    counter_not_lfsr: bool,
    bits: u32,
    k: usize,
    part_seed: u64,
    stim_seed: u64,
    sched_seed: u64,
    policy_sel: u8,
    window: u64,
    max_size: usize,
    max_delay: u64,
    cycles: u64,
}

fn case_strategy() -> impl Strategy<Value = EquivCase> {
    let circuit = (any::<bool>(), 2u32..6, 2usize..4, any::<u64>());
    let seeds = (any::<u64>(), any::<u64>(), 0u8..5);
    let kernel = (
        prop_oneof![Just(4u64), Just(16u64), Just(64u64)],
        (
            prop_oneof![Just(2usize), Just(8usize), Just(32usize)],
            prop_oneof![Just(1u64), Just(4u64)],
        ),
        10u64..40,
    );
    (circuit, seeds, kernel).prop_map(
        |(
            (counter_not_lfsr, bits, k, part_seed),
            (stim_seed, sched_seed, policy_sel),
            (window, (max_size, max_delay), cycles),
        )| EquivCase {
            counter_not_lfsr,
            bits,
            k,
            part_seed,
            stim_seed,
            sched_seed,
            policy_sel,
            window,
            max_size,
            max_delay,
            cycles,
        },
    )
}

fn elaborate_case(case: &EquivCase) -> Netlist {
    let src = if case.counter_not_lfsr {
        generate_counter(case.bits)
    } else {
        generate_lfsr(case.bits.max(2), &[case.bits.max(2), 1])
    };
    parse_and_elaborate(&src)
        .expect("generated circuit parses")
        .into_netlist()
}

/// A seeded random gate→cluster assignment with every cluster non-empty.
fn random_partition(nl: &Netlist, k: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = nl.gate_count();
    let mut gb: Vec<u32> = (0..n).map(|_| rng.gen_range(0..k as u32)).collect();
    for (i, slot) in gb.iter_mut().enumerate().take(k.min(n)) {
        *slot = i as u32;
    }
    gb
}

fn policy_for(case: &EquivCase, plan: &ClusterPlan) -> SchedulePolicy {
    match case.policy_sel {
        0 => SchedulePolicy::RoundRobin,
        1 => SchedulePolicy::SeededRandom,
        2 => SchedulePolicy::StragglerHeavy,
        3 => match first_cut_channel(plan) {
            Some((src, dst)) => SchedulePolicy::DelayChannel { src, dst },
            None => SchedulePolicy::SeededRandom,
        },
        _ => SchedulePolicy::Bursty,
    }
}

fn batched(case: &EquivCase) -> BatchPolicy {
    BatchPolicy::PerQuantum {
        max_size: case.max_size,
        max_delay: case.max_delay,
    }
}

fn config(transport: Transport, window: u64, policy: BatchPolicy) -> TimeWarpConfig {
    TimeWarpConfig::builder()
        .transport(transport)
        .window(window)
        .epochs_per_quantum(2)
        .gvt_interval(1)
        .message_batching(policy)
        .build()
        .expect("valid config")
}

fn run(
    nl: &Netlist,
    gb: &[u32],
    k: usize,
    stim: &VectorStimulus,
    cycles: u64,
    cfg: &TimeWarpConfig,
) -> TwRunResult {
    let plan = ClusterPlan::new(nl, gb, k);
    run_timewarp(nl, &plan, stim, cycles, cfg).expect("time warp run failed")
}

fn canonical(tw: &TwRunResult) -> String {
    tw_run_canonical_json(tw).emit().expect("canonical emit")
}

/// Deterministic transports must pin `messages_folded` to zero: FIFO order
/// guarantees a positive message is delivered before its anti-message can
/// even be staged, so there is never an unsent pair to cancel.
fn assert_wire_counters_sane(tw: &TwRunResult, label: &str) {
    assert_eq!(
        tw.recovery.messages_folded, 0,
        "{label}: deterministic transports never fold"
    );
    assert!(
        tw.recovery.frames_sent <= tw.recovery.messages_sent,
        "{label}: a frame carries at least one message"
    );
}

/// Run `f`, dumping `case` (and the panic message) to
/// `target/tmp/batch_equiv_failure_<test>_<hash>.txt` on failure.
fn with_dump<F: FnOnce()>(case: &EquivCase, test: &str, f: F) {
    use std::hash::{Hash, Hasher};
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    if let Err(payload) = result {
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("<non-string panic>");
        let dump = format!("failing batch-equivalence case ({test}):\n{case:#?}\n\npanic: {msg}\n");
        let mut h = std::collections::hash_map::DefaultHasher::new();
        format!("{case:?}").hash(&mut h);
        let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
        let _ = std::fs::create_dir_all(dir);
        let name = format!("batch_equiv_failure_{test}_{:016x}.txt", h.finish());
        let _ = std::fs::write(dir.join(name), &dump);
        eprintln!("{dump}");
        std::panic::resume_unwind(payload);
    }
}

/// The InProc deterministic executor: batching on vs off over random
/// circuits, partitions, schedules, and batch knobs must produce
/// byte-identical canonical artifacts.
fn run_inproc_case(case: &EquivCase) {
    let nl = elaborate_case(case);
    let gb = random_partition(&nl, case.k, case.part_seed);
    let plan = ClusterPlan::new(&nl, &gb, case.k);
    let policy = policy_for(case, &plan);
    let stim = VectorStimulus::from_netlist(&nl, 10, case.stim_seed);
    let transport = || Transport::in_proc(case.sched_seed, policy);

    let off = run(
        &nl,
        &gb,
        case.k,
        &stim,
        case.cycles,
        &config(transport(), case.window, BatchPolicy::Off),
    );
    let on = run(
        &nl,
        &gb,
        case.k,
        &stim,
        case.cycles,
        &config(transport(), case.window, batched(case)),
    );
    assert_wire_counters_sane(&on, "inproc batched");
    assert_eq!(
        canonical(&off),
        canonical(&on),
        "batching changed the InProc canonical artifact under {policy:?}"
    );
}

/// Real threads: batching on vs off must converge to the same final values
/// (both equal the sequential simulator — asserted transitively by the
/// threads fuzz suite) and conserve messages through the fold counter.
fn run_threads_case(case: &EquivCase) {
    let nl = elaborate_case(case);
    let gb = random_partition(&nl, case.k, case.part_seed);
    let stim = VectorStimulus::from_netlist(&nl, 10, case.stim_seed);

    let off = run(
        &nl,
        &gb,
        case.k,
        &stim,
        case.cycles,
        &config(Transport::Threads, case.window, BatchPolicy::Off),
    );
    let on = run(
        &nl,
        &gb,
        case.k,
        &stim,
        case.cycles,
        &config(Transport::Threads, case.window, batched(case)),
    );
    assert_eq!(
        off.values, on.values,
        "batching changed the threaded transport's final state"
    );
    for (tw, label) in [(&off, "threads unbatched"), (&on, "threads batched")] {
        let emitted = tw.stats.messages + tw.stats.anti_messages;
        assert_eq!(
            emitted,
            tw.recovery.messages_sent + tw.recovery.messages_folded,
            "{label}: emitted messages must equal shipped + folded"
        );
    }
    assert_eq!(
        off.recovery.messages_folded, 0,
        "unbatched sends cannot fold"
    );
}

/// The wire transports (Process, TCP): batching on vs off over random
/// cases must produce byte-identical canonical artifacts, with real
/// `msg_batch` frames crossing real sockets.
fn run_wire_case(case: &EquivCase) {
    let nl = elaborate_case(case);
    let gb = random_partition(&nl, case.k, case.part_seed);
    let plan = ClusterPlan::new(&nl, &gb, case.k);
    let policy = policy_for(case, &plan);
    let stim = VectorStimulus::from_netlist(&nl, 10, case.stim_seed);

    let baseline = canonical(&run(
        &nl,
        &gb,
        case.k,
        &stim,
        case.cycles,
        &config(
            Transport::in_proc(case.sched_seed, policy),
            case.window,
            BatchPolicy::Off,
        ),
    ));
    type CaseLeg = fn(&EquivCase, SchedulePolicy) -> Transport;
    let legs: [(&str, CaseLeg); 2] = [
        ("process", |c, p| {
            Transport::process_with_worker(c.sched_seed, p, worker_bin())
        }),
        ("tcp", |c, p| {
            Transport::tcp_with_worker(c.sched_seed, p, worker_bin())
        }),
    ];
    for (name, transport) in legs {
        for (mode, bp) in [("off", BatchPolicy::Off), ("on", batched(case))] {
            let tw = run(
                &nl,
                &gb,
                case.k,
                &stim,
                case.cycles,
                &config(transport(case, policy), case.window, bp),
            );
            let label = format!("{name} batching {mode}");
            assert_eq!(tw.recovery.crashes, 0, "{label}: phantom crash");
            assert_wire_counters_sane(&tw, &label);
            assert_eq!(
                canonical(&tw),
                baseline,
                "{label}: artifact diverged from unbatched InProc baseline"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn inproc_batching_is_byte_invisible(case in case_strategy()) {
        with_dump(&case, "inproc", || run_inproc_case(&case));
    }
}

proptest! {
    // Real threads are slower; the InProc sweep covers schedule space.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn threads_batching_preserves_values(case in case_strategy()) {
        with_dump(&case, "threads", || run_threads_case(&case));
    }
}

proptest! {
    // Each case spawns 4 × k OS processes (or TCP workers); keep the
    // count modest — the fixed-fixture test below always runs the
    // interesting schedules.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn wire_batching_is_byte_invisible(case in case_strategy()) {
        with_dump(&case, "wire", || run_wire_case(&case));
    }
}

/// The paper-class fixture (tiny Viterbi, k = 3) across every named
/// schedule, both wire transports, and several batch shapes: every leg
/// must reproduce the unbatched InProc artifact byte for byte, and the
/// deep-queue `Bursty` schedule must actually coalesce — strictly fewer
/// frames than messages on the batched legs.
#[test]
fn viterbi_fixture_batching_equivalence() {
    const K: u32 = 3;
    const CYCLES: u64 = 20;
    let src = generate_viterbi(&ViterbiParams::tiny());
    let nl = dvs_verilog::parse_and_elaborate(&src)
        .expect("viterbi elaborates")
        .into_netlist();
    let part = partition_multiway(&nl, &MultiwayConfig::new(K, 20.0));
    let gb = part.gate_blocks;
    let stim = VectorStimulus::from_netlist(&nl, 10, 7);

    for policy in [
        SchedulePolicy::RoundRobin,
        SchedulePolicy::SeededRandom,
        SchedulePolicy::Bursty,
    ] {
        let baseline = canonical(&run(
            &nl,
            &gb,
            K as usize,
            &stim,
            CYCLES,
            &config(Transport::in_proc(2008, policy), 8, BatchPolicy::Off),
        ));
        let shapes = [
            BatchPolicy::PerQuantum {
                max_size: 2,
                max_delay: 1,
            },
            BatchPolicy::per_quantum(),
        ];
        type WireLeg = fn(SchedulePolicy) -> Transport;
        let legs: [(&str, WireLeg); 2] = [
            ("process", |p| {
                Transport::process_with_worker(2008, p, worker_bin())
            }),
            ("tcp", |p| Transport::tcp_with_worker(2008, p, worker_bin())),
        ];
        for (name, transport) in legs {
            for bp in shapes {
                let tw = run(
                    &nl,
                    &gb,
                    K as usize,
                    &stim,
                    CYCLES,
                    &config(transport(policy), 8, bp),
                );
                let label = format!("{name} {policy:?} {bp:?}");
                assert_eq!(tw.recovery.crashes, 0, "{label}: phantom crash");
                assert_wire_counters_sane(&tw, &label);
                if policy == SchedulePolicy::Bursty {
                    assert!(
                        tw.recovery.frames_sent < tw.recovery.messages_sent,
                        "{label}: bursty queues never coalesced \
                         (frames {} / messages {})",
                        tw.recovery.frames_sent,
                        tw.recovery.messages_sent
                    );
                }
                assert_eq!(canonical(&tw), baseline, "{label}: artifact diverged");
            }
        }
    }
}
