//! Kill-harness tests for [`Transport::Tcp`]: real `tw_worker` OS
//! processes dialing a localhost TCP listener, real `SIGKILL`s, real
//! supervisor-side connection resets — and the strongest oracle the kernel
//! offers: the canonical artifact of a crashed-and-recovered TCP run must
//! be **byte-identical** to the same-seed undisturbed in-process run.
//!
//! The worker binary is the `tw_worker` sibling target of this crate;
//! Cargo hands its path to integration tests via `CARGO_BIN_EXE_tw_worker`.
//!
//! Tests in this file serialize on a mutex: the reset and self-kill
//! scenarios configure workers through the process environment
//! (`DVS_TW_TCP_FAULT`, `DVS_TW_SELFKILL`), which would leak into any
//! concurrently spawned worker.
//!
//! On an artifact mismatch the failing pair is dumped to
//! `target/tmp/tcp_kill_diff_<label>.txt` so CI can upload it.

use dvs_core::tw_run_canonical_json;
use dvs_core::{partition_multiway, MultiwayConfig};
use dvs_sim::cluster::ClusterPlan;
use dvs_sim::stimulus::VectorStimulus;
use dvs_sim::timewarp::{
    run_timewarp, BatchPolicy, CheckpointCadence, FaultPlan, SchedulePolicy, TimeWarpConfig,
    Transport, TwRunResult,
};
use dvs_verilog::Netlist;
use dvs_workloads::viterbi::{generate_viterbi, ViterbiParams};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};

const K: u32 = 3;
const CYCLES: u64 = 20;
const STIM_SEED: u64 = 7;
const SCHED_SEED: u64 = 2008;

fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_tw_worker"))
}

/// Serialize every test in this file (see module docs).
fn lock() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

fn fixture() -> (Netlist, Vec<u32>, VectorStimulus) {
    let src = generate_viterbi(&ViterbiParams::tiny());
    let nl = dvs_verilog::parse_and_elaborate(&src)
        .expect("viterbi elaborates")
        .into_netlist();
    let part = partition_multiway(&nl, &MultiwayConfig::new(K, 20.0));
    let stim = VectorStimulus::from_netlist(&nl, 10, STIM_SEED);
    (nl, part.gate_blocks, stim)
}

fn config(transport: Transport, fault: FaultPlan) -> TimeWarpConfig {
    config_cadenced(transport, fault, 1)
}

fn config_cadenced(transport: Transport, fault: FaultPlan, cadence: u32) -> TimeWarpConfig {
    TimeWarpConfig::builder()
        .transport(transport)
        .window(8)
        .epochs_per_quantum(2)
        .gvt_interval(1)
        .checkpoint_cadence(CheckpointCadence::every_n_rounds(cadence))
        .fault(fault)
        .build()
        .expect("valid config")
}

/// Same kernel knobs as [`config`] but with per-quantum message batching
/// on — `msg_batch` wire frames stage message tails worker-side.
fn config_batched(transport: Transport, fault: FaultPlan) -> TimeWarpConfig {
    TimeWarpConfig::builder()
        .transport(transport)
        .window(8)
        .epochs_per_quantum(2)
        .gvt_interval(1)
        .message_batching(BatchPolicy::per_quantum())
        .fault(fault)
        .build()
        .expect("valid config")
}

fn run(nl: &Netlist, gb: &[u32], stim: &VectorStimulus, cfg: &TimeWarpConfig) -> TwRunResult {
    let plan = ClusterPlan::new(nl, gb, K as usize);
    run_timewarp(nl, &plan, stim, CYCLES, cfg).expect("time warp run failed")
}

fn canonical(tw: &TwRunResult) -> String {
    tw_run_canonical_json(tw).emit().expect("canonical emit")
}

fn in_proc(policy: SchedulePolicy) -> Transport {
    Transport::in_proc(SCHED_SEED, policy)
}

fn tcp(policy: SchedulePolicy) -> Transport {
    Transport::tcp_with_worker(SCHED_SEED, policy, worker_bin())
}

/// Byte-identity assertion that dumps both artifacts to
/// `target/tmp/tcp_kill_diff_<label>.txt` on mismatch, for CI to upload.
fn assert_identical(expected: &str, got: &str, label: &str) {
    if expected == got {
        return;
    }
    let slug: String = label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("tcp_kill_diff_{slug}.txt"));
    let body = format!(
        "scenario: {label}\n\n--- expected (in-proc) ---\n{expected}\n\n--- got (tcp) ---\n{got}\n"
    );
    let _ = std::fs::write(&path, body);
    panic!("{label}: TCP artifact diverged from in-proc (diff dumped to {path:?})");
}

/// An undisturbed TCP run must be byte-identical to the same-seed
/// in-process run: the transport is invisible in the artifacts.
#[test]
fn clean_tcp_run_matches_inproc_bytes() {
    let _g = lock();
    let (nl, gb, stim) = fixture();
    for policy in [SchedulePolicy::RoundRobin, SchedulePolicy::SeededRandom] {
        let a = run(
            &nl,
            &gb,
            &stim,
            &config(in_proc(policy), FaultPlan::default()),
        );
        let b = run(&nl, &gb, &stim, &config(tcp(policy), FaultPlan::default()));
        assert_eq!(b.recovery.crashes, 0, "{}: phantom crash", policy.name());
        assert_identical(
            &canonical(&a),
            &canonical(&b),
            &format!("clean_{}", policy.name()),
        );
    }
}

/// `SIGKILL` a worker at assorted decision depths (the supervisor's fault
/// injector kills the real OS process and observes the connection EOF).
/// The recovered run's canonical artifact must equal the undisturbed
/// in-proc run's, byte for byte, and the victim must be recorded.
#[test]
fn sigkilled_tcp_worker_recovers_byte_identically() {
    let _g = lock();
    let (nl, gb, stim) = fixture();
    let policy = SchedulePolicy::SeededRandom;
    let clean = canonical(&run(
        &nl,
        &gb,
        &stim,
        &config(in_proc(policy), FaultPlan::default()),
    ));
    // Decision indices chosen from the seed to cover early/mid/late kills
    // without hand-tuning to the workload.
    let mut fired = 0u32;
    for (victim, at) in [(0u32, 3u64), (1, 47), (2, 211), (0, 800)] {
        let tw = run(
            &nl,
            &gb,
            &stim,
            &config(tcp(policy), FaultPlan::crash(victim, at)),
        );
        let label = format!("kill cluster {victim} at decision {at}");
        assert_eq!(
            tw.recovery.crashes, tw.recovery.restarts,
            "{label}: every kill must be recovered"
        );
        assert!(!tw.recovery.degraded, "{label}: unexpected degradation");
        assert_eq!(
            tw.recovery.victims,
            vec![victim; tw.recovery.crashes as usize],
            "{label}: victim not recorded"
        );
        fired += tw.recovery.crashes;
        assert_identical(&clean, &canonical(&tw), &label);
    }
    assert!(fired >= 2, "sweep fired only {fired} kills — widen indices");
}

/// The batching leg over TCP: `SIGKILL`s and a connection reset land while
/// batched tails sit staged on the worker. The respawned worker starts
/// with batching renegotiated from its fresh hello and an empty stage; the
/// supervisor's input-log replay must still converge on the byte-identical
/// artifact of an **unbatched** undisturbed in-proc run.
#[test]
fn faults_with_batching_recover_byte_identically() {
    let _g = lock();
    let (nl, gb, stim) = fixture();
    let policy = SchedulePolicy::SeededRandom;
    let clean = canonical(&run(
        &nl,
        &gb,
        &stim,
        &config(in_proc(policy), FaultPlan::default()),
    ));
    // Clean batched run first: prove the staging path is exercised.
    let quiet = run(
        &nl,
        &gb,
        &stim,
        &config_batched(tcp(policy), FaultPlan::default()),
    );
    assert_eq!(quiet.recovery.crashes, 0, "phantom crash under batching");
    assert_eq!(
        quiet.recovery.messages_folded, 0,
        "deterministic transports never fold"
    );
    assert!(
        quiet.recovery.frames_sent < quiet.recovery.messages_sent,
        "batching shipped no multi-message frames ({} frames / {} messages)",
        quiet.recovery.frames_sent,
        quiet.recovery.messages_sent
    );
    assert_identical(&clean, &canonical(&quiet), "clean batched tcp");
    // Kill legs at the depths the unbatched sweep uses.
    let mut fired = 0u32;
    for (victim, at) in [(0u32, 3u64), (1, 47), (2, 211)] {
        let tw = run(
            &nl,
            &gb,
            &stim,
            &config_batched(tcp(policy), FaultPlan::crash(victim, at)),
        );
        let label = format!("batched kill cluster {victim} at decision {at}");
        assert_eq!(
            tw.recovery.crashes, tw.recovery.restarts,
            "{label}: every kill must be recovered"
        );
        assert!(!tw.recovery.degraded, "{label}: unexpected degradation");
        fired += tw.recovery.crashes;
        assert_identical(&clean, &canonical(&tw), &label);
    }
    assert!(fired >= 2, "sweep fired only {fired} kills — widen indices");
    // Reset leg: stream torn down with staged tails, process survives.
    std::env::set_var("DVS_TW_TCP_FAULT", "reset");
    let reset = run(
        &nl,
        &gb,
        &stim,
        &config_batched(tcp(policy), FaultPlan::crash(1, 47)),
    );
    std::env::remove_var("DVS_TW_TCP_FAULT");
    assert_eq!(reset.recovery.crashes, 1, "batched reset did not fire");
    assert_identical(&clean, &canonical(&reset), "batched reset cluster 1");
}

/// Supervisor-side connection reset (`DVS_TW_TCP_FAULT=reset`): the stream
/// is torn down while the worker process stays up — the network-partition
/// shape of a fault, as opposed to host death. The supervisor must treat
/// the dropped connection exactly like a kill: respawn, restore from the
/// last GVT checkpoint, replay, and converge to the undisturbed artifact.
#[test]
fn reset_connection_recovers_byte_identically() {
    let _g = lock();
    let (nl, gb, stim) = fixture();
    let policy = SchedulePolicy::SeededRandom;
    let clean = canonical(&run(
        &nl,
        &gb,
        &stim,
        &config(in_proc(policy), FaultPlan::default()),
    ));
    std::env::set_var("DVS_TW_TCP_FAULT", "reset");
    let tw = run(
        &nl,
        &gb,
        &stim,
        &config(tcp(policy), FaultPlan::crash(1, 47)),
    );
    std::env::remove_var("DVS_TW_TCP_FAULT");
    assert_eq!(tw.recovery.crashes, 1, "reset did not fire");
    assert_eq!(tw.recovery.restarts, 1);
    assert_eq!(tw.recovery.victims, vec![1]);
    assert!(!tw.recovery.degraded);
    assert_identical(&clean, &canonical(&tw), "reset cluster 1 at decision 47");
}

/// The acceptance scenario of this PR in one run each way: one worker
/// `SIGKILL`ed *and* one connection reset mid-run, artifact still
/// byte-identical to the undisturbed in-proc run. (The deterministic
/// fault injector arms one victim per run, so the two faults are split
/// across two runs — each recovering on top of an already-exercised
/// recovery path at a different decision depth.)
#[test]
fn killed_and_reset_mid_run_still_byte_identical() {
    let _g = lock();
    let (nl, gb, stim) = fixture();
    let policy = SchedulePolicy::RoundRobin;
    let clean = canonical(&run(
        &nl,
        &gb,
        &stim,
        &config(in_proc(policy), FaultPlan::default()),
    ));
    // Leg 1: SIGKILL cluster 0 early.
    let killed = run(
        &nl,
        &gb,
        &stim,
        &config(tcp(policy), FaultPlan::crash(0, 3)),
    );
    assert!(killed.recovery.crashes >= 1, "kill leg fired no fault");
    assert_identical(&clean, &canonical(&killed), "acceptance kill leg");
    // Leg 2: reset cluster 2 later in the run.
    std::env::set_var("DVS_TW_TCP_FAULT", "reset");
    let reset = run(
        &nl,
        &gb,
        &stim,
        &config(tcp(policy), FaultPlan::crash(2, 211)),
    );
    std::env::remove_var("DVS_TW_TCP_FAULT");
    assert!(reset.recovery.crashes >= 1, "reset leg fired no fault");
    assert_identical(&clean, &canonical(&reset), "acceptance reset leg");
}

/// The delta-cadence leg over TCP: bases every 4th GVT round, one
/// `SIGKILL` and one connection reset landing *between* bases — each
/// recovery restores from base + replayed delta chain shipped over the
/// socket, and the artifact stays byte-identical to the undisturbed
/// in-proc run.
#[test]
fn faults_between_bases_restore_from_delta_chain() {
    let _g = lock();
    let (nl, gb, stim) = fixture();
    let policy = SchedulePolicy::SeededRandom;
    let clean = canonical(&run(
        &nl,
        &gb,
        &stim,
        &config(in_proc(policy), FaultPlan::default()),
    ));
    // Kill leg: SIGKILL mid-chain.
    let killed = run(
        &nl,
        &gb,
        &stim,
        &config_cadenced(tcp(policy), FaultPlan::crash(1, 83), 4),
    );
    assert!(
        killed.recovery.crashes >= 1,
        "cadence kill leg fired no fault"
    );
    assert!(
        killed.recovery.checkpoint_bytes_delta > 0,
        "cadence kill leg counted no delta bytes"
    );
    assert_identical(&clean, &canonical(&killed), "cadence kill cluster 1 at 83");
    // Reset leg: connection torn down mid-chain while the process lives.
    std::env::set_var("DVS_TW_TCP_FAULT", "reset");
    let reset = run(
        &nl,
        &gb,
        &stim,
        &config_cadenced(tcp(policy), FaultPlan::crash(2, 211), 4),
    );
    std::env::remove_var("DVS_TW_TCP_FAULT");
    assert!(
        reset.recovery.crashes >= 1,
        "cadence reset leg fired no fault"
    );
    assert!(
        reset.recovery.checkpoint_bytes_delta > 0,
        "cadence reset leg counted no delta bytes"
    );
    assert_identical(&clean, &canonical(&reset), "cadence reset cluster 2 at 211");
}

/// Asynchronous death over TCP: the worker aborts *itself*
/// (`DVS_TW_SELFKILL`) right before dispatching a command, at a point the
/// supervisor did not choose. The supervisor sees a dead connection
/// mid-exchange and must still converge to the undisturbed artifact.
#[test]
fn selfkilled_tcp_worker_converges() {
    let _g = lock();
    let (nl, gb, stim) = fixture();
    let policy = SchedulePolicy::RoundRobin;
    let clean = canonical(&run(
        &nl,
        &gb,
        &stim,
        &config(in_proc(policy), FaultPlan::default()),
    ));
    // After the initial GVT-0 checkpoint (command 1), die before the 6th
    // command. The restored worker disarms the hook, so exactly one crash
    // fires.
    std::env::set_var("DVS_TW_SELFKILL", "1:6");
    let tw = run(&nl, &gb, &stim, &config(tcp(policy), FaultPlan::default()));
    std::env::remove_var("DVS_TW_SELFKILL");
    assert_eq!(tw.recovery.crashes, 1, "self-kill did not fire");
    assert_eq!(tw.recovery.restarts, 1);
    assert_eq!(tw.recovery.victims, vec![1]);
    assert_identical(&clean, &canonical(&tw), "selfkill cluster 1");
}

/// Killing the same worker more times than the restart budget allows
/// degrades to the sequential simulator — correct values, `degraded`
/// flagged, every victim recorded — rather than erroring out or hanging.
#[test]
fn exhausted_budget_degrades_gracefully() {
    let _g = lock();
    let (nl, gb, stim) = fixture();
    let policy = SchedulePolicy::RoundRobin;
    let fault = FaultPlan {
        crash_at: Some((2, 30)),
        crashes: 3,
        max_restarts: 2,
        corrupt_restores: 0,
    };
    let a = run(&nl, &gb, &stim, &config(in_proc(policy), fault));
    let b = run(&nl, &gb, &stim, &config(tcp(policy), fault));
    for (tw, which) in [(&a, "in-proc"), (&b, "tcp")] {
        assert!(tw.recovery.degraded, "{which}: budget was not exhausted");
        assert_eq!(tw.recovery.crashes, 3, "{which}");
        assert_eq!(tw.recovery.restarts, 2, "{which}");
        assert_eq!(tw.recovery.victims, vec![2, 2, 2], "{which}");
    }
    assert_identical(&canonical(&a), &canonical(&b), "degraded budget");
}
