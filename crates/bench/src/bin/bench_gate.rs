//! `bench_gate` — the deterministic perf-regression gate CI runs on every
//! push.
//!
//! ```text
//! bench_gate [--label NAME] [--baseline PATH] [--out PATH] [--write-baseline]
//!            [--case all|large]
//! ```
//!
//! With `--case all` (the default): runs the fixed smoke grid (see
//! `dvs_bench::gate::smoke_grid`), once serial and once on 4 threads per
//! case, asserts the canonical artifacts of the two legs are
//! byte-identical, then runs the incremental-checkpoint leg
//! (`dvs_bench::gate::delta_checkpoint_case` — the same run under base
//! cadence 1 vs 4, exact checkpoint byte counters pinned) and the
//! process- and TCP-transport legs
//! (`dvs_bench::gate::{process_case, tcp_case}` — real `tw_worker` OS
//! processes over a Unix socket and over localhost TCP, one worker
//! `SIGKILL`ed and recovered per leg, byte-compared against the
//! in-process run) and the network-chaos leg
//! (`dvs_bench::gate::tcp_chaos_case` — a bit-flipped frame, a stalled
//! link caught by the heartbeat prober, and a poisoned restore chain
//! falling back to the last full base, each recovering byte-identically
//! with its exact counters pinned) and the message-batching leg
//! (`dvs_bench::gate::batched_transport_case` — TCP under the bursty
//! schedule with per-quantum batching on vs off, byte-identical artifacts
//! and an at-least-2x frame reduction, exact frame/message counters
//! pinned), writes `BENCH_<label>.json`, and compares against the
//! checked-in baseline.
//!
//! With `--case large`: runs only the paper-scale nightly case
//! (`dvs_bench::gate::large_case`). The serial-vs-threaded determinism
//! check still gates the run, but no baseline comparison happens — the
//! artifact is a nightly tracking record, not a per-push pin.
//!
//! Exit status:
//!
//! * `0` — gate passed (or `--write-baseline` refreshed the baseline);
//! * `1` — determinism broken, a counter drifted, or a time left its
//!   tolerance band;
//! * `2` — usage or I/O error (unreadable baseline, unwritable artifact,
//!   missing `tw_worker` binary).

use dvs_bench::gate::{
    batched_transport_case, bench_artifact, compare, delta_checkpoint_case, large_case,
    process_case, run_case, smoke_grid, tcp_case, tcp_chaos_case, Tolerances,
};
use dvs_core::json::Json;
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let mut label = "local".to_string();
    let mut baseline_path = "results/bench_baseline.json".to_string();
    let mut out_path: Option<String> = None;
    let mut write_baseline = false;
    let mut which = "all".to_string();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--label" => label = need(&mut args, "--label needs a name"),
            "--baseline" => baseline_path = need(&mut args, "--baseline needs a path"),
            "--out" => out_path = Some(need(&mut args, "--out needs a path")),
            "--write-baseline" => write_baseline = true,
            "--case" => which = need(&mut args, "--case needs a value (all|large)"),
            "--help" | "-h" => {
                println!(
                    "usage: bench_gate [--label NAME] [--baseline PATH] [--out PATH] \
                     [--write-baseline] [--case all|large]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument `{other}` (see --help)");
                std::process::exit(2);
            }
        }
    }
    if which != "all" && which != "large" {
        eprintln!("--case must be `all` or `large`, got `{which}`");
        std::process::exit(2);
    }
    if write_baseline && which != "all" {
        eprintln!("--write-baseline only makes sense with the full `--case all` run");
        std::process::exit(2);
    }
    let out_path = out_path.unwrap_or_else(|| format!("BENCH_{label}.json"));

    let t0 = Instant::now();
    let mut cases = Vec::new();
    if which == "large" {
        let t = Instant::now();
        match large_case() {
            Ok(artifact) => {
                eprintln!(
                    "   case `{}`: serial and threaded legs agree [{:.2?}]",
                    artifact.name,
                    t.elapsed()
                );
                cases.push(artifact);
            }
            Err(e) => {
                eprintln!("FAIL {e}");
                std::process::exit(1);
            }
        }
    } else {
        let grid = smoke_grid();
        for case in &grid {
            let t = Instant::now();
            match run_case(case) {
                Ok(artifact) => {
                    eprintln!(
                        "   case `{}`: serial and threaded legs agree [{:.2?}]",
                        case.name,
                        t.elapsed()
                    );
                    cases.push(artifact);
                }
                Err(e) => {
                    eprintln!("FAIL {e}");
                    std::process::exit(1);
                }
            }
        }

        let t = Instant::now();
        match delta_checkpoint_case() {
            Ok(artifact) => {
                eprintln!(
                    "   case `{}`: clean, all-bases, and delta-cadence legs agree [{:.2?}]",
                    artifact.name,
                    t.elapsed()
                );
                cases.push(artifact);
            }
            Err(e) => {
                eprintln!("FAIL {e}");
                std::process::exit(1);
            }
        }

        let worker = find_worker();
        type Leg = fn(&std::path::Path) -> Result<dvs_bench::gate::CaseArtifact, String>;
        for (name, leg) in [
            ("process_transport", process_case as Leg),
            ("tcp_transport", tcp_case as Leg),
            ("tcp_chaos", tcp_chaos_case as Leg),
            ("batched_transport", batched_transport_case as Leg),
        ] {
            let t = Instant::now();
            match leg(&worker) {
                Ok(artifact) => {
                    eprintln!(
                        "   case `{name}`: in-process, wire-transport, and \
                         crash-recovered legs agree [{:.2?}]",
                        t.elapsed()
                    );
                    cases.push(artifact);
                }
                Err(e) => {
                    eprintln!("FAIL {e}");
                    std::process::exit(1);
                }
            }
        }
    }

    let artifact = bench_artifact(&label, &cases);
    let pretty = artifact.emit_pretty().unwrap_or_else(|e| {
        eprintln!("cannot serialize artifact: {e}");
        std::process::exit(2);
    });
    write_file(&out_path, &pretty);
    eprintln!("   wrote {out_path}");

    if which == "large" {
        eprintln!(
            "OK nightly tracking run: {} case(s), no baseline comparison [{:.2?}]",
            cases.len(),
            t0.elapsed()
        );
        return;
    }

    if write_baseline {
        // The baseline is the same artifact under a fixed label, so runs
        // on any machine diff only in the host section (tolerance-banded).
        let base = bench_artifact("baseline", &cases);
        let pretty = base.emit_pretty().expect("serialize baseline");
        write_file(&baseline_path, &pretty);
        eprintln!("   wrote {baseline_path} (baseline refreshed)");
        return;
    }

    let text = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
        eprintln!(
            "cannot read baseline `{baseline_path}`: {e}\n\
             (generate one with `bench_gate --write-baseline`)"
        );
        std::process::exit(2);
    });
    let baseline = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("baseline `{baseline_path}` is not valid JSON: {e}");
        std::process::exit(2);
    });
    let outcome = compare(&artifact, &baseline, &Tolerances::default()).unwrap_or_else(|e| {
        eprintln!("baseline `{baseline_path}` is malformed: {e}");
        std::process::exit(2);
    });
    if !outcome.passed() {
        eprintln!(
            "FAIL bench gate: {} regression(s)",
            outcome.regressions.len()
        );
        for r in &outcome.regressions {
            eprintln!("  - {r}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "OK bench gate: {} cases, {} metrics checked against {baseline_path} [{:.2?}]",
        cases.len(),
        outcome.checked,
        t0.elapsed()
    );
}

/// Locate the `tw_worker` binary for the process-transport leg:
/// `DVS_TW_WORKER` if set, else the sibling of this executable (both are
/// `dvs-bench` targets, so a workspace build places them together).
fn find_worker() -> PathBuf {
    let sibling = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("tw_worker")));
    let candidate = std::env::var_os("DVS_TW_WORKER")
        .map(PathBuf::from)
        .or(sibling);
    match candidate {
        Some(p) if p.exists() => p,
        _ => {
            eprintln!(
                "tw_worker binary not found — build it alongside bench_gate \
                 (`cargo build --release -p dvs-bench --bins`) or point \
                 DVS_TW_WORKER at it"
            );
            std::process::exit(2);
        }
    }
}

fn need(args: &mut impl Iterator<Item = String>, msg: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("{msg}");
        std::process::exit(2);
    })
}

fn write_file(path: &str, contents: &str) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| {
                eprintln!("cannot create `{}`: {e}", dir.display());
                std::process::exit(2);
            });
        }
    }
    std::fs::write(path, contents).unwrap_or_else(|e| {
        eprintln!("cannot write `{path}`: {e}");
        std::process::exit(2);
    });
}
