//! Time Warp cluster worker: the child half of
//! [`dvs_sim::timewarp::Transport::Process`] and
//! [`dvs_sim::timewarp::Transport::Tcp`].
//!
//! Two modes:
//!
//! * `--socket <path>` — the supervisor spawned this worker and owns the
//!   per-cluster Unix-domain socket; connect back and serve.
//! * `--connect <host:port> --cluster <id> [--token <tok>]` — dial a TCP
//!   supervisor (retrying refused connections with deterministically
//!   jittered exponential backoff — seeded from the run token and cluster
//!   id, so retry schedules are reproducible yet decorrelated across
//!   workers — until `DVS_TW_CONNECT_MS` elapses) and serve cluster
//!   `<id>`. The run token
//!   may also come from `DVS_TW_TOKEN`; it scopes the dial-in to one
//!   supervisor run, so a stray or stale worker cannot disturb somebody
//!   else's simulation.
//!
//! All simulation state lives here, which is what makes a `SIGKILL` of
//! this process — or a dropped TCP connection — a true crash-stop fault
//! for the recovery supervisor to handle.

use std::ffi::OsString;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str =
    "usage: tw_worker --socket <path> | --connect <host:port> --cluster <id> [--token <tok>]";

enum Mode {
    Unix {
        socket: PathBuf,
    },
    Tcp {
        addr: String,
        cluster: u32,
        token: String,
    },
}

fn parse_args(args: Vec<OsString>) -> Result<Mode, String> {
    let mut socket: Option<PathBuf> = None;
    let mut addr: Option<String> = None;
    let mut cluster: Option<u32> = None;
    let mut token: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let value = |it: &mut dyn Iterator<Item = OsString>| {
            it.next()
                .ok_or_else(|| format!("{} needs a value", flag.to_string_lossy()))
        };
        match flag.to_str() {
            Some("--socket") => socket = Some(PathBuf::from(value(&mut it)?)),
            Some("--connect") => {
                addr = Some(
                    value(&mut it)?
                        .into_string()
                        .map_err(|_| "--connect address is not UTF-8".to_string())?,
                )
            }
            Some("--cluster") => {
                let v = value(&mut it)?;
                let v = v.to_string_lossy();
                cluster = Some(
                    v.parse::<u32>()
                        .map_err(|e| format!("--cluster {v}: {e}"))?,
                );
            }
            Some("--token") => {
                token = Some(
                    value(&mut it)?
                        .into_string()
                        .map_err(|_| "--token is not UTF-8".to_string())?,
                )
            }
            other => {
                return Err(format!(
                    "unknown argument {:?}",
                    other.unwrap_or("<non-UTF-8>")
                ))
            }
        }
    }
    match (socket, addr) {
        (Some(socket), None) => {
            if cluster.is_some() || token.is_some() {
                return Err("--cluster/--token only apply to --connect".to_string());
            }
            Ok(Mode::Unix { socket })
        }
        (None, Some(addr)) => {
            let cluster = cluster.ok_or_else(|| "--connect requires --cluster".to_string())?;
            let token = token
                .or_else(|| std::env::var("DVS_TW_TOKEN").ok())
                .unwrap_or_default();
            Ok(Mode::Tcp {
                addr,
                cluster,
                token,
            })
        }
        _ => Err("exactly one of --socket or --connect is required".to_string()),
    }
}

fn main() -> ExitCode {
    let mode = match parse_args(std::env::args_os().skip(1).collect()) {
        Ok(mode) => mode,
        Err(e) => {
            eprintln!("tw_worker: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let served = match mode {
        Mode::Unix { socket } => dvs_sim::timewarp::serve_worker(&socket),
        Mode::Tcp {
            addr,
            cluster,
            token,
        } => dvs_sim::timewarp::serve_worker_tcp(&addr, cluster, &token),
    };
    match served {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tw_worker: {e}");
            ExitCode::FAILURE
        }
    }
}
