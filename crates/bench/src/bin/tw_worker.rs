//! Time Warp cluster worker: the child half of
//! [`dvs_sim::timewarp::Transport::Process`].
//!
//! The supervisor spawns one of these per cluster with `--socket <path>`;
//! the worker connects back over the Unix-domain socket and serves framed
//! commands until told to finish (see `dvs_sim::timewarp::serve_worker`
//! for the protocol). All simulation state lives here, which is what makes
//! a `SIGKILL` of this process a true crash-stop fault for the recovery
//! supervisor to handle.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args_os().skip(1);
    let socket = match (args.next(), args.next(), args.next()) {
        (Some(flag), Some(path), None) if flag == "--socket" => PathBuf::from(path),
        _ => {
            eprintln!("usage: tw_worker --socket <path>");
            return ExitCode::from(2);
        }
    };
    match dvs_sim::timewarp::serve_worker(&socket) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tw_worker: {e}");
            ExitCode::FAILURE
        }
    }
}
