//! `repro` — regenerate every table and figure of Li & Tropper (ICPP 2008).
//!
//! ```text
//! repro [--scale quick|paper|full] [--jobs N] [--csv DIR]
//!       [--artifact PATH] [targets...]
//!
//! targets: table1 table2 table3 table4 table5 fig5 fig6 fig7 all
//!          (default: all)
//! ```
//!
//! `--jobs N` fans the per-`k` grid columns out over N worker threads
//! (`--jobs 0`, the default, uses the host's available parallelism). The
//! tables are identical for every value; only wall time changes.
//!
//! `--artifact PATH` additionally writes every emitted table plus the
//! headline numbers as one schema-versioned JSON artifact (the same
//! format family as `bench_gate`'s `BENCH_*.json`), for machine
//! consumption instead of scraping the printed tables.

use dvs_bench::experiments::*;
use dvs_core::json::{Json, ObjBuilder, ToJson, SCHEMA_VERSION};
use dvs_core::Parallelism;
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::time::Instant;

fn main() {
    let mut scale = "paper".to_string();
    let mut csv_dir: Option<String> = None;
    let mut artifact_path: Option<String> = None;
    let mut jobs: Option<usize> = None;
    let mut targets: BTreeSet<String> = BTreeSet::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                scale = args.next().unwrap_or_else(|| {
                    eprintln!("--scale needs quick|paper|full");
                    std::process::exit(2);
                })
            }
            "--csv" => {
                csv_dir = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--csv needs a directory");
                    std::process::exit(2);
                }))
            }
            "--artifact" => {
                artifact_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--artifact needs a path");
                    std::process::exit(2);
                }))
            }
            "--jobs" => {
                let n = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--jobs needs a thread count (0 = auto)");
                    std::process::exit(2);
                });
                jobs = Some(n);
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--scale quick|paper|full] [--jobs N] [--csv DIR] \
                     [--artifact PATH] [targets...]\n\
                     targets: table1 table2 table3 table4 table5 fig5 fig6 fig7 regime all"
                );
                return;
            }
            t => {
                targets.insert(t.to_string());
            }
        }
    }
    if targets.is_empty() || targets.contains("all") {
        for t in [
            "table1", "table2", "table3", "table4", "table5", "fig5", "fig6", "fig7", "regime",
        ] {
            targets.insert(t.to_string());
        }
        targets.remove("all");
    }

    let mut cfg = match scale.as_str() {
        "quick" => ReproConfig::quick(),
        "paper" => ReproConfig::paper_scaled(),
        "full" => ReproConfig::full(),
        other => {
            eprintln!("unknown scale `{other}` (quick|paper|full)");
            std::process::exit(2);
        }
    };
    cfg.parallelism = match jobs {
        None | Some(0) => Parallelism::Auto,
        Some(1) => Parallelism::Serial,
        Some(n) => Parallelism::Threads(n),
    };

    eprintln!(
        "== workload: Viterbi decoder K={} ({} states, {} banks) ==",
        cfg.viterbi.constraint_len,
        cfg.viterbi.states(),
        cfg.viterbi.banks()
    );
    let t0 = Instant::now();
    let wl = build_workload(&cfg);
    eprintln!(
        "   {} gates, {} nets, {} module instances (paper: 388 modules, ~1.2M gates) \
         [generated+elaborated in {:.2?}]",
        wl.stats.gates,
        wl.stats.nets,
        wl.stats.instances,
        t0.elapsed()
    );
    eprintln!(
        "   presim vectors: {}  full vectors: {}  k: {:?}  b: {:?}",
        cfg.presim_vectors, cfg.full_vectors, cfg.ks, cfg.bs
    );

    let t0 = Instant::now();
    let data = compute_grid(&wl, &cfg);
    eprintln!(
        "   grid of {} (k, b) points computed in {:.2?}\n",
        data.grid.len(),
        t0.elapsed()
    );

    let tables: RefCell<Vec<(String, Json)>> = RefCell::new(Vec::new());
    let emit = |name: &str, title: &str, table: dvs_core::report::Table| {
        println!("== {title} ==");
        println!("{}", table.render());
        if let Some(dir) = &csv_dir {
            std::fs::create_dir_all(dir).expect("create csv dir");
            let path = format!("{dir}/{name}.csv");
            std::fs::write(&path, table.to_csv()).expect("write csv");
            eprintln!("   wrote {path}");
        }
        if artifact_path.is_some() {
            tables
                .borrow_mut()
                .push((name.to_string(), table.to_json()));
        }
    };

    if targets.contains("table1") {
        emit(
            "table1",
            "Table 1: cut-size with design-driven partitioning algorithm",
            table1(&data),
        );
    }
    if targets.contains("table2") {
        emit(
            "table2",
            "Table 2: cut-size with hMetis partitioning algorithm",
            table2(&data),
        );
    }
    if targets.contains("table3") {
        println!(
            "(sequential pre-simulation time: {:.2} s; paper: 38.93 s)\n",
            data.seq_presim_seconds
        );
        emit(
            "table3",
            "Table 3: pre-simulation time with design-driven partitioning algorithm",
            table3(&data),
        );
    }
    if targets.contains("table4") {
        emit(
            "table4",
            "Table 4: best partition produced by design-driven partitioning algorithm",
            table4(&data),
        );
    }
    if targets.contains("table5") {
        let (t, _) = table5(&wl, &data);
        emit(
            "table5",
            "Table 5: simulation time with design-driven partitioning algorithm (full run)",
            t,
        );
    }
    if targets.contains("fig5") {
        emit(
            "fig5",
            "Figure 5: simulation time vs machines",
            fig5(&wl, &data),
        );
    }
    if targets.contains("fig6") {
        emit(
            "fig6",
            "Figure 6: message number during pre-simulation",
            fig6(&data),
        );
    }
    if targets.contains("regime") {
        emit(
            "regime",
            "Supplementary: partitioner regimes (trellis vs modular interconnect)",
            regime_table(&cfg),
        );
    }
    if targets.contains("fig7") {
        emit(
            "fig7",
            "Figure 7: rollback number during pre-simulation",
            fig7(&data),
        );
    }

    let h = headline(&wl, &data);
    println!("== Headline (paper §5) ==");
    println!(
        "cut ratio hMetis/design-driven (geomean) : {:.2}x  (paper reports 4.5x)",
        h.cut_ratio_vs_hmetis
    );
    println!(
        "partitioning time ratio hMetis/dd        : {:.0}x",
        h.time_ratio_vs_hmetis
    );
    println!(
        "best full-run speedup                    : {:.2} at k={} b={} (paper: 1.91 at k=4 b=7.5)",
        h.best_full_speedup, h.best_k, h.best_b
    );

    if let Some(path) = &artifact_path {
        let artifact = ObjBuilder::new()
            .int("schema_version", SCHEMA_VERSION)
            .str("kind", "repro_artifact")
            .str("scale", &scale)
            .field("design", wl.stats.to_json())
            .field("tables", Json::Object(tables.into_inner()))
            .field(
                "headline",
                ObjBuilder::new()
                    .float("cut_ratio_vs_hmetis", h.cut_ratio_vs_hmetis)
                    .float("time_ratio_vs_hmetis", h.time_ratio_vs_hmetis)
                    .float("best_full_speedup", h.best_full_speedup)
                    .uint("best_k", h.best_k as u64)
                    .float("best_b", h.best_b)
                    .build(),
            )
            .build();
        let text = artifact.emit_pretty().expect("serialize repro artifact");
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).expect("create artifact dir");
            }
        }
        std::fs::write(path, text).expect("write artifact");
        eprintln!("   wrote {path}");
    }
}
