//! `fullscale_probe` — a one-point feasibility check of the paper-scale
//! (~1.1 M gate) decoder: generation, elaboration, design-driven
//! partitioning at (k=4, b=7.5), and a 100-vector modeled cluster run.
//! The full `repro --scale full` grid takes hours; this answers "does the
//! stack handle a megagate netlist, and is the speedup positive?" in
//! seconds. See EXPERIMENTS.md §Running at full scale.

use std::time::Instant;
fn main() {
    let p = dvs_workloads::viterbi::ViterbiParams::full_scale();
    let t0 = Instant::now();
    let src = dvs_workloads::viterbi::generate_viterbi(&p);
    eprintln!(
        "generated {} MB in {:.1?}",
        src.len() / 1_000_000,
        t0.elapsed()
    );
    let t0 = Instant::now();
    let nl = dvs_verilog::parse_and_elaborate(&src)
        .unwrap()
        .into_netlist();
    eprintln!(
        "elaborated {} gates, {} instances in {:.1?}",
        nl.gate_count(),
        nl.instance_count(),
        t0.elapsed()
    );
    let t0 = Instant::now();
    let r = dvs_core::multiway::partition_multiway(
        &nl,
        &dvs_core::multiway::MultiwayConfig::new(4, 7.5),
    );
    eprintln!(
        "dd partition: cut {} bal {} in {:.1?}",
        r.cut,
        r.balanced,
        t0.elapsed()
    );
    let t0 = Instant::now();
    let plan = dvs_sim::cluster::ClusterPlan::new(&nl, &r.gate_blocks, 4);
    let model = dvs_sim::cluster_model::ClusterModel::new(
        &nl,
        plan,
        dvs_sim::cluster_model::ClusterModelConfig::athlon_cluster(nl.gate_count()),
    );
    let stim = dvs_sim::stimulus::VectorStimulus::from_netlist(&nl, 10, 1);
    let run = model.run(&stim, 100);
    eprintln!(
        "modeled 100 vectors in {:.1?}: speedup {:.2} msgs {}",
        t0.elapsed(),
        run.speedup,
        run.stats.messages
    );
}
