//! `fullscale_probe` — a one-point feasibility check of the paper-scale
//! (~1.1 M gate) decoder: generation, elaboration, design-driven
//! partitioning at (k=4, b=7.5), and a 100-vector modeled cluster run.
//! The full `repro --scale full` grid takes hours; this answers "does the
//! stack handle a megagate netlist, and is the speedup positive?" in
//! seconds. See EXPERIMENTS.md §Running at full scale.
//!
//! Progress goes to stderr; the result is a schema-versioned JSON
//! artifact (the same serializers as `bench_gate`/`repro`) on stdout, or
//! to a file with `--artifact PATH`.

use dvs_core::json::{ObjBuilder, ToJson, SCHEMA_VERSION};
use dvs_core::PartitionQuality;
use std::time::Instant;

fn main() {
    let mut artifact_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--artifact" => {
                artifact_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--artifact needs a path");
                    std::process::exit(2);
                }))
            }
            "--help" | "-h" => {
                println!("usage: fullscale_probe [--artifact PATH]");
                return;
            }
            other => {
                eprintln!("unknown argument `{other}` (see --help)");
                std::process::exit(2);
            }
        }
    }

    const K: u32 = 4;
    const B: f64 = 7.5;
    const VECTORS: u64 = 100;

    let p = dvs_workloads::viterbi::ViterbiParams::full_scale();
    let t0 = Instant::now();
    let src = dvs_workloads::viterbi::generate_viterbi(&p);
    eprintln!(
        "generated {} MB in {:.1?}",
        src.len() / 1_000_000,
        t0.elapsed()
    );
    let t0 = Instant::now();
    let nl = dvs_verilog::parse_and_elaborate(&src)
        .unwrap()
        .into_netlist();
    let elaborate_seconds = t0.elapsed().as_secs_f64();
    eprintln!(
        "elaborated {} gates, {} instances in {:.1}s",
        nl.gate_count(),
        nl.instance_count(),
        elaborate_seconds
    );
    let t0 = Instant::now();
    let r =
        dvs_core::multiway::partition_multiway(&nl, &dvs_core::multiway::MultiwayConfig::new(K, B));
    let partition_seconds = t0.elapsed().as_secs_f64();
    let quality = PartitionQuality::measure(&r.gate_blocks, r.cut, K, B, nl.gate_count() as u64);
    eprintln!(
        "dd partition: cut {} bal {} in {:.1}s",
        r.cut, r.balanced, partition_seconds
    );
    let t0 = Instant::now();
    let plan = dvs_sim::cluster::ClusterPlan::new(&nl, &r.gate_blocks, K as usize);
    let model = dvs_sim::cluster_model::ClusterModel::new(
        &nl,
        plan,
        dvs_sim::cluster_model::ClusterModelConfig::athlon_cluster(nl.gate_count()),
    );
    let stim = dvs_sim::stimulus::VectorStimulus::from_netlist(&nl, 10, 1);
    let run = model.run(&stim, VECTORS);
    let model_seconds = t0.elapsed().as_secs_f64();
    eprintln!(
        "modeled {VECTORS} vectors in {model_seconds:.1}s: speedup {:.2} msgs {}",
        run.speedup, run.stats.messages
    );

    let artifact = ObjBuilder::new()
        .int("schema_version", SCHEMA_VERSION)
        .str("kind", "fullscale_probe")
        .field("design", dvs_verilog::stats::stats(&nl).to_json())
        .field(
            "partition",
            ObjBuilder::new()
                .uint("k", K as u64)
                .float("b", B)
                .bool("balanced", r.balanced)
                .field("quality", quality.to_json())
                .build(),
        )
        .uint("vectors", VECTORS)
        .field("run", run.to_json())
        .field(
            "host",
            ObjBuilder::new()
                .float("elaborate_seconds", elaborate_seconds)
                .float("partition_seconds", partition_seconds)
                .float("model_seconds", model_seconds)
                .build(),
        )
        .build();
    let text = artifact.emit_pretty().expect("serialize probe artifact");
    match &artifact_path {
        Some(path) => {
            std::fs::write(path, &text).unwrap_or_else(|e| {
                eprintln!("cannot write `{path}`: {e}");
                std::process::exit(2);
            });
            eprintln!("wrote {path}");
        }
        None => print!("{text}"),
    }
}
