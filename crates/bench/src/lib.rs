//! # dvs-bench
//!
//! Reproduction harness for every table and figure in the evaluation
//! section of Li & Tropper (ICPP 2008), plus Criterion micro-benchmarks of
//! the partitioning and simulation substrates.
//!
//! The `repro` binary regenerates the paper's artifacts:
//!
//! ```text
//! cargo run --release -p dvs-bench --bin repro -- all
//! cargo run --release -p dvs-bench --bin repro -- table1 table3 fig6
//! cargo run --release -p dvs-bench --bin repro -- --scale quick all
//! ```
//!
//! The `bench_gate` binary is the CI perf-regression gate: it runs a fixed
//! deterministic smoke grid, writes a schema-versioned `BENCH_<label>.json`
//! artifact, and compares it against `results/bench_baseline.json` (see
//! [`gate`]):
//!
//! ```text
//! cargo run --release -p dvs-bench --bin bench_gate -- --label ci
//! cargo run --release -p dvs-bench --bin bench_gate -- --write-baseline
//! ```
//!
//! See [`experiments`] for the per-table implementations and DESIGN.md /
//! EXPERIMENTS.md for the experiment index and measured results.

pub mod experiments;
pub mod gate;
