//! Regeneration of the paper's tables and figures.
//!
//! All experiments run over one generated Viterbi decoder workload and share
//! one [`ReproData`] cache so the same partitions feed Table 1 (cut), Table
//! 3 (pre-simulation), Table 4/5 (best partitions, full run) and Figures
//! 5–7 (time vs machines, messages, rollbacks) — exactly as the paper's
//! pipeline reuses its partitions.
//!
//! Scaling: the default `paper_scaled` configuration uses the 64-state
//! decoder (≈12 k gates, 457 module instances vs the paper's 388) with
//! 2 000 pre-simulation vectors and 20 000 full-run vectors; the cluster
//! model is calibrated so the *sequential time per vector* matches the
//! paper's testbed (38.93 s / 10 000 vectors), which preserves the
//! compute/communication balance that determines speedups. `full` switches
//! to the 4096-state, ≈1 M-gate decoder and the paper's vector counts.

use dvs_core::engine::{map_indexed, Parallelism};
use dvs_core::multiway::{partition_multiway_sweep, MultiwayConfig, MultiwayResult};
use dvs_core::presim::{evaluate_partition, PresimConfig, PresimPoint};
use dvs_core::report::{secs, speedup, Table};
use dvs_hmetis::{partition_kway, HmetisConfig};
use dvs_hypergraph::builder::{cut_size_gates, gate_level};
use dvs_sim::cluster::ClusterPlan;
use dvs_sim::cluster_model::{ClusterModel, ClusterRun};
use dvs_sim::stimulus::VectorStimulus;
use dvs_verilog::netlist::Netlist;
use dvs_verilog::stats::{stats, DesignStats};
use dvs_workloads::pipeline_soc::{generate_pipeline_soc, PipelineParams};
use dvs_workloads::viterbi::{generate_viterbi, ViterbiParams};
use std::time::{Duration, Instant};

/// Experiment scale and sweep configuration.
#[derive(Debug, Clone)]
pub struct ReproConfig {
    pub viterbi: ViterbiParams,
    /// Pre-simulation vectors (paper: 10 000).
    pub presim_vectors: u64,
    /// Full-simulation vectors (paper: 1 000 000).
    pub full_vectors: u64,
    pub ks: Vec<u32>,
    pub bs: Vec<f64>,
    pub seed: u64,
    /// Worker threads for the per-`k` grid fan-out (the b-sweep within one
    /// `k` is a feasible-envelope carry and stays sequential). Purely a
    /// host-performance knob: results are identical for every setting.
    pub parallelism: Parallelism,
}

impl ReproConfig {
    /// The default reproduction: paper-shaped decoder at 1/100 gate scale,
    /// vector counts scaled to keep total runtime around a minute.
    pub fn paper_scaled() -> Self {
        ReproConfig {
            viterbi: ViterbiParams::paper_class(),
            presim_vectors: 2_000,
            full_vectors: 20_000,
            ks: vec![2, 3, 4],
            bs: vec![2.5, 5.0, 7.5, 10.0, 12.5, 15.0],
            seed: 0xD5,
            parallelism: Parallelism::Auto,
        }
    }

    /// A seconds-scale smoke configuration for tests.
    pub fn quick() -> Self {
        ReproConfig {
            presim_vectors: 200,
            full_vectors: 600,
            bs: vec![5.0, 10.0, 15.0],
            ..Self::paper_scaled()
        }
    }

    /// Paper-scale: the 1 M-gate decoder with the paper's vector counts.
    /// Hours of compute — see EXPERIMENTS.md before running.
    pub fn full() -> Self {
        ReproConfig {
            viterbi: ViterbiParams::full_scale(),
            presim_vectors: 10_000,
            full_vectors: 1_000_000,
            ..Self::paper_scaled()
        }
    }
}

/// The generated workload.
pub struct Workload {
    pub nl: Netlist,
    pub stats: DesignStats,
}

/// Generate, parse and elaborate the Viterbi decoder.
pub fn build_workload(cfg: &ReproConfig) -> Workload {
    let src = generate_viterbi(&cfg.viterbi);
    let nl = dvs_verilog::parse_and_elaborate(&src)
        .expect("generated decoder must elaborate")
        .into_netlist();
    let stats = stats(&nl);
    Workload { nl, stats }
}

/// One design-driven grid point with its pre-simulation evaluation.
pub struct GridPoint {
    pub k: u32,
    pub b: f64,
    pub dd: MultiwayResult,
    pub dd_time: Duration,
    pub hm_cut: u64,
    pub hm_time: Duration,
    pub presim: PresimPoint,
}

/// Everything computed once and shared by all tables/figures.
pub struct ReproData {
    pub cfg: ReproConfig,
    pub grid: Vec<GridPoint>,
    /// `machines → (b → presim point index)` convenience index.
    pub seq_presim_seconds: f64,
}

/// Run the full grid: partition (design-driven sweep + hMetis baseline) and
/// pre-simulate every (k, b). The per-`k` column computations are
/// independent, so they fan out over `cfg.parallelism` worker threads; the
/// b-sweep within one `k` carries the feasible envelope forward and stays
/// sequential. Results are identical for every thread count — columns are
/// collected in `ks` order and nothing is seeded by schedule.
pub fn compute_grid(wl: &Workload, cfg: &ReproConfig) -> ReproData {
    let nl = &wl.nl;
    let gh = gate_level(nl);
    let mut presim_cfg = PresimConfig::paper_defaults(nl.gate_count());
    presim_cfg.vectors = cfg.presim_vectors;

    let columns = map_indexed(cfg.ks.len(), cfg.parallelism, |ki| {
        let k = cfg.ks[ki];
        // Design-driven sweep over b (ascending; feasible-envelope).
        let base = MultiwayConfig {
            seed: cfg.seed,
            ..MultiwayConfig::new(k, 0.0)
        };
        let t0 = Instant::now();
        let dd_sweep = partition_multiway_sweep(nl, k, &cfg.bs, &base);
        let dd_total = t0.elapsed();
        let dd_each = dd_total / cfg.bs.len() as u32;

        let mut column = Vec::with_capacity(cfg.bs.len());
        for (bi, &b) in cfg.bs.iter().enumerate() {
            let dd = dd_sweep[bi].clone();

            let t0 = Instant::now();
            let hm_cfg = HmetisConfig::with_balance(b, cfg.seed ^ 0x6417);
            let hm = partition_kway(&gh.hg, k, &hm_cfg);
            let hm_time = t0.elapsed();
            let hm_cut = cut_size_gates(nl, &gh.gate_blocks(&hm));

            let presim = evaluate_partition(
                nl,
                dd.gate_blocks.clone(),
                dd.cut,
                dd.balanced,
                k,
                b,
                &presim_cfg,
            );
            column.push(GridPoint {
                k,
                b,
                dd,
                dd_time: dd_each,
                hm_cut,
                hm_time,
                presim,
            });
        }
        column
    });
    let grid: Vec<GridPoint> = columns.into_iter().flatten().collect();
    let seq_secs = grid.last().map_or(0.0, |g| g.presim.seq_seconds);
    ReproData {
        cfg: cfg.clone(),
        grid,
        seq_presim_seconds: seq_secs,
    }
}

impl ReproData {
    /// The best (max pre-simulation speedup) grid point for machine count
    /// `k` — the paper's Table 4 selection.
    pub fn best_for_k(&self, k: u32) -> &GridPoint {
        self.grid
            .iter()
            .filter(|g| g.k == k)
            .max_by(|a, b| {
                a.presim
                    .speedup
                    .partial_cmp(&b.presim.speedup)
                    .expect("finite")
            })
            .expect("k must be in the grid")
    }
}

/// Table 1: hyperedge cut of the design-driven algorithm per (k, b).
pub fn table1(data: &ReproData) -> Table {
    let mut t = Table::new(vec!["k", "b", "Hyperedge cut"]);
    for g in &data.grid {
        t.row(vec![g.k.to_string(), trim(g.b), g.dd.cut.to_string()]);
    }
    t
}

/// Table 2: hyperedge cut of the hMetis baseline per (k, b), with the
/// partitioning-time comparison the paper discusses in §4.
pub fn table2(data: &ReproData) -> Table {
    let mut t = Table::new(vec![
        "k",
        "b",
        "Hyperedge cut",
        "hMetis time (s)",
        "design-driven time (s)",
    ]);
    for g in &data.grid {
        t.row(vec![
            g.k.to_string(),
            trim(g.b),
            g.hm_cut.to_string(),
            format!("{:.3}", g.hm_time.as_secs_f64()),
            format!("{:.3}", g.dd_time.as_secs_f64()),
        ]);
    }
    t
}

/// Table 3: pre-simulation time and speedup per (k, b).
pub fn table3(data: &ReproData) -> Table {
    let mut t = Table::new(vec![
        "k",
        "b",
        "cut-size",
        "Simulation time (Seconds)",
        "Speedup",
    ]);
    for g in &data.grid {
        t.row(vec![
            g.k.to_string(),
            trim(g.b),
            g.presim.cut.to_string(),
            secs(g.presim.sim_seconds),
            speedup(g.presim.speedup),
        ]);
    }
    t
}

/// Table 4: the best partition per k (largest pre-simulation speedup).
pub fn table4(data: &ReproData) -> Table {
    let mut t = Table::new(vec![
        "k",
        "b",
        "cut-size",
        "Simulation time (Seconds)",
        "Speedup",
    ]);
    for &k in &data.cfg.ks {
        let g = data.best_for_k(k);
        t.row(vec![
            g.k.to_string(),
            trim(g.b),
            g.presim.cut.to_string(),
            secs(g.presim.sim_seconds),
            speedup(g.presim.speedup),
        ]);
    }
    t
}

/// A full-length simulation of one partition under the cluster model.
pub fn full_run(nl: &Netlist, point: &GridPoint, cfg: &ReproConfig) -> ClusterRun {
    let plan = ClusterPlan::new(nl, &point.presim.gate_blocks, point.k as usize);
    let mut mcfg = PresimConfig::paper_defaults(nl.gate_count()).model;
    mcfg.max_buckets = 16_384;
    let model = ClusterModel::new(nl, plan, mcfg);
    let stim = VectorStimulus::from_netlist(nl, 10, 0x1234);
    model.run(&stim, cfg.full_vectors)
}

/// Table 5: full-simulation time and speedup for the best (k, b) rows.
pub fn table5(wl: &Workload, data: &ReproData) -> (Table, Vec<(u32, ClusterRun)>) {
    let mut t = Table::new(vec![
        "k",
        "b",
        "cut-size",
        "Simulation time (Seconds)",
        "Speedup",
    ]);
    let mut runs = Vec::new();
    for &k in &data.cfg.ks {
        let g = data.best_for_k(k);
        let run = full_run(&wl.nl, g, &data.cfg);
        t.row(vec![
            g.k.to_string(),
            trim(g.b),
            g.presim.cut.to_string(),
            secs(run.wall_seconds),
            speedup(run.speedup),
        ]);
        runs.push((k, run));
    }
    (t, runs)
}

/// Figure 5: full-simulation time vs number of machines (1..=max k).
pub fn fig5(wl: &Workload, data: &ReproData) -> Table {
    let mut t = Table::new(vec!["Machines", "Simulation time (Seconds)"]);
    // One machine: the sequential run.
    let seq = {
        let plan = ClusterPlan::new(&wl.nl, &vec![0; wl.nl.gate_count()], 1);
        let mcfg = PresimConfig::paper_defaults(wl.nl.gate_count()).model;
        let model = ClusterModel::new(&wl.nl, plan, mcfg);
        let stim = VectorStimulus::from_netlist(&wl.nl, 10, 0x1234);
        model.run(&stim, data.cfg.full_vectors)
    };
    t.row(vec!["1".to_string(), secs(seq.seq_seconds)]);
    for &k in &data.cfg.ks {
        let g = data.best_for_k(k);
        let run = full_run(&wl.nl, g, &data.cfg);
        t.row(vec![k.to_string(), secs(run.wall_seconds)]);
    }
    t
}

/// Figure 6: message count during pre-simulation, per machine count and b.
pub fn fig6(data: &ReproData) -> Table {
    per_b_by_machines(data, "Message number", |g| g.presim.messages)
}

/// Figure 7: rollback count during pre-simulation, per machine count and b.
pub fn fig7(data: &ReproData) -> Table {
    per_b_by_machines(data, "Rollback number", |g| g.presim.rollbacks)
}

fn per_b_by_machines(data: &ReproData, what: &str, f: impl Fn(&GridPoint) -> u64) -> Table {
    let mut headers = vec![format!("{what} / machines")];
    headers.extend(data.cfg.ks.iter().map(|k| k.to_string()));
    let mut t = Table::new(headers);
    for &b in &data.cfg.bs {
        let mut row = vec![format!("b={}", trim(b))];
        for &k in &data.cfg.ks {
            let g = data
                .grid
                .iter()
                .find(|g| g.k == k && g.b == b)
                .expect("full grid");
            row.push(f(g).to_string());
        }
        t.row(row);
    }
    t
}

/// The paper's §5 headline numbers: average cut ratio vs hMetis and the
/// best full-run speedup.
pub struct Headline {
    /// Geometric mean of (hMetis cut / design-driven cut) over the grid.
    pub cut_ratio_vs_hmetis: f64,
    /// Geometric mean of (hMetis partitioning time / design-driven time).
    pub time_ratio_vs_hmetis: f64,
    pub best_full_speedup: f64,
    pub best_k: u32,
    pub best_b: f64,
}

pub fn headline(wl: &Workload, data: &ReproData) -> Headline {
    let mut cut_log = 0.0f64;
    let mut time_log = 0.0f64;
    for g in &data.grid {
        cut_log += (g.hm_cut.max(1) as f64 / g.dd.cut.max(1) as f64).ln();
        time_log += (g.hm_time.as_secs_f64().max(1e-9) / g.dd_time.as_secs_f64().max(1e-9)).ln();
    }
    let n = data.grid.len() as f64;
    let best_k = *data
        .cfg
        .ks
        .iter()
        .max_by(|&&a, &&b| {
            data.best_for_k(a)
                .presim
                .speedup
                .partial_cmp(&data.best_for_k(b).presim.speedup)
                .expect("finite")
        })
        .expect("non-empty ks");
    let g = data.best_for_k(best_k);
    let run = full_run(&wl.nl, g, &data.cfg);
    Headline {
        cut_ratio_vs_hmetis: (cut_log / n).exp(),
        time_ratio_vs_hmetis: (time_log / n).exp(),
        best_full_speedup: run.speedup,
        best_k,
        best_b: g.b,
    }
}

/// Supplementary regime analysis (not in the paper): design-driven vs the
/// flat multilevel baseline on two interconnect shapes — the paper's
/// shuffle-trellis decoder, where flat min-cut can split module internals
/// profitably, and a modular pipeline, where module boundaries are the
/// optimal cut. Quantifies when the paper's Table 1/2 ordering holds.
pub fn regime_table(cfg: &ReproConfig) -> Table {
    let mut t = Table::new(vec![
        "workload",
        "k",
        "dd cut",
        "hMetis cut",
        "dd time (ms)",
        "hMetis time (ms)",
    ]);
    let cases: Vec<(&str, String)> = vec![
        ("viterbi (shuffle trellis)", generate_viterbi(&cfg.viterbi)),
        (
            "pipeline SoC (modular)",
            generate_pipeline_soc(&PipelineParams::default()),
        ),
    ];
    for (name, src) in cases {
        let nl = dvs_verilog::parse_and_elaborate(&src)
            .expect("workload elaborates")
            .into_netlist();
        let gh = gate_level(&nl);
        for k in [2u32, 4] {
            let t0 = Instant::now();
            let dd = dvs_core::multiway::partition_multiway(&nl, &MultiwayConfig::new(k, 7.5));
            let dd_ms = t0.elapsed().as_secs_f64() * 1e3;
            let t0 = Instant::now();
            let hm = partition_kway(&gh.hg, k, &HmetisConfig::with_balance(7.5, cfg.seed));
            let hm_ms = t0.elapsed().as_secs_f64() * 1e3;
            let hm_cut = cut_size_gates(&nl, &gh.gate_blocks(&hm));
            t.row(vec![
                name.to_string(),
                k.to_string(),
                dd.cut.to_string(),
                hm_cut.to_string(),
                format!("{dd_ms:.1}"),
                format!("{hm_ms:.1}"),
            ]);
        }
    }
    t
}

fn trim(b: f64) -> String {
    if b.fract() == 0.0 {
        format!("{b:.0}")
    } else {
        format!("{b}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_data() -> (Workload, ReproData) {
        let mut cfg = ReproConfig::quick();
        cfg.ks = vec![2, 3];
        cfg.bs = vec![7.5, 15.0];
        cfg.presim_vectors = 60;
        cfg.full_vectors = 120;
        cfg.parallelism = Parallelism::Serial;
        // A smaller decoder keeps this unit test fast.
        cfg.viterbi = ViterbiParams {
            constraint_len: 5,
            metric_width: 4,
            survivor_depth: 8,
            bank_size: 8,
            uneven_banks: true,
            lanes: 1,
        };
        let wl = build_workload(&cfg);
        let data = compute_grid(&wl, &cfg);
        (wl, data)
    }

    #[test]
    fn grid_is_thread_count_invariant() {
        let (wl, serial_data) = quick_data();
        let mut cfg = serial_data.cfg.clone();
        cfg.parallelism = Parallelism::Threads(3);
        let par_data = compute_grid(&wl, &cfg);
        assert_eq!(serial_data.grid.len(), par_data.grid.len());
        for (s, p) in serial_data.grid.iter().zip(&par_data.grid) {
            assert_eq!((s.k, s.b.to_bits()), (p.k, p.b.to_bits()));
            assert_eq!(s.dd.cut, p.dd.cut);
            assert_eq!(s.dd.gate_blocks, p.dd.gate_blocks);
            assert_eq!(s.hm_cut, p.hm_cut);
            assert_eq!(s.presim.messages, p.presim.messages);
            assert_eq!(s.presim.speedup.to_bits(), p.presim.speedup.to_bits());
        }
    }

    #[test]
    fn grid_covers_all_combinations() {
        let (_, data) = quick_data();
        assert_eq!(data.grid.len(), 4);
        for g in &data.grid {
            assert!(g.dd.cut > 0, "a split trellis always has cut");
            assert!(g.presim.speedup > 0.0);
        }
    }

    #[test]
    fn tables_render_with_correct_shapes() {
        let (wl, data) = quick_data();
        assert_eq!(table1(&data).len(), 4);
        assert_eq!(table2(&data).len(), 4);
        assert_eq!(table3(&data).len(), 4);
        assert_eq!(table4(&data).len(), 2); // one row per k
        let (t5, runs) = table5(&wl, &data);
        assert_eq!(t5.len(), 2);
        assert_eq!(runs.len(), 2);
        assert_eq!(fig5(&wl, &data).len(), 3); // machines 1, 2, 3
        assert_eq!(fig6(&data).len(), 2); // one row per b
        assert_eq!(fig7(&data).len(), 2);
    }

    #[test]
    fn sweep_cut_is_monotone_in_b() {
        let (_, data) = quick_data();
        for &k in &data.cfg.ks {
            let cuts: Vec<u64> = data
                .grid
                .iter()
                .filter(|g| g.k == k)
                .map(|g| g.dd.cut)
                .collect();
            assert!(
                cuts.windows(2).all(|w| w[1] <= w[0]),
                "k={k}: cuts {cuts:?} not non-increasing in b"
            );
        }
    }

    #[test]
    fn best_for_k_maximizes_speedup() {
        let (_, data) = quick_data();
        let best = data.best_for_k(2);
        for g in data.grid.iter().filter(|g| g.k == 2) {
            assert!(g.presim.speedup <= best.presim.speedup + 1e-12);
        }
    }

    #[test]
    fn headline_is_finite() {
        let (wl, data) = quick_data();
        let h = headline(&wl, &data);
        assert!(h.cut_ratio_vs_hmetis.is_finite());
        assert!(h.time_ratio_vs_hmetis > 1.0, "design-driven must be faster");
        assert!(h.best_full_speedup > 0.0);
    }
}
