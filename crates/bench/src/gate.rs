//! The deterministic perf-regression gate behind the `bench_gate` binary.
//!
//! The gate runs a fixed smoke grid — small workloads, fixed seeds, a
//! brute-force (k, b) sweep — once with [`Parallelism::Serial`] and once
//! with [`Parallelism::Threads`]`(4)`, asserts the two canonical artifacts
//! are **byte-identical** (the determinism contract of the search engine),
//! and then compares the run against a checked-in baseline
//! (`results/bench_baseline.json`) with per-metric tolerances:
//!
//! * **counters and parameters** (events, messages, rollbacks, cuts,
//!   loads, chosen k/b, partitions, …) must match the baseline *exactly* —
//!   they are deterministic, so any drift is a behaviour change that either
//!   is a bug or deserves a deliberate baseline refresh;
//! * **times** (modeled seconds, speedups, host wall seconds) get a ±30 %
//!   relative band plus an absolute slack — generous for the deterministic
//!   modeled times (which normally match exactly) and loose enough for
//!   host measurements to absorb CI-runner noise while still catching
//!   order-of-magnitude regressions.
//!
//! A metric present on one side and missing on the other is always a
//! failure: schema growth requires a baseline refresh
//! (`bench_gate --write-baseline`), never a silent pass.

use dvs_core::json::{Json, JsonError, ObjBuilder, ToJson, SCHEMA_VERSION};
use dvs_core::{
    partition_multiway, tw_run_canonical_json, FlowBuilder, MultiwayConfig, Parallelism, Search,
    TwPresimConfig,
};
use dvs_sim::cluster::ClusterPlan;
use dvs_sim::stimulus::VectorStimulus;
use dvs_sim::timewarp::{
    run_timewarp, BatchPolicy, CheckpointCadence, NetDir, NetFault, NetFaultKind, NetPlan,
    TimeWarpConfig, Transport,
};
use dvs_sim::{FaultPlan, SchedulePolicy};
use dvs_workloads::pipeline_soc::{generate_pipeline_soc, PipelineParams};
use dvs_workloads::{generate_viterbi, ViterbiParams};
use std::collections::BTreeMap;
use std::path::Path;
use std::time::Instant;

/// Stimulus seed every gate run uses. Fixed forever: changing it changes
/// every counter in the baseline.
pub const STIM_SEED: u64 = 0x5EED_0001;
/// Base partitioner seed every gate run uses (each (k, b) point derives
/// its own from it).
pub const PART_SEED: u64 = 0x5EED_0002;
/// Thread count for the parallel leg of the determinism check.
pub const GATE_THREADS: usize = 4;
/// Scheduler seed for the deterministic Time Warp presim leg. Fixed
/// forever, like [`STIM_SEED`]: it selects the exact interleaving whose
/// protocol counters (rollbacks, anti-messages, GVT rounds, fossil
/// collections) the baseline records.
pub const DST_SEED: u64 = 0x5EED_0003;
/// Vectors for the deterministic Time Warp presim leg (it simulates every
/// gate for real, so it is kept shorter than the modeled presim).
pub const DST_VECTORS: u64 = 40;
/// Crash point of the gate's crash-injected Time Warp leg: cluster 0 dies
/// at decision 25 (early enough to fire on every grid point) and is
/// recovered from its last GVT checkpoint. Fixed forever, like the seeds.
pub const CRASH_AT: (u32, u64) = (0, 25);

/// The deterministic Time Warp leg every gate run enables: a seeded-random
/// schedule, so the gate covers a nontrivial interleaving rather than the
/// benign round-robin one. The fault plan adds a second, crash-injected
/// leg whose counters the baseline also pins exactly — recovery must
/// reproduce the undisturbed execution counter for counter, so any drift
/// in the checkpoint/replay machinery fails the gate.
pub fn dst_presim() -> TwPresimConfig {
    TwPresimConfig {
        schedule: SchedulePolicy::SeededRandom,
        vectors: DST_VECTORS,
        fault: Some(FaultPlan::crash(CRASH_AT.0, CRASH_AT.1)),
        ..TwPresimConfig::new(DST_SEED)
    }
}

/// Vectors for the process-transport leg. Short — each run spawns one OS
/// process per cluster — but long enough that the crash at [`CRASH_AT`]
/// fires and is recovered.
pub const PROCESS_VECTORS: u64 = 20;
/// Cluster count for the process-transport leg.
pub const PROCESS_CLUSTERS: u32 = 3;

/// The process-transport leg of the gate: real `tw_worker` OS processes,
/// one per cluster, over the Unix-socket wire protocol. Three runs — clean
/// in-process, clean process, and a process run whose cluster-0 worker is
/// `SIGKILL`ed at decision [`CRASH_AT`]`.1` and recovered from its last
/// GVT checkpoint — must all emit **byte-identical** canonical artifacts.
/// The resulting case pins the recovery counters and an FNV-1a hash of the
/// canonical bytes exactly, so any drift in the wire protocol, the
/// checkpoint/replay machinery, or the supervisor's decision sequence
/// fails the gate rather than passing silently.
pub fn process_case(worker: &Path) -> Result<CaseArtifact, String> {
    let worker = worker.to_path_buf();
    wire_transport_case("process_transport", move |policy| {
        Transport::process_with_worker(DST_SEED, policy, worker.clone())
    })
}

/// The TCP-transport leg of the gate: the same three-run byte-identity
/// protocol as [`process_case`], but each `tw_worker` dials a localhost
/// TCP listener (`tw_worker --connect`) instead of accepting a Unix
/// socket, and the injected fault is observed as a dropped connection
/// rather than a reaped child. Pins the recovery counters and the FNV-1a
/// artifact hash exactly, so drift anywhere in the TCP wire path — hello
/// negotiation, the connection broker, reconnect matching, crash-stop
/// recovery — fails the gate.
pub fn tcp_case(worker: &Path) -> Result<CaseArtifact, String> {
    let worker = worker.to_path_buf();
    wire_transport_case("tcp_transport", move |policy| {
        Transport::tcp_with_worker(DST_SEED, policy, worker.clone())
    })
}

/// Shared body of [`process_case`] and [`tcp_case`]: clean in-process run,
/// clean wire-transport run, crash-injected wire-transport run — all three
/// canonical artifacts byte-identical, counters and artifact hash pinned.
fn wire_transport_case(
    name: &'static str,
    transport: impl Fn(SchedulePolicy) -> Transport,
) -> Result<CaseArtifact, String> {
    let ctx = |e: String| format!("case `{name}`: {e}");
    let src = generate_viterbi(&ViterbiParams::tiny());
    let nl = dvs_verilog::parse_and_elaborate(&src)
        .map_err(|e| ctx(e.to_string()))?
        .into_netlist();
    let part = partition_multiway(&nl, &MultiwayConfig::new(PROCESS_CLUSTERS, 20.0));
    let plan = ClusterPlan::new(&nl, &part.gate_blocks, PROCESS_CLUSTERS as usize);
    let stim = VectorStimulus::from_netlist(&nl, 10, STIM_SEED);

    let run = |transport: Transport, fault: FaultPlan| {
        let cfg = TimeWarpConfig::builder()
            .transport(transport)
            .window(8)
            .epochs_per_quantum(2)
            .gvt_interval(1)
            .fault(fault)
            .build()
            .map_err(|e| ctx(e.to_string()))?;
        let t = Instant::now();
        let tw = run_timewarp(&nl, &plan, &stim, PROCESS_VECTORS, &cfg)
            .map_err(|e| ctx(e.to_string()))?;
        let seconds = t.elapsed().as_secs_f64();
        let canonical = tw_run_canonical_json(&tw)
            .emit()
            .map_err(|e| ctx(e.to_string()))?;
        Ok::<_, String>((tw, canonical, seconds))
    };
    let policy = SchedulePolicy::SeededRandom;
    let in_proc = || Transport::in_proc(DST_SEED, policy);

    let (_, clean, inproc_seconds) = run(in_proc(), FaultPlan::default())?;
    let (_, clean_wire, transport_seconds) = run(transport(policy), FaultPlan::default())?;
    if clean_wire != clean {
        return Err(ctx(
            "clean wire-transport run diverged from the in-process run — the \
             transport leaked into the canonical artifact"
                .to_string(),
        ));
    }
    let (crashed, crashed_bytes, crash_seconds) =
        run(transport(policy), FaultPlan::crash(CRASH_AT.0, CRASH_AT.1))?;
    if crashed_bytes != clean {
        return Err(ctx(
            "crash-recovered wire-transport run diverged from the undisturbed artifact".to_string(),
        ));
    }
    if crashed.recovery.crashes == 0 {
        return Err(ctx(
            "the injected crash never fired — move CRASH_AT earlier".to_string(),
        ));
    }

    Ok(CaseArtifact {
        name: name.to_string(),
        report: ObjBuilder::new()
            .str(
                "artifact_fnv1a",
                &format!("{:016x}", fnv1a(clean.as_bytes())),
            )
            .field("stats", crashed.stats.to_json())
            .uint("gvt_rounds", crashed.gvt_rounds)
            .field("recovery", crashed.recovery.to_json())
            .build(),
        host: ObjBuilder::new()
            .float("inproc_seconds", inproc_seconds)
            .float("transport_seconds", transport_seconds)
            .float("crash_recovery_seconds", crash_seconds)
            .build(),
    })
}

/// The message-batching leg of the gate (`batched_transport` case): the
/// TCP transport under the adversarial [`SchedulePolicy::Bursty`] schedule
/// (alternating build/drain phases that deepen channel queues, so batches
/// grow real tails), three runs —
///
/// * clean in-process, batching off — the byte-identity reference;
/// * clean TCP, batching off — the transport must stay invisible;
/// * clean TCP, batching **on** ([`BatchPolicy::per_quantum`]) — `msg_batch`
///   frames carry message tails that the worker stages and the supervisor
///   releases one `deliver_next` at a time.
///
/// All three canonical artifacts must be byte-identical, and the batched
/// leg must ship **at least twice as many messages as frames** (this PR's
/// acceptance bar for coalescing actually happening). The exact
/// `messages_sent` / `frames_sent` / `messages_folded` counters and the
/// FNV-1a artifact hash are pinned in the baseline, so drift anywhere in
/// the batching path — staging, release order, hello negotiation — fails
/// the gate rather than passing silently.
pub fn batched_transport_case(worker: &Path) -> Result<CaseArtifact, String> {
    let name = "batched_transport";
    let ctx = |e: String| format!("case `{name}`: {e}");
    let src = generate_viterbi(&ViterbiParams::tiny());
    let nl = dvs_verilog::parse_and_elaborate(&src)
        .map_err(|e| ctx(e.to_string()))?
        .into_netlist();
    let part = partition_multiway(&nl, &MultiwayConfig::new(PROCESS_CLUSTERS, 20.0));
    let plan = ClusterPlan::new(&nl, &part.gate_blocks, PROCESS_CLUSTERS as usize);
    let stim = VectorStimulus::from_netlist(&nl, 10, STIM_SEED);
    let policy = SchedulePolicy::Bursty;

    let run = |transport: Transport, batching: BatchPolicy| {
        let cfg = TimeWarpConfig::builder()
            .transport(transport)
            .window(8)
            .epochs_per_quantum(2)
            .gvt_interval(1)
            .message_batching(batching)
            .build()
            .map_err(|e| ctx(e.to_string()))?;
        let t = Instant::now();
        let tw = run_timewarp(&nl, &plan, &stim, PROCESS_VECTORS, &cfg)
            .map_err(|e| ctx(e.to_string()))?;
        let seconds = t.elapsed().as_secs_f64();
        let canonical = tw_run_canonical_json(&tw)
            .emit()
            .map_err(|e| ctx(e.to_string()))?;
        Ok::<_, String>((tw, canonical, seconds))
    };
    let tcp = || Transport::tcp_with_worker(DST_SEED, policy, worker.to_path_buf());

    let (_, clean, inproc_seconds) = run(Transport::in_proc(DST_SEED, policy), BatchPolicy::Off)?;
    let (off, off_bytes, off_seconds) = run(tcp(), BatchPolicy::Off)?;
    if off_bytes != clean {
        return Err(ctx(
            "unbatched TCP run diverged from the in-process run".to_string()
        ));
    }
    let (on, on_bytes, on_seconds) = run(tcp(), BatchPolicy::per_quantum())?;
    if on_bytes != clean {
        return Err(ctx(
            "batched TCP run diverged from the unbatched artifact — batching \
             leaked into the canonical results"
                .to_string(),
        ));
    }
    let r = &on.recovery;
    if r.messages_folded != 0 {
        return Err(ctx(format!(
            "deterministic transport folded {} messages — folding is a \
             threads-mode optimisation only",
            r.messages_folded
        )));
    }
    if off.recovery.frames_sent != off.recovery.messages_sent {
        return Err(ctx(format!(
            "batching-off leg shipped {} frames for {} messages — unbatched \
             sends must be one frame per message",
            off.recovery.frames_sent, off.recovery.messages_sent
        )));
    }
    if r.messages_sent != off.recovery.messages_sent {
        return Err(ctx(format!(
            "batched leg shipped {} messages, unbatched shipped {} — batching \
             may change framing, never the message stream",
            r.messages_sent, off.recovery.messages_sent
        )));
    }
    // The acceptance bar: coalescing must at least halve the frame count.
    if r.frames_sent * 2 > r.messages_sent {
        return Err(ctx(format!(
            "batched leg shipped {} frames for {} messages — expected at \
             least a 2x frame reduction under the bursty schedule",
            r.frames_sent, r.messages_sent
        )));
    }

    Ok(CaseArtifact {
        name: name.to_string(),
        report: ObjBuilder::new()
            .str(
                "artifact_fnv1a",
                &format!("{:016x}", fnv1a(clean.as_bytes())),
            )
            .uint("messages_sent", r.messages_sent)
            .uint("frames_sent", r.frames_sent)
            .uint("messages_folded", r.messages_folded)
            .uint("unbatched_frames_sent", off.recovery.frames_sent)
            .float(
                "frame_reduction",
                r.messages_sent as f64 / r.frames_sent.max(1) as f64,
            )
            .field("stats", on.stats.to_json())
            .uint("gvt_rounds", on.gvt_rounds)
            .build(),
        host: ObjBuilder::new()
            .float("inproc_seconds", inproc_seconds)
            .float("unbatched_seconds", off_seconds)
            .float("batched_seconds", on_seconds)
            .build(),
    })
}

/// Heartbeat idle interval of the chaos gate's stall leg. Short enough
/// that half-open detection (2 × 150 ms) dominates neither the gate nor a
/// CI run, long enough that a briefly preempted worker is not declared
/// dead spuriously.
pub const CHAOS_HEARTBEAT_MS: u64 = 150;
/// Missed-probe budget of the chaos gate's stall leg.
pub const CHAOS_HEARTBEAT_BUDGET: u32 = 2;
/// Crash point of the chaos gate's corrupt-restore leg: cluster 0 dies at
/// a decision that falls *between* [`DELTA_CADENCE`] base rounds, so the
/// restore ships a non-empty delta chain for the poison to corrupt. Fixed
/// forever, like [`CRASH_AT`].
pub const CHAOS_CRASH_AT: (u32, u64) = (0, 47);

/// The network-chaos leg of the gate (`tcp_chaos` case): the TCP transport
/// under the deterministic fault-injection shim, three disturbed runs —
///
/// * **corrupt**: one bit of a worker→supervisor frame is flipped in
///   flight; the CRC32 check rejects it (`corrupt_frames` = 1) and the
///   connection is torn down and recovered;
/// * **stall**: the link goes silent both ways mid-run; the heartbeat
///   prober detects the half-open connection in
///   [`CHAOS_HEARTBEAT_BUDGET`] × [`CHAOS_HEARTBEAT_MS`] ms
///   (`heartbeats_missed` = budget) and recovery replaces it;
/// * **corrupt restore**: the delta chain shipped with a restore is
///   poisoned (`FaultPlan::corrupt_restores`); the worker rejects it as
///   `DeltaError::Corrupt` and the supervisor falls back to re-sending
///   from the last full base, burning one extra restart-budget unit.
///
/// Every disturbed run must emit a canonical artifact **byte-identical**
/// to the undisturbed in-process run, and the exact recovery counters of
/// each leg (`corrupt_frames`, `heartbeats_missed`,
/// `chaos_faults_injected`, crashes, restarts) are pinned in the baseline,
/// so drift anywhere in the integrity or liveness machinery fails the
/// gate rather than passing silently.
pub fn tcp_chaos_case(worker: &Path) -> Result<CaseArtifact, String> {
    let name = "tcp_chaos";
    let ctx = |e: String| format!("case `{name}`: {e}");
    let src = generate_viterbi(&ViterbiParams::tiny());
    let nl = dvs_verilog::parse_and_elaborate(&src)
        .map_err(|e| ctx(e.to_string()))?
        .into_netlist();
    let part = partition_multiway(&nl, &MultiwayConfig::new(PROCESS_CLUSTERS, 20.0));
    let plan = ClusterPlan::new(&nl, &part.gate_blocks, PROCESS_CLUSTERS as usize);
    let stim = VectorStimulus::from_netlist(&nl, 10, STIM_SEED);
    let policy = SchedulePolicy::SeededRandom;

    let run = |transport: Transport,
               fault: FaultPlan,
               chaos: Option<NetPlan>,
               cadence: u32,
               heartbeat: Option<(u64, u32)>| {
        let mut b = TimeWarpConfig::builder()
            .transport(transport)
            .window(8)
            .epochs_per_quantum(2)
            .gvt_interval(1)
            .checkpoint_cadence(CheckpointCadence::every_n_rounds(cadence))
            .fault(fault);
        if let Some(plan) = chaos {
            b = b.chaos(plan);
        }
        if let Some((ms, budget)) = heartbeat {
            b = b
                .heartbeat_interval(std::time::Duration::from_millis(ms))
                .heartbeat_budget(budget);
        }
        let cfg = b.build().map_err(|e| ctx(e.to_string()))?;
        let t = Instant::now();
        let tw = run_timewarp(&nl, &plan, &stim, PROCESS_VECTORS, &cfg)
            .map_err(|e| ctx(e.to_string()))?;
        let seconds = t.elapsed().as_secs_f64();
        let canonical = tw_run_canonical_json(&tw)
            .emit()
            .map_err(|e| ctx(e.to_string()))?;
        Ok::<_, String>((tw, canonical, seconds))
    };
    let tcp = || Transport::tcp_with_worker(DST_SEED, policy, worker.to_path_buf());

    let (_, clean, clean_seconds) = run(
        Transport::in_proc(DST_SEED, policy),
        FaultPlan::default(),
        None,
        1,
        None,
    )?;
    let identical = |leg: &str, bytes: &str| {
        if bytes != clean {
            return Err(ctx(format!(
                "{leg} leg diverged from the undisturbed in-process artifact"
            )));
        }
        Ok(())
    };

    // Leg 1: a bit flipped in a worker→supervisor frame. The default
    // heartbeat interval (1 s) never fires on this workload, so the frame
    // sequence — and with it the pinned counters — is exact.
    let corrupt_plan = NetPlan::new().fault(NetFault {
        cluster: 1,
        dir: NetDir::FromWorker,
        frame: 8,
        kind: NetFaultKind::BitFlip { offset: 5 },
    });
    let (corrupt, bytes, corrupt_seconds) =
        run(tcp(), FaultPlan::default(), Some(corrupt_plan), 1, None)?;
    identical("corrupt", &bytes)?;
    let r = &corrupt.recovery;
    if (
        r.corrupt_frames,
        r.chaos_faults_injected,
        r.crashes,
        r.restarts,
    ) != (1, 1, 1, 1)
    {
        return Err(ctx(format!(
            "corrupt leg counters (corrupt_frames {}, chaos {}, crashes {}, restarts {}) \
             are not the expected (1, 1, 1, 1)",
            r.corrupt_frames, r.chaos_faults_injected, r.crashes, r.restarts
        )));
    }

    // Leg 2: the link stalls silently both ways; only the heartbeat
    // prober can notice. Budget exhaustion is charged exactly once, at
    // `budget` misses.
    let stall_plan = NetPlan::new().fault(NetFault {
        cluster: 2,
        dir: NetDir::ToWorker,
        frame: 10,
        kind: NetFaultKind::Stall,
    });
    let (stalled, bytes, stall_seconds) = run(
        tcp(),
        FaultPlan::default(),
        Some(stall_plan),
        1,
        Some((CHAOS_HEARTBEAT_MS, CHAOS_HEARTBEAT_BUDGET)),
    )?;
    identical("stall", &bytes)?;
    let r = &stalled.recovery;
    if r.heartbeats_missed != u64::from(CHAOS_HEARTBEAT_BUDGET)
        || r.chaos_faults_injected != 1
        || r.crashes != 1
        || r.corrupt_frames != 0
    {
        return Err(ctx(format!(
            "stall leg counters (heartbeats_missed {}, chaos {}, crashes {}, corrupt {}) \
             are not the expected ({CHAOS_HEARTBEAT_BUDGET}, 1, 1, 0)",
            r.heartbeats_missed, r.chaos_faults_injected, r.crashes, r.corrupt_frames
        )));
    }

    // Leg 3: the shipped delta chain is poisoned once; the worker rejects
    // it and the supervisor retries from the last full base — one crash
    // for the kill, one more for the rejected restore. The crash lands at
    // [`CHAOS_CRASH_AT`], chosen *between* base rounds so the victim's
    // delta chain is non-empty and the poison has something to corrupt
    // ([`CRASH_AT`] sits right after a full base, where the chain is
    // empty and the fallback path would never fire).
    let (fallback, bytes, fallback_seconds) = run(
        tcp(),
        FaultPlan {
            crash_at: Some(CHAOS_CRASH_AT),
            crashes: 1,
            max_restarts: 3,
            corrupt_restores: 1,
        },
        None,
        DELTA_CADENCE,
        None,
    )?;
    identical("corrupt-restore", &bytes)?;
    let r = &fallback.recovery;
    if r.degraded || (r.crashes, r.restarts) != (2, 2) {
        return Err(ctx(format!(
            "corrupt-restore leg (crashes {}, restarts {}, degraded {}) did not take the \
             base-fallback path — expected (2, 2, false)",
            r.crashes, r.restarts, r.degraded
        )));
    }

    Ok(CaseArtifact {
        name: name.to_string(),
        report: ObjBuilder::new()
            .str(
                "artifact_fnv1a",
                &format!("{:016x}", fnv1a(clean.as_bytes())),
            )
            .field("corrupt_recovery", corrupt.recovery.to_json())
            .field("stall_recovery", stalled.recovery.to_json())
            .field("corrupt_restore_recovery", fallback.recovery.to_json())
            .build(),
        host: ObjBuilder::new()
            .float("inproc_seconds", clean_seconds)
            .float("corrupt_seconds", corrupt_seconds)
            .float("stall_seconds", stall_seconds)
            .float("corrupt_restore_seconds", fallback_seconds)
            .build(),
    })
}

/// Base-checkpoint cadence of the delta-compaction legs: full images every
/// 4th GVT round, deltas in between. Fixed, like the seeds — changing it
/// changes the pinned byte counters.
pub const DELTA_CADENCE: u32 = 4;

/// The incremental-checkpoint leg of the gate (`delta_checkpoint` case):
/// the same deterministic in-process Time Warp run three times — clean,
/// crash-injected with bases every round (cadence 1), and crash-injected
/// with bases every [`DELTA_CADENCE`]th round and deltas in between. All
/// three canonical artifacts must be byte-identical (neither the capture
/// cadence nor the recovery is allowed to leak into results), and the
/// exact checkpoint byte counters of both captured runs are pinned in the
/// baseline, so any drift in the delta encoder shows up as a counter diff.
pub fn delta_checkpoint_case() -> Result<CaseArtifact, String> {
    let src = generate_viterbi(&ViterbiParams::tiny());
    let (report, host) = compaction_probe("delta_checkpoint", &src, PROCESS_CLUSTERS, 20)?;
    Ok(CaseArtifact {
        name: "delta_checkpoint".to_string(),
        report,
        host,
    })
}

/// Shared body of [`delta_checkpoint_case`] and the `large` compaction leg:
/// measure checkpoint bytes under cadence 1 vs [`DELTA_CADENCE`] on one
/// workload and enforce the compaction contract — the delta bytes of the
/// cadenced run must be under half the all-bases run's bytes, and its
/// total checkpoint traffic must be below the all-bases run's. The margin
/// comes from the delta artifact's compact event encoding plus run-encoded
/// values and elided no-change fields; the exact counters are additionally
/// pinned by the baseline on the smoke leg.
fn compaction_probe(
    name: &str,
    source: &str,
    k: u32,
    vectors: u64,
) -> Result<(Json, Json), String> {
    let ctx = |e: String| format!("case `{name}`: {e}");
    let nl = dvs_verilog::parse_and_elaborate(source)
        .map_err(|e| ctx(e.to_string()))?
        .into_netlist();
    let part = partition_multiway(&nl, &MultiwayConfig::new(k, 20.0));
    let plan = ClusterPlan::new(&nl, &part.gate_blocks, k as usize);
    let stim = VectorStimulus::from_netlist(&nl, 10, STIM_SEED);
    let run = |cadence: u32, fault: FaultPlan| {
        let cfg = TimeWarpConfig::builder()
            .transport(Transport::in_proc(DST_SEED, SchedulePolicy::SeededRandom))
            .window(8)
            .epochs_per_quantum(2)
            .gvt_interval(1)
            .checkpoint_cadence(CheckpointCadence::every_n_rounds(cadence))
            .fault(fault)
            .build()
            .map_err(|e| ctx(e.to_string()))?;
        let t = Instant::now();
        let tw = run_timewarp(&nl, &plan, &stim, vectors, &cfg).map_err(|e| ctx(e.to_string()))?;
        let seconds = t.elapsed().as_secs_f64();
        let canonical = tw_run_canonical_json(&tw)
            .emit()
            .map_err(|e| ctx(e.to_string()))?;
        Ok::<_, String>((tw, canonical, seconds))
    };
    // The clean cadence-1 run does not arm recovery tracking, so its byte
    // counters are zero — it exists purely as the byte-identity reference.
    let (_, clean, clean_seconds) = run(1, FaultPlan::default())?;
    let fault = FaultPlan::crash(CRASH_AT.0, CRASH_AT.1);
    let (full, full_bytes, full_seconds) = run(1, fault)?;
    if full_bytes != clean {
        return Err(ctx(
            "cadence-1 crash run diverged from the clean run".to_string()
        ));
    }
    let (delta, delta_bytes, delta_seconds) = run(DELTA_CADENCE, fault)?;
    if delta_bytes != clean {
        return Err(ctx(format!(
            "cadence-{DELTA_CADENCE} crash run diverged from the clean run"
        )));
    }
    if full.recovery.crashes == 0 || delta.recovery.crashes == 0 {
        return Err(ctx(
            "the injected crash never fired — move CRASH_AT earlier".to_string(),
        ));
    }
    let full1 = full.recovery.checkpoint_bytes_full;
    let base4 = delta.recovery.checkpoint_bytes_full;
    let inc4 = delta.recovery.checkpoint_bytes_delta;
    if full.recovery.checkpoint_bytes_delta != 0 {
        return Err(ctx("cadence-1 run captured deltas".to_string()));
    }
    if full1 == 0 || base4 == 0 || inc4 == 0 {
        return Err(ctx(format!(
            "degenerate byte counters (full1 {full1}, base4 {base4}, delta4 {inc4}) — \
             the run is too short to exercise the cadence"
        )));
    }
    // The compaction contract of this leg (also the PR's acceptance bar):
    // deltas must be cheap relative to the full images they replace.
    if inc4 * 2 >= full1 {
        return Err(ctx(format!(
            "delta bytes {inc4} are not under half the all-bases bytes {full1} — \
             the incremental encoding is not compacting"
        )));
    }
    if base4 + inc4 >= full1 {
        return Err(ctx(format!(
            "cadence-{DELTA_CADENCE} total {} is not below the all-bases total {full1}",
            base4 + inc4
        )));
    }
    let report = ObjBuilder::new()
        .uint("delta_cadence", DELTA_CADENCE as u64)
        .uint("checkpoint_bytes_full", full1)
        .uint("checkpoint_bytes_delta", inc4)
        .uint("cadenced_base_bytes", base4)
        .float("compaction_ratio", (base4 + inc4) as f64 / full1 as f64)
        .field("stats", delta.stats.to_json())
        .uint("gvt_rounds", delta.gvt_rounds)
        .field("recovery", delta.recovery.to_json())
        .build();
    let host = ObjBuilder::new()
        .float("clean_seconds", clean_seconds)
        .float("full_cadence_seconds", full_seconds)
        .float("delta_cadence_seconds", delta_seconds)
        .build();
    Ok((report, host))
}

/// The nightly paper-scale case (`bench_gate --case large`): the
/// [`ViterbiParams::paper_class`] decoder (~14 k gates, 459 module
/// instances — the shape of the paper's 388-module netlist) swept over a
/// small (k, b) grid with the same serial-vs-threaded byte-identity check
/// as the smoke grid. Too slow for the per-push gate, so it runs from the
/// cron workflow as a tracking artifact (`BENCH_nightly.json`) rather
/// than against the checked-in baseline.
pub fn large_case() -> Result<CaseArtifact, String> {
    let source = generate_viterbi(&ViterbiParams::paper_class());
    let mut artifact = run_case(&BenchCase {
        name: "viterbi_paper_class",
        source: source.clone(),
        ks: vec![4, 8],
        bs: vec![10.0, 20.0],
        presim_vectors: 40,
        full_vectors: 100,
    })?;
    // The nightly compaction leg: the same paper-class netlist under
    // cadence 1 vs DELTA_CADENCE, with the measured byte counters and the
    // compaction ratio folded into the tracking artifact. The probe itself
    // enforces the acceptance bar (delta bytes < 50 % of full bytes).
    let (compaction, compaction_host) =
        compaction_probe("viterbi_paper_class", &source, 4, PROCESS_VECTORS)?;
    if let Json::Object(members) = &mut artifact.report {
        members.push(("compaction".to_string(), compaction));
    }
    if let Json::Object(members) = &mut artifact.host {
        members.push(("compaction".to_string(), compaction_host));
    }
    // The nightly batching-latency sweep: free-running threads with the
    // send buffers allowed to age `max_delay` quanta before a forced
    // flush. Tracks how delayed delivery trades message folding against
    // induced rollbacks (a message that sat in a buffer arrives later, so
    // optimistic receivers straggle further). Threads counters are
    // nondeterministic, so this lives in the nightly tracking artifact
    // only — never in the pinned baseline.
    let (batching, batching_host) = batching_sweep_probe(&source, 4, PROCESS_VECTORS)?;
    if let Json::Object(members) = &mut artifact.report {
        members.push(("batching_sweep".to_string(), batching));
    }
    if let Json::Object(members) = &mut artifact.host {
        members.push(("batching_sweep".to_string(), batching_host));
    }
    Ok(artifact)
}

/// Body of the nightly batching-latency sweep (see [`large_case`]): one
/// threads-mode run per `max_delay` in {1, 4, 16} plus an unbatched
/// reference, recording rollbacks, folded messages, and the frame/message
/// ratio at each point. The conservation invariant (`emitted == shipped +
/// folded`) is enforced on every leg — the sweep is a tracking probe, not
/// a correctness waiver.
fn batching_sweep_probe(source: &str, k: u32, vectors: u64) -> Result<(Json, Json), String> {
    let ctx = |e: String| format!("case `batching_sweep`: {e}");
    let nl = dvs_verilog::parse_and_elaborate(source)
        .map_err(|e| ctx(e.to_string()))?
        .into_netlist();
    let part = partition_multiway(&nl, &MultiwayConfig::new(k, 20.0));
    let plan = ClusterPlan::new(&nl, &part.gate_blocks, k as usize);
    let stim = VectorStimulus::from_netlist(&nl, 10, STIM_SEED);
    let run = |policy: BatchPolicy| {
        let cfg = TimeWarpConfig::builder()
            .transport(Transport::Threads)
            .window(8)
            .epochs_per_quantum(2)
            .gvt_interval(1)
            .message_batching(policy)
            .build()
            .map_err(|e| ctx(e.to_string()))?;
        let t = Instant::now();
        let tw = run_timewarp(&nl, &plan, &stim, vectors, &cfg).map_err(|e| ctx(e.to_string()))?;
        let seconds = t.elapsed().as_secs_f64();
        let emitted = tw.stats.messages + tw.stats.anti_messages;
        if emitted != tw.recovery.messages_sent + tw.recovery.messages_folded {
            return Err(ctx(format!(
                "conservation violated: {emitted} emitted vs {} shipped + {} folded",
                tw.recovery.messages_sent, tw.recovery.messages_folded
            )));
        }
        Ok::<_, String>((tw, seconds))
    };
    let mut legs = Vec::new();
    let mut host_legs = Vec::new();
    let mut points = vec![("off".to_string(), BatchPolicy::Off)];
    for max_delay in [1u64, 4, 16] {
        points.push((
            format!("delay_{max_delay}"),
            BatchPolicy::PerQuantum {
                max_size: 32,
                max_delay,
            },
        ));
    }
    for (label, policy) in points {
        let (tw, seconds) = run(policy)?;
        legs.push(
            ObjBuilder::new()
                .str("leg", &label)
                .uint("rollbacks", tw.stats.rollbacks)
                .uint("messages_sent", tw.recovery.messages_sent)
                .uint("frames_sent", tw.recovery.frames_sent)
                .uint("messages_folded", tw.recovery.messages_folded)
                .build(),
        );
        host_legs.push(
            ObjBuilder::new()
                .str("leg", &label)
                .float("seconds", seconds)
                .build(),
        );
    }
    Ok((
        ObjBuilder::new().array("legs", legs).build(),
        ObjBuilder::new().array("legs", host_legs).build(),
    ))
}

/// 64-bit FNV-1a over the canonical artifact bytes: a compact exact pin of
/// the entire run (final values, counters, ordering) in the baseline.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// One workload of the smoke grid.
pub struct BenchCase {
    /// Stable name — the key used to match against the baseline.
    pub name: &'static str,
    /// Structural Verilog source.
    pub source: String,
    /// Brute-force k values.
    pub ks: Vec<u32>,
    /// Brute-force balance factors.
    pub bs: Vec<f64>,
    /// Vectors per pre-simulation run.
    pub presim_vectors: u64,
    /// Vectors for the full simulation of the chosen partition.
    pub full_vectors: u64,
}

/// The fixed smoke grid: two small workloads with opposite interconnect
/// structure (the trellis-coupled Viterbi decoder and the modular pipeline
/// SoC), each swept over k ∈ {2, 3} × b ∈ {7.5, 15.0}. Small enough that
/// the whole gate — every case run twice — finishes in well under a minute
/// even on a debug build.
pub fn smoke_grid() -> Vec<BenchCase> {
    let sweep = |name, source| BenchCase {
        name,
        source,
        ks: vec![2, 3],
        bs: vec![7.5, 15.0],
        presim_vectors: 60,
        full_vectors: 150,
    };
    vec![
        sweep("viterbi_tiny", generate_viterbi(&ViterbiParams::tiny())),
        sweep(
            "pipeline_soc_tiny",
            generate_pipeline_soc(&PipelineParams::tiny()),
        ),
    ]
}

/// The product of running one case: its canonical (deterministic) flow
/// report plus the host-side measurements kept outside it.
pub struct CaseArtifact {
    pub name: String,
    /// Canonical flow report — byte-identical across parallelism modes.
    pub report: Json,
    /// Host wall seconds of each leg. Nondeterministic; compared only
    /// within the loose host tolerance.
    pub host: Json,
}

/// Run one case twice — serial and threaded — and check the determinism
/// contract: both legs must emit byte-identical canonical artifacts.
pub fn run_case(case: &BenchCase) -> Result<CaseArtifact, String> {
    let leg = |par: Parallelism| -> Result<(String, f64), String> {
        let t = Instant::now();
        let report = FlowBuilder::from_source(&case.source)
            .search(Search::BruteForce {
                ks: case.ks.clone(),
                bs: case.bs.clone(),
            })
            .presim_vectors(case.presim_vectors)
            .full_vectors(case.full_vectors)
            .stim_seed(STIM_SEED)
            .part_seed(PART_SEED)
            .timewarp_presim(dst_presim())
            .parallelism(par)
            .build()
            .map_err(|e| format!("case `{}`: {e}", case.name))?
            .run()
            .map_err(|e| format!("case `{}`: {e}", case.name))?;
        let seconds = t.elapsed().as_secs_f64();
        let canonical = report
            .canonical_json()
            .emit()
            .map_err(|e| format!("case `{}`: {e}", case.name))?;
        Ok((canonical, seconds))
    };
    let (serial, serial_seconds) = leg(Parallelism::Serial)?;
    let (threaded, threads_seconds) = leg(Parallelism::Threads(GATE_THREADS))?;
    if serial != threaded {
        return Err(format!(
            "case `{}`: Serial and Threads({GATE_THREADS}) canonical artifacts differ \
             — the deterministic-search contract is broken",
            case.name
        ));
    }
    Ok(CaseArtifact {
        name: case.name.to_string(),
        report: Json::parse(&serial).map_err(|e| format!("case `{}`: {e}", case.name))?,
        host: ObjBuilder::new()
            .float("serial_seconds", serial_seconds)
            .float("threads_seconds", threads_seconds)
            .build(),
    })
}

/// Assemble the schema-versioned `BENCH_<label>.json` artifact.
pub fn bench_artifact(label: &str, cases: &[CaseArtifact]) -> Json {
    ObjBuilder::new()
        .int("schema_version", SCHEMA_VERSION)
        .str("kind", "bench_artifact")
        .str("label", label)
        .array(
            "cases",
            cases
                .iter()
                .map(|c| {
                    ObjBuilder::new()
                        .str("name", &c.name)
                        .field("report", c.report.clone())
                        .field("host", c.host.clone())
                        .build()
                })
                .collect(),
        )
        .build()
}

/// Per-metric comparison tolerances. Counters are always exact; these
/// bands apply to time-valued metrics only.
#[derive(Debug, Clone, Copy)]
pub struct Tolerances {
    /// Relative band for every time metric (0.30 = ±30 %).
    pub time_rel: f64,
    /// Absolute slack (seconds) for modeled times inside the canonical
    /// report. These are deterministic, so the slack only matters across
    /// deliberate model changes.
    pub modeled_abs: f64,
    /// Absolute slack (seconds) for host wall times — wide, because CI
    /// runners are shared and the gate's runs are sub-second.
    pub host_abs: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            time_rel: 0.30,
            modeled_abs: 0.25,
            host_abs: 1.0,
        }
    }
}

/// Outcome of a baseline comparison.
pub struct GateOutcome {
    /// Metrics checked across all cases.
    pub checked: usize,
    /// Human-readable regressions; empty means the gate passes.
    pub regressions: Vec<String>,
}

impl GateOutcome {
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compare a freshly produced artifact against the checked-in baseline.
pub fn compare(
    current: &Json,
    baseline: &Json,
    tol: &Tolerances,
) -> Result<GateOutcome, JsonError> {
    let mut out = GateOutcome {
        checked: 0,
        regressions: Vec::new(),
    };
    let version = baseline.field("schema_version")?.as_i64()?;
    if version != SCHEMA_VERSION {
        out.regressions.push(format!(
            "baseline has schema_version {version}, gate expects {SCHEMA_VERSION} \
             — refresh it with `bench_gate --write-baseline`"
        ));
        return Ok(out);
    }
    let cur = index_cases(current)?;
    let base = index_cases(baseline)?;
    for (name, base_case) in &base {
        match cur.get(name) {
            None => out.regressions.push(format!(
                "case `{name}`: in the baseline but missing from this run"
            )),
            Some(cur_case) => compare_case(name, cur_case, base_case, tol, &mut out),
        }
    }
    for name in cur.keys() {
        if !base.contains_key(name) {
            out.regressions.push(format!(
                "case `{name}`: not in the baseline — refresh it with `bench_gate --write-baseline`"
            ));
        }
    }
    Ok(out)
}

fn index_cases(artifact: &Json) -> Result<BTreeMap<&str, &Json>, JsonError> {
    let mut map = BTreeMap::new();
    for case in artifact.field("cases")?.as_array()? {
        map.insert(case.field("name")?.as_str()?, case);
    }
    Ok(map)
}

fn compare_case(
    name: &str,
    current: &Json,
    baseline: &Json,
    tol: &Tolerances,
    out: &mut GateOutcome,
) {
    let mut cur = BTreeMap::new();
    let mut base = BTreeMap::new();
    flatten("", current, &mut cur);
    flatten("", baseline, &mut base);
    for (path, base_leaf) in &base {
        if path == "name" {
            continue;
        }
        match cur.get(path) {
            None => out.regressions.push(format!(
                "case `{name}`: metric `{path}` is in the baseline but not this run"
            )),
            Some(cur_leaf) => {
                out.checked += 1;
                compare_leaf(name, path, cur_leaf, base_leaf, tol, &mut out.regressions);
            }
        }
    }
    for path in cur.keys() {
        if path != "name" && !base.contains_key(path) {
            out.regressions.push(format!(
                "case `{name}`: new metric `{path}` not in the baseline \
                 — refresh it with `bench_gate --write-baseline`"
            ));
        }
    }
}

/// Flatten a JSON tree into `path → leaf` pairs. Arrays index their
/// elements (`machine_events[2]`); empty containers count as leaves so a
/// shape change never slips through.
fn flatten<'a>(prefix: &str, v: &'a Json, out: &mut BTreeMap<String, &'a Json>) {
    match v {
        Json::Object(members) if !members.is_empty() => {
            for (key, value) in members {
                let path = if prefix.is_empty() {
                    key.clone()
                } else {
                    format!("{prefix}.{key}")
                };
                flatten(&path, value, out);
            }
        }
        Json::Array(items) if !items.is_empty() => {
            for (i, item) in items.iter().enumerate() {
                flatten(&format!("{prefix}[{i}]"), item, out);
            }
        }
        _ => {
            out.insert(prefix.to_string(), v);
        }
    }
}

/// Is this metric a time (tolerance-banded) rather than a counter (exact)?
/// Returns the absolute slack to use, or `None` for exact metrics.
fn time_slack(path: &str, tol: &Tolerances) -> Option<f64> {
    if path.starts_with("host.") {
        return Some(tol.host_abs);
    }
    let last = path
        .rsplit('.')
        .next()
        .unwrap_or(path)
        .trim_end_matches(|c: char| c == ']' || c.is_ascii_digit() || c == '[');
    if last.ends_with("seconds") || last == "speedup" {
        Some(tol.modeled_abs)
    } else {
        None
    }
}

fn compare_leaf(
    name: &str,
    path: &str,
    current: &Json,
    baseline: &Json,
    tol: &Tolerances,
    regressions: &mut Vec<String>,
) {
    if let Some(abs) = time_slack(path, tol) {
        if let (Ok(c), Ok(b)) = (current.as_f64(), baseline.as_f64()) {
            let band = tol.time_rel * b.abs() + abs;
            if (c - b).abs() > band {
                regressions.push(format!(
                    "case `{name}`: time `{path}` = {c:.6} outside \
                     baseline {b:.6} ± {band:.6}"
                ));
            }
            return;
        }
    }
    let show = |v: &Json| v.emit().unwrap_or_else(|e| format!("<unprintable: {e}>"));
    if current != baseline {
        regressions.push(format!(
            "case `{name}`: counter `{path}` = {} differs from baseline {}",
            show(current),
            show(baseline)
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_case(cut: u64, speedup: f64, host: f64) -> CaseArtifact {
        CaseArtifact {
            name: "fake".to_string(),
            report: ObjBuilder::new()
                .uint("cut", cut)
                .float("speedup", speedup)
                .float("wall_seconds", speedup / 10.0)
                .array("machine_events", vec![Json::Int(5), Json::Int(7)])
                .build(),
            host: ObjBuilder::new().float("serial_seconds", host).build(),
        }
    }

    fn artifact_of(case: CaseArtifact) -> Json {
        bench_artifact("test", &[case])
    }

    #[test]
    fn identical_artifacts_pass() {
        let a = artifact_of(fake_case(10, 1.5, 0.2));
        let outcome = compare(&a, &a, &Tolerances::default()).unwrap();
        assert!(outcome.passed(), "{:?}", outcome.regressions);
        assert!(outcome.checked >= 5);
    }

    #[test]
    fn counter_drift_fails_exactly() {
        let cur = artifact_of(fake_case(11, 1.5, 0.2));
        let base = artifact_of(fake_case(10, 1.5, 0.2));
        let outcome = compare(&cur, &base, &Tolerances::default()).unwrap();
        assert_eq!(outcome.regressions.len(), 1);
        assert!(outcome.regressions[0].contains("`report.cut`"));
    }

    #[test]
    fn times_get_a_tolerance_band() {
        // +20% on a modeled time: within the band.
        let cur = artifact_of(fake_case(10, 1.8, 0.2));
        let base = artifact_of(fake_case(10, 1.5, 0.2));
        let outcome = compare(&cur, &base, &Tolerances::default()).unwrap();
        assert!(outcome.passed(), "{:?}", outcome.regressions);
        // 10x on a modeled time: outside it.
        let cur = artifact_of(fake_case(10, 15.0, 0.2));
        let outcome = compare(&cur, &base, &Tolerances::default()).unwrap();
        assert!(!outcome.passed());
        assert!(outcome.regressions.iter().any(|r| r.contains("speedup")));
    }

    #[test]
    fn host_times_have_wide_slack() {
        let cur = artifact_of(fake_case(10, 1.5, 0.9));
        let base = artifact_of(fake_case(10, 1.5, 0.1));
        let outcome = compare(&cur, &base, &Tolerances::default()).unwrap();
        assert!(outcome.passed(), "{:?}", outcome.regressions);
    }

    #[test]
    fn missing_and_extra_cases_fail() {
        let cur = artifact_of(fake_case(10, 1.5, 0.2));
        let mut other = fake_case(10, 1.5, 0.2);
        other.name = "other".to_string();
        let base = artifact_of(other);
        let outcome = compare(&cur, &base, &Tolerances::default()).unwrap();
        assert_eq!(outcome.regressions.len(), 2);
        assert!(outcome
            .regressions
            .iter()
            .any(|r| r.contains("missing from this run")));
        assert!(outcome
            .regressions
            .iter()
            .any(|r| r.contains("not in the baseline")));
    }

    #[test]
    fn shape_changes_fail() {
        let cur = artifact_of(fake_case(10, 1.5, 0.2));
        let mut case = fake_case(10, 1.5, 0.2);
        case.report = ObjBuilder::new()
            .uint("cut", 10)
            .float("speedup", 1.5)
            .float("wall_seconds", 0.15)
            .array(
                "machine_events",
                vec![Json::Int(5), Json::Int(7), Json::Int(9)],
            )
            .build();
        let base = artifact_of(case);
        let outcome = compare(&cur, &base, &Tolerances::default()).unwrap();
        assert!(outcome
            .regressions
            .iter()
            .any(|r| r.contains("machine_events[2]")));
    }

    #[test]
    fn smoke_case_is_deterministic_end_to_end() {
        let grid = smoke_grid();
        let case = &grid[1]; // pipeline_soc_tiny, the smaller one
        let artifact = run_case(case).unwrap();
        // Self-comparison of a real artifact passes and checks many metrics.
        let a = bench_artifact("t", &[artifact]);
        let outcome = compare(&a, &a, &Tolerances::default()).unwrap();
        assert!(outcome.passed(), "{:?}", outcome.regressions);
        assert!(outcome.checked > 50, "only {} metrics", outcome.checked);
    }
}
