//! Simulation kernel benchmarks: sequential event throughput, event queue
//! implementations, the deterministic cluster model, and the threaded Time
//! Warp kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dvs_core::multiway::{partition_multiway, MultiwayConfig};
use dvs_sim::cluster::ClusterPlan;
use dvs_sim::cluster_model::{ClusterModel, ClusterModelConfig};
use dvs_sim::seq::{NullObserver, SeqSim, SimConfig};
use dvs_sim::stimulus::VectorStimulus;
use dvs_sim::timewarp::{run_timewarp, TimeWarpConfig};
use dvs_sim::wheel::{HeapQueue, NetEvent, TimingWheel};
use dvs_sim::Logic;
use dvs_verilog::{NetId, Netlist};
use dvs_workloads::viterbi::{generate_viterbi, ViterbiParams};
use std::hint::black_box;

fn workload(k: u32) -> Netlist {
    let src = generate_viterbi(&ViterbiParams {
        constraint_len: k,
        ..ViterbiParams::paper_class()
    });
    dvs_verilog::parse_and_elaborate(&src)
        .expect("decoder elaborates")
        .into_netlist()
}

fn bench_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("seq_sim_100_vectors");
    group.sample_size(10);
    for k in [5u32, 7] {
        let nl = workload(k);
        group.bench_with_input(
            BenchmarkId::from_parameter(nl.gate_count()),
            &nl,
            |b, nl| {
                let stim = VectorStimulus::from_netlist(nl, 10, 1);
                b.iter(|| {
                    let mut sim = SeqSim::new(nl, &SimConfig::default());
                    sim.run(&stim, 100, &mut NullObserver);
                    black_box(sim.stats().gate_evals)
                });
            },
        );
    }
    group.finish();
}

fn bench_event_queues(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue_100k");
    let events: Vec<NetEvent> = (0..100_000u64)
        .map(|i| NetEvent {
            time: i / 7,
            net: NetId((i % 512) as u32),
            value: Logic::One,
        })
        .collect();
    group.bench_function("heap", |b| {
        b.iter(|| {
            let mut q = HeapQueue::new();
            for &e in &events {
                q.push(e);
            }
            let mut buf = Vec::new();
            while q.pop_epoch(&mut buf).is_some() {}
            black_box(buf.len())
        });
    });
    group.bench_function("timing_wheel", |b| {
        b.iter(|| {
            let mut w = TimingWheel::new(32);
            // The wheel requires non-decreasing epochs relative to `now`;
            // interleave pushes and pops as the simulator does.
            let mut buf = Vec::new();
            let mut it = events.iter();
            for _ in 0..events.len() / 16 {
                for _ in 0..16 {
                    if let Some(&e) = it.next() {
                        w.push(e);
                    }
                }
                buf.clear();
                w.pop_epoch(&mut buf);
            }
            while w.pop_epoch(&mut buf).is_some() {
                buf.clear();
            }
            black_box(w.len())
        });
    });
    group.finish();
}

fn bench_cluster_model(c: &mut Criterion) {
    let nl = workload(7);
    let part = partition_multiway(&nl, &MultiwayConfig::new(4, 7.5));
    c.bench_function("cluster_model_200_vectors_k4", |b| {
        let stim = VectorStimulus::from_netlist(&nl, 10, 1);
        b.iter(|| {
            let plan = ClusterPlan::new(&nl, &part.gate_blocks, 4);
            let model = ClusterModel::new(&nl, plan, ClusterModelConfig::default());
            black_box(model.run(&stim, 200).stats.messages)
        });
    });
}

fn bench_timewarp(c: &mut Criterion) {
    let nl = workload(5);
    let part = partition_multiway(&nl, &MultiwayConfig::new(2, 15.0));
    let plan = ClusterPlan::new(&nl, &part.gate_blocks, 2);
    let mut group = c.benchmark_group("timewarp_50_vectors_k2");
    group.sample_size(10);
    group.bench_function("threaded", |b| {
        let stim = VectorStimulus::from_netlist(&nl, 10, 1);
        b.iter(|| {
            black_box(
                run_timewarp(&nl, &plan, &stim, 50, &TimeWarpConfig::default())
                    .expect("bench run stalled")
                    .stats
                    .events,
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sequential,
    bench_event_queues,
    bench_cluster_model,
    bench_timewarp
);
criterion_main!(benches);
