//! Partitioner benchmarks: the design-driven algorithm vs the hMetis-style
//! multilevel baseline, across k, on the paper-class Viterbi decoder.
//!
//! The headline here is the *execution time* contrast the paper motivates:
//! the design-driven algorithm partitions a few hundred super-gates instead
//! of ~12 k gates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dvs_core::multiway::{partition_multiway, MultiwayConfig};
use dvs_hmetis::{partition_kway, HmetisConfig};
use dvs_hypergraph::builder::gate_level;
use dvs_verilog::Netlist;
use dvs_workloads::viterbi::{generate_viterbi, ViterbiParams};
use std::hint::black_box;

fn workload() -> Netlist {
    let src = generate_viterbi(&ViterbiParams::paper_class());
    dvs_verilog::parse_and_elaborate(&src)
        .expect("decoder elaborates")
        .into_netlist()
}

fn bench_design_driven(c: &mut Criterion) {
    let nl = workload();
    let mut group = c.benchmark_group("design_driven");
    group.sample_size(20);
    for k in [2u32, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bch, &k| {
            let cfg = MultiwayConfig::new(k, 7.5);
            bch.iter(|| black_box(partition_multiway(&nl, &cfg)));
        });
    }
    group.finish();
}

fn bench_hmetis(c: &mut Criterion) {
    let nl = workload();
    let gh = gate_level(&nl);
    let mut group = c.benchmark_group("hmetis_baseline");
    group.sample_size(10);
    for k in [2u32, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bch, &k| {
            let cfg = HmetisConfig::with_balance(7.5, 42);
            bch.iter(|| black_box(partition_kway(&gh.hg, k, &cfg)));
        });
    }
    group.finish();
}

fn bench_front_end(c: &mut Criterion) {
    let src = generate_viterbi(&ViterbiParams::paper_class());
    let mut group = c.benchmark_group("front_end");
    group.sample_size(20);
    group.bench_function("parse", |b| {
        b.iter(|| black_box(dvs_verilog::parse(&src).unwrap()))
    });
    group.bench_function("parse_and_elaborate", |b| {
        b.iter(|| black_box(dvs_verilog::parse_and_elaborate(&src).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_design_driven, bench_hmetis, bench_front_end);
criterion_main!(benches);
